// Package disk implements the disk-based query answering mode of Section
// IV-C: when the label indexes cannot be kept in memory, they are stored
// on disk grouped by category — each category section holds its inverted
// label index IL(Ci) together with the Lout labels of its vertices — and
// located with a disk-based B+ tree. Answering a KOSR query then loads
// |C| category sections plus the source's Lout and the destination's Lin,
// i.e. roughly |C|+4 seeks, exactly as the paper describes. This is the
// storage engine behind the SK-DB method of the evaluation.
package disk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/bptree"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

var metaMagic = [8]byte{'K', 'O', 'S', 'R', 'D', 'S', 'K', '1'}

const (
	dataFile  = "data.bin"
	catsFile  = "cats.bpt"
	vertsFile = "verts.bpt"
	metaFile  = "meta.bin"
)

// Write materializes the label index of g into a disk store rooted at
// dir (created if needed).
func Write(dir string, g *graph.Graph, lab *label.Index) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	// Meta: magic, n, numCats, rank array.
	mf, err := os.Create(filepath.Join(dir, metaFile))
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	mw := bufio.NewWriter(mf)
	mw.Write(metaMagic[:])
	binary.Write(mw, binary.LittleEndian, uint32(g.NumVertices()))
	binary.Write(mw, binary.LittleEndian, uint32(g.NumCategories()))
	for v := 0; v < g.NumVertices(); v++ {
		binary.Write(mw, binary.LittleEndian, uint32(lab.Rank(graph.Vertex(v))))
	}
	if err := mw.Flush(); err != nil {
		mf.Close()
		return fmt.Errorf("disk: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("disk: %w", err)
	}

	df, err := os.Create(filepath.Join(dir, dataFile))
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	defer df.Close()
	dw := bufio.NewWriter(df)
	var offset int64

	writeRecord := func(payload []byte) (int64, error) {
		at := offset
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
		if _, err := dw.Write(lenBuf[:]); err != nil {
			return 0, err
		}
		if _, err := dw.Write(payload); err != nil {
			return 0, err
		}
		offset += int64(4 + len(payload))
		return at, nil
	}

	verts, err := bptree.Create(filepath.Join(dir, vertsFile))
	if err != nil {
		return err
	}
	defer verts.Close()
	cats, err := bptree.Create(filepath.Join(dir, catsFile))
	if err != nil {
		return err
	}
	defer cats.Close()

	// Per-vertex records: Lout(v) then Lin(v).
	for v := 0; v < g.NumVertices(); v++ {
		payload := encodeLabelPair(lab.Out(graph.Vertex(v)), lab.In(graph.Vertex(v)))
		at, err := writeRecord(payload)
		if err != nil {
			return fmt.Errorf("disk: %w", err)
		}
		if err := verts.Insert(int64(v), at); err != nil {
			return err
		}
	}

	// Per-category sections: IL(c) followed by the Lout labels of V_c.
	inv := invindex.Build(g, lab)
	for c := 0; c < g.NumCategories(); c++ {
		payload := encodeCategorySection(g, lab, inv, graph.Category(c))
		at, err := writeRecord(payload)
		if err != nil {
			return fmt.Errorf("disk: %w", err)
		}
		if err := cats.Insert(int64(c), at); err != nil {
			return err
		}
	}
	if err := dw.Flush(); err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	return nil
}

func encodeLabelPair(out, in []label.Entry) []byte {
	buf := make([]byte, 0, 8+16*(len(out)+len(in)))
	buf = appendEntries(buf, out)
	buf = appendEntries(buf, in)
	return buf
}

func appendEntries(buf []byte, list []label.Entry) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(list)))
	for _, e := range list {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Hub))
		buf = binary.LittleEndian.AppendUint64(buf, uint64FromFloat(e.D))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(e.Next)))
	}
	return buf
}

func encodeCategorySection(g *graph.Graph, lab *label.Index, inv *invindex.Index, c graph.Category) []byte {
	var buf []byte
	// IL(c): the set of hubs with non-empty inverted lists. Hubs are
	// exactly the hubs appearing in Lin of the category's vertices.
	hubs := map[graph.Vertex]bool{}
	for _, v := range g.VerticesOf(c) {
		for _, e := range lab.In(v) {
			hubs[e.Hub] = true
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hubs)))
	for hub := range hubs {
		list := inv.IL(c, hub)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(hub))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(list)))
		for _, e := range list {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
			buf = binary.LittleEndian.AppendUint64(buf, uint64FromFloat(e.D))
		}
	}
	// Lout of every category vertex.
	vs := g.VerticesOf(c)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vs)))
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		buf = appendEntries(buf, lab.Out(v))
	}
	return buf
}

func uint64FromFloat(f float64) uint64 { return math.Float64bits(f) }

// Store is an opened disk-resident index.
type Store struct {
	dir   string
	data  *os.File
	verts *bptree.Tree
	cats  *bptree.Tree
	rank  []int32
	nCats int

	// Seeks counts record loads (the paper's "|C|+4 disk seek
	// operations" claim is observable through it).
	Seeks int64
}

// Open opens a store written by Write.
func Open(dir string) (*Store, error) {
	mf, err := os.Open(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	defer mf.Close()
	br := bufio.NewReader(mf)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("disk: reading meta: %w", err)
	}
	if m != metaMagic {
		return nil, fmt.Errorf("disk: bad meta magic %q", m)
	}
	var n, nc uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &nc); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("disk: implausible vertex count %d", n)
	}
	rank := make([]int32, n)
	for i := range rank {
		var r uint32
		if err := binary.Read(br, binary.LittleEndian, &r); err != nil {
			return nil, fmt.Errorf("disk: reading rank: %w", err)
		}
		rank[i] = int32(r)
	}
	data, err := os.Open(filepath.Join(dir, dataFile))
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	verts, err := bptree.Open(filepath.Join(dir, vertsFile))
	if err != nil {
		data.Close()
		return nil, err
	}
	cats, err := bptree.Open(filepath.Join(dir, catsFile))
	if err != nil {
		data.Close()
		verts.Close()
		return nil, err
	}
	return &Store{dir: dir, data: data, verts: verts, cats: cats, rank: rank, nCats: int(nc)}, nil
}

// Close releases the underlying files.
func (s *Store) Close() error {
	err1 := s.data.Close()
	err2 := s.verts.Close()
	err3 := s.cats.Close()
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}
	return err3
}

// NumVertices returns the vertex count recorded in the store.
func (s *Store) NumVertices() int { return len(s.rank) }

// NumCategories returns the category count recorded in the store.
func (s *Store) NumCategories() int { return s.nCats }

func (s *Store) readRecord(at int64) ([]byte, error) {
	s.Seeks++
	var lenBuf [4]byte
	if _, err := s.data.ReadAt(lenBuf[:], at); err != nil {
		return nil, fmt.Errorf("disk: reading record header at %d: %w", at, err)
	}
	l := binary.LittleEndian.Uint32(lenBuf[:])
	if l > 1<<30 {
		return nil, fmt.Errorf("disk: implausible record length %d", l)
	}
	payload := make([]byte, l)
	if _, err := s.data.ReadAt(payload, at+4); err != nil {
		return nil, fmt.Errorf("disk: reading record at %d: %w", at, err)
	}
	return payload, nil
}

type decoder struct {
	buf  []byte
	off  int
	err  error
	rank []int32 // fills label.Entry.R; hub ranks are derived, not stored
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.err = fmt.Errorf("disk: truncated record")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("disk: truncated record")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) entries() []label.Entry {
	n := d.u32()
	if d.err != nil || n > uint32(len(d.buf)) {
		if d.err == nil {
			d.err = fmt.Errorf("disk: corrupt entry count %d", n)
		}
		return nil
	}
	list := make([]label.Entry, 0, n)
	for i := uint32(0); i < n; i++ {
		hub := graph.Vertex(d.u32())
		dist := d.f64()
		next := int32(d.u32())
		if d.err != nil {
			return nil
		}
		if int(hub) < 0 || int(hub) >= len(d.rank) {
			d.err = fmt.Errorf("disk: corrupt hub %d", hub)
			return nil
		}
		list = append(list, label.Entry{Hub: hub, R: d.rank[hub], D: dist, Next: graph.Vertex(next)})
	}
	return list
}

// LoadVertex reads the (Lout, Lin) record of v.
func (s *Store) LoadVertex(v graph.Vertex) (out, in []label.Entry, err error) {
	at, ok, err := s.verts.Get(int64(v))
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("disk: vertex %d not in store", v)
	}
	payload, err := s.readRecord(at)
	if err != nil {
		return nil, nil, err
	}
	d := &decoder{buf: payload, rank: s.rank}
	out = d.entries()
	in = d.entries()
	return out, in, d.err
}

// catSection is a decoded category section.
type catSection struct {
	il   map[graph.Vertex][]invindex.Entry
	outs map[graph.Vertex][]label.Entry
}

func (s *Store) loadCategory(c graph.Category) (*catSection, error) {
	at, ok, err := s.cats.Get(int64(c))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("disk: category %d not in store", c)
	}
	payload, err := s.readRecord(at)
	if err != nil {
		return nil, err
	}
	d := &decoder{buf: payload, rank: s.rank}
	sec := &catSection{
		il:   make(map[graph.Vertex][]invindex.Entry),
		outs: make(map[graph.Vertex][]label.Entry),
	}
	nHubs := d.u32()
	for i := uint32(0); i < nHubs && d.err == nil; i++ {
		hub := graph.Vertex(d.u32())
		nE := d.u32()
		if d.err != nil || nE > uint32(len(payload)) {
			return nil, fmt.Errorf("disk: corrupt category section %d", c)
		}
		list := make([]invindex.Entry, 0, nE)
		for k := uint32(0); k < nE; k++ {
			v := graph.Vertex(d.u32())
			dist := d.f64()
			list = append(list, invindex.Entry{V: v, D: dist})
		}
		sec.il[hub] = list
	}
	nVerts := d.u32()
	for i := uint32(0); i < nVerts && d.err == nil; i++ {
		v := graph.Vertex(d.u32())
		sec.outs[v] = d.entries()
	}
	if d.err != nil {
		return nil, d.err
	}
	return sec, nil
}

// LoadQuery materializes the sparse label and inverted indexes a KOSR
// query needs: the category sections of every category in cats, the
// source's Lout and the destination's Lin. The result plugs directly
// into core.LabelProvider.
func (s *Store) LoadQuery(cats []graph.Category, src, dst graph.Vertex) (*label.Index, *invindex.Index, error) {
	lab := label.NewSparse(s.rank)
	loaded := make(map[graph.Category]map[graph.Vertex][]invindex.Entry)
	for _, c := range cats {
		if _, done := loaded[c]; done {
			continue
		}
		sec, err := s.loadCategory(c)
		if err != nil {
			return nil, nil, err
		}
		loaded[c] = sec.il
		for v, out := range sec.outs {
			lab.SetOut(v, out)
		}
	}
	srcOut, _, err := s.LoadVertex(src)
	if err != nil {
		return nil, nil, err
	}
	lab.SetOut(src, srcOut)
	_, dstIn, err := s.LoadVertex(dst)
	if err != nil {
		return nil, nil, err
	}
	lab.SetIn(dst, dstIn)
	return lab, invindex.FromParts(lab, s.nCats, loaded), nil
}
