package disk

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/label"
)

func buildStore(t *testing.T, g *graph.Graph) (*Store, *label.Index) {
	t.Helper()
	lab := label.Build(g)
	dir := filepath.Join(t.TempDir(), "store")
	if err := Write(dir, g, lab); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st, lab
}

func TestRoundTripVertexLabels(t *testing.T) {
	g := graph.Figure1()
	st, lab := buildStore(t, g)
	if st.NumVertices() != 8 || st.NumCategories() != 3 {
		t.Fatalf("n=%d nc=%d", st.NumVertices(), st.NumCategories())
	}
	for v := 0; v < g.NumVertices(); v++ {
		out, in, err := st.LoadVertex(graph.Vertex(v))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(lab.Out(graph.Vertex(v))) || len(in) != len(lab.In(graph.Vertex(v))) {
			t.Fatalf("vertex %d labels differ", v)
		}
		for i, e := range out {
			if e != lab.Out(graph.Vertex(v))[i] {
				t.Fatalf("vertex %d out entry %d: %v vs %v", v, i, e, lab.Out(graph.Vertex(v))[i])
			}
		}
	}
}

func TestLoadQueryAnswersKOSR(t *testing.T) {
	g := graph.Figure1()
	st, _ := buildStore(t, g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	cats := []graph.Category{ma, re, ci}

	lab, inv, err := st.LoadQuery(cats, s, tv)
	if err != nil {
		t.Fatal(err)
	}
	prov := &core.LabelProvider{Graph: g, Labels: lab, Inv: inv}
	q := core.Query{Source: s, Target: tv, Categories: cats, K: 3}
	routes, _, err := core.Solve(context.Background(), g, q, prov, core.Options{Method: core.MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20, 21, 22}
	if len(routes) != 3 {
		t.Fatalf("routes=%v", routes)
	}
	for i := range want {
		if routes[i].Cost != want[i] {
			t.Fatalf("routes=%v", routes)
		}
	}
}

// The paper claims |C|+4 seeks per query; our layout needs one record
// read per distinct category plus two vertex records.
func TestSeekCount(t *testing.T) {
	g := graph.Figure1()
	st, _ := buildStore(t, g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	before := st.Seeks
	if _, _, err := st.LoadQuery([]graph.Category{ma, re, ci}, s, tv); err != nil {
		t.Fatal(err)
	}
	if got := st.Seeks - before; got != 5 { // 3 categories + Lout(s) + Lin(t)
		t.Fatalf("seeks=%d, want 5", got)
	}
}

func TestLoadQueryMatchesInMemoryOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(20)
		ncats := 3
		b := graph.NewBuilder(n, true)
		b.EnsureCategories(ncats)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(9)))
		}
		for v := 0; v < n; v++ {
			b.AddCategory(graph.Vertex(v), graph.Category(rng.Intn(ncats)))
		}
		g := b.MustBuild()
		st, lab := buildStore(t, g)

		q := core.Query{
			Source:     graph.Vertex(rng.Intn(n)),
			Target:     graph.Vertex(rng.Intn(n)),
			Categories: []graph.Category{0, 2},
			K:          4,
		}
		memProv := core.NewLabelProvider(g, lab)
		memRoutes, _, err := core.Solve(context.Background(), g, q, memProv, core.Options{Method: core.MethodSK})
		if err != nil {
			t.Fatal(err)
		}
		slab, sinv, err := st.LoadQuery(q.Categories, q.Source, q.Target)
		if err != nil {
			t.Fatal(err)
		}
		diskProv := &core.LabelProvider{Graph: g, Labels: slab, Inv: sinv}
		diskRoutes, _, err := core.Solve(context.Background(), g, q, diskProv, core.Options{Method: core.MethodSK})
		if err != nil {
			t.Fatal(err)
		}
		if len(memRoutes) != len(diskRoutes) {
			t.Fatalf("trial %d: %d vs %d routes", trial, len(memRoutes), len(diskRoutes))
		}
		for i := range memRoutes {
			if memRoutes[i].Cost != diskRoutes[i].Cost {
				t.Fatalf("trial %d route %d: %v vs %v", trial, i, memRoutes[i], diskRoutes[i])
			}
		}
	}
}

func TestSparseDistanceOracle(t *testing.T) {
	// dis(v, t) through the sparse index must equal the full index for
	// loaded vertices.
	g := graph.Figure1()
	st, lab := buildStore(t, g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	slab, _, err := st.LoadQuery([]graph.Category{ma}, s, tv)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"s", "a", "c"} { // s + MA vertices
		v, _ := g.VertexByName(name)
		got := slab.Dist(v, tv)
		want := lab.Dist(v, tv)
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("dis(%s,t)=%v, want %v", name, got, want)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("want error for missing store")
	}
	// Corrupt meta magic.
	bad := filepath.Join(dir, "bad")
	os.MkdirAll(bad, 0o755)
	os.WriteFile(filepath.Join(bad, metaFile), []byte("NOTMAGICxxxxxxxx"), 0o644)
	if _, err := Open(bad); err == nil {
		t.Fatal("want error for bad magic")
	}
	// Truncated meta.
	tr := filepath.Join(dir, "trunc")
	os.MkdirAll(tr, 0o755)
	os.WriteFile(filepath.Join(tr, metaFile), metaMagic[:4], 0o644)
	if _, err := Open(tr); err == nil {
		t.Fatal("want error for truncated meta")
	}
}

func TestCorruptDataRecord(t *testing.T) {
	g := graph.Figure1()
	lab := label.Build(g)
	dir := filepath.Join(t.TempDir(), "store")
	if err := Write(dir, g, lab); err != nil {
		t.Fatal(err)
	}
	// Truncate the data file hard.
	if err := os.Truncate(filepath.Join(dir, dataFile), 3); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.LoadVertex(0); err == nil {
		t.Fatal("want error reading truncated data")
	}
}

func TestUnknownVertexAndCategory(t *testing.T) {
	g := graph.Figure1()
	st, _ := buildStore(t, g)
	if _, _, err := st.LoadVertex(999); err == nil {
		t.Fatal("want error for unknown vertex")
	}
	if _, err := st.loadCategory(99); err == nil {
		t.Fatal("want error for unknown category")
	}
}
