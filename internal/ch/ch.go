// Package ch implements contraction hierarchies (Geisberger et al., WEA
// 2008), the speed-up technique the paper's GSP baseline is engineered
// with (Section III-B2). Vertices are contracted in ascending importance
// order; shortcuts preserve shortest-path distances among the remaining
// vertices, and queries run as bidirectional Dijkstra searches that only
// relax arcs toward more important vertices.
//
// Besides point-to-point distance queries, the package provides the
// bucket-based one-to-many evaluation used by the CH variant of GSP
// (many-to-many distance tables between consecutive category layers).
package ch

import (
	"math"

	"repro/internal/graph"
	"repro/internal/pq"
)

type oarc struct {
	to int32
	w  graph.Weight
}

// Index is a built contraction hierarchy over a fixed graph.
type Index struct {
	n    int
	rank []int32 // contraction order; higher = more important

	// Upward search graphs in CSR form: fwd holds arcs (u, v, w) of the
	// augmented forward graph with rank[v] > rank[u]; bwd the same for
	// the reverse graph.
	fwdOff []int32
	fwdArc []oarc
	bwdOff []int32
	bwdArc []oarc

	// Shortcuts counts the shortcut arcs added during preprocessing.
	Shortcuts int
}

// buildState carries the mutable overlay graph during contraction.
type buildState struct {
	n          int
	out        [][]oarc // overlay forward adjacency
	in         [][]oarc // overlay reverse adjacency
	contracted []bool

	// witness search workspace
	dist    []graph.Weight
	touched []int32
	heap    *pq.IndexedHeap

	delNeighbors []int32 // contracted-neighbour counts for priorities
}

// witnessLimit bounds the settles of each witness search; exceeding it
// conservatively adds the shortcut (correct, possibly redundant).
const witnessLimit = 64

// Build preprocesses g into a contraction hierarchy.
func Build(g *graph.Graph) *Index {
	n := g.NumVertices()
	st := &buildState{
		n:            n,
		out:          make([][]oarc, n),
		in:           make([][]oarc, n),
		contracted:   make([]bool, n),
		dist:         make([]graph.Weight, n),
		heap:         pq.NewIndexedHeap(n),
		delNeighbors: make([]int32, n),
	}
	for i := range st.dist {
		st.dist[i] = graph.Inf
	}
	for u := 0; u < n; u++ {
		for _, a := range g.Out(graph.Vertex(u)) {
			if a.To != graph.Vertex(u) { // self-loops never help
				addArc(&st.out[u], oarc{to: a.To, w: a.W})
				addArc(&st.in[a.To], oarc{to: int32(u), w: a.W})
			}
		}
	}

	ix := &Index{n: n, rank: make([]int32, n)}
	// Lazy priority queue over contraction priorities.
	order := pq.NewIndexedHeap(n)
	for v := 0; v < n; v++ {
		order.PushOrDecrease(int32(v), st.priority(int32(v)))
	}
	nextRank := int32(0)
	for order.Len() > 0 {
		v, _ := order.PopMin()
		// Lazy update: recompute and re-queue unless still minimal.
		p := st.priority(v)
		if order.Len() > 0 {
			if _, minKey := peekMin(order); p > minKey {
				order.PushOrDecrease(v, p)
				continue
			}
		}
		ix.rank[v] = nextRank
		nextRank++
		ix.Shortcuts += st.contract(v, true)
		st.contracted[v] = true
		for _, a := range st.out[v] {
			st.delNeighbors[a.to]++
		}
		for _, a := range st.in[v] {
			st.delNeighbors[a.to]++
		}
	}

	// Assemble the upward CSR graphs from the augmented overlay (the
	// overlay retained every original arc and shortcut).
	var fwd, bwd []chEdge
	for u := 0; u < n; u++ {
		for _, a := range st.out[u] {
			if ix.rank[a.to] > ix.rank[u] {
				fwd = append(fwd, chEdge{int32(u), a.to, a.w})
			}
		}
		for _, a := range st.in[u] {
			if ix.rank[a.to] > ix.rank[u] {
				bwd = append(bwd, chEdge{int32(u), a.to, a.w})
			}
		}
	}
	ix.fwdOff, ix.fwdArc = toCSR(n, fwd)
	ix.bwdOff, ix.bwdArc = toCSR(n, bwd)
	return ix
}

type chEdge struct {
	from, to int32
	w        graph.Weight
}

func toCSR(n int, edges []chEdge) ([]int32, []oarc) {
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.from+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	arcs := make([]oarc, len(edges))
	pos := make([]int32, n)
	for _, e := range edges {
		arcs[off[e.from]+pos[e.from]] = oarc{to: e.to, w: e.w}
		pos[e.from]++
	}
	return off, arcs
}

func peekMin(h *pq.IndexedHeap) (int32, float64) {
	// IndexedHeap has no Peek; emulate with Pop+Push (cheap, n small).
	id, key := h.PopMin()
	h.PushOrDecrease(id, key)
	return id, key
}

// addArc inserts an arc keeping only the cheapest parallel arc.
func addArc(list *[]oarc, a oarc) {
	for i := range *list {
		if (*list)[i].to == a.to {
			if a.w < (*list)[i].w {
				(*list)[i].w = a.w
			}
			return
		}
	}
	*list = append(*list, a)
}

// priority is the standard edge-difference heuristic with a
// contracted-neighbours term.
func (st *buildState) priority(v int32) float64 {
	shortcuts := st.contract(v, false)
	degree := 0
	for _, a := range st.in[v] {
		if !st.contracted[a.to] {
			degree++
		}
	}
	for _, a := range st.out[v] {
		if !st.contracted[a.to] {
			degree++
		}
	}
	return float64(shortcuts-degree) + 2*float64(st.delNeighbors[v])
}

// contract simulates (apply=false) or performs (apply=true) the
// contraction of v, returning the number of shortcuts required.
func (st *buildState) contract(v int32, apply bool) int {
	count := 0
	for _, ia := range st.in[v] {
		u := ia.to
		if st.contracted[u] || u == v {
			continue
		}
		// Max distance any witness would need to cover.
		maxD := graph.Inf
		needed := make([]oarc, 0, len(st.out[v]))
		for _, oa := range st.out[v] {
			if st.contracted[oa.to] || oa.to == v || oa.to == u {
				continue
			}
			needed = append(needed, oa)
		}
		if len(needed) == 0 {
			continue
		}
		maxD = 0
		for _, oa := range needed {
			if d := ia.w + oa.w; d > maxD {
				maxD = d
			}
		}
		st.witnessSearch(u, v, maxD)
		for _, oa := range needed {
			through := ia.w + oa.w
			if st.dist[oa.to] <= through {
				continue // witness path exists without v
			}
			count++
			if apply {
				addArc(&st.out[u], oarc{to: oa.to, w: through})
				addArc(&st.in[oa.to], oarc{to: u, w: through})
			}
		}
	}
	return count
}

// witnessSearch runs a bounded Dijkstra from u on the overlay, skipping v
// and contracted vertices, leaving distances in st.dist.
func (st *buildState) witnessSearch(u, v int32, maxD graph.Weight) {
	for _, x := range st.touched {
		st.dist[x] = graph.Inf
	}
	st.touched = st.touched[:0]
	st.heap.Reset()
	st.dist[u] = 0
	st.touched = append(st.touched, u)
	st.heap.PushOrDecrease(u, 0)
	settles := 0
	for st.heap.Len() > 0 && settles < witnessLimit {
		x, dx := st.heap.PopMin()
		if dx > maxD {
			break
		}
		settles++
		for _, a := range st.out[x] {
			if a.to == v || st.contracted[a.to] {
				continue
			}
			nd := dx + a.w
			if nd < st.dist[a.to] {
				if math.IsInf(st.dist[a.to], 1) {
					st.touched = append(st.touched, a.to)
				}
				st.dist[a.to] = nd
				st.heap.PushOrDecrease(a.to, nd)
			}
		}
	}
}

// Rank returns the contraction rank of v.
func (ix *Index) Rank(v graph.Vertex) int32 { return ix.rank[v] }

func (ix *Index) fwd(u int32) []oarc { return ix.fwdArc[ix.fwdOff[u]:ix.fwdOff[u+1]] }
func (ix *Index) bwd(u int32) []oarc { return ix.bwdArc[ix.bwdOff[u]:ix.bwdOff[u+1]] }

// Dist returns dis(s, t) via a bidirectional upward search, or +Inf when
// t is unreachable from s.
func (ix *Index) Dist(s, t graph.Vertex) graph.Weight {
	if s == t {
		return 0
	}
	df := make(map[int32]graph.Weight)
	db := make(map[int32]graph.Weight)
	hf := pq.NewHeap[oarc](func(a, b oarc) bool { return a.w < b.w })
	hb := pq.NewHeap[oarc](func(a, b oarc) bool { return a.w < b.w })
	df[int32(s)] = 0
	db[int32(t)] = 0
	hf.Push(oarc{to: int32(s), w: 0})
	hb.Push(oarc{to: int32(t), w: 0})
	best := graph.Inf

	relax := func(h *pq.Heap[oarc], dist map[int32]graph.Weight, other map[int32]graph.Weight, arcs func(int32) []oarc) {
		it := h.Pop()
		if it.w > dist[it.to] {
			return // stale
		}
		if od, ok := other[it.to]; ok {
			if c := it.w + od; c < best {
				best = c
			}
		}
		for _, a := range arcs(it.to) {
			nd := it.w + a.w
			if old, ok := dist[a.to]; !ok || nd < old {
				dist[a.to] = nd
				h.Push(oarc{to: a.to, w: nd})
			}
		}
	}
	for hf.Len() > 0 || hb.Len() > 0 {
		minPending := graph.Inf
		if hf.Len() > 0 {
			minPending = hf.Min().w
		}
		if hb.Len() > 0 && hb.Min().w < minPending {
			minPending = hb.Min().w
		}
		if minPending >= best {
			break
		}
		if hf.Len() > 0 && (hb.Len() == 0 || hf.Min().w <= hb.Min().w) {
			relax(hf, df, db, ix.fwd)
		} else {
			relax(hb, db, df, ix.bwd)
		}
	}
	return best
}
