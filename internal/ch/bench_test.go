package ch

import (
	"math/rand"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func benchGrid(b *testing.B) *graph.Graph {
	b.Helper()
	return gen.GridBuilder(gen.GridOptions{Rows: 40, Cols: 40, Diagonals: true, Seed: 8}).MustBuild()
}

func BenchmarkBuildGrid1600(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := Build(g)
		if i == 0 {
			b.ReportMetric(float64(ix.Shortcuts), "shortcuts")
		}
	}
}

// CH point-to-point queries vs plain Dijkstra early-stop searches.
func BenchmarkDistCH(b *testing.B) {
	g := benchGrid(b)
	ix := Build(g)
	rng := rand.New(rand.NewSource(9))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Dist(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)))
	}
}

func BenchmarkDistDijkstra(b *testing.B) {
	g := benchGrid(b)
	s := dijkstra.New(g)
	rng := rand.New(rand.NewSource(9))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.ToTarget(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)))
	}
}

func BenchmarkTableManyToMany(b *testing.B) {
	g := benchGrid(b)
	ix := Build(g)
	rng := rand.New(rand.NewSource(10))
	n := g.NumVertices()
	sources := make([]Seed, 50)
	for i := range sources {
		sources[i] = Seed{V: graph.Vertex(rng.Intn(n)), D: float64(rng.Intn(5))}
	}
	targets := make([]graph.Vertex, 50)
	for i := range targets {
		targets[i] = graph.Vertex(rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = ix.Table(sources, targets)
	}
}
