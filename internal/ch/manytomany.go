package ch

import (
	"math"

	"repro/internal/graph"
	"repro/internal/pq"
)

// Seed is a source vertex with an initial cost, exactly like
// dijkstra.Seed (redeclared here to keep the package self-contained).
type Seed struct {
	V graph.Vertex
	D graph.Weight
}

type bucketEntry struct {
	target int32 // index into the targets slice
	d      graph.Weight
}

// Table evaluates one layer transition of the GSP dynamic program with
// the standard CH bucket technique: for every target it runs a backward
// upward search that deposits (target, distance) entries in per-vertex
// buckets; one forward multi-source upward search seeded with the sources
// then combines against the buckets.
//
// It returns, for each target, min over sources of (seed cost + distance)
// and the source vertex realizing the minimum (-1 when unreachable).
func (ix *Index) Table(sources []Seed, targets []graph.Vertex) ([]graph.Weight, []graph.Vertex) {
	n := ix.n
	buckets := make(map[int32][]bucketEntry)

	// Backward upward searches (one per target).
	dist := make([]graph.Weight, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	var touched []int32
	heap := pq.NewIndexedHeap(n)
	for ti, t := range targets {
		for _, v := range touched {
			dist[v] = graph.Inf
		}
		touched = touched[:0]
		heap.Reset()
		dist[t] = 0
		touched = append(touched, int32(t))
		heap.PushOrDecrease(int32(t), 0)
		for heap.Len() > 0 {
			u, du := heap.PopMin()
			buckets[u] = append(buckets[u], bucketEntry{target: int32(ti), d: du})
			for _, a := range ix.bwd(u) {
				nd := du + a.w
				if nd < dist[a.to] {
					if math.IsInf(dist[a.to], 1) {
						touched = append(touched, a.to)
					}
					dist[a.to] = nd
					heap.PushOrDecrease(a.to, nd)
				}
			}
		}
	}

	// Forward multi-source upward search.
	for _, v := range touched {
		dist[v] = graph.Inf
	}
	touched = touched[:0]
	heap.Reset()
	origin := make([]graph.Vertex, n) // seed that reached each vertex
	for _, s := range sources {
		if s.D < dist[s.V] {
			if math.IsInf(dist[s.V], 1) {
				touched = append(touched, int32(s.V))
			}
			dist[s.V] = s.D
			origin[s.V] = s.V
			heap.PushOrDecrease(int32(s.V), s.D)
		}
	}
	outD := make([]graph.Weight, len(targets))
	outO := make([]graph.Vertex, len(targets))
	for i := range outD {
		outD[i] = graph.Inf
		outO[i] = -1
	}
	for heap.Len() > 0 {
		u, du := heap.PopMin()
		for _, be := range buckets[u] {
			if c := du + be.d; c < outD[be.target] {
				outD[be.target] = c
				outO[be.target] = origin[u]
			}
		}
		for _, a := range ix.fwd(u) {
			nd := du + a.w
			if nd < dist[a.to] {
				if math.IsInf(dist[a.to], 1) {
					touched = append(touched, a.to)
				}
				dist[a.to] = nd
				origin[a.to] = origin[u]
				heap.PushOrDecrease(a.to, nd)
			}
		}
	}
	return outD, outO
}
