package ch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(20)))
	}
	return b.MustBuild()
}

func checkAllPairs(t *testing.T, g *graph.Graph) {
	t.Helper()
	ix := Build(g)
	s := dijkstra.New(g)
	for u := 0; u < g.NumVertices(); u++ {
		s.FromSource(graph.Vertex(u), false)
		for v := 0; v < g.NumVertices(); v++ {
			want := s.Dist(graph.Vertex(v))
			got := ix.Dist(graph.Vertex(u), graph.Vertex(v))
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("dis(%d,%d)=%v, want %v", u, v, got, want)
			}
		}
	}
}

func TestFigure1(t *testing.T) {
	checkAllPairs(t, graph.Figure1())
}

func TestRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		checkAllPairs(t, randomGraph(rng, 2+rng.Intn(25), 70))
	}
}

func TestGrids(t *testing.T) {
	checkAllPairs(t, gen.GridBuilder(gen.GridOptions{Rows: 6, Cols: 6, Seed: 2, Diagonals: true}).MustBuild())
	checkAllPairs(t, gen.GridBuilder(gen.GridOptions{Rows: 5, Cols: 7, Directed: true, Seed: 3}).MustBuild())
}

func TestDisconnected(t *testing.T) {
	g := graph.NewBuilder(4, true).AddEdge(0, 1, 2).AddEdge(2, 3, 2).MustBuild()
	ix := Build(g)
	if !math.IsInf(ix.Dist(0, 3), 1) {
		t.Fatal("expected +Inf")
	}
	if ix.Dist(0, 1) != 2 {
		t.Fatal("within-component wrong")
	}
}

func TestShortcutsCounted(t *testing.T) {
	// A path graph needs no shortcuts when contracted endpoint-inward,
	// but a star contracted center-first would; just verify the counter
	// is consistent (non-negative) and the hierarchy answers correctly.
	g := gen.GridBuilder(gen.GridOptions{Rows: 4, Cols: 4, Seed: 5}).MustBuild()
	ix := Build(g)
	if ix.Shortcuts < 0 {
		t.Fatal("negative shortcut count")
	}
	s := dijkstra.New(g)
	s.FromSource(0, false)
	for v := 0; v < g.NumVertices(); v++ {
		if ix.Dist(0, graph.Vertex(v)) != s.Dist(graph.Vertex(v)) {
			t.Fatalf("dis(0,%d) wrong", v)
		}
	}
}

func TestRanksArePermutation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(9)), 30, 90)
	ix := Build(g)
	seen := make([]bool, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		r := ix.Rank(graph.Vertex(v))
		if r < 0 || int(r) >= g.NumVertices() || seen[r] {
			t.Fatalf("bad rank %d for %d", r, v)
		}
		seen[r] = true
	}
}

func TestTableMatchesMultiSourceDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 5+rng.Intn(25), 80)
		ix := Build(g)
		n := g.NumVertices()
		var sources []Seed
		for i := 0; i < 1+rng.Intn(4); i++ {
			sources = append(sources, Seed{V: graph.Vertex(rng.Intn(n)), D: float64(rng.Intn(10))})
		}
		var targets []graph.Vertex
		for i := 0; i < 1+rng.Intn(5); i++ {
			targets = append(targets, graph.Vertex(rng.Intn(n)))
		}
		gotD, gotO := ix.Table(sources, targets)

		ms := dijkstra.New(g)
		seeds := make([]dijkstra.Seed, len(sources))
		for i, s := range sources {
			seeds[i] = dijkstra.Seed{V: s.V, D: s.D}
		}
		ms.MultiSource(seeds, false)
		for ti, tv := range targets {
			want := ms.Dist(tv)
			if gotD[ti] != want && !(math.IsInf(gotD[ti], 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d: table dist to %d = %v, want %v", trial, tv, gotD[ti], want)
			}
			if math.IsInf(want, 1) {
				if gotO[ti] != -1 {
					t.Fatalf("trial %d: origin for unreachable target", trial)
				}
				continue
			}
			// The origin must be a source whose seed+dis equals the min.
			s := dijkstra.New(g)
			found := false
			for _, src := range sources {
				if src.V == gotO[ti] {
					if src.D+s.ToTarget(src.V, tv) == want {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("trial %d: origin %d does not realize the optimum", trial, gotO[ti])
			}
		}
	}
}

// Property: CH distance equals Dijkstra distance on random pairs.
func TestDistQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(30), 90)
		ix := Build(g)
		s := dijkstra.New(g)
		for i := 0; i < 8; i++ {
			u := graph.Vertex(rng.Intn(g.NumVertices()))
			v := graph.Vertex(rng.Intn(g.NumVertices()))
			want := s.ToTarget(u, v)
			got := ix.Dist(u, v)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
