// Package gen generates the synthetic graphs and category assignments
// used by the experiment harness. The paper evaluates on four real road
// networks (CAL, NYC, COL, FLA) and the Google+ social graph (Table VII);
// those datasets are not available offline, so this package produces
// deterministic analogues that preserve the properties the evaluation
// depends on: sparse planar-like road topology vs. low-diameter
// unit-weight social topology, directedness, and the category-size knobs
// |Ci|, |C| and the Zipf skew factor f (Section V-A).
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// GridOptions configures a grid road network.
type GridOptions struct {
	Rows, Cols int
	// Directed produces two arcs per road segment with independently
	// drawn weights (asymmetric travel times, like COL/FLA); otherwise a
	// single undirected edge (symmetric distances, like CAL/NYC).
	Directed bool
	// MaxWeight is the upper bound (inclusive) of integer edge weights;
	// weights are uniform in [1, MaxWeight]. Defaults to 10.
	MaxWeight int
	// Diagonals adds some random diagonal shortcuts (1 per ~8 cells),
	// making the graph less regular, like a real road network.
	Diagonals bool
	Seed      int64
}

// GridBuilder returns a graph.Builder holding a Rows×Cols grid road
// network. Vertex (r, c) has index r*Cols + c. Categories can be added to
// the builder before calling Build.
func GridBuilder(opt GridOptions) *graph.Builder {
	if opt.MaxWeight <= 0 {
		opt.MaxWeight = 10
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	n := opt.Rows * opt.Cols
	b := graph.NewBuilder(n, opt.Directed)
	idx := func(r, c int) graph.Vertex { return graph.Vertex(r*opt.Cols + c) }
	w := func() graph.Weight { return graph.Weight(1 + rng.Intn(opt.MaxWeight)) }
	addRoad := func(u, v graph.Vertex) {
		if opt.Directed {
			b.AddEdge(u, v, w())
			b.AddEdge(v, u, w())
		} else {
			b.AddEdge(u, v, w())
		}
	}
	for r := 0; r < opt.Rows; r++ {
		for c := 0; c < opt.Cols; c++ {
			if c+1 < opt.Cols {
				addRoad(idx(r, c), idx(r, c+1))
			}
			if r+1 < opt.Rows {
				addRoad(idx(r, c), idx(r+1, c))
			}
			if opt.Diagonals && r+1 < opt.Rows && c+1 < opt.Cols && rng.Intn(8) == 0 {
				addRoad(idx(r, c), idx(r+1, c+1))
			}
		}
	}
	return b
}

// SmallWorldOptions configures a G+-style social graph: directed, all
// edge weights 1, low diameter.
type SmallWorldOptions struct {
	N int
	// OutDegree is the number of outgoing arcs attached per vertex
	// (preferential attachment), defaults to 8.
	OutDegree int
	Seed      int64
}

// SmallWorldBuilder returns a builder holding a preferential-attachment
// small-world graph with unit edge weights. Every vertex links forward to
// OutDegree earlier vertices chosen preferentially by degree, and each
// such link is reciprocated with probability 1/2 (social follow-back),
// which keeps the graph strongly connected enough for route queries.
func SmallWorldBuilder(opt SmallWorldOptions) *graph.Builder {
	if opt.OutDegree <= 0 {
		opt.OutDegree = 8
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	b := graph.NewBuilder(opt.N, true)
	// endpoints holds one entry per arc endpoint, so sampling uniformly
	// from it is degree-preferential.
	endpoints := make([]graph.Vertex, 0, 2*opt.N*opt.OutDegree)
	endpoints = append(endpoints, 0)
	for v := 1; v < opt.N; v++ {
		deg := opt.OutDegree
		if v < opt.OutDegree {
			deg = v
		}
		seen := make(map[graph.Vertex]bool, deg)
		for len(seen) < deg {
			var u graph.Vertex
			if rng.Intn(4) == 0 { // occasional uniform pick keeps diameter low
				u = graph.Vertex(rng.Intn(v))
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if u == graph.Vertex(v) || seen[u] {
				continue
			}
			seen[u] = true
			b.AddEdge(graph.Vertex(v), u, 1)
			endpoints = append(endpoints, u, graph.Vertex(v))
			if rng.Intn(2) == 0 {
				b.AddEdge(u, graph.Vertex(v), 1)
			}
		}
	}
	return b
}

// AssignUniformCategories assigns numCats categories of exactly catSize
// distinct vertices each, drawn uniformly from [0, n). A vertex may carry
// several categories. This matches the paper's uniform generator, which
// fixes |Ci| and assigns categories to vertices uniformly.
func AssignUniformCategories(b *graph.Builder, n, numCats, catSize int, seed int64) {
	if catSize > n {
		catSize = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := make([]graph.Vertex, n)
	for i := range perm {
		perm[i] = graph.Vertex(i)
	}
	b.EnsureCategories(numCats)
	for c := 0; c < numCats; c++ {
		// Partial Fisher-Yates: the first catSize entries become V_c.
		for i := 0; i < catSize; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
			b.AddCategory(perm[i], graph.Category(c))
		}
	}
}

// AssignZipfCategories assigns exactly one category to every vertex,
// sampling category c ∈ {1..numCats} with probability proportional to
// c^(-1/f). Larger f gives a *less* skewed distribution, matching the
// paper's description of its skew factor (Section V-A). It returns the
// resulting category sizes.
func AssignZipfCategories(b *graph.Builder, n, numCats int, f float64, seed int64) []int {
	if f < 1 {
		f = 1
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, numCats)
	var total float64
	for c := 0; c < numCats; c++ {
		weights[c] = math.Pow(float64(c+1), -1/f)
		total += weights[c]
	}
	// Cumulative distribution for inverse-transform sampling.
	cum := make([]float64, numCats)
	acc := 0.0
	for c := 0; c < numCats; c++ {
		acc += weights[c] / total
		cum[c] = acc
	}
	b.EnsureCategories(numCats)
	sizes := make([]int, numCats)
	for v := 0; v < n; v++ {
		u := rng.Float64()
		// Binary search the CDF.
		lo, hi := 0, numCats-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.AddCategory(graph.Vertex(v), graph.Category(lo))
		sizes[lo]++
	}
	return sizes
}

// Analogue names the five paper graphs this package can approximate.
type Analogue string

// The five graphs of Table VII.
const (
	CAL   Analogue = "CAL"
	NYC   Analogue = "NYC"
	COL   Analogue = "COL"
	FLA   Analogue = "FLA"
	GPlus Analogue = "G+"
)

// AllAnalogues lists the analogues in the paper's order.
var AllAnalogues = []Analogue{CAL, NYC, COL, FLA, GPlus}

// AnalogueOptions scales the synthetic datasets. Scale 1 is the default
// laptop-scale configuration; the paper's graphs are 10–40× larger, but
// the evaluation's relative claims depend on |Ci|, |C| and k rather than
// raw |V| (Lemma 3), which is what the harness verifies.
type AnalogueOptions struct {
	Scale   int // multiplies vertex counts, default 1
	NumCats int // categories |S|, default 24
	CatSize int // |Ci| per category, default 5% of |V| (capped)
	Seed    int64
}

func (o *AnalogueOptions) fill() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.NumCats <= 0 {
		o.NumCats = 24
	}
}

// BuildAnalogue generates the named dataset analogue.
//
//	CAL → 64×64 undirected grid, distance weights, 63 small categories
//	NYC → 96×96 undirected grid, distance weights, uniform categories
//	COL → 96×112 directed grid, travel-time weights, uniform categories
//	FLA → 112×128 directed grid, travel-time weights, uniform categories
//	G+  → 8192-vertex unit-weight small-world, uniform categories
func BuildAnalogue(a Analogue, opt AnalogueOptions) (*graph.Graph, error) {
	opt.fill()
	seed := opt.Seed + int64(len(a))*1001
	var b *graph.Builder
	var n int
	switch a {
	case CAL:
		r, c := dims(64, 64, opt.Scale)
		n = r * c
		b = GridBuilder(GridOptions{Rows: r, Cols: c, MaxWeight: 10, Diagonals: true, Seed: seed})
	case NYC:
		r, c := dims(96, 96, opt.Scale)
		n = r * c
		b = GridBuilder(GridOptions{Rows: r, Cols: c, MaxWeight: 10, Diagonals: true, Seed: seed})
	case COL:
		r, c := dims(96, 112, opt.Scale)
		n = r * c
		b = GridBuilder(GridOptions{Rows: r, Cols: c, Directed: true, MaxWeight: 12, Diagonals: true, Seed: seed})
	case FLA:
		r, c := dims(112, 128, opt.Scale)
		n = r * c
		b = GridBuilder(GridOptions{Rows: r, Cols: c, Directed: true, MaxWeight: 12, Diagonals: true, Seed: seed})
	case GPlus:
		n = 8192 * opt.Scale
		b = SmallWorldBuilder(SmallWorldOptions{N: n, OutDegree: 10, Seed: seed})
	default:
		return nil, fmt.Errorf("gen: unknown analogue %q", a)
	}
	numCats := opt.NumCats
	catSize := opt.CatSize
	if a == CAL {
		// CAL carries 63 real categories over ~69% of its vertices; keep
		// many small categories.
		numCats = 63
		if catSize <= 0 {
			catSize = n / 100
		}
	}
	if catSize <= 0 {
		catSize = n / 20
	}
	if catSize < 1 {
		catSize = 1
	}
	AssignUniformCategories(b, n, numCats, catSize, seed+7)
	return b.Build()
}

func dims(r, c, scale int) (int, int) {
	f := math.Sqrt(float64(scale))
	return int(float64(r) * f), int(float64(c) * f)
}
