package gen

import (
	"math"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

func TestGridShape(t *testing.T) {
	g := GridBuilder(GridOptions{Rows: 4, Cols: 5, Seed: 1}).MustBuild()
	if g.NumVertices() != 20 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// Undirected grid: 4*(5-1) + 5*(4-1) = 31 segments → 62 arcs.
	if g.NumEdges() != 62 {
		t.Fatalf("m=%d, want 62", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridDirectedAsymmetric(t *testing.T) {
	g := GridBuilder(GridOptions{Rows: 8, Cols: 8, Directed: true, Seed: 2}).MustBuild()
	if !g.Directed() {
		t.Fatal("expected directed")
	}
	// Both arcs of every segment exist.
	if g.NumEdges() != 2*(8*7+8*7) {
		t.Fatalf("m=%d", g.NumEdges())
	}
	// Some pair of opposite arcs has different weights.
	asym := false
	g.Edges(func(e graph.Edge) bool {
		for _, back := range g.Out(e.To) {
			if back.To == e.From && back.W != e.W {
				asym = true
				return false
			}
		}
		return true
	})
	if !asym {
		t.Fatal("expected at least one asymmetric pair")
	}
}

func TestGridConnectivity(t *testing.T) {
	for _, directed := range []bool{false, true} {
		g := GridBuilder(GridOptions{Rows: 10, Cols: 10, Directed: directed, Diagonals: true, Seed: 3}).MustBuild()
		d := dijkstra.AllDistances(g, 0, false)
		for v, dv := range d {
			if math.IsInf(dv, 1) {
				t.Fatalf("directed=%v: vertex %d unreachable", directed, v)
			}
		}
	}
}

func TestGridDeterministic(t *testing.T) {
	a := GridBuilder(GridOptions{Rows: 6, Cols: 6, Seed: 42}).MustBuild()
	b := GridBuilder(GridOptions{Rows: 6, Cols: 6, Seed: 42}).MustBuild()
	sum := func(g *graph.Graph) float64 { return g.TotalWeight() }
	if sum(a) != sum(b) {
		t.Fatal("same seed produced different graphs")
	}
	c := GridBuilder(GridOptions{Rows: 6, Cols: 6, Seed: 43}).MustBuild()
	if sum(a) == sum(c) {
		t.Fatal("different seeds produced identical weights (suspicious)")
	}
}

func TestSmallWorld(t *testing.T) {
	g := SmallWorldBuilder(SmallWorldOptions{N: 500, OutDegree: 6, Seed: 5}).MustBuild()
	if g.NumVertices() != 500 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// All weights are 1.
	g.Edges(func(e graph.Edge) bool {
		if e.W != 1 {
			t.Fatalf("weight %v != 1", e.W)
		}
		return true
	})
	// Low diameter from vertex 0 (hub side): max finite distance small.
	d := dijkstra.AllDistances(g, 0, false)
	reached, maxd := 0, 0.0
	for _, dv := range d {
		if !math.IsInf(dv, 1) {
			reached++
			if dv > maxd {
				maxd = dv
			}
		}
	}
	if reached < 450 {
		t.Fatalf("only %d/500 reachable", reached)
	}
	if maxd > 12 {
		t.Fatalf("diameter-ish %v too large for a small world", maxd)
	}
}

func TestAssignUniformCategories(t *testing.T) {
	b := GridBuilder(GridOptions{Rows: 10, Cols: 10, Seed: 1})
	AssignUniformCategories(b, 100, 5, 17, 9)
	g := b.MustBuild()
	if g.NumCategories() != 5 {
		t.Fatalf("numCats=%d", g.NumCategories())
	}
	for c := 0; c < 5; c++ {
		if got := g.CategorySize(graph.Category(c)); got != 17 {
			t.Fatalf("|C%d|=%d, want 17", c, got)
		}
		seen := map[graph.Vertex]bool{}
		for _, v := range g.VerticesOf(graph.Category(c)) {
			if seen[v] {
				t.Fatalf("category %d has duplicate vertex %d", c, v)
			}
			seen[v] = true
		}
	}
}

func TestAssignUniformCatSizeCapped(t *testing.T) {
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	AssignUniformCategories(b, 4, 2, 100, 3)
	g := b.MustBuild()
	for c := 0; c < 2; c++ {
		if g.CategorySize(graph.Category(c)) != 4 {
			t.Fatalf("|C%d|=%d, want 4", c, g.CategorySize(graph.Category(c)))
		}
	}
}

func TestAssignZipfCategories(t *testing.T) {
	b := GridBuilder(GridOptions{Rows: 40, Cols: 40, Seed: 1})
	sizes := AssignZipfCategories(b, 1600, 10, 1.2, 11)
	g := b.MustBuild()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 1600 {
		t.Fatalf("total=%d", total)
	}
	// Every vertex got exactly one category.
	for v := 0; v < 1600; v++ {
		if len(g.Categories(graph.Vertex(v))) != 1 {
			t.Fatalf("vertex %d has %d categories", v, len(g.Categories(graph.Vertex(v))))
		}
	}
	// Skew: first category clearly larger than last.
	if sizes[0] <= sizes[9] {
		t.Fatalf("no skew: sizes=%v", sizes)
	}
}

// Larger f must yield a less skewed distribution (paper Section V-A).
func TestZipfSkewMonotoneInF(t *testing.T) {
	ratio := func(f float64) float64 {
		b := graph.NewBuilder(20000, true)
		b.AddEdge(0, 1, 1)
		sizes := AssignZipfCategories(b, 20000, 20, f, 17)
		maxS, minS := 0, 1<<30
		for _, s := range sizes {
			if s > maxS {
				maxS = s
			}
			if s < minS {
				minS = s
			}
		}
		if minS == 0 {
			minS = 1
		}
		return float64(maxS) / float64(minS)
	}
	r12, r18 := ratio(1.2), ratio(1.8)
	if r12 <= r18 {
		t.Fatalf("skew(f=1.2)=%v should exceed skew(f=1.8)=%v", r12, r18)
	}
}

func TestBuildAnalogues(t *testing.T) {
	for _, a := range AllAnalogues {
		g, err := BuildAnalogue(a, AnalogueOptions{Seed: 1, NumCats: 8, CatSize: 50})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", a)
		}
		if g.NumCategories() == 0 {
			t.Fatalf("%s: no categories", a)
		}
		switch a {
		case COL, FLA, GPlus:
			if !g.Directed() {
				t.Fatalf("%s must be directed", a)
			}
		default:
			if g.Directed() {
				t.Fatalf("%s must be undirected", a)
			}
		}
	}
	if _, err := BuildAnalogue("XX", AnalogueOptions{}); err == nil {
		t.Fatal("unknown analogue must error")
	}
}
