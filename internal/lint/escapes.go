package lint

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The escapes gate: the hotpath analyzer bans what syntax can see, but
// whether a value reaches the heap is the compiler's call. The gate
// runs `go build -gcflags=-m`, keeps the "escapes to heap" / "moved to
// heap" lines that fall inside //kosr:hotpath functions, and compares
// them against a checked-in baseline. A new escape in a hot function
// fails the build until either the code stops allocating or the
// baseline is deliberately regenerated with -update.
//
// Baseline entries are function-relative —
//
//	pkgpath.(*T).method +12: x escapes to heap
//
// — so unrelated edits that shift absolute line numbers don't churn
// the file.

// EscapeEntries builds the current escape set for the module at dir:
// one normalized entry per compiler escape diagnostic inside a hotpath
// function of the packages matched by patterns.
func EscapeEntries(dir string, patterns ...string) ([]string, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	hot := HotPathFuncs(pkgs)
	if len(hot) == 0 {
		return nil, nil
	}

	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}

	var entries []string
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, lineNo, msg, ok := splitEscapeLine(line)
		if !ok {
			continue
		}
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, file)
		}
		for _, h := range hot {
			if h.File == abs && h.Start <= lineNo && lineNo <= h.End {
				entries = append(entries, fmt.Sprintf("%s +%d: %s", h.Name, lineNo-h.Start, msg))
				break
			}
		}
	}
	sort.Strings(entries)
	return entries, nil
}

// splitEscapeLine parses "file.go:12:34: msg" into its parts.
func splitEscapeLine(line string) (file string, lineNo int, msg string, ok bool) {
	parts := strings.SplitN(strings.TrimSpace(line), ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}

// CompareBaseline diffs the current entries against the baseline file
// content. Added entries are regressions; removed entries are stale
// baseline lines (an improvement — regenerate to lock it in).
func CompareBaseline(entries []string, baseline []byte) (added, removed []string) {
	base := map[string]bool{}
	for _, line := range strings.Split(string(baseline), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	cur := map[string]bool{}
	for _, e := range entries {
		cur[e] = true
		if !base[e] {
			added = append(added, e)
		}
	}
	for b := range base {
		if !cur[b] {
			removed = append(removed, b)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// FormatBaseline renders entries as baseline file content.
func FormatBaseline(entries []string) []byte {
	var b strings.Builder
	b.WriteString("# Heap escapes inside //kosr:hotpath functions, as reported by\n")
	b.WriteString("# `go build -gcflags=-m`. Regenerate with `go run ./cmd/kosrlint escapes -update`.\n")
	b.WriteString("# Entries are function-relative (+N = lines below the declaration).\n")
	for _, e := range entries {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// EscapeGate runs the full gate for the module at dir: compute entries,
// compare with the baseline at baselinePath (relative paths resolve
// against dir), and either report drift or (update) rewrite the
// baseline. It returns true when the gate passes.
func EscapeGate(dir, baselinePath string, update bool, w io.Writer, patterns ...string) (bool, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	entries, err := EscapeEntries(dir, patterns...)
	if err != nil {
		return false, err
	}
	if !filepath.IsAbs(baselinePath) {
		baselinePath = filepath.Join(dir, baselinePath)
	}
	if update {
		if err := os.WriteFile(baselinePath, FormatBaseline(entries), 0o644); err != nil {
			return false, err
		}
		fmt.Fprintf(w, "wrote %d escape entries to %s\n", len(entries), baselinePath)
		return true, nil
	}
	baseline, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, fmt.Errorf("read baseline (run with -update to create it): %v", err)
	}
	added, removed := CompareBaseline(entries, baseline)
	for _, a := range added {
		fmt.Fprintf(w, "NEW heap escape in hotpath function: %s\n", a)
	}
	for _, r := range removed {
		fmt.Fprintf(w, "note: baseline entry no longer observed (regenerate with -update): %s\n", r)
	}
	if len(added) > 0 {
		fmt.Fprintf(w, "escape gate: %d new escape(s) vs %s\n", len(added), baselinePath)
		return false, nil
	}
	fmt.Fprintf(w, "escape gate: ok (%d baseline escapes, %d stale)\n", len(entries), len(removed))
	return true, nil
}
