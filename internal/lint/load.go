package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns (./..., package paths, directories) from dir
// using the go command, type-checks every matched package against the
// export data of its dependencies, and returns the targets ready for
// analysis. Test files are not loaded: the invariants are enforced on
// production code, and tests exercise violations deliberately. Use
// CheckFiles (the `go vet -vettool` path) when the build system has
// already planned the file set.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := checkFiles(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one package from an explicit file
// list, resolving imports through lookup: importPath -> export-data
// file (with importMap translating source-level import paths to
// canonical ones first). This is the `go vet -vettool` entry: the vet
// config supplies the exact file and export sets.
func CheckFiles(importPath, dir string, goFiles []string, importMap map[string]string, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	exports := make(map[string]string, len(packageFile))
	for canonical, file := range packageFile {
		exports[canonical] = file
	}
	imp := &exportImporter{
		fset:      fset,
		exports:   exports,
		importMap: importMap,
		imported:  make(map[string]*types.Package),
	}
	return checkFiles(fset, imp, importPath, dir, goFiles)
}

func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, f := range goFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", f, err)
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
	}, nil
}

// exportImporter resolves imports from compiler export data, the same
// way the compiler itself does. The go command (via `go list -export`
// or a vet config) tells us where each dependency's export file is; the
// stdlib gc importer decodes it.
type exportImporter struct {
	fset      *token.FileSet
	exports   map[string]string // canonical import path -> export file
	importMap map[string]string // source import path -> canonical (vet mode)
	imported  map[string]*types.Package
	gc        types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	return &exportImporter{fset: fset, exports: exports, imported: make(map[string]*types.Package)}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if e.importMap != nil {
		if canonical, ok := e.importMap[path]; ok {
			path = canonical
		}
	}
	if p, ok := e.imported[path]; ok {
		return p, nil
	}
	if e.gc == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			f, ok := e.exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}
		e.gc = importer.ForCompiler(e.fset, "gc", lookup).(types.ImporterFrom)
	}
	p, err := e.gc.ImportFrom(path, "", 0)
	if err != nil {
		return nil, err
	}
	e.imported[path] = p
	return p, nil
}
