package lint

import (
	"go/ast"
	"go/token"
)

// ScratchPair flags acquisitions of pooled query state that can escape
// their function without a matching release. Three disciplines are
// enforced, all by name convention (the analyzer is project-specific;
// matching on names keeps it robust across refactors of the concrete
// types):
//
//  1. The result of AcquireScratch / acquireScratch must, within the
//     same function, either be released (ReleaseScratch / releaseScratch,
//     plainly or deferred) on every exit path, or have its ownership
//     transferred: returned, stored into a composite literal or struct
//     field, or passed to another call. An early `return` between the
//     acquire and the first release is the classic leak.
//
//  2. The result of the scratch-holding engine constructors
//     (newStandardEngine / newVariantEngine) must be protected before
//     any further method call on it: either the very next statements
//     install a deferred release guard (a defer whose body mentions
//     releaseScratch / ReleaseScratch / Close), or the value is
//     returned unused. Calling into the engine (seeding, running)
//     without the guard leaks the checked-out scratch when that call
//     panics — the unwind skips the release.
//
//  3. The result of NewSearcher / NewVariantSearcher must be Closed
//     (plainly or deferred) or ownership-transferred, like rule 1.
//
// Suppress a deliberate violation with
// //lint:ignore scratchpair <reason>.
var ScratchPair = &Analyzer{
	Name: "scratchpair",
	Doc: "check that pooled scratches and searchers acquired in a function are " +
		"released, closed or ownership-transferred on every exit path, " +
		"including panic unwind across engine calls",
	Run: runScratchPair,
}

// The name conventions rule 1-3 key on.
var (
	scratchAcquireNames = map[string]bool{"AcquireScratch": true, "acquireScratch": true}
	scratchReleaseNames = map[string]bool{"ReleaseScratch": true, "releaseScratch": true}
	holderCtorNames     = map[string]bool{"newStandardEngine": true, "newVariantEngine": true}
	searcherCtorNames   = map[string]bool{"NewSearcher": true, "NewVariantSearcher": true}
	searcherCloseNames  = map[string]bool{"Close": true}
)

func runScratchPair(pass *Pass) error {
	for _, fd := range funcsOf(pass.Files) {
		checkPairedResource(pass, fd, scratchAcquireNames, scratchReleaseNames, "scratch")
		checkPairedResource(pass, fd, searcherCtorNames, searcherCloseNames, "searcher")
		checkPanicWindow(pass, fd)
	}
	return nil
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// checkPairedResource enforces rule 1/3: within fd, results of acquire
// calls must be released (possibly via defer) or ownership-transferred,
// with no unprotected early return in between.
func checkPairedResource(pass *Pass, fd *ast.FuncDecl, acquires, releases map[string]bool, what string) {
	type acquisition struct {
		call  *ast.CallExpr
		names map[string]bool // variables bound to the result
	}
	var acqs []*acquisition

	// Pass A: find acquires and the variables their results bind to.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closures are separate scopes; keep rule local
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !acquires[calleeName(call)] {
				continue
			}
			acq := &acquisition{call: call, names: map[string]bool{}}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					acq.names[id.Name] = true
				}
			}
			acqs = append(acqs, acq)
		}
		return true
	})
	// Acquire calls used as bare expressions or nested arguments count
	// as immediately transferred (someone else owns the result); only
	// variable-bound results are tracked.
	if len(acqs) == 0 {
		return
	}

	for _, acq := range acqs {
		state := newPairState(acq.names, releases)
		walkAfter(fd.Body, acq.call.Pos(), state)
		if state.leakReturn != nil {
			pass.Reportf(state.leakReturn.Pos(),
				"%s acquired via %s is not released on this return path (release it, defer the release, or transfer ownership)",
				what, calleeName(acq.call))
		} else if !state.released && !state.transferred {
			pass.Reportf(acq.call.Pos(),
				"%s acquired via %s is never released, closed or ownership-transferred in this function",
				what, calleeName(acq.call))
		}
	}
}

// pairState tracks one acquisition while scanning the statements that
// follow it in source order.
type pairState struct {
	names        map[string]bool
	releases     map[string]bool
	released     bool // a release call (or deferred release) was seen
	deferred     bool // the release was a defer (covers all later paths)
	transferred  bool // ownership left the function
	leakReturn   ast.Node
	releaseNames map[string]bool
}

func newPairState(names, releases map[string]bool) *pairState {
	return &pairState{names: names, releases: releases, releaseNames: releases}
}

// usesTracked reports whether expr mentions one of the tracked
// variables.
func (st *pairState) usesTracked(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && st.names[id.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// returnsTracked reports whether a return result hands the tracked
// resource itself to the caller: the bare variable, or the variable
// embedded in a composite literal (possibly behind & and parens).
// `return s.Next()` merely uses the resource and does NOT transfer it.
func (st *pairState) returnsTracked(r ast.Expr) bool {
	switch e := r.(type) {
	case *ast.Ident:
		return st.names[e.Name]
	case *ast.ParenExpr:
		return st.returnsTracked(e.X)
	case *ast.UnaryExpr:
		return st.returnsTracked(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if st.returnsTracked(el) {
				return true
			}
		}
	}
	return false
}

// isRelease reports whether call releases a tracked variable: a
// release-named callee that either receives a tracked variable as an
// argument or is a method on one.
func (st *pairState) isRelease(call *ast.CallExpr) bool {
	if !st.releases[calleeName(call)] {
		return false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && st.usesTracked(sel.X) {
		return true
	}
	for _, arg := range call.Args {
		if st.usesTracked(arg) {
			return true
		}
	}
	return false
}

// walkAfter scans the function body in source order, only acting on
// nodes positioned after the acquisition.
func walkAfter(body *ast.BlockStmt, after token.Pos, st *pairState) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || st.deferred || st.transferred {
			return false
		}
		if n.End() <= after {
			return false // entirely before the acquire
		}
		switch nn := n.(type) {
		case *ast.DeferStmt:
			if nn.Pos() <= after {
				return true
			}
			// defer x.ReleaseScratch(...) or defer func() { ... release ... }()
			if st.isRelease(nn.Call) {
				st.released, st.deferred = true, true
				return false
			}
			if lit, ok := nn.Call.Fun.(*ast.FuncLit); ok {
				cover := false
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && st.isRelease(c) {
						cover = true
						return false
					}
					return true
				})
				if cover {
					st.released, st.deferred = true, true
					return false
				}
			}
		case *ast.CallExpr:
			if nn.Pos() <= after {
				return true
			}
			if st.isRelease(nn) {
				st.released = true
				return false
			}
			// A tracked variable passed to some other call transfers
			// ownership conservatively (e.g. pool.Put(s), wrap(s)).
			if _, isSel := nn.Fun.(*ast.SelectorExpr); isSel || nn.Fun != nil {
				for _, arg := range nn.Args {
					if st.usesTracked(arg) {
						st.transferred = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			if nn.Pos() <= after {
				return true
			}
			for _, r := range nn.Results {
				if st.returnsTracked(r) {
					st.transferred = true
					return false
				}
			}
			if !st.released && st.leakReturn == nil {
				st.leakReturn = nn
			}
		case *ast.AssignStmt:
			if nn.Pos() <= after {
				return true
			}
			// Storing the resource into a field or composite literal
			// transfers ownership (the holder is responsible now).
			for _, rhs := range nn.Rhs {
				if st.usesTracked(rhs) {
					if _, isIdent := nn.Lhs[0].(*ast.Ident); !isIdent || containsComposite(rhs, st) {
						st.transferred = true
						return false
					}
					if containsComposite(rhs, st) {
						st.transferred = true
						return false
					}
				}
			}
		case *ast.CompositeLit:
			if nn.Pos() <= after {
				return true
			}
			for _, el := range nn.Elts {
				if st.usesTracked(el) {
					st.transferred = true
					return false
				}
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

// containsComposite reports whether expr is (or contains) a composite
// literal mentioning a tracked variable.
func containsComposite(expr ast.Expr, st *pairState) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if cl, ok := n.(*ast.CompositeLit); ok {
			for _, el := range cl.Elts {
				if st.usesTracked(el) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// checkPanicWindow enforces rule 2: after binding the result of a
// scratch-holding constructor, no method may be called on it until a
// deferred release guard is installed — a panic inside such a call
// would unwind past the function and strand the checked-out scratch.
func checkPanicWindow(pass *Pass, fd *ast.FuncDecl) {
	// Find holder bindings: e, nn, err := newStandardEngine(...)
	type binding struct {
		name string
		pos  token.Pos
	}
	var bindings []binding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !holderCtorNames[calleeName(call)] {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				bindings = append(bindings, binding{name: id.Name, pos: as.End()})
			}
		}
		return true
	})

	for _, b := range bindings {
		guarded := false
		var offender *ast.CallExpr
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil || guarded || offender != nil {
				return false
			}
			if n.End() <= b.pos {
				// Skip anything before (and including) the binding, but
				// still descend: a block may span the binding.
				_, isBlockLike := n.(*ast.BlockStmt)
				return isBlockLike || n.Pos() <= b.pos
			}
			switch nn := n.(type) {
			case *ast.DeferStmt:
				if deferMentionsRelease(nn, b.name) {
					guarded = true
					return false
				}
			case *ast.CallExpr:
				if sel, ok := nn.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == b.name {
						offender = nn
						return false
					}
				}
			case *ast.FuncLit:
				return false
			}
			return true
		})
		if offender != nil {
			pass.Reportf(offender.Pos(),
				"method call on %s before a deferred release guard: a panic here leaks the checked-out scratch (install `defer`red releaseScratch/Close first)",
				b.name)
		}
	}
}

// deferMentionsRelease reports whether the defer releases or closes the
// named holder, directly or inside a closure body.
func deferMentionsRelease(d *ast.DeferStmt, name string) bool {
	mentions := func(call *ast.CallExpr) bool {
		nm := calleeName(call)
		if !scratchReleaseNames[nm] && !searcherCloseNames[nm] {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		found := false
		ast.Inspect(sel.X, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == name {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if mentions(d.Call) {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && mentions(c) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}
