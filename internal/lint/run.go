package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Result is the outcome of running analyzers over packages.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Positions carries each diagnostic's resolved file position,
	// parallel to Diagnostics.
	Positions []string
	// Suppressed counts findings silenced by //lint:ignore directives.
	Suppressed int
}

// Run applies every analyzer to every package and resolves
// //lint:ignore suppressions. Findings in *_test.go files are dropped:
// tests exercise invariant violations deliberately.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg)
		// Malformed directives are findings themselves, regardless of
		// which analyzers run.
		for _, bad := range ig.malformed {
			pos := pkg.Fset.Position(bad.pos)
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Pos: bad.pos, Analyzer: "lintdirective",
				Message: bad.msg,
			})
			res.Positions = append(res.Positions, pos.String())
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if strings.HasSuffix(pos.Filename, "_test.go") {
					return
				}
				if ig.suppressed(a.Name, pos.Filename, pos.Line) {
					res.Suppressed++
					return
				}
				res.Diagnostics = append(res.Diagnostics, d)
				res.Positions = append(res.Positions, pos.String())
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Sort(byPosition{res})
	return res, nil
}

type byPosition struct{ r *Result }

func (b byPosition) Len() int { return len(b.r.Diagnostics) }
func (b byPosition) Less(i, j int) bool {
	if b.r.Positions[i] != b.r.Positions[j] {
		return b.r.Positions[i] < b.r.Positions[j]
	}
	return b.r.Diagnostics[i].Message < b.r.Diagnostics[j].Message
}
func (b byPosition) Swap(i, j int) {
	b.r.Diagnostics[i], b.r.Diagnostics[j] = b.r.Diagnostics[j], b.r.Diagnostics[i]
	b.r.Positions[i], b.r.Positions[j] = b.r.Positions[j], b.r.Positions[i]
}

// ignoreIndex resolves which (analyzer, file, line) triples are
// silenced by lint directives.
type ignoreIndex struct {
	// line maps file -> line -> analyzer names silenced on that line.
	line map[string]map[int][]string
	// file maps file -> analyzer names silenced for the whole file.
	file      map[string][]string
	malformed []malformedDirective
}

type malformedDirective struct {
	pos token.Pos
	msg string
}

func (ig *ignoreIndex) suppressed(analyzer, file string, line int) bool {
	for _, a := range ig.file[file] {
		if a == analyzer {
			return true
		}
	}
	for _, l := range []int{line, line - 1} {
		for _, a := range ig.line[file][l] {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores scans every comment of the package for
// //lint:ignore and //lint:file-ignore directives.
func collectIgnores(pkg *Package) *ignoreIndex {
	ig := &ignoreIndex{
		line: make(map[string]map[int][]string),
		file: make(map[string][]string),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, isFile := strings.CutPrefix(c.Text, "//lint:file-ignore ")
				if !isFile {
					var isLine bool
					text, isLine = strings.CutPrefix(c.Text, "//lint:ignore ")
					if !isLine {
						if c.Text == "//lint:ignore" || c.Text == "//lint:file-ignore" {
							ig.malformed = append(ig.malformed, malformedDirective{
								pos: c.Pos(),
								msg: "lint directive needs an analyzer name and a reason",
							})
						}
						continue
					}
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, malformedDirective{
						pos: c.Pos(),
						msg: fmt.Sprintf("lint directive %q needs a reason after the analyzer name", c.Text),
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					if isFile {
						ig.file[pos.Filename] = append(ig.file[pos.Filename], name)
					} else {
						if ig.line[pos.Filename] == nil {
							ig.line[pos.Filename] = make(map[int][]string)
						}
						ig.line[pos.Filename][pos.Line] = append(ig.line[pos.Filename][pos.Line], name)
					}
				}
			}
		}
	}
	return ig
}

// funcsOf yields every function declaration of the package with a body.
func funcsOf(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}
