package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backtick-quoted regexes of a `// want` comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// runFixture loads the named fixture packages under testdata/src, runs
// a single analyzer, and checks the findings against `// want` comments
// (each a backtick-quoted regex on the offending line). wantSuppressed
// asserts how many findings //lint:ignore directives silenced.
func runFixture(t *testing.T, a *Analyzer, wantSuppressed int, dirs ...string) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./testdata/src/" + d
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", dirs, err)
	}
	res, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type expectation struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var expects []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for i, d := range res.Diagnostics {
		file, line := splitPosition(t, res.Positions[i])
		found := false
		for _, e := range expects {
			if !e.matched && e.file == file && e.line == line && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected %s finding at %s: %s", d.Analyzer, res.Positions[i], d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("missing finding at %s:%d matching %q", e.file, e.line, e.re)
		}
	}
	if res.Suppressed != wantSuppressed {
		t.Errorf("suppressed = %d, want %d", res.Suppressed, wantSuppressed)
	}
}

func splitPosition(t *testing.T, pos string) (string, int) {
	t.Helper()
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		t.Fatalf("unparsable position %q", pos)
	}
	var line int
	if _, err := fmt.Sscanf(parts[1], "%d", &line); err != nil {
		t.Fatalf("unparsable position %q: %v", pos, err)
	}
	return parts[0], line
}

func TestScratchPairFixture(t *testing.T) {
	runFixture(t, ScratchPair, 1, "scratchpair")
}

func TestEpochStampFixture(t *testing.T) {
	runFixture(t, EpochStamp, 1, "epochstamp")
}

func TestUnsafeGateFixture(t *testing.T) {
	runFixture(t, UnsafeGate, 0, "unsafegate", "flat")
}

func TestHotPathFixture(t *testing.T) {
	runFixture(t, HotPath, 1, "hotpath")
}

func TestCtxFirstFixture(t *testing.T) {
	runFixture(t, CtxFirst, 1, "ctxfirst")
}

// TestMalformedDirective checks that a lint directive without a reason
// is itself reported, whichever analyzer runs.
func TestMalformedDirective(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/directive")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := Run(pkgs, []*Analyzer{CtxFirst})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Analyzer == "lintdirective" && strings.Contains(d.Message, "reason") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a lintdirective finding, got %+v", res.Diagnostics)
	}
}

// TestSuppressionRequiresName checks that an ignore directive for a
// different analyzer does not silence a finding.
func TestSuppressionRequiresName(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/directive")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := Run(pkgs, []*Analyzer{HotPath})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var hot int
	for _, d := range res.Diagnostics {
		if d.Analyzer == "hotpath" {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("hotpath findings = %d, want 1 (wrong-name directive must not suppress)", hot)
	}
}
