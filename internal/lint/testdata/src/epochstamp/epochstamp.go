// Package epochstamp is a lint fixture: a generation-stamped slot table
// exercising the stamp-before-read rule.
package epochstamp

// slot is the stamped shape the analyzer recognises: a small struct
// with an unexported epoch field.
type slot struct {
	val   int
	epoch uint32
}

// table deliberately has more than four fields so it does not itself
// count as a stamped slot.
type table struct {
	slots []slot
	cur   uint32
	a, b  int
	c     int
}

// goodGuarded compares the stamp before touching the payload.
func goodGuarded(t *table, i int) int {
	sl := t.slots[i]
	if sl.epoch != t.cur {
		return -1
	}
	return sl.val
}

// goodStampWrite rewrites payload and stamp together; writes are not
// reads and need no guard.
func goodStampWrite(t *table, i, v int) {
	t.slots[i].val = v
	t.slots[i].epoch = t.cur
}

// badUnguarded reads the payload with no stamp comparison anywhere in
// the function: a stale slot from a previous generation leaks through.
func badUnguarded(t *table, i int) int {
	return t.slots[i].val // want `read of val on epoch-stamped slot without a stamp comparison`
}

// badCopyThenRead copies the slot but still never checks the stamp.
func badCopyThenRead(t *table, i int) int {
	sl := t.slots[i]
	return sl.val // want `read of val on epoch-stamped slot without a stamp comparison`
}

// suppressedDrain models the journal-drain path that deliberately reads
// every live slot regardless of stamp.
func suppressedDrain(t *table) int {
	sum := 0
	for i := range t.slots {
		//lint:ignore epochstamp drain path touches every slot by design
		sum += t.slots[i].val
	}
	return sum
}
