// Package flat is a lint fixture standing in for internal/flat: this
// file is named cast.go inside a directory named flat, so unsafe
// reinterpretation is allowed here — but non-byte casts must still sit
// behind a layout gate.
package flat

import "unsafe"

// zeroCopyWords is the layout gate; in the real package its initializer
// probes alignment and byte order.
var zeroCopyWords = true

var hostLittleEndian = probeEndian()

func probeEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// gatedCast is the sanctioned pattern: the gate dominates the cast and
// exotic layouts take the decode fallback.
func gatedCast(b []byte) []uint32 {
	if zeroCopyWords && hostLittleEndian {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	return decodeWords(b)
}

// byteView carries no layout assumptions; byte-element casts need no
// gate.
func byteView(p *byte, n int) []byte {
	return unsafe.Slice(p, n)
}

// ungatedCast skips the gate: flagged even inside the allowed file.
func ungatedCast(b []byte) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4) // want `ungated non-byte unsafe.Slice cast`
}

func decodeWords(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		o := i * 4
		out[i] = uint32(b[o]) | uint32(b[o+1])<<8 | uint32(b[o+2])<<16 | uint32(b[o+3])<<24
	}
	return out
}
