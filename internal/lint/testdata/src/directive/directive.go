// Package directive is a lint fixture for the directive syntax itself:
// a reason-less ignore is malformed, and an ignore naming the wrong
// analyzer suppresses nothing.
package directive

func consume(v any) { _ = v }

//lint:ignore ctxfirst
func missingReason() {}

//kosr:hotpath
func wrongName(x int) {
	//lint:ignore ctxfirst wrong analyzer name, hotpath finding survives
	consume(x)
}
