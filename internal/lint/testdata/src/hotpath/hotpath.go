// Package hotpath is a lint fixture: the //kosr:hotpath directive bans
// allocation-prone constructs in per-result code.
package hotpath

import "fmt"

type sink interface{ accept(int) }

func consume(v any)      { _ = v }
func consumePtr(p *int)  { _ = p }
func apply(f func() int) { _ = f() }

// coldEverything is unmarked: the same constructs draw no findings.
func coldEverything(x int) string {
	m := map[int]int{x: x}
	_ = m
	consume(x)
	return fmt.Sprintf("%d", x)
}

//kosr:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `fmt.Sprintf in //kosr:hotpath function hotFmt`
}

//kosr:hotpath
func hotMapLit(x int) int {
	m := map[int]int{x: x} // want `map literal in //kosr:hotpath function hotMapLit`
	return m[x]
}

//kosr:hotpath
func hotMakeMap(n int) int {
	m := make(map[int]int, n) // want `map allocation in //kosr:hotpath function hotMakeMap`
	return len(m)
}

//kosr:hotpath
func hotCapture(x int) {
	apply(func() int { return x }) // want `closure capturing x in //kosr:hotpath function hotCapture`
}

//kosr:hotpath
func hotFreeClosure() {
	apply(func() int { return 42 })
}

//kosr:hotpath
func hotBoxing(x int) {
	consume(x) // want `interface boxing in //kosr:hotpath function hotBoxing`
}

//kosr:hotpath
func hotPointerArg(x int) {
	consumePtr(&x)
}

//kosr:hotpath
func hotSuppressed(x int) {
	//lint:ignore hotpath fixture demonstrates the suppression syntax
	consume(x)
}
