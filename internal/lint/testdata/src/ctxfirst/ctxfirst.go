// Package ctxfirst is a lint fixture: context placement and root-minting
// rules for library code.
package ctxfirst

import "context"

type store struct{}

// GoodFirst takes the context first.
func GoodFirst(ctx context.Context, key string) error {
	return ctx.Err()
}

// goodMethodFirst applies to unexported methods too.
func (s *store) goodMethodFirst(ctx context.Context, n int) error {
	return ctx.Err()
}

// goodNoCtx has no context at all.
func goodNoCtx(n int) int { return n }

// BadSecond buries the context behind another parameter.
func BadSecond(key string, ctx context.Context) error { // want `context.Context is parameter 2 of BadSecond`
	return ctx.Err()
}

// badMethodLast buries it even deeper.
func (s *store) badMethodLast(n int, retries int, ctx context.Context) error { // want `context.Context is parameter 3 of badMethodLast`
	return ctx.Err()
}

// badRoot mints a root context in library code.
func badRoot(s *store) error {
	ctx := context.Background() // want `context.Background\(\) in library code`
	return ctx.Err()
}

// badTODO is no better.
func badTODO(s *store) error {
	ctx := context.TODO() // want `context.TODO\(\) in library code`
	return ctx.Err()
}

// suppressedRoot shows the escape hatch for deliberate compatibility
// wrappers.
func suppressedRoot() error {
	//lint:ignore ctxfirst fixture demonstrates the suppression syntax
	ctx := context.Background()
	return ctx.Err()
}
