// Package scratchpair is a lint fixture: stubbed pool types exercising
// the acquire/release pairing rules. The analyzer matches on names, so
// the stubs only need the right shapes.
package scratchpair

type scratch struct{ n int }

type provider struct{}

func (p *provider) AcquireScratch(n int) *scratch { return &scratch{n: n} }
func (p *provider) ReleaseScratch(s *scratch)     {}

type engine struct{ s *scratch }

func newStandardEngine(p *provider, n int) *engine {
	return &engine{s: p.AcquireScratch(n)}
}

func (e *engine) seed() int         { return e.s.n }
func (e *engine) releaseScratch()   {}
func (e *engine) run() (int, error) { return e.seed(), nil }
func (e *engine) String() string    { return "engine" }
func NewSearcher(p *provider) *searcher {
	return &searcher{}
}

type searcher struct{}

func (s *searcher) Next() bool { return false }
func (s *searcher) Close()     {}

// goodDeferred releases via defer: every path is covered.
func goodDeferred(p *provider, n int) int {
	s := p.AcquireScratch(n)
	defer p.ReleaseScratch(s)
	if n < 0 {
		return -1
	}
	return s.n
}

// goodClosureDefer releases inside a deferred closure.
func goodClosureDefer(p *provider, n int) int {
	s := p.AcquireScratch(n)
	defer func() {
		p.ReleaseScratch(s)
	}()
	return s.n
}

// goodTransferReturn hands the scratch to the caller.
func goodTransferReturn(p *provider, n int) *scratch {
	s := p.AcquireScratch(n)
	return s
}

// goodTransferStruct stores the scratch into a holder.
func goodTransferStruct(p *provider, n int) *engine {
	s := p.AcquireScratch(n)
	return &engine{s: s}
}

// badEarlyReturn leaks on the error path: the return before the
// release slips out with the scratch still checked out.
func badEarlyReturn(p *provider, n int) int {
	s := p.AcquireScratch(n)
	if n < 0 {
		return -1 // want `scratch acquired via AcquireScratch is not released on this return path`
	}
	p.ReleaseScratch(s)
	return 0
}

// badNeverReleased never releases at all.
func badNeverReleased(p *provider, n int) {
	s := p.AcquireScratch(n) // want `scratch acquired via AcquireScratch is never released`
	_ = s.n
}

// goodGuardedEngine installs the deferred guard before calling into
// the engine, so a panic inside seed unwinds through the release.
func goodGuardedEngine(p *provider, n int) (out int) {
	e := newStandardEngine(p, n)
	done := false
	defer func() {
		if !done {
			e.releaseScratch()
		}
	}()
	out = e.seed()
	done = true
	e.releaseScratch()
	return out
}

// badPanicWindow calls into the engine before any guard: a panic in
// seed strands the scratch.
func badPanicWindow(p *provider, n int) int {
	e := newStandardEngine(p, n)
	v := e.seed() // want `method call on e before a deferred release guard`
	e.releaseScratch()
	return v
}

// goodSearcher closes via defer.
func goodSearcher(p *provider) bool {
	sr := NewSearcher(p)
	defer sr.Close()
	return sr.Next()
}

// badSearcher never closes; returning a value derived from the
// searcher is not a transfer.
func badSearcher(p *provider) bool {
	sr := NewSearcher(p)
	return sr.Next() // want `searcher acquired via NewSearcher is not released on this return path`
}

// suppressedLeak shows the escape hatch: the directive must name the
// analyzer and give a reason.
func suppressedLeak(p *provider, n int) {
	//lint:ignore scratchpair fixture demonstrates the suppression syntax
	s := p.AcquireScratch(n)
	_ = s.n
}
