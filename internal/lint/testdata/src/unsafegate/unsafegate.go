// Package unsafegate is a lint fixture: unsafe reinterpretation outside
// the allowed internal/flat files.
package unsafegate

import (
	"reflect"
	"syscall"
	"unsafe"
)

type record struct {
	a uint32
	b uint32
}

// sizeArith is fine everywhere: Sizeof/Alignof/Offsetof are
// compile-time arithmetic.
func sizeArith() uintptr {
	var r record
	return unsafe.Sizeof(r) + unsafe.Alignof(r) + unsafe.Offsetof(r.b)
}

// badCast reinterprets bytes outside the flat package.
func badCast(b []byte) []uint32 {
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4) // want `unsafe.Slice outside` `unsafe.Pointer outside`
}

// badHeader uses the deprecated header type outside flat.
func badHeader() {
	var h reflect.SliceHeader // want `reflect.SliceHeader outside`
	_ = h
}

// badMmap maps memory outside the flat store.
func badMmap() error {
	_, err := syscall.Mmap(-1, 0, 4096, syscall.PROT_READ, syscall.MAP_PRIVATE|syscall.MAP_ANON) // want `syscall.Mmap outside`
	return err
}
