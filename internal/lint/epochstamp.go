package lint

import (
	"go/ast"
	"go/types"
)

// EpochStamp guards the generation-stamped dense tables: slot structs
// carrying an unexported `epoch` field next to a payload field are only
// valid while the slot's stamp equals the owning scratch's current
// epoch. Reading the payload without comparing stamps in the same
// function resurrects state from a previous query.
//
// The analyzer recognises a "stamped slot type" structurally: a struct
// with at most four fields, one of which is an unexported field named
// `epoch`. Any selector read of a non-epoch field through such a type
// is flagged unless the enclosing function also contains at least one
// comparison (== or !=) whose operand is an `.epoch` selector.
//
// Suppress a deliberate unguarded read (e.g. the release path that
// drains journals wholesale) with //lint:ignore epochstamp <reason>.
var EpochStamp = &Analyzer{
	Name: "epochstamp",
	Doc: "check that payload reads of epoch-stamped slot structs happen in " +
		"functions that compare the slot stamp against the current epoch",
	Run: runEpochStamp,
}

func runEpochStamp(pass *Pass) error {
	for _, fd := range funcsOf(pass.Files) {
		checkEpochReads(pass, fd)
	}
	return nil
}

// isStampedSlot reports whether t is (or points to) a small struct with
// an unexported `epoch` field — the project's generation-stamp idiom.
func isStampedSlot(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok || st.NumFields() > 4 {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "epoch" && !f.Exported() {
			return true
		}
	}
	return false
}

// checkEpochReads flags payload selector reads of stamped slots in
// functions without any `.epoch` comparison.
func checkEpochReads(pass *Pass, fd *ast.FuncDecl) {
	// First: does the function compare stamps anywhere?
	hasGuard := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op.String() != "==" && be.Op.String() != "!=") {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if sel, ok := side.(*ast.SelectorExpr); ok && sel.Sel.Name == "epoch" {
				hasGuard = true
				return false
			}
		}
		return true
	})
	if hasGuard {
		return
	}

	// No guard: any payload read of a stamped slot type is a finding.
	// Writes (assignment LHS) are fine — stamping a slot rewrites both
	// fields together.
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			markWrites(lhs, writes)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name == "epoch" || writes[sel] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !isStampedSlot(tv.Type) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"read of %s on epoch-stamped slot without a stamp comparison in this function (guard with `sl.epoch != s.epoch` or equivalent)",
			sel.Sel.Name)
		return true
	})
}

// markWrites records the selector expressions appearing as assignment
// targets (including inside index expressions on the path).
func markWrites(lhs ast.Expr, writes map[*ast.SelectorExpr]bool) {
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		writes[sel] = true
	}
}
