package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFirst keeps the API surface cancellable: exported functions and
// methods that take a context.Context must take it as the first
// parameter, and library code must never mint its own root context —
// context.Background() and context.TODO() belong to main packages and
// tests only. A search that cannot be cancelled holds a snapshot pin
// and a scratch for its whole runtime; a buried context is how that
// happens.
//
// Two rules:
//
//  1. In every function signature (exported or not — a misplaced ctx
//     in a helper propagates outward), a context.Context parameter
//     must be the first parameter.
//
//  2. Calls to context.Background() / context.TODO() are flagged in
//     library packages. Packages named main are exempt, as are
//     *_test.go files (dropped by the runner globally).
//
// Suppress with //lint:ignore ctxfirst <reason> — the deprecated
// compatibility wrappers do this deliberately.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "require context.Context as the first parameter and ban " +
		"context.Background/TODO in library code",
	Run: runCtxFirst,
}

func runCtxFirst(pass *Pass) error {
	for _, fd := range funcsOf(pass.Files) {
		checkCtxPosition(pass, fd)
	}
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "context" {
				return true
			}
			if obj, ok := pass.TypesInfo.Uses[pkg]; ok {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			pass.Reportf(call.Pos(),
				"context.%s() in library code: accept a context.Context from the caller instead of minting a root",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

// checkCtxPosition flags signatures where a context.Context parameter
// is not first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	// Flatten the parameter list: (a, b context.Context) counts b too.
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) {
			if idx != 0 {
				pass.Reportf(field.Pos(),
					"context.Context is parameter %d of %s; it must come first",
					idx+1, fd.Name.Name)
			}
			return // only the first ctx parameter matters
		}
		idx += n
	}
}

// isContextType reports whether the type expression denotes
// context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.String() == "context.Context"
	}
	// Fallback on syntax if type info is missing.
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name == "context" && sel.Sel.Name == "Context"
		}
	}
	return strings.HasSuffix(types.ExprString(e), "context.Context")
}
