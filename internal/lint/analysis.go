// Package lint is a suite of project-specific static analyzers that
// machine-check the engine's hand-written invariants: pooled scratches
// must be released on every path, epoch-stamped dense tables must be
// stamp-checked before reads, unsafe zero-copy casts stay behind the
// layout gates in internal/flat, //kosr:hotpath functions stay free of
// allocation-prone constructs, and the API surface stays context-first.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer / Pass / Diagnostic) but is built on the standard
// library only — go/ast, go/types and the gc export-data importer — so
// the module keeps zero third-party dependencies. If x/tools ever
// becomes available, each analyzer ports mechanically.
//
// Suppression follows the staticcheck convention: a finding is silenced
// by `//lint:ignore <analyzer> <reason>` on the offending line or the
// line directly above it, or `//lint:file-ignore <analyzer> <reason>`
// anywhere in the file. The reason is mandatory; a bare directive is
// itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by kosrlint -list.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// A Pass is one analyzer applied to one package: the parsed syntax,
// the type information, and the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Position resolves the diagnostic's file position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
