package lint

// All returns every analyzer in the suite, in stable order. cmd/kosrlint
// registers exactly this set; the meta-test in cmd/kosrlint asserts the
// names stay in sync with the documentation.
func All() []*Analyzer {
	return []*Analyzer{
		ScratchPair,
		EpochStamp,
		UnsafeGate,
		HotPath,
		CtxFirst,
	}
}
