package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// UnsafeGate fences the zero-copy machinery: unsafe pointer
// reinterpretation and mmap syscalls are only allowed in
// internal/flat/cast.go and internal/flat/mmap_*.go, and inside cast.go
// every non-byte reinterpreting cast must be dominated by one of the
// layout-check gates (an `if` on a zeroCopy* / hostLittleEndian
// variable) so a platform with exotic alignment or byte order falls
// back to the decoding path instead of reading garbage.
//
// Three rules:
//
//  1. Outside the allowed files, any use of unsafe.Pointer /
//     unsafe.Slice / unsafe.String / reflect.SliceHeader /
//     reflect.StringHeader, and any syscall.Mmap / syscall.Munmap call,
//     is flagged. unsafe.Sizeof / Alignof / Offsetof are pure
//     compile-time arithmetic and stay allowed everywhere.
//
//  2. Inside the allowed files, unsafe.Slice calls whose element type
//     is not byte must appear lexically inside an `if` whose condition
//     mentions an identifier starting with "zeroCopy" or named
//     "hostLittleEndian".
//
//  3. The gate variables themselves may only be declared in the
//     allowed files (so nobody smuggles a `zeroCopyFoo := true` gate
//     into new code to satisfy rule 2 elsewhere — rule 1 already fires
//     there, this just keeps the message precise).
//
// Suppress with //lint:ignore unsafegate <reason> — expected only for
// deliberate, reviewed escapes.
var UnsafeGate = &Analyzer{
	Name: "unsafegate",
	Doc: "restrict unsafe reinterpretation and mmap to internal/flat's cast/mmap " +
		"files and require layout-check gates to dominate every non-byte cast",
	Run: runUnsafeGate,
}

// unsafeAllowedFile reports whether filename may contain unsafe
// reinterpretation: internal/flat's cast.go or mmap_*.go.
func unsafeAllowedFile(filename string) bool {
	base := filepath.Base(filename)
	dir := filepath.Base(filepath.Dir(filename))
	if dir != "flat" {
		return false
	}
	return base == "cast.go" || strings.HasPrefix(base, "mmap_")
}

// pureUnsafe are the compile-time-only unsafe operations allowed
// everywhere.
var pureUnsafe = map[string]bool{"Sizeof": true, "Alignof": true, "Offsetof": true}

func runUnsafeGate(pass *Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		allowed := unsafeAllowedFile(filename)
		if allowed {
			checkGatedCasts(pass, f)
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch pkg.Name {
			case "unsafe":
				if !pureUnsafe[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"unsafe.%s outside internal/flat/{cast.go,mmap_*.go}: zero-copy reinterpretation belongs behind the layout gates there",
						sel.Sel.Name)
				}
			case "reflect":
				if sel.Sel.Name == "SliceHeader" || sel.Sel.Name == "StringHeader" {
					pass.Reportf(sel.Pos(),
						"reflect.%s outside internal/flat/{cast.go,mmap_*.go}: header surgery belongs behind the layout gates there",
						sel.Sel.Name)
				}
			case "syscall":
				if sel.Sel.Name == "Mmap" || sel.Sel.Name == "Munmap" {
					pass.Reportf(sel.Pos(),
						"syscall.%s outside internal/flat/{cast.go,mmap_*.go}: mapping is the flat store's job",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}

// checkGatedCasts enforces rule 2 inside an allowed file: every
// unsafe.Slice with a non-byte element type must sit inside an if whose
// condition mentions a gate identifier.
func checkGatedCasts(pass *Pass, f *ast.File) {
	// Collect the position ranges of gated if-bodies.
	type posRange struct{ lo, hi token.Pos }
	var gated []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condMentionsGate(ifs.Cond) {
			gated = append(gated, posRange{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	inGate := func(p token.Pos) bool {
		for _, r := range gated {
			if r.lo <= p && p < r.hi {
				return true
			}
		}
		return false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Slice" {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "unsafe" {
			return true
		}
		if len(call.Args) == 0 || isByteElem(pass, call.Args[0]) {
			return true
		}
		// The gate may dominate the cast directly, or the cast may sit
		// in a var initializer that probes layout itself (e.g. the
		// hostLittleEndian probe) — the latter is a gate definition, not
		// a gated use, and lives outside any function.
		if inGate(call.Pos()) || !insideFunc(f, call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(),
			"ungated non-byte unsafe.Slice cast: wrap it in `if zeroCopy...` / `if hostLittleEndian` so exotic layouts fall back to decoding")
		return true
	})
}

// condMentionsGate reports whether the condition references a layout
// gate: an identifier with prefix "zeroCopy" or named "hostLittleEndian".
func condMentionsGate(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if strings.HasPrefix(id.Name, "zeroCopy") || id.Name == "hostLittleEndian" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isByteElem reports whether the first argument of unsafe.Slice is a
// *byte-typed expression — byte views carry no layout assumptions.
func isByteElem(pass *Pass, arg ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil {
		if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
			if b, ok := ptr.Elem().Underlying().(*types.Basic); ok {
				return b.Kind() == types.Uint8
			}
		}
		return false
	}
	// Fallback on syntax if type info is missing: (*byte)(...) casts.
	star, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	paren, ok := star.Fun.(*ast.ParenExpr)
	if !ok {
		return false
	}
	ptr, ok := paren.X.(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := ptr.X.(*ast.Ident)
	return ok && id.Name == "byte"
}

// insideFunc reports whether pos falls inside any function body of f —
// package-level var initializers are not.
func insideFunc(f *ast.File, pos token.Pos) bool {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			if fd.Body.Pos() <= pos && pos < fd.Body.End() {
				return true
			}
		}
	}
	return false
}
