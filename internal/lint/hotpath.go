package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPath enforces the `//kosr:hotpath` directive: functions so marked
// sit on the per-result search path (heap sift, label merge, posting
// advance) where a single allocation or dynamic dispatch multiplies by
// millions of iterations. Four constructs are banned in their bodies:
//
//   - fmt.* calls — even fmt.Errorf on an error path forces its
//     operands to escape; build errors at the call boundary instead.
//   - map literals and make(map...) — map allocation plus hashing has
//     no place per-result; index with dense slices keyed by vertex id.
//   - closures that capture variables — an escaping closure boxes its
//     captures; closures without captures are allowed (they compile to
//     plain funcs).
//   - implicit interface{}/any boxing: passing a concrete non-pointer
//     value where an interface parameter is expected allocates. This
//     includes variadic ...any sinks.
//
// The directive attaches to the function declaration's doc comment.
// The complementary escape-analysis gate (`kosrlint escapes`) catches
// what syntax can't: it compares `go build -gcflags=-m` output for
// hotpath functions against a checked-in baseline.
//
// Suppress with //lint:ignore hotpath <reason> on the offending line.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "ban fmt calls, map allocation, capturing closures and interface " +
		"boxing inside //kosr:hotpath functions",
	Run: runHotPath,
}

// hotPathDirective is the comment that opts a function in.
const hotPathDirective = "//kosr:hotpath"

// isHotPath reports whether the function declaration carries the
// directive in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotPathDirective) {
			return true
		}
	}
	return false
}

func runHotPath(pass *Pass) error {
	for _, fd := range funcsOf(pass.Files) {
		if !isHotPath(fd) {
			continue
		}
		checkHotBody(pass, fd)
	}
	return nil
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	// Parameter and local names declared in this function, for closure
	// capture detection.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok {
				if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" {
					if obj, ok := pass.TypesInfo.Uses[pkg]; ok {
						if _, isPkg := obj.(*types.PkgName); !isPkg {
							return true // a local variable named fmt; unlikely but honest
						}
					}
					pass.Reportf(nn.Pos(),
						"fmt.%s in //kosr:hotpath function %s: fmt forces operands to escape; construct messages at the call boundary",
						sel.Sel.Name, fd.Name.Name)
					return true
				}
			}
			// make(map[...]...)
			if id, ok := nn.Fun.(*ast.Ident); ok && id.Name == "make" && len(nn.Args) > 0 {
				if _, isMap := nn.Args[0].(*ast.MapType); isMap {
					pass.Reportf(nn.Pos(),
						"map allocation in //kosr:hotpath function %s: use dense slices keyed by vertex id",
						fd.Name.Name)
					return true
				}
			}
			checkInterfaceBoxing(pass, fd, nn)
		case *ast.CompositeLit:
			if _, isMap := nn.Type.(*ast.MapType); isMap {
				pass.Reportf(nn.Pos(),
					"map literal in //kosr:hotpath function %s: use dense slices keyed by vertex id",
					fd.Name.Name)
			}
		case *ast.FuncLit:
			if caps := closureCaptures(pass, fd, nn); len(caps) > 0 {
				pass.Reportf(nn.Pos(),
					"closure capturing %s in //kosr:hotpath function %s: captures box onto the heap; pass state explicitly",
					strings.Join(caps, ", "), fd.Name.Name)
			}
			return false // don't re-analyze the closure body against fd
		}
		return true
	})
}

// checkInterfaceBoxing flags arguments whose static type is a concrete
// non-pointer type passed into an interface-typed parameter.
func checkInterfaceBoxing(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	// Conversions (T(x)) and builtin calls have no Signature; skip.
	for i, arg := range call.Args {
		var paramType types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				paramType = sl.Elem()
			}
		} else if i < sig.Params().Len() {
			paramType = sig.Params().At(i).Type()
		}
		if paramType == nil {
			continue
		}
		if _, isIface := paramType.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		if _, argIsIface := at.Type.Underlying().(*types.Interface); argIsIface {
			continue // interface-to-interface: no new box
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the iface word without boxing
		}
		if at.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(),
			"interface boxing in //kosr:hotpath function %s: %s argument converts to %s and may allocate",
			fd.Name.Name, at.Type.String(), paramType.String())
	}
}

// closureCaptures returns the names of identifiers used inside lit that
// resolve to objects declared in fd outside the literal — i.e. true
// captures.
func closureCaptures(pass *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var caps []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" || seen[id.Name] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured iff declared inside fd but outside the literal.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			seen[id.Name] = true
			caps = append(caps, id.Name)
		}
		return true
	})
	return caps
}

// A HotFunc locates one //kosr:hotpath function for the escapes gate.
type HotFunc struct {
	Name  string // pkgpath.Func or pkgpath.(*Recv).Method
	File  string // absolute path
	Start int    // first line of the declaration
	End   int    // last line of the body
}

// HotPathFuncs lists every //kosr:hotpath function in pkgs with its
// source range. The escapes gate uses the ranges to scope
// `go build -gcflags=-m` output to hot functions only.
func HotPathFuncs(pkgs []*Package) []HotFunc {
	var out []HotFunc
	for _, pkg := range pkgs {
		for _, fd := range funcsOf(pkg.Files) {
			if !isHotPath(fd) {
				continue
			}
			name := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				recv := recvTypeName(fd.Recv.List[0].Type)
				if recv != "" {
					name = "(" + recv + ")." + name
				}
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			out = append(out, HotFunc{
				Name:  pkg.ImportPath + "." + name,
				File:  start.Filename,
				Start: start.Line,
				End:   end.Line,
			})
		}
	}
	return out
}

// recvTypeName renders a receiver type expression ("*Scratch" -> "*Scratch").
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}
