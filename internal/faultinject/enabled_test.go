//go:build faultinject

package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestEnabledSpecEffects(t *testing.T) {
	defer Reset()
	if !Enabled() {
		t.Fatal("Enabled()=false under the faultinject tag")
	}
	boom := errors.New("boom")

	// Count caps the number of fires; Fired counts them.
	Set("pt", Spec{Prob: 1, Count: 2, Err: boom})
	if err := Error("pt"); !errors.Is(err, boom) {
		t.Fatalf("first fire: %v", err)
	}
	if err := Error("pt"); !errors.Is(err, boom) {
		t.Fatalf("second fire: %v", err)
	}
	if err := Error("pt"); err != nil {
		t.Fatalf("count-capped point still fires: %v", err)
	}
	if n := Fired("pt"); n != 2 {
		t.Fatalf("Fired=%d, want 2", n)
	}

	// Re-arming with Set resets the fired counter and the cap.
	Set("pt", Spec{Prob: 1, Err: boom})
	if n := Fired("pt"); n != 0 {
		t.Fatalf("Fired after re-Set=%d, want 0", n)
	}
	if err := Error("pt"); !errors.Is(err, boom) {
		t.Fatal("re-armed point must fire")
	}
	Clear("pt")
	if err := Error("pt"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}

	// Prob 0 never fires.
	Set("never", Spec{Prob: 0, Err: boom})
	for i := 0; i < 100; i++ {
		if Error("never") != nil {
			t.Fatal("Prob 0 point fired")
		}
	}
	if n := Fired("never"); n != 0 {
		t.Fatalf("Prob 0 Fired=%d", n)
	}

	Set("sleepy", Spec{Prob: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	Sleep("sleepy")
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Sleep slept only %v", d)
	}

	Set("skewed", Spec{Prob: 1, Skew: 250 * time.Millisecond})
	if s := Skew("skewed"); s != 250*time.Millisecond {
		t.Fatalf("Skew=%v", s)
	}

	// An unarmed point is inert in every dimension.
	if err := Error("unarmed"); err != nil {
		t.Fatalf("unarmed Error=%v", err)
	}
	Panic("unarmed")
	if s := Skew("unarmed"); s != 0 {
		t.Fatalf("unarmed Skew=%v", s)
	}

	Set("bomb", Spec{Prob: 1, Panic: "kaboom"})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed Panic did not panic")
			}
			if msg, _ := r.(string); msg != "faultinject: kaboom" {
				t.Fatalf("panic value=%v", r)
			}
		}()
		Panic("bomb")
	}()

	Set("gone", Spec{Prob: 1, Err: boom})
	Reset()
	if err := Error("gone"); err != nil {
		t.Fatalf("point survived Reset: %v", err)
	}
}

func TestEnabledProbabilisticFiring(t *testing.T) {
	defer Reset()
	Set("half", Spec{Prob: 0.5, Err: errors.New("x")})
	fired := 0
	for i := 0; i < 1000; i++ {
		if Error("half") != nil {
			fired++
		}
	}
	// The per-point RNG is seeded deterministically, so this window is
	// stable run to run; it just guards against 0%/100% regressions.
	if fired < 350 || fired > 650 {
		t.Fatalf("Prob 0.5 fired %d/1000 times", fired)
	}
	if n := Fired("half"); int(n) != fired {
		t.Fatalf("Fired=%d, observed %d", n, fired)
	}
}
