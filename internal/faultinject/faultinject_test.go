package faultinject

import (
	"errors"
	"testing"
	"time"
)

// Without the faultinject build tag every hook must be a no-op even for
// armed points: Set is a stub, so production binaries cannot be made to
// misbehave by accident.
func TestDisabledHooksAreInert(t *testing.T) {
	if Enabled() {
		t.Skip("built with -tags faultinject")
	}
	Set(SlowWorker, Spec{Prob: 1, Delay: time.Hour})
	Set(FailApply, Spec{Prob: 1, Err: errors.New("boom")})
	Set(PanicCompute, Spec{Prob: 1, Panic: "boom"})
	Set(SkewDeadline, Spec{Prob: 1, Skew: time.Hour})
	defer Reset()

	start := time.Now()
	Sleep(SlowWorker)
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("Sleep slept %v in a no-op build", d)
	}
	if err := Error(FailApply); err != nil {
		t.Fatalf("Error returned %v in a no-op build", err)
	}
	Panic(PanicCompute) // must not panic
	if s := Skew(SkewDeadline); s != 0 {
		t.Fatalf("Skew returned %v in a no-op build", s)
	}
	if n := Fired(SlowWorker); n != 0 {
		t.Fatalf("Fired returned %d in a no-op build", n)
	}
	Clear(SlowWorker)
}

// The disabled hooks sit on the query hot path (worker loop, stream
// writer, deadline math), so they must not allocate.
func TestDisabledHooksZeroAlloc(t *testing.T) {
	if Enabled() {
		t.Skip("built with -tags faultinject")
	}
	n := testing.AllocsPerRun(1000, func() {
		Sleep(SlowWorker)
		if Error(FailApply) != nil {
			t.Fatal("unexpected injected error")
		}
		Panic(PanicCompute)
		if Skew(SkewDeadline) != 0 {
			t.Fatal("unexpected injected skew")
		}
	})
	if n != 0 {
		t.Fatalf("disabled hooks allocate %v per run, want 0", n)
	}
}
