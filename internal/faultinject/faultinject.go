// Package faultinject provides named fault-injection points for the
// serving tier's chaos tests: a worker can be slowed, a computation
// made to panic, a stream writer stalled, an index update failed, and a
// deadline skewed — all from a central schedule a test flips at run
// time.
//
// The package has two implementations selected by the `faultinject`
// build tag. Without the tag (every production build) the hooks are
// empty functions over no package state: they inline to nothing, so an
// injection point on a hot path costs zero allocations and no
// measurable time. With `-tags faultinject` the hooks consult a
// mutable registry of Specs keyed by point name.
//
// Injection points are plain strings; the constants below name every
// point the serving tier defines. Call sites pick the effect helper
// matching their failure mode: Sleep for latency, Error for returned
// failures, Panic for crashes, Skew for deadline distortion.
package faultinject

import "time"

// The injection points wired into the serving tier.
const (
	// SlowWorker delays a pool worker before it runs its task
	// (effect: Sleep, in the server's worker loop).
	SlowWorker = "slow-worker"
	// PanicCompute panics inside the worker-side query computation
	// (effect: Panic, in the server's runQuery body).
	PanicCompute = "panic-compute"
	// StallStreamWriter delays a /v1/stream NDJSON line between arming
	// the write deadline and writing, so long stalls trip the deadline
	// (effect: Sleep).
	StallStreamWriter = "stall-stream-writer"
	// FailApply fails a System.Apply batch after validation, as a
	// transient (retryable) error (effect: Error).
	FailApply = "fail-apply"
	// SkewDeadline distorts the remaining-deadline computation of the
	// admission queue and the worker pickup path, simulating clock skew
	// (effect: Skew; the returned duration is subtracted from the
	// remaining budget).
	SkewDeadline = "skew-deadline"
)

// Spec configures one injection point. A zero field disables the
// corresponding effect, so one Spec can serve any effect helper.
type Spec struct {
	// Prob is the probability each evaluation fires: <= 0 never fires,
	// >= 1 always fires.
	Prob float64
	// Count caps how many times the point fires in total (<= 0 means
	// unlimited).
	Count int64
	// Delay is slept by Sleep when the point fires.
	Delay time.Duration
	// Err is returned by Error when the point fires.
	Err error
	// Panic, when non-empty, is the panic message raised by Panic.
	Panic string
	// Skew is returned by Skew when the point fires.
	Skew time.Duration
}
