//go:build !faultinject

package faultinject

import "time"

// Enabled reports whether fault injection was compiled in.
func Enabled() bool { return false }

// Set installs spec on an injection point. No-op in this build.
func Set(string, Spec) {}

// Clear removes an injection point's spec. No-op in this build.
func Clear(string) {}

// Reset removes every installed spec. No-op in this build.
func Reset() {}

// Fired reports how many times a point fired. Always zero here.
func Fired(string) uint64 { return 0 }

// Sleep delays the caller when the named point fires. No-op here; the
// empty body inlines away, so hot-path call sites cost nothing.
func Sleep(string) {}

// Error returns the named point's injected error, or nil.
func Error(string) error { return nil }

// Panic raises the named point's injected panic, if any.
func Panic(string) {}

// Skew returns the named point's injected deadline skew.
func Skew(string) time.Duration { return 0 }
