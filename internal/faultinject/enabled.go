//go:build faultinject

package faultinject

import (
	"math/rand"
	"sync"
	"time"
)

// Enabled reports whether fault injection was compiled in.
func Enabled() bool { return true }

type state struct {
	spec      Spec
	rng       *rand.Rand
	fired     uint64
	remaining int64 // counts down when spec.Count > 0
}

var (
	mu     sync.Mutex
	points = map[string]*state{}
	seed   int64
)

// Set installs spec on the named injection point, replacing any prior
// spec and resetting its fired count. Each point gets its own
// deterministic RNG stream so chaos runs are reproducible modulo
// scheduling.
func Set(point string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	seed++
	points[point] = &state{
		spec:      spec,
		rng:       rand.New(rand.NewSource(0x5eed + seed)),
		remaining: spec.Count,
	}
}

// Clear removes the named injection point's spec.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
}

// Reset removes every installed spec.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*state{}
}

// Fired reports how many times the named point has fired since its
// spec was installed.
func Fired(point string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	if st, ok := points[point]; ok {
		return st.fired
	}
	return 0
}

// arm decides whether the point fires this evaluation and, if so,
// returns its spec.
func arm(point string) (Spec, bool) {
	mu.Lock()
	defer mu.Unlock()
	st, ok := points[point]
	if !ok {
		return Spec{}, false
	}
	if st.spec.Prob < 1 && (st.spec.Prob <= 0 || st.rng.Float64() >= st.spec.Prob) {
		return Spec{}, false
	}
	if st.spec.Count > 0 {
		if st.remaining <= 0 {
			return Spec{}, false
		}
		st.remaining--
	}
	st.fired++
	return st.spec, true
}

// Sleep delays the caller by the point's Delay when it fires.
func Sleep(point string) {
	if spec, ok := arm(point); ok && spec.Delay > 0 {
		time.Sleep(spec.Delay)
	}
}

// Error returns the point's Err when it fires, else nil.
func Error(point string) error {
	if spec, ok := arm(point); ok {
		return spec.Err
	}
	return nil
}

// Panic raises the point's panic message when it fires.
func Panic(point string) {
	if spec, ok := arm(point); ok && spec.Panic != "" {
		panic("faultinject: " + spec.Panic)
	}
}

// Skew returns the point's deadline skew when it fires, else zero.
func Skew(point string) time.Duration {
	if spec, ok := arm(point); ok {
		return spec.Skew
	}
	return 0
}
