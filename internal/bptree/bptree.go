// Package bptree implements a disk-resident B+ tree with int64 keys and
// int64 values, used by the disk-based query answering mode of Section
// IV-C to locate the index section of each category (and the label record
// of each vertex) with O(log n) page reads.
//
// The tree is page-based: page 0 is the header, every other page is a
// leaf or an internal node. Leaves are chained for ordered range scans.
// Pages are written through an os.File via ReadAt/WriteAt and cached in
// memory; Sync flushes the file.
package bptree

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

const (
	// PageSize is the on-disk page size.
	PageSize = 4096

	pageHeader   = 0
	pageLeaf     = 1
	pageInternal = 2

	// Each leaf entry is key+value (16 bytes); layout:
	// [type u8][nkeys u16][next i64][entries ...]. One slot of slack is
	// reserved: a leaf briefly holds cap+1 entries before splitting.
	leafCap = (PageSize-1-2-8)/16 - 1
	// Internal layout: [type u8][nkeys u16][child0 i64][key i64 child i64]...
	// with the same one-slot slack.
	internalCap = (PageSize-1-2-8)/16 - 2
)

var magic = [8]byte{'K', 'O', 'S', 'R', 'B', 'P', 'T', '1'}

// Tree is a disk-resident B+ tree. It is not safe for concurrent use.
type Tree struct {
	f     *os.File
	pages map[int64][]byte // page cache (write-through on Sync/Close)
	dirty map[int64]bool
	count int64 // number of pages including header
	root  int64 // root page id
	size  int64 // number of stored keys
}

// Create creates (or truncates) a B+ tree file.
func Create(path string) (*Tree, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("bptree: create: %w", err)
	}
	t := &Tree{f: f, pages: make(map[int64][]byte), dirty: make(map[int64]bool)}
	rootID := t.alloc()
	root := t.page(rootID)
	root[0] = pageLeaf
	putU16(root[1:], 0)
	putI64(root[3:], -1) // no next leaf
	t.markDirty(rootID)
	t.root = rootID
	if err := t.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

// Open opens an existing B+ tree file (read-write) and validates its
// header.
func Open(path string) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("bptree: open: %w", err)
	}
	t := &Tree{f: f, pages: make(map[int64][]byte), dirty: make(map[int64]bool)}
	hdr := make([]byte, PageSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("bptree: reading header: %w", err)
	}
	var m [8]byte
	copy(m[:], hdr)
	if m != magic {
		f.Close()
		return nil, fmt.Errorf("bptree: bad magic %q", m)
	}
	t.root = i64(hdr[8:])
	t.count = i64(hdr[16:])
	t.size = i64(hdr[24:])
	if t.root <= 0 || t.root >= t.count {
		f.Close()
		return nil, fmt.Errorf("bptree: corrupt header (root=%d count=%d)", t.root, t.count)
	}
	t.pages[0] = hdr
	return t, nil
}

// Close syncs and closes the underlying file.
func (t *Tree) Close() error {
	if err := t.Sync(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// Len returns the number of stored keys.
func (t *Tree) Len() int64 { return t.size }

// Sync writes dirty pages and the header to disk.
func (t *Tree) Sync() error {
	hdr := t.page(0)
	copy(hdr, magic[:])
	putI64(hdr[8:], t.root)
	putI64(hdr[16:], t.count)
	putI64(hdr[24:], t.size)
	t.markDirty(0)
	for id := range t.dirty {
		if _, err := t.f.WriteAt(t.pages[id], id*PageSize); err != nil {
			return fmt.Errorf("bptree: writing page %d: %w", id, err)
		}
	}
	t.dirty = make(map[int64]bool)
	return nil
}

func (t *Tree) alloc() int64 {
	if t.count == 0 {
		t.count = 1 // reserve header
		t.pages[0] = make([]byte, PageSize)
		t.dirty[0] = true
	}
	id := t.count
	t.count++
	t.pages[id] = make([]byte, PageSize)
	t.dirty[id] = true
	return id
}

func (t *Tree) page(id int64) []byte {
	if p, ok := t.pages[id]; ok {
		return p
	}
	p := make([]byte, PageSize)
	if _, err := t.f.ReadAt(p, id*PageSize); err != nil {
		// Reads of pages that were never written mean corruption; return
		// a zero page, which downstream validation reports.
		return p
	}
	t.pages[id] = p
	return p
}

func (t *Tree) markDirty(id int64) { t.dirty[id] = true }

func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func putI64(b []byte, v int64)  { binary.LittleEndian.PutUint64(b, uint64(v)) }
func u16(b []byte) uint16       { return binary.LittleEndian.Uint16(b) }
func i64(b []byte) int64        { return int64(binary.LittleEndian.Uint64(b)) }

// leaf accessors
func leafN(p []byte) int            { return int(u16(p[1:])) }
func leafSetN(p []byte, n int)      { putU16(p[1:], uint16(n)) }
func leafNext(p []byte) int64       { return i64(p[3:]) }
func leafSetNext(p []byte, v int64) { putI64(p[3:], v) }
func leafKey(p []byte, i int) int64 {
	return i64(p[11+16*i:])
}
func leafVal(p []byte, i int) int64 {
	return i64(p[11+16*i+8:])
}
func leafSet(p []byte, i int, k, v int64) {
	putI64(p[11+16*i:], k)
	putI64(p[11+16*i+8:], v)
}

// internal accessors: child0 at offset 3, then (key, child) pairs.
func intN(p []byte) int       { return int(u16(p[1:])) }
func intSetN(p []byte, n int) { putU16(p[1:], uint16(n)) }
func intChild(p []byte, i int) int64 {
	if i == 0 {
		return i64(p[3:])
	}
	return i64(p[3+8+16*(i-1)+8:])
}
func intSetChild(p []byte, i int, c int64) {
	if i == 0 {
		putI64(p[3:], c)
		return
	}
	putI64(p[3+8+16*(i-1)+8:], c)
}
func intKey(p []byte, i int) int64 { return i64(p[3+8+16*i:]) }
func intSetKey(p []byte, i int, k int64) {
	putI64(p[3+8+16*i:], k)
}

// Get returns the value stored for key.
func (t *Tree) Get(key int64) (int64, bool, error) {
	id := t.root
	for {
		p := t.page(id)
		switch p[0] {
		case pageLeaf:
			n := leafN(p)
			i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= key })
			if i < n && leafKey(p, i) == key {
				return leafVal(p, i), true, nil
			}
			return 0, false, nil
		case pageInternal:
			n := intN(p)
			i := sort.Search(n, func(i int) bool { return key < intKey(p, i) })
			id = intChild(p, i)
			if id <= 0 || id >= t.count {
				return 0, false, fmt.Errorf("bptree: corrupt child pointer %d", id)
			}
		default:
			return 0, false, fmt.Errorf("bptree: corrupt page type %d at page %d", p[0], id)
		}
	}
}

// Insert stores (key, value), overwriting an existing key.
func (t *Tree) Insert(key, val int64) error {
	sepKey, newChild, err := t.insert(t.root, key, val)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: create a new internal root.
		rootID := t.alloc()
		p := t.page(rootID)
		p[0] = pageInternal
		intSetN(p, 1)
		intSetChild(p, 0, t.root)
		intSetKey(p, 0, sepKey)
		intSetChild(p, 1, newChild)
		t.markDirty(rootID)
		t.root = rootID
	}
	return nil
}

// insert descends to the leaf; on split it returns (separator, new page).
func (t *Tree) insert(id int64, key, val int64) (int64, int64, error) {
	p := t.page(id)
	switch p[0] {
	case pageLeaf:
		n := leafN(p)
		i := sort.Search(n, func(i int) bool { return leafKey(p, i) >= key })
		if i < n && leafKey(p, i) == key {
			leafSet(p, i, key, val)
			t.markDirty(id)
			return 0, 0, nil
		}
		// Shift and insert.
		for j := n; j > i; j-- {
			leafSet(p, j, leafKey(p, j-1), leafVal(p, j-1))
		}
		leafSet(p, i, key, val)
		leafSetN(p, n+1)
		t.size++
		t.markDirty(id)
		if n+1 <= leafCap {
			return 0, 0, nil
		}
		// Split the leaf.
		newID := t.alloc()
		np := t.page(newID)
		p = t.page(id) // alloc may grow the cache; re-fetch
		np[0] = pageLeaf
		total := leafN(p)
		half := total / 2
		for j := half; j < total; j++ {
			leafSet(np, j-half, leafKey(p, j), leafVal(p, j))
		}
		leafSetN(np, total-half)
		leafSetN(p, half)
		leafSetNext(np, leafNext(p))
		leafSetNext(p, newID)
		t.markDirty(id)
		t.markDirty(newID)
		return leafKey(np, 0), newID, nil
	case pageInternal:
		n := intN(p)
		i := sort.Search(n, func(i int) bool { return key < intKey(p, i) })
		child := intChild(p, i)
		if child <= 0 || child >= t.count {
			return 0, 0, fmt.Errorf("bptree: corrupt child pointer %d", child)
		}
		sepKey, newChild, err := t.insert(child, key, val)
		if err != nil || newChild == 0 {
			return 0, 0, err
		}
		p = t.page(id)
		n = intN(p)
		// Insert (sepKey, newChild) after position i.
		for j := n; j > i; j-- {
			intSetKey(p, j, intKey(p, j-1))
			intSetChild(p, j+1, intChild(p, j))
		}
		intSetKey(p, i, sepKey)
		intSetChild(p, i+1, newChild)
		intSetN(p, n+1)
		t.markDirty(id)
		if n+1 <= internalCap {
			return 0, 0, nil
		}
		// Split the internal node: middle key moves up.
		newID := t.alloc()
		np := t.page(newID)
		p = t.page(id)
		np[0] = pageInternal
		total := intN(p)
		mid := total / 2
		upKey := intKey(p, mid)
		right := total - mid - 1
		intSetChild(np, 0, intChild(p, mid+1))
		for j := 0; j < right; j++ {
			intSetKey(np, j, intKey(p, mid+1+j))
			intSetChild(np, j+1, intChild(p, mid+2+j))
		}
		intSetN(np, right)
		intSetN(p, mid)
		t.markDirty(id)
		t.markDirty(newID)
		return upKey, newID, nil
	default:
		return 0, 0, fmt.Errorf("bptree: corrupt page type %d at page %d", p[0], id)
	}
}

// Range calls fn for every (key, value) with from ≤ key ≤ to in ascending
// key order; fn returning false stops the scan.
func (t *Tree) Range(from, to int64, fn func(key, val int64) bool) error {
	id := t.root
	for {
		p := t.page(id)
		if p[0] == pageLeaf {
			break
		}
		if p[0] != pageInternal {
			return fmt.Errorf("bptree: corrupt page type %d at page %d", p[0], id)
		}
		n := intN(p)
		i := sort.Search(n, func(i int) bool { return from < intKey(p, i) })
		id = intChild(p, i)
		if id <= 0 || id >= t.count {
			return fmt.Errorf("bptree: corrupt child pointer %d", id)
		}
	}
	for id != -1 {
		p := t.page(id)
		if p[0] != pageLeaf {
			return fmt.Errorf("bptree: corrupt leaf chain at page %d", id)
		}
		n := leafN(p)
		for i := 0; i < n; i++ {
			k := leafKey(p, i)
			if k < from {
				continue
			}
			if k > to {
				return nil
			}
			if !fn(k, leafVal(p, i)) {
				return nil
			}
		}
		id = leafNext(p)
	}
	return nil
}
