package bptree

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	tr, err := Create(filepath.Join(b.TempDir(), "b.bpt"))
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Int63n(1<<30), int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr, err := Create(filepath.Join(b.TempDir(), "b.bpt"))
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tr.Get(rng.Int63n(n)); err != nil || !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkRangeScan(b *testing.B) {
	tr, err := Create(filepath.Join(b.TempDir(), "b.bpt"))
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		tr.Range(0, n, func(k, v int64) bool {
			count++
			return true
		})
		if count != n {
			b.Fatal("short scan")
		}
	}
}
