package bptree

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newTree(t *testing.T) (*Tree, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.bpt")
	tr, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return tr, path
}

func TestBasicInsertGet(t *testing.T) {
	tr, _ := newTree(t)
	defer tr.Close()
	pairs := map[int64]int64{1: 10, 5: 50, 3: 30, -7: 70, 0: 1}
	for k, v := range pairs {
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range pairs {
		got, ok, err := tr.Get(k)
		if err != nil || !ok || got != v {
			t.Fatalf("Get(%d)=(%d,%v,%v), want %d", k, got, ok, err, v)
		}
	}
	if _, ok, _ := tr.Get(42); ok {
		t.Fatal("found missing key")
	}
	if tr.Len() != int64(len(pairs)) {
		t.Fatalf("len=%d", tr.Len())
	}
}

func TestOverwrite(t *testing.T) {
	tr, _ := newTree(t)
	defer tr.Close()
	tr.Insert(9, 1)
	tr.Insert(9, 2)
	v, ok, _ := tr.Get(9)
	if !ok || v != 2 {
		t.Fatalf("got %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("len=%d", tr.Len())
	}
}

func TestManyKeysWithSplits(t *testing.T) {
	tr, _ := newTree(t)
	defer tr.Close()
	const n = 20000 // forces multiple levels of splits
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(n)
	for _, k := range perm {
		if err := tr.Insert(int64(k), int64(k*2)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len=%d", tr.Len())
	}
	for k := 0; k < n; k++ {
		v, ok, err := tr.Get(int64(k))
		if err != nil || !ok || v != int64(k*2) {
			t.Fatalf("Get(%d)=(%d,%v,%v)", k, v, ok, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr, _ := newTree(t)
	defer tr.Close()
	for k := int64(0); k < 1000; k += 2 {
		tr.Insert(k, k)
	}
	var got []int64
	err := tr.Range(100, 120, func(k, v int64) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("got=%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got=%v", got)
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 1<<40, func(k, v int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("count=%d", count)
	}
}

func TestPersistence(t *testing.T) {
	tr, path := newTree(t)
	const n = 5000
	for k := 0; k < n; k++ {
		tr.Insert(int64(k*3), int64(k))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != n {
		t.Fatalf("len=%d", tr2.Len())
	}
	for k := 0; k < n; k++ {
		v, ok, err := tr2.Get(int64(k * 3))
		if err != nil || !ok || v != int64(k) {
			t.Fatalf("Get(%d)=(%d,%v,%v)", k*3, v, ok, err)
		}
	}
	// Insert after reopen must work too.
	if err := tr2.Insert(999999, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tr2.Get(999999); !ok || v != 7 {
		t.Fatal("insert after reopen failed")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.bpt")); err == nil {
		t.Fatal("want error for missing file")
	}
	// Corrupt magic.
	bad := filepath.Join(dir, "bad.bpt")
	if err := os.WriteFile(bad, make([]byte, PageSize), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("want error for bad magic")
	}
	// Truncated file.
	trunc := filepath.Join(dir, "trunc.bpt")
	if err := os.WriteFile(trunc, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc); err == nil {
		t.Fatal("want error for truncated file")
	}
}

// Property: the tree agrees with a map oracle and iterates in sorted
// order, for random workloads.
func TestAgainstMapOracleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		path := filepath.Join(t.TempDir(), "q.bpt")
		tr, err := Create(path)
		if err != nil {
			return false
		}
		defer tr.Close()
		oracle := map[int64]int64{}
		for i := 0; i < 500; i++ {
			k := int64(rng.Intn(200) - 100)
			v := int64(rng.Intn(1000))
			tr.Insert(k, v)
			oracle[k] = v
		}
		for k, v := range oracle {
			got, ok, err := tr.Get(k)
			if err != nil || !ok || got != v {
				return false
			}
		}
		prev := int64(-1 << 62)
		okScan := true
		n := 0
		tr.Range(-1<<62, 1<<62, func(k, v int64) bool {
			if k <= prev || oracle[k] != v {
				okScan = false
			}
			prev = k
			n++
			return true
		})
		return okScan && n == len(oracle) && tr.Len() == int64(len(oracle))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
