// Package store defines the pluggable index-backing seam: an
// IndexStore hands the query engine the label and inverted index views
// it needs, hiding where they live. Three backings implement it —
//
//   - memory: today's heap-resident structs (label.Build /
//     invindex.Build, or the legacy serialized loader);
//   - mmap: a flat index file (internal/flat) mapped read-only and
//     served zero-copy, the kernel page cache doing the tiering;
//   - disk: the Section IV-C SK-DB store (internal/disk), which
//     assembles a per-query sparse view from B+-tree-located records.
//
// memory and mmap are resident stores: one long-lived index pair serves
// every query and supports cloning into new epochs (an mmap-backed
// clone copies touched pages into owned heap memory; the mapping is
// never written). disk is a per-query store: each View call reads just
// the records the query touches, so Resident reports ok=false and
// dynamic updates are unsupported.
package store

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/flat"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

// Kind names an index backing; /health reports it.
type Kind string

// The index backings.
const (
	KindMemory Kind = "memory"
	KindMmap   Kind = "mmap"
	KindDisk   Kind = "disk"
)

// IndexStore is the seam between the query layers and the index
// backing.
type IndexStore interface {
	// Kind names the backing.
	Kind() Kind
	// NumVertices returns the number of vertices the index covers.
	NumVertices() int
	// NumCategories returns the number of categories the index covers.
	NumCategories() int
	// Resident returns the store's long-lived index pair when it has
	// one (memory, mmap); ok is false for per-query stores (disk).
	// Resident indexes may be cloned copy-on-write into new epochs.
	Resident() (lab *label.Index, inv *invindex.Index, ok bool)
	// View returns index views sufficient to answer one query over the
	// given categories and endpoints. Resident stores return their
	// resident pair regardless of the arguments; per-query stores load
	// exactly the needed records.
	View(cats []graph.Category, src, dst graph.Vertex) (*label.Index, *invindex.Index, error)
	// Close releases the backing (unmaps the file, closes descriptors).
	// Only call it when no index view — nor any snapshot cloned from
	// one — is still in use.
	Close() error
}

// memStore serves heap-resident indexes.
type memStore struct {
	lab *label.Index
	inv *invindex.Index
}

// Memory wraps built or legacy-loaded indexes as an IndexStore.
func Memory(lab *label.Index, inv *invindex.Index) IndexStore {
	return &memStore{lab: lab, inv: inv}
}

func (s *memStore) Kind() Kind         { return KindMemory }
func (s *memStore) NumVertices() int   { return s.lab.NumVertices() }
func (s *memStore) NumCategories() int { return s.inv.NumCategories() }
func (s *memStore) Resident() (*label.Index, *invindex.Index, bool) {
	return s.lab, s.inv, true
}
func (s *memStore) View(_ []graph.Category, _, _ graph.Vertex) (*label.Index, *invindex.Index, error) {
	return s.lab, s.inv, nil
}
func (s *memStore) Close() error { return nil }

// mmapStore serves a mapped flat index file.
type mmapStore struct {
	f *flat.File
}

// OpenMmap maps the flat index file at path (verifying its checksums)
// and serves it zero-copy.
func OpenMmap(path string) (IndexStore, error) {
	f, err := flat.Open(path)
	if err != nil {
		return nil, err
	}
	return &mmapStore{f: f}, nil
}

func (s *mmapStore) Kind() Kind         { return KindMmap }
func (s *mmapStore) NumVertices() int   { return s.f.NumVertices() }
func (s *mmapStore) NumCategories() int { return s.f.NumCategories() }
func (s *mmapStore) Resident() (*label.Index, *invindex.Index, bool) {
	return s.f.Labels(), s.f.Inverted(), true
}
func (s *mmapStore) View(_ []graph.Category, _, _ graph.Vertex) (*label.Index, *invindex.Index, error) {
	return s.f.Labels(), s.f.Inverted(), nil
}
func (s *mmapStore) Close() error { return s.f.Close() }

// diskStore serves per-query sparse views from the SK-DB store.
type diskStore struct {
	st *disk.Store
}

// OpenDisk opens the SK-DB directory store written by disk.Write.
func OpenDisk(dir string) (IndexStore, error) {
	st, err := disk.Open(dir)
	if err != nil {
		return nil, err
	}
	return &diskStore{st: st}, nil
}

// Disk wraps an already-open SK-DB store.
func Disk(st *disk.Store) IndexStore { return &diskStore{st: st} }

func (s *diskStore) Kind() Kind         { return KindDisk }
func (s *diskStore) NumVertices() int   { return s.st.NumVertices() }
func (s *diskStore) NumCategories() int { return s.st.NumCategories() }
func (s *diskStore) Resident() (*label.Index, *invindex.Index, bool) {
	return nil, nil, false
}
func (s *diskStore) View(cats []graph.Category, src, dst graph.Vertex) (*label.Index, *invindex.Index, error) {
	return s.st.LoadQuery(cats, src, dst)
}
func (s *diskStore) Close() error { return s.st.Close() }

// Validate checks that st covers g; every opener should call it before
// serving queries against the pair.
func Validate(st IndexStore, g *graph.Graph) error {
	if st.NumVertices() != g.NumVertices() {
		return fmt.Errorf("store: index covers %d vertices, graph has %d",
			st.NumVertices(), g.NumVertices())
	}
	return nil
}
