package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := NewHeap[int](func(a, b int) bool { return a < b })
	in := []int{5, 3, 8, 1, 9, 2, 7, 2}
	for _, x := range in {
		h.Push(x)
	}
	if h.Len() != len(in) {
		t.Fatalf("len=%d", h.Len())
	}
	if h.Min() != 1 {
		t.Fatalf("min=%d", h.Min())
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for i, w := range want {
		if got := h.Pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("len after drain=%d", h.Len())
	}
}

func TestHeapClear(t *testing.T) {
	h := NewHeap[string](func(a, b string) bool { return a < b })
	h.Push("b")
	h.Push("a")
	h.Clear()
	if h.Len() != 0 {
		t.Fatal("clear failed")
	}
	h.Push("z")
	if h.Pop() != "z" {
		t.Fatal("heap unusable after clear")
	}
}

// Property: heap sort equals sort.Float64s on random inputs.
func TestHeapSortsQuick(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if x != x { // quick may generate NaN, which has no total order
				return true
			}
		}
		h := NewHeap[float64](func(a, b float64) bool { return a < b })
		for _, x := range xs {
			h.Push(x)
		}
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		for _, w := range want {
			if h.Pop() != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedHeapBasics(t *testing.T) {
	h := NewIndexedHeap(10)
	h.PushOrDecrease(3, 5)
	h.PushOrDecrease(7, 2)
	h.PushOrDecrease(1, 9)
	if !h.Contains(3) || h.Contains(0) {
		t.Fatal("contains wrong")
	}
	if id, k := h.PopMin(); id != 7 || k != 2 {
		t.Fatalf("pop=(%d,%v)", id, k)
	}
	// Decrease key of 1 below 3's key.
	if !h.PushOrDecrease(1, 1) {
		t.Fatal("decrease rejected")
	}
	// Increase attempt must be ignored.
	if h.PushOrDecrease(1, 100) {
		t.Fatal("increase accepted")
	}
	if id, k := h.PopMin(); id != 1 || k != 1 {
		t.Fatalf("pop=(%d,%v)", id, k)
	}
	if id, k := h.PopMin(); id != 3 || k != 5 {
		t.Fatalf("pop=(%d,%v)", id, k)
	}
	if h.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestIndexedHeapReset(t *testing.T) {
	h := NewIndexedHeap(5)
	h.PushOrDecrease(0, 1)
	h.PushOrDecrease(4, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(4) {
		t.Fatal("reset failed")
	}
	h.PushOrDecrease(4, 7)
	if id, k := h.PopMin(); id != 4 || k != 7 {
		t.Fatalf("pop=(%d,%v)", id, k)
	}
}

// Property: indexed heap with random decrease-keys pops in nondecreasing
// key order and yields each id at most once.
func TestIndexedHeapQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		h := NewIndexedHeap(n)
		final := make(map[int32]float64)
		for i := 0; i < 4*n; i++ {
			id := int32(rng.Intn(n))
			key := float64(rng.Intn(1000))
			h.PushOrDecrease(id, key)
			if old, ok := final[id]; !ok || key < old {
				final[id] = key
			}
		}
		prev := -1.0
		seen := make(map[int32]bool)
		for h.Len() > 0 {
			id, k := h.PopMin()
			if k < prev || seen[id] || final[id] != k {
				return false
			}
			prev = k
			seen[id] = true
		}
		return len(seen) == len(final)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Every arity must produce the same pop sequence when less is a total
// order (the engine relies on this: switching the global route queue to
// a 4-ary heap must not change results).
func TestHeapAritiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(50) // plenty of duplicates
		}
		// Total order: value, then original index.
		type item struct{ v, seq int }
		less := func(a, b item) bool {
			if a.v != b.v {
				return a.v < b.v
			}
			return a.seq < b.seq
		}
		var ref []item
		for _, d := range []int{2, 3, 4, 8} {
			h := NewHeapD[item](less, d)
			for i, v := range in {
				h.Push(item{v, i})
			}
			var got []item
			for h.Len() > 0 {
				got = append(got, h.Pop())
			}
			if d == 2 {
				ref = got
				for i := 1; i < len(ref); i++ {
					if less(ref[i], ref[i-1]) {
						t.Fatalf("binary pop sequence unsorted at %d", i)
					}
				}
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("arity %d: pop %d = %v, want %v", d, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestHeapDSortsQuick(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHeapD[float64](func(a, b float64) bool { return a < b }, 4)
		for _, x := range xs {
			h.Push(x)
		}
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		for _, w := range want {
			if got := h.Pop(); got != w && !(got != got && w != w) { // NaN-tolerant
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
