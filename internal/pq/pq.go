// Package pq provides the priority queues used throughout the KOSR
// reproduction: a generic d-ary min-heap (for route queues and k-way
// merges) and an indexed min-heap with decrease-key (for Dijkstra-style
// searches over dense integer keys).
package pq

// Heap is a d-ary min-heap over elements of type T ordered by a
// caller-supplied less function. The zero value is not usable; create one
// with NewHeap (binary) or NewHeapD (explicit arity).
//
// Because less must be a total order wherever tie-breaking matters (the
// engine's route queues order equal keys by insertion sequence), the pop
// sequence is identical for every arity; arity only changes the constant
// factors. A 4-ary heap halves the tree depth, so sift-down — the cost
// of every Pop — touches about half as many cache lines on the large
// queues KPNE builds, at the price of one extra comparison per visited
// level.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
	arity int
}

// NewHeap returns an empty binary heap ordered by less.
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return NewHeapD(less, 2)
}

// NewHeapD returns an empty d-ary heap ordered by less. Arities below 2
// are treated as 2.
func NewHeapD[T any](less func(a, b T) bool, d int) *Heap[T] {
	if d < 2 {
		d = 2
	}
	return &Heap[T]{less: less, arity: d}
}

// Len returns the number of queued elements.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push inserts x.
//
//kosr:hotpath
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Min returns the smallest element without removing it. It panics on an
// empty heap.
func (h *Heap[T]) Min() T { return h.items[0] }

// Pop removes and returns the smallest element. It panics on an empty
// heap.
//
//kosr:hotpath
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references held by the slice
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Clear removes all elements, keeping the allocated capacity.
func (h *Heap[T]) Clear() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

// Items returns the underlying slice in heap order (not sorted order).
// The caller must not modify it.
func (h *Heap[T]) Items() []T { return h.items }

// Cap returns the capacity of the backing array — the footprint a
// cleared heap retains for reuse.
func (h *Heap[T]) Cap() int { return cap(h.items) }

// Grow ensures capacity for at least n items, preserving contents.
func (h *Heap[T]) Grow(n int) {
	if cap(h.items) < n {
		items := make([]T, len(h.items), n)
		copy(items, h.items)
		h.items = items
	}
}

//kosr:hotpath
func (h *Heap[T]) up(i int) {
	d := h.arity
	for i > 0 {
		parent := (i - 1) / d
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

//kosr:hotpath
func (h *Heap[T]) down(i int) {
	n := len(h.items)
	d := h.arity
	for {
		first := d*i + 1
		if first >= n {
			return
		}
		last := first + d
		if last > n {
			last = n
		}
		smallest := first
		for c := first + 1; c < last; c++ {
			if h.less(h.items[c], h.items[smallest]) {
				smallest = c
			}
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// IndexedHeap is a min-heap over integer ids in [0, n) keyed by float64
// priorities, with decrease-key. It is the workhorse of every Dijkstra
// search in this repository. Ids absent from the heap have position -1.
type IndexedHeap struct {
	ids  []int32   // heap array of ids
	keys []float64 // key per id
	pos  []int32   // position of id in ids, or -1
}

// NewIndexedHeap returns an empty indexed heap over ids [0, n).
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		keys: make([]float64, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of queued ids.
func (h *IndexedHeap) Len() int { return len(h.ids) }

// Contains reports whether id is queued.
func (h *IndexedHeap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Key returns the current key of a queued id (undefined for ids not
// queued).
func (h *IndexedHeap) Key(id int32) float64 { return h.keys[id] }

// PushOrDecrease inserts id with the given key, or lowers its key if id
// is already queued with a larger key. It reports whether the heap
// changed.
func (h *IndexedHeap) PushOrDecrease(id int32, key float64) bool {
	if p := h.pos[id]; p >= 0 {
		if key >= h.keys[id] {
			return false
		}
		h.keys[id] = key
		h.up(int(p))
		return true
	}
	h.keys[id] = key
	h.pos[id] = int32(len(h.ids))
	h.ids = append(h.ids, id)
	h.up(len(h.ids) - 1)
	return true
}

// PopMin removes and returns the id with the smallest key and that key.
// It panics on an empty heap.
func (h *IndexedHeap) PopMin() (int32, float64) {
	id := h.ids[0]
	key := h.keys[id]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.pos[h.ids[0]] = 0
	h.ids = h.ids[:last]
	h.pos[id] = -1
	if last > 0 {
		h.down(0)
	}
	return id, key
}

// Reset empties the heap, keeping its capacity. Cost is proportional to
// the number of queued ids, not n.
func (h *IndexedHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.keys[h.ids[i]] >= h.keys[h.ids[parent]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.ids)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.keys[h.ids[right]] < h.keys[h.ids[left]] {
			smallest = right
		}
		if h.keys[h.ids[smallest]] >= h.keys[h.ids[i]] {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *IndexedHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}
