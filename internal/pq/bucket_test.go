package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bqItem mirrors the engine's route-queue entries: a float key plus a
// globally increasing insertion sequence used as the tie-break.
type bqItem struct {
	key float64
	seq int64
}

func bqLess(a, b bqItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func bqKey(it bqItem) float64 { return it.key }

// drainBoth pops both queues dry and asserts identical sequences.
func drainBoth(t *testing.T, h *Heap[bqItem], q *BucketQueue[bqItem], label string) {
	t.Helper()
	if h.Len() != q.Len() {
		t.Fatalf("%s: Len mismatch heap=%d bucket=%d", label, h.Len(), q.Len())
	}
	for i := 0; h.Len() > 0; i++ {
		hm, qm := h.Min(), q.Min()
		if hm != qm {
			t.Fatalf("%s: Min mismatch at pop %d: heap=%v bucket=%v", label, i, hm, qm)
		}
		hp, qp := h.Pop(), q.Pop()
		if hp != qp {
			t.Fatalf("%s: Pop mismatch at pop %d: heap=%v bucket=%v", label, i, hp, qp)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("%s: bucket queue not empty after drain: %d left", label, q.Len())
	}
}

// TestBucketQueueMatchesHeapMonotone drives both queues with a
// Dijkstra-like monotone workload: every push's key is >= the key of the
// last pop, with frequent exact ties to exercise the FIFO tie-break.
func TestBucketQueueMatchesHeapMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		h := NewHeapD(bqLess, 4)
		q := NewBucketQueue(bqLess, bqKey)
		var seq int64
		floor := 0.0
		push := func(k float64) {
			it := bqItem{key: k, seq: seq}
			seq++
			h.Push(it)
			q.Push(it)
		}
		for i := 0; i < 400; i++ {
			switch {
			case h.Len() == 0 || rng.Intn(3) != 0:
				k := floor + rng.Float64()*10
				if rng.Intn(4) == 0 {
					k = floor // exact tie with the frontier
				}
				push(k)
			default:
				hp, qp := h.Pop(), q.Pop()
				if hp != qp {
					t.Fatalf("round %d: mid-run pop mismatch heap=%v bucket=%v", round, hp, qp)
				}
				floor = hp.key
			}
		}
		drainBoth(t, h, q, "monotone")
	}
}

// TestBucketQueueMatchesHeapNonMonotone pushes keys with no relation to
// the pop frontier — including keys far below it, negatives, and zero —
// forcing heavy overflow-heap traffic. The bucket queue must still pop
// the exact heap order.
func TestBucketQueueMatchesHeapNonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 50; round++ {
		h := NewHeapD(bqLess, 4)
		q := NewBucketQueue(bqLess, bqKey)
		var seq int64
		for i := 0; i < 400; i++ {
			if h.Len() > 0 && rng.Intn(3) == 0 {
				hp, qp := h.Pop(), q.Pop()
				if hp != qp {
					t.Fatalf("round %d: pop mismatch heap=%v bucket=%v", round, hp, qp)
				}
				continue
			}
			var k float64
			switch rng.Intn(5) {
			case 0:
				k = -rng.Float64() * 100
			case 1:
				k = 0
			default:
				k = rng.Float64() * 1000
			}
			it := bqItem{key: k, seq: seq}
			seq++
			h.Push(it)
			q.Push(it)
		}
		drainBoth(t, h, q, "non-monotone")
	}
}

// TestBucketQueueSortsLargeRange checks raw ordering over widely spread
// keys, including denormal-adjacent tiny values and large magnitudes that
// land in high buckets.
func TestBucketQueueSortsLargeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := NewBucketQueue(bqLess, bqKey)
	items := make([]bqItem, 0, 2000)
	for i := 0; i < 2000; i++ {
		it := bqItem{key: math.Exp(rng.Float64()*40 - 20), seq: int64(i)}
		items = append(items, it)
		q.Push(it)
	}
	sort.Slice(items, func(i, j int) bool { return bqLess(items[i], items[j]) })
	for i, want := range items {
		got := q.Pop()
		if got != want {
			t.Fatalf("pop %d: got %v want %v", i, got, want)
		}
	}
}

func TestBucketQueueNaNRoutedToOverflow(t *testing.T) {
	q := NewBucketQueue(bqLess, bqKey)
	q.Push(bqItem{key: math.NaN(), seq: 0})
	q.Push(bqItem{key: 1, seq: 1})
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	q.Pop()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", q.Len())
	}
}

func TestBucketQueueClearKeepsCapacityAndResetsPivot(t *testing.T) {
	q := NewBucketQueue(bqLess, bqKey)
	for i := 0; i < 100; i++ {
		q.Push(bqItem{key: float64(100 + i), seq: int64(i)})
	}
	for i := 0; i < 50; i++ {
		q.Pop() // advance the pivot well past zero
	}
	capBefore := q.Cap()
	q.Clear()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Clear, want 0", q.Len())
	}
	if q.Cap() < capBefore {
		t.Fatalf("Cap shrank across Clear: %d -> %d", capBefore, q.Cap())
	}
	// After Clear, small keys must go back into buckets (pivot reset),
	// not the overflow heap.
	q.Push(bqItem{key: 0.5, seq: 0})
	if got := q.Pop(); got.key != 0.5 {
		t.Fatalf("post-Clear pop key = %v, want 0.5", got.key)
	}
}

func TestBucketQueueItemsAndGrow(t *testing.T) {
	q := NewBucketQueue(bqLess, bqKey)
	q.Grow(64)
	if q.Cap() < 64 {
		t.Fatalf("Cap = %d after Grow(64)", q.Cap())
	}
	seen := map[bqItem]bool{}
	for i := 0; i < 10; i++ {
		it := bqItem{key: float64(i % 4), seq: int64(i)}
		seen[it] = true
		q.Push(it)
	}
	q.Pop() // leave a mix of popped bucket-0 prefix and live items
	items := q.Items()
	if len(items) != q.Len() {
		t.Fatalf("Items returned %d elements, Len = %d", len(items), q.Len())
	}
	for _, it := range items {
		if !seen[it] {
			t.Fatalf("Items returned unknown element %v", it)
		}
	}
}

func TestBucketQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty BucketQueue did not panic")
		}
	}()
	NewBucketQueue(bqLess, bqKey).Pop()
}

func BenchmarkBucketQueueMonotone(b *testing.B) {
	q := NewBucketQueue(bqLess, bqKey)
	rng := rand.New(rand.NewSource(5))
	var seq int64
	for i := 0; i < 1<<14; i++ {
		q.Push(bqItem{key: rng.Float64() * 100, seq: seq})
		seq++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := q.Pop()
		it.key += rng.Float64() * 10
		it.seq = seq
		seq++
		q.Push(it)
	}
}
