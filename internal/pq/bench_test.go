package pq

import (
	"math/rand"
	"testing"
)

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap[float64](func(a, b float64) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(rng.Float64())
		if h.Len() > 1024 {
			for h.Len() > 0 {
				h.Pop()
			}
		}
	}
}

func BenchmarkIndexedHeapDijkstraPattern(b *testing.B) {
	const n = 4096
	h := NewIndexedHeap(n)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PushOrDecrease(int32(rng.Intn(n)), rng.Float64()*1000)
		if h.Len() > n/2 {
			for h.Len() > 0 {
				h.PopMin()
			}
		}
	}
}
