package pq

import (
	"math/rand"
	"testing"
)

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap[float64](func(a, b float64) bool { return a < b })
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(rng.Float64())
		if h.Len() > 1024 {
			for h.Len() > 0 {
				h.Pop()
			}
		}
	}
}

func BenchmarkIndexedHeapDijkstraPattern(b *testing.B) {
	const n = 4096
	h := NewIndexedHeap(n)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.PushOrDecrease(int32(rng.Intn(n)), rng.Float64()*1000)
		if h.Len() > n/2 {
			for h.Len() > 0 {
				h.PopMin()
			}
		}
	}
}

// benchHeapArity measures the steady-state pop cost of a d-ary heap at
// KPNE-like queue sizes: fill to size, then alternate push/pop so every
// iteration pays one full-depth sift-down. This is the pop-cost cell
// kosrbench records as the binary-vs-4-ary delta in BENCH_PR4.json.
func benchHeapArity(b *testing.B, d, size int) {
	type routeLike struct {
		key float64
		seq int64
		pad [2]int64 // approximate the engine's qItem width
	}
	less := func(a, b routeLike) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	}
	h := NewHeapD[routeLike](less, d)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < size; i++ {
		h.Push(routeLike{key: rng.Float64() * 1000, seq: int64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Pop()
		h.Push(routeLike{key: rng.Float64() * 1000, seq: int64(size + i)})
	}
}

func BenchmarkHeapPop2ary64k(b *testing.B) { benchHeapArity(b, 2, 1<<16) }
func BenchmarkHeapPop4ary64k(b *testing.B) { benchHeapArity(b, 4, 1<<16) }
