package pq

import (
	"math"
	"math/bits"
)

// BucketQueue is a monotone bucket (radix) queue over elements of type T.
// It exploits the fact that Dijkstra-style searches over non-negative
// weights pop keys in non-decreasing order: keys are mapped to their IEEE
// 754 bit patterns (order-preserving for non-negative floats) and stored
// in 65 buckets indexed by the position of the highest bit in which the
// key differs from the last redistribution pivot. Pops and pushes are
// O(1) amortized — each element is moved to a strictly lower bucket at
// most 64 times over its lifetime — versus O(log n) for a comparison
// heap, which is what makes it worthwhile on the multi-million-entry
// route queues KPNE builds.
//
// The queue remains correct for arbitrary (non-monotone) inputs: a push
// whose key is below the current pivot — or negative, or NaN — is routed
// to a small overflow heap ordered by the caller's less function. All
// overflow keys are strictly below every bucketed key, so popping the
// overflow heap first preserves the global order. When the overflow heap
// sees heavy traffic the structure degrades gracefully to heap behavior;
// callers with genuinely non-monotone workloads should prefer Heap.
//
// Ties are broken exactly as a Heap with the same total-order less would
// break them, provided less is consistent with key (key(a) < key(b)
// implies less(a, b)) and elements with equal keys are pushed in
// less-increasing order (the engine's route queues order equal keys by a
// globally increasing insertion sequence, which satisfies this): buckets
// are FIFO and redistribution preserves relative order, so equal keys pop
// in insertion order.
type BucketQueue[T any] struct {
	less    func(a, b T) bool
	key     func(T) float64
	last    uint64 // bit pattern of the current pivot key
	head    int    // pop cursor into buckets[0]
	n       int
	occ     [2]uint64 // occupancy bitmap over the 65 buckets
	buckets [65][]T
	behind  *Heap[T] // overflow for keys below the pivot
}

// NewBucketQueue returns an empty bucket queue. less is the total order
// used for the overflow heap and Min; key extracts the (normally
// non-negative) priority that drives bucket placement. key must not
// capture state that changes while an element is queued.
func NewBucketQueue[T any](less func(a, b T) bool, key func(T) float64) *BucketQueue[T] {
	return &BucketQueue[T]{less: less, key: key, behind: NewHeap(less)}
}

// Len returns the number of queued elements.
func (q *BucketQueue[T]) Len() int { return q.n }

// Push inserts x.
//
//kosr:hotpath
func (q *BucketQueue[T]) Push(x T) {
	k := q.key(x)
	q.n++
	if !(k >= 0) {
		// Negative or NaN keys have bit patterns that break the radix
		// order; the overflow heap handles them exactly.
		q.behind.Push(x)
		return
	}
	kb := math.Float64bits(k)
	if kb < q.last {
		q.behind.Push(x)
		return
	}
	b := bits.Len64(kb ^ q.last)
	q.buckets[b] = append(q.buckets[b], x)
	q.occ[b>>6] |= 1 << (b & 63)
}

// Pop removes and returns the smallest element. It panics on an empty
// queue.
//
//kosr:hotpath
func (q *BucketQueue[T]) Pop() T {
	q.n--
	if q.behind.Len() > 0 {
		// Overflow keys are strictly below every bucketed key.
		return q.behind.Pop()
	}
	b := q.lowest()
	if b != 0 {
		q.redistribute(b)
	}
	b0 := q.buckets[0]
	x := b0[q.head] // panics (index out of range) on an empty queue
	var zero T
	b0[q.head] = zero // release references held by the slice
	q.head++
	if q.head == len(b0) {
		q.buckets[0] = b0[:0]
		q.head = 0
		q.occ[0] &^= 1
	}
	return x
}

// Min returns the smallest element without removing it. It panics on an
// empty queue.
func (q *BucketQueue[T]) Min() T {
	if q.n == 0 {
		panic("pq: Min on empty BucketQueue")
	}
	if q.behind.Len() > 0 {
		return q.behind.Min()
	}
	b := q.lowest()
	if b == 0 {
		return q.buckets[0][q.head]
	}
	// The lowest non-empty bucket holds the global minimum; find it
	// without redistributing so Min stays read-only.
	items := q.buckets[b]
	min := items[0]
	for _, it := range items[1:] {
		if q.less(it, min) {
			min = it
		}
	}
	return min
}

// lowest returns the index of the lowest non-empty bucket. It must only
// be called when at least one bucket is occupied.
//
//kosr:hotpath
func (q *BucketQueue[T]) lowest() int {
	if q.occ[0] != 0 {
		return bits.TrailingZeros64(q.occ[0])
	}
	return 64
}

// redistribute empties bucket b (the lowest non-empty one) into strictly
// lower buckets after advancing the pivot to b's minimum key. The items
// carrying that minimum land in bucket 0 in their original insertion
// order, ready for FIFO popping.
//
//kosr:hotpath
func (q *BucketQueue[T]) redistribute(b int) {
	items := q.buckets[b]
	min := math.Float64bits(q.key(items[0]))
	for _, it := range items[1:] {
		if kb := math.Float64bits(q.key(it)); kb < min {
			min = kb
		}
	}
	q.last = min
	for i, it := range items {
		nb := bits.Len64(math.Float64bits(q.key(it)) ^ min)
		q.buckets[nb] = append(q.buckets[nb], it)
		q.occ[nb>>6] |= 1 << (nb & 63)
		var zero T
		items[i] = zero
	}
	q.buckets[b] = items[:0]
	q.occ[b>>6] &^= 1 << (b & 63)
}

// Clear removes all elements, keeping the allocated capacity, and resets
// the pivot so the queue is ready for a fresh monotone run.
func (q *BucketQueue[T]) Clear() {
	var zero T
	for b := range q.buckets {
		s := q.buckets[b]
		for i := range s {
			s[i] = zero
		}
		q.buckets[b] = s[:0]
	}
	q.behind.Clear()
	q.last = 0
	q.head = 0
	q.n = 0
	q.occ[0] = 0
	q.occ[1] = 0
}

// Items returns the queued elements in unspecified order, as a freshly
// allocated slice. It is intended for tracing, not hot paths.
func (q *BucketQueue[T]) Items() []T {
	out := make([]T, 0, q.n)
	out = append(out, q.behind.Items()...)
	out = append(out, q.buckets[0][q.head:]...)
	for b := 1; b < len(q.buckets); b++ {
		out = append(out, q.buckets[b]...)
	}
	return out
}

// Cap returns the total capacity of the backing arrays — the footprint a
// cleared queue retains for reuse.
func (q *BucketQueue[T]) Cap() int {
	c := q.behind.Cap()
	for b := range q.buckets {
		c += cap(q.buckets[b])
	}
	return c
}

// Grow ensures bucket 0 — where every element eventually lands before
// being popped — has capacity for at least n items.
func (q *BucketQueue[T]) Grow(n int) {
	if cap(q.buckets[0]) < n {
		s := make([]T, len(q.buckets[0]), n)
		copy(s, q.buckets[0])
		q.buckets[0] = s
	}
}
