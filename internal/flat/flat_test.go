package flat

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

// testIndexes builds a modest grid graph with categories and its two
// indexes — the fixture every test here round-trips.
func testIndexes(t *testing.T) (*graph.Graph, *label.Index, *invindex.Index) {
	t.Helper()
	b := gen.GridBuilder(gen.GridOptions{Rows: 12, Cols: 14, Diagonals: true, MaxWeight: 9, Seed: 5})
	gen.AssignUniformCategories(b, 12*14, 6, 10, 11)
	g := b.MustBuild()
	lab := label.Build(g)
	return g, lab, invindex.Build(g, lab)
}

func writeFlat(t *testing.T, lab *label.Index, inv *invindex.Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.flat")
	if err := WriteFile(path, lab, inv); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// TestRoundTripFieldByField writes the indexes, maps them back, and
// compares every label list, rank, and inverted list against the
// in-memory originals.
func TestRoundTripFieldByField(t *testing.T) {
	g, lab, inv := testIndexes(t)
	f, err := Open(writeFlat(t, lab, inv))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()

	n := g.NumVertices()
	if f.NumVertices() != n || f.NumCategories() != g.NumCategories() {
		t.Fatalf("sizes: got (%d,%d), want (%d,%d)", f.NumVertices(), f.NumCategories(), n, g.NumCategories())
	}
	got := f.Labels()
	for v := 0; v < n; v++ {
		if got.Rank(graph.Vertex(v)) != lab.Rank(graph.Vertex(v)) {
			t.Fatalf("rank[%d] mismatch", v)
		}
		compareLabelLists(t, "In", v, lab.In(graph.Vertex(v)), got.In(graph.Vertex(v)))
		compareLabelLists(t, "Out", v, lab.Out(graph.Vertex(v)), got.Out(graph.Vertex(v)))
	}
	gotInv := f.Inverted()
	for c := 0; c < g.NumCategories(); c++ {
		for hub := 0; hub < n; hub++ {
			want := inv.IL(graph.Category(c), graph.Vertex(hub))
			have := gotInv.IL(graph.Category(c), graph.Vertex(hub))
			if len(want) != len(have) {
				t.Fatalf("IL(%d,%d): %d entries, want %d", c, hub, len(have), len(want))
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("IL(%d,%d)[%d]: %+v != %+v", c, hub, i, have[i], want[i])
				}
			}
		}
	}
}

func compareLabelLists(t *testing.T, side string, v int, want, got []label.Entry) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s(%d): %d entries, want %d", side, v, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s(%d)[%d]: %+v != %+v", side, v, i, got[i], want[i])
		}
	}
}

// TestWriteDeterministic: the same indexes must always pack to the same
// bytes, so flat files can be diffed in CI.
func TestWriteDeterministic(t *testing.T) {
	_, lab, inv := testIndexes(t)
	var a, b bytes.Buffer
	if _, err := Write(&a, lab, inv); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, lab, inv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two Write calls produced different bytes")
	}
}

// TestCorruptionAlwaysRejected flips random bytes (and random bit
// positions) all over the file and asserts Open rejects every corrupted
// variant with a structured error — never serving corrupt data and
// never panicking. Every byte of the file is checksummed, so a single
// flip anywhere must be caught.
func TestCorruptionAlwaysRejected(t *testing.T) {
	_, lab, inv := testIndexes(t)
	path := writeFlat(t, lab, inv)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	target := filepath.Join(t.TempDir(), "corrupt.flat")
	for trial := 0; trial < 300; trial++ {
		pos := rng.Intn(len(orig))
		bit := byte(1 << rng.Intn(8))
		mut := append([]byte(nil), orig...)
		mut[pos] ^= bit
		if err := os.WriteFile(target, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(target)
		if err == nil {
			f.Close()
			t.Fatalf("trial %d: flip of bit %#x at byte %d was served", trial, bit, pos)
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrChecksum) &&
			!errors.Is(err, ErrCorrupt) {
			t.Fatalf("trial %d: unstructured error %v", trial, err)
		}
	}
}

// TestTruncationRejected cuts the file at random lengths.
func TestTruncationRejected(t *testing.T) {
	_, lab, inv := testIndexes(t)
	path := writeFlat(t, lab, inv)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	target := filepath.Join(t.TempDir(), "trunc.flat")
	for trial := 0; trial < 50; trial++ {
		cut := rng.Intn(len(orig))
		if err := os.WriteFile(target, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := Open(target)
		if err == nil {
			f.Close()
			t.Fatalf("trial %d: file cut to %d bytes was served", trial, cut)
		}
	}
}

// TestIsFlat distinguishes flat files from the legacy format and junk.
func TestIsFlat(t *testing.T) {
	_, lab, inv := testIndexes(t)
	path := writeFlat(t, lab, inv)
	if !IsFlat(path) {
		t.Fatal("IsFlat(flat file) = false")
	}
	legacy := filepath.Join(t.TempDir(), "legacy.idx")
	lf, err := os.Create(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.WriteTo(lf); err != nil {
		t.Fatal(err)
	}
	lf.Close()
	if IsFlat(legacy) {
		t.Fatal("IsFlat(legacy file) = true")
	}
	if IsFlat(filepath.Join(t.TempDir(), "missing")) {
		t.Fatal("IsFlat(missing file) = true")
	}
}

// TestMappedMutationCOW: an Apply-style mutation through a mapped index
// must copy the touched page into owned memory and leave the file
// bytes untouched.
func TestMappedMutationCOW(t *testing.T) {
	g, lab, inv := testIndexes(t)
	path := writeFlat(t, lab, inv)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Mutate the mapped inverted index: add a category membership.
	mInv := f.Inverted().Clone(f.Labels())
	v := graph.Vertex(3)
	mInv.AddVertexCategory(v, 2)
	found := false
	for _, e := range f.Labels().In(v) {
		want := invindex.Entry{V: v, D: e.D}
		for _, have := range mInv.IL(2, e.Hub) {
			if have == want {
				found = true
			}
		}
	}
	if len(f.Labels().In(v)) > 0 && !found {
		t.Fatal("mutation through mapped index not visible")
	}
	// The original mapped view must not see it, and the file must be
	// byte-identical (the mapping is never written).
	origTotal, mutTotal := 0, 0
	for hub := 0; hub < g.NumVertices(); hub++ {
		origTotal += len(f.Inverted().IL(2, graph.Vertex(hub)))
		mutTotal += len(mInv.IL(2, graph.Vertex(hub)))
	}
	if mutTotal <= origTotal {
		t.Fatalf("clone has %d entries, original %d — mutation lost", mutTotal, origTotal)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mutation wrote through to the index file")
	}
}
