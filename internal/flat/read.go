package flat

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/pagevec"
)

// File is a loaded flat index: the mapping plus index views served
// directly out of it. The label and inverted indexes returned by Labels
// and Inverted reference the mapped bytes for their entry arrays — only
// the O(n) per-vertex slice headers live on the heap — so Close must
// not be called while anything still reads them (including snapshots
// cloned from them: clones copy page tables, not entry arrays).
type File struct {
	data  []byte
	unmap func() error

	n     int
	nCats int
	lab   *label.Index
	inv   *invindex.Index
}

// Open maps (or, on platforms without mmap, reads) the flat index at
// path and verifies it fully: magic, version, header CRC, declared
// size, and the body CRC covering every byte after the header. A file
// that fails any check is rejected with an error wrapping ErrBadMagic,
// ErrVersion, ErrTruncated, ErrChecksum, or ErrCorrupt — it is never
// partially served. Verification is one sequential CRC pass (hardware
// CRC-32C, GB/s); the index structures are then built in O(n) without
// parsing any entry.
func Open(path string) (*File, error) {
	return open(path, true)
}

// OpenUnverified maps the flat index skipping the body-CRC pass: only
// the header (magic, version, header CRC, size) and the structural
// offset checks run, so nothing beyond the touched pages is read and
// load time is independent of index size. Use it only on files whose
// integrity something else guarantees (a content-addressed deploy, a
// just-written pack); a corrupted entry array would be served as-is.
func OpenUnverified(path string) (*File, error) {
	return open(path, false)
}

// IsFlat reports whether path begins with the flat-format magic.
// Loaders that also accept the legacy serialized format sniff with it.
func IsFlat(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := f.ReadAt(m[:], 0); err != nil {
		return false
	}
	return m == Magic
}

func open(path string, verify bool) (*File, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := parse(data, verify)
	if err != nil {
		unmap()
		return nil, err
	}
	f.unmap = unmap
	return f, nil
}

// Close releases the mapping. The indexes served from this File (and
// every snapshot descended from them) must no longer be in use.
func (f *File) Close() error {
	f.lab, f.inv, f.data = nil, nil, nil
	if f.unmap == nil {
		return nil
	}
	u := f.unmap
	f.unmap = nil
	return u()
}

// NumVertices returns the number of vertices the index covers.
func (f *File) NumVertices() int { return f.n }

// NumCategories returns the number of categories the index covers.
func (f *File) NumCategories() int { return f.nCats }

// Labels returns the 2-hop label index view over the mapping.
func (f *File) Labels() *label.Index { return f.lab }

// Inverted returns the inverted label index view over the mapping,
// built over Labels().
func (f *File) Inverted() *invindex.Index { return f.inv }

func parse(data []byte, verify bool) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerSize)
	}
	var m [8]byte
	copy(m[:], data[:8])
	if m != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, m)
	}
	if hc := binary.LittleEndian.Uint32(data[56:]); hc != crc(data[:headerCRCSpan]) {
		return nil, fmt.Errorf("%w: header CRC", ErrChecksum)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, v, Version)
	}
	if flags := binary.LittleEndian.Uint32(data[12:]); flags != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	if rsv := binary.LittleEndian.Uint32(data[60:]); rsv != 0 {
		return nil, fmt.Errorf("%w: reserved header bytes not zero", ErrCorrupt)
	}
	fileSize := binary.LittleEndian.Uint64(data[44:])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header declares %d bytes, file has %d", ErrTruncated, fileSize, len(data))
	}
	n64 := binary.LittleEndian.Uint64(data[16:])
	nCats64 := binary.LittleEndian.Uint64(data[24:])
	if n64 >= 1<<31 || nCats64 >= 1<<31 {
		return nil, fmt.Errorf("%w: implausible sizes (n=%d categories=%d)", ErrCorrupt, n64, nCats64)
	}
	n, nCats := int(n64), int(nCats64)
	labelPS := int(binary.LittleEndian.Uint32(data[32:]))
	invPS := int(binary.LittleEndian.Uint32(data[36:]))
	if !validPageSize(labelPS) || !validPageSize(invPS) {
		return nil, fmt.Errorf("%w: bad page sizes (label=%d inv=%d)", ErrCorrupt, labelPS, invPS)
	}
	nSec := int(binary.LittleEndian.Uint32(data[40:]))
	if nSec != numSections {
		return nil, fmt.Errorf("%w: %d sections, format has %d", ErrCorrupt, nSec, numSections)
	}

	if verify {
		if bc := binary.LittleEndian.Uint32(data[52:]); bc != crc(data[headerSize:]) {
			// Localize via the per-section CRCs for a more actionable error.
			return nil, fmt.Errorf("%w: %s", ErrChecksum, localizeCorruption(data))
		}
	}

	// Section table: ids in order, bounds inside the file, 8-aligned.
	secStart := uint64(headerSize + numSections*sectionEntSize)
	var secs [numSections][]byte
	for i := 0; i < numSections; i++ {
		rec := data[headerSize+i*sectionEntSize:]
		id := binary.LittleEndian.Uint32(rec[0:])
		off := binary.LittleEndian.Uint64(rec[8:])
		length := binary.LittleEndian.Uint64(rec[16:])
		if id != uint32(i+1) {
			return nil, fmt.Errorf("%w: section %d has id %d", ErrCorrupt, i, id)
		}
		if off%8 != 0 || off < secStart || off > fileSize || length > fileSize-off {
			return nil, fmt.Errorf("%w: section %s out of bounds (off=%d len=%d)", ErrCorrupt, sectionName[id], off, length)
		}
		secs[i] = data[off : off+length]
	}

	// Structural validation of the record counts against n / nCats.
	wantLen := [numSections]uint64{
		uint64(n) * 4, uint64(n+1) * 8, uint64(n+1) * 8,
		0, 0, uint64(nCats) * invDirSize, 0, 0,
	}
	for i, want := range wantLen {
		if want != 0 && uint64(len(secs[i])) != want {
			return nil, fmt.Errorf("%w: section %s is %d bytes, want %d", ErrCorrupt, sectionName[uint32(i+1)], len(secs[i]), want)
		}
	}
	for _, i := range []int{3, 4} {
		if len(secs[i])%labelEntrySize != 0 {
			return nil, fmt.Errorf("%w: section %s not a whole number of entries", ErrCorrupt, sectionName[uint32(i+1)])
		}
	}
	if len(secs[6])%invListSize != 0 || len(secs[7])%invEntrySize != 0 {
		return nil, fmt.Errorf("%w: inverted sections not a whole number of records", ErrCorrupt)
	}

	rank := castInt32s(secs[0])
	for v := 0; v < n; v++ {
		if r := rank[v]; r < 0 || int(r) >= n {
			return nil, fmt.Errorf("%w: rank[%d] = %d out of [0,%d)", ErrCorrupt, v, r, n)
		}
	}

	inEntries := castLabelEntries(secs[3])
	outEntries := castLabelEntries(secs[4])
	inVec, err := buildLabelVec(n, labelPS, castUint64s(secs[1]), inEntries, "inOff")
	if err != nil {
		return nil, err
	}
	outVec, err := buildLabelVec(n, labelPS, castUint64s(secs[2]), outEntries, "outOff")
	if err != nil {
		return nil, err
	}
	lab := label.FromVectors(rank, inVec, outVec)

	cats, err := buildInvVecs(n, nCats, invPS, secs[5], secs[6], castInvEntries(secs[7]))
	if err != nil {
		return nil, err
	}

	return &File{
		data: data, n: n, nCats: nCats,
		lab: lab,
		inv: invindex.FromVectors(lab, cats),
	}, nil
}

func validPageSize(ps int) bool {
	return ps > 0 && ps <= 1<<20 && ps&(ps-1) == 0
}

// buildLabelVec assembles one label vector over the mapped entry array:
// an O(n) pass slicing entries[off[v]:off[v+1]] into per-vertex list
// headers packed into pagevec pages. Pages whose vertices all have
// empty labels stay nil (pagevec's zero-page representation). No entry
// is read.
func buildLabelVec(n, pageSize int, off []uint64, entries []label.Entry, what string) (*pagevec.Vec[[]label.Entry], error) {
	total := uint64(len(entries))
	if off[0] != 0 || off[n] != total {
		return nil, fmt.Errorf("%w: %s endpoints [%d,%d] do not span %d entries", ErrCorrupt, what, off[0], off[n], total)
	}
	nPages := (n + pageSize - 1) / pageSize
	pages := make([][][]label.Entry, nPages)
	for pi := 0; pi < nPages; pi++ {
		base := pi * pageSize
		cnt := n - base
		if cnt > pageSize {
			cnt = pageSize
		}
		if off[base+cnt] < off[base] {
			return nil, fmt.Errorf("%w: %s not monotonic near vertex %d", ErrCorrupt, what, base)
		}
		if off[base+cnt] == off[base] {
			continue // all-empty page
		}
		page := make([][]label.Entry, cnt)
		for j := 0; j < cnt; j++ {
			lo, hi := off[base+j], off[base+j+1]
			if lo > hi || hi > total {
				return nil, fmt.Errorf("%w: %s[%d..%d] = [%d,%d] out of order or beyond %d entries",
					ErrCorrupt, what, base+j, base+j+1, lo, hi, total)
			}
			if lo < hi {
				page[j] = entries[lo:hi:hi]
			}
		}
		pages[pi] = page
	}
	return pagevec.FromPages(n, pages, pageSize), nil
}

// buildInvVecs assembles the per-category inverted vectors from the
// mapped directory, list descriptors, and entry array. Cost is O(lists)
// — one slice header per non-empty hub list; entries are never read.
func buildInvVecs(n, nCats, pageSize int, dir, lists []byte, entries []invindex.Entry) ([]*pagevec.Vec[[]invindex.Entry], error) {
	totalLists := uint64(len(lists) / invListSize)
	totalEntries := uint64(len(entries))
	cats := make([]*pagevec.Vec[[]invindex.Entry], nCats)
	nPages := (n + pageSize - 1) / pageSize
	for c := 0; c < nCats; c++ {
		dr := dir[c*invDirSize:]
		start := binary.LittleEndian.Uint64(dr[0:])
		count := binary.LittleEndian.Uint64(dr[8:])
		if count > totalLists || start > totalLists-count {
			return nil, fmt.Errorf("%w: category %d list range [%d,+%d) beyond %d lists", ErrCorrupt, c, start, count, totalLists)
		}
		if count == 0 {
			continue
		}
		pages := make([][][]invindex.Entry, nPages)
		prevHub := int64(-1)
		for li := start; li < start+count; li++ {
			rec := lists[li*invListSize:]
			hub := int64(int32(binary.LittleEndian.Uint32(rec[0:])))
			entCount := uint64(binary.LittleEndian.Uint32(rec[4:]))
			entOff := binary.LittleEndian.Uint64(rec[8:])
			if hub <= prevHub || hub >= int64(n) {
				return nil, fmt.Errorf("%w: category %d hub %d out of order or range", ErrCorrupt, c, hub)
			}
			prevHub = hub
			if entCount == 0 || entCount > totalEntries || entOff > totalEntries-entCount {
				return nil, fmt.Errorf("%w: category %d hub %d entries [%d,+%d) beyond %d", ErrCorrupt, c, hub, entOff, entCount, totalEntries)
			}
			pi := int(hub) / pageSize
			if pages[pi] == nil {
				cnt := n - pi*pageSize
				if cnt > pageSize {
					cnt = pageSize
				}
				pages[pi] = make([][]invindex.Entry, cnt)
			}
			pages[pi][int(hub)%pageSize] = entries[entOff : entOff+entCount : entOff+entCount]
		}
		cats[c] = pagevec.FromPages(n, pages, pageSize)
	}
	return cats, nil
}

// localizeCorruption names the first section whose CRC fails, for the
// body-checksum error message.
func localizeCorruption(data []byte) string {
	fileSize := uint64(len(data))
	for i := 0; i < numSections; i++ {
		rec := data[headerSize+i*sectionEntSize:]
		off := binary.LittleEndian.Uint64(rec[8:])
		length := binary.LittleEndian.Uint64(rec[16:])
		want := binary.LittleEndian.Uint32(rec[24:])
		if off > fileSize || length > fileSize-off {
			return fmt.Sprintf("body CRC (section table corrupt at %s)", sectionName[uint32(i+1)])
		}
		if crc(data[off:off+length]) != want {
			return fmt.Sprintf("body CRC (first bad section: %s)", sectionName[uint32(i+1)])
		}
	}
	return "body CRC (corruption in section table or padding)"
}
