package flat

import (
	"encoding/binary"
	"math"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

// The zero-copy paths reinterpret mapped file bytes as Go struct
// slices, which is only sound when the in-memory layout equals the
// on-disk record layout: little-endian byte order and the exact field
// offsets the format documents. Both are checked once at init; on any
// mismatch (a big-endian port, a changed struct) every cast falls back
// to an allocating field-by-field decode, so the format stays readable
// everywhere and merely loses the zero-copy property.
var (
	hostLittleEndian = func() bool {
		x := uint16(1)
		return *(*byte)(unsafe.Pointer(&x)) == 1
	}()

	zeroCopyLabel = hostLittleEndian &&
		unsafe.Sizeof(label.Entry{}) == labelEntrySize &&
		unsafe.Offsetof(label.Entry{}.Hub) == 0 &&
		unsafe.Offsetof(label.Entry{}.R) == 4 &&
		unsafe.Offsetof(label.Entry{}.D) == 8 &&
		unsafe.Offsetof(label.Entry{}.Next) == 16

	zeroCopyInv = hostLittleEndian &&
		unsafe.Sizeof(invindex.Entry{}) == invEntrySize &&
		unsafe.Offsetof(invindex.Entry{}.V) == 0 &&
		unsafe.Offsetof(invindex.Entry{}.D) == 8

	zeroCopyWords = hostLittleEndian
)

// castLabelEntries views b (length a multiple of labelEntrySize) as
// label entries without copying; the fallback decodes into fresh memory.
func castLabelEntries(b []byte) []label.Entry {
	n := len(b) / labelEntrySize
	if n == 0 {
		return nil
	}
	if zeroCopyLabel {
		return unsafe.Slice((*label.Entry)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]label.Entry, n)
	for i := range out {
		rec := b[i*labelEntrySize:]
		out[i] = label.Entry{
			Hub:  graph.Vertex(int32(binary.LittleEndian.Uint32(rec[0:]))),
			R:    int32(binary.LittleEndian.Uint32(rec[4:])),
			D:    graph.Weight(math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))),
			Next: graph.Vertex(int32(binary.LittleEndian.Uint32(rec[16:]))),
		}
	}
	return out
}

// castInvEntries views b as inverted label entries without copying.
func castInvEntries(b []byte) []invindex.Entry {
	n := len(b) / invEntrySize
	if n == 0 {
		return nil
	}
	if zeroCopyInv {
		return unsafe.Slice((*invindex.Entry)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]invindex.Entry, n)
	for i := range out {
		rec := b[i*invEntrySize:]
		out[i] = invindex.Entry{
			V: graph.Vertex(int32(binary.LittleEndian.Uint32(rec[0:]))),
			D: graph.Weight(math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))),
		}
	}
	return out
}

// castInt32s views b as an int32 array (the rank section).
func castInt32s(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if zeroCopyWords {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// castUint64s views b as a uint64 array (the offset sections).
func castUint64s(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if zeroCopyWords {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}
