// Package flat implements the zero-copy persistent index format: a
// flat, offset-based on-disk layout for the 2-hop label index
// (label.Index) and the inverted label index (invindex.Index) that can
// be mmap'd and served without a parse step.
//
// # Layout
//
// All integers are little-endian. The file is a 64-byte header, a
// section table, and 64-byte-aligned sections of packed fixed-width
// records:
//
//	header (64 B):
//	    magic         [8]byte "KOSRFLT1"
//	    version       uint32  (currently 1)
//	    flags         uint32  (0)
//	    n             uint64  vertices
//	    nCats         uint64  categories
//	    labelPageSize uint32  pagevec page size of the label vectors
//	    invPageSize   uint32  pagevec page size of the inverted vectors
//	    nSections     uint32
//	    fileSize      uint64  total file length in bytes
//	    bodyCRC       uint32  CRC-32C over bytes [64, fileSize)
//	    headerCRC     uint32  CRC-32C over bytes [0, 56)
//	    reserved      uint32  must be 0
//
//	section table (nSections × 32 B, at offset 64):
//	    id uint32, reserved uint32, off uint64, length uint64,
//	    crc uint32 (CRC-32C of the section bytes), reserved uint32
//
//	sections (each starting at a 64-byte-aligned offset):
//	    rank       n × int32          landmark rank per vertex
//	    inOff      (n+1) × uint64     Lin(v) = inEntries[inOff[v]:inOff[v+1]]
//	    outOff     (n+1) × uint64     Lout(v) likewise
//	    inEntries  Σ|Lin| × 24 B      hub i32, r i32, d f64, next i32, pad
//	    outEntries Σ|Lout| × 24 B
//	    invDir     nCats × 16 B       listStart u64, listCount u64 → invLists
//	    invLists   Σlists × 16 B      hub u32, entCount u32, entOff u64
//	    invEntries Σentries × 16 B    v i32, pad, d f64
//
// The 24-byte label record and the 16-byte inverted record equal the
// in-memory layouts of label.Entry and invindex.Entry on little-endian
// machines, so the loader serves the entry arrays directly out of the
// mapping (an unsafe slice cast, verified at init — see cast.go) and
// only builds the O(n) per-vertex slice headers, packed into pagevec
// pages whose size matches the in-memory vectors one-to-one. Dynamic
// updates on a mapped index therefore work unchanged: pagevec treats
// the mapped pages as borrowed and copies any page the first mutation
// touches (copy-on-write over the mmap base); the mapping itself is
// never written.
//
// Every byte of the file is covered by a checksum: the header by
// headerCRC (plus the reserved field, which must be zero), everything
// after it — section table, sections, and alignment padding — by
// bodyCRC. Open verifies both, so a half-written or corrupted file
// fails with a structured error instead of being served.
package flat

import (
	"errors"
	"hash/crc32"
)

// Magic identifies a flat index file; it occupies the first 8 bytes.
var Magic = [8]byte{'K', 'O', 'S', 'R', 'F', 'L', 'T', '1'}

// Version is the current format version.
const Version = 1

const (
	headerSize     = 64
	headerCRCSpan  = 56 // headerCRC covers bytes [0, 56)
	sectionEntSize = 32

	labelEntrySize = 24
	invEntrySize   = 16
	invDirSize     = 16
	invListSize    = 16
)

// Section ids, in file order.
const (
	secRank uint32 = 1 + iota
	secInOff
	secOutOff
	secInEntries
	secOutEntries
	secInvDir
	secInvLists
	secInvEntries

	numSections = 8
)

var sectionName = map[uint32]string{
	secRank: "rank", secInOff: "inOff", secOutOff: "outOff",
	secInEntries: "inEntries", secOutEntries: "outEntries",
	secInvDir: "invDir", secInvLists: "invLists", secInvEntries: "invEntries",
}

// Structured load-failure causes; test with errors.Is. Every loader
// error wraps exactly one of them.
var (
	// ErrBadMagic: the file is not a flat index file at all.
	ErrBadMagic = errors.New("flat: bad magic (not a flat index file)")
	// ErrVersion: a flat index file of an unsupported format version.
	ErrVersion = errors.New("flat: unsupported format version")
	// ErrTruncated: the file is shorter than its header claims.
	ErrTruncated = errors.New("flat: truncated index file")
	// ErrChecksum: a header, body, or section CRC does not match.
	ErrChecksum = errors.New("flat: checksum mismatch")
	// ErrCorrupt: checksums passed or were skipped but the structure is
	// inconsistent (bad offsets, overlapping sections, out-of-range ids).
	ErrCorrupt = errors.New("flat: structurally invalid index file")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// align64 rounds x up to the next multiple of 64 — the section
// alignment, which keeps every packed record array 8-byte aligned for
// the zero-copy casts regardless of the sections before it.
func align64(x uint64) uint64 { return (x + 63) &^ 63 }
