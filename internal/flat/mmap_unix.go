//go:build unix

package flat

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The returned bytes alias the kernel page
// cache: nothing is read until touched, so load cost is independent of
// file size, and an index larger than RAM is served with the kernel
// doing the tiering. The release func unmaps.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
