//go:build !unix

package flat

import (
	"io"
	"os"
	"unsafe"
)

// mapFile reads path into memory on platforms without POSIX mmap. The
// buffer is built over a []uint64 so the zero-copy record casts keep
// their 8-byte alignment guarantee; the release func just drops it.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	words := make([]uint64, (size+7)/8)
	data := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
