package flat

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/pagevec"
)

// Write serializes the label index and the inverted label index in the
// flat format. The output is deterministic: the same indexes always
// produce the same bytes (every record is written field by field with
// explicit zero padding), so flat files can be compared byte-for-byte.
// The inverted index must be built over lab; sparse-backed categories
// serialize through the same deterministic ILRange order as
// vector-backed ones.
func Write(w io.Writer, lab *label.Index, inv *invindex.Index) (int64, error) {
	buf, err := assemble(lab, inv)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// WriteFile writes the flat index to path atomically: the bytes land in
// a temp file in the same directory, which is renamed over path only
// after a successful write + sync, so a crash mid-pack can never leave
// a half-written file where a loader would look. (The checksums would
// reject one anyway; the rename means it is never observed at all.)
func WriteFile(path string, lab *label.Index, inv *invindex.Index) error {
	buf, err := assemble(lab, inv)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// assemble builds the entire file image in memory. Index files are
// dominated by their packed entry arrays (24 B per label entry); an
// in-memory image keeps the writer single-pass while the header's
// checksums cover the final bytes.
func assemble(lab *label.Index, inv *invindex.Index) ([]byte, error) {
	n := lab.NumVertices()
	nCats := inv.NumCategories()
	if inv.Labels() != lab {
		return nil, fmt.Errorf("flat: inverted index is not built over the given label index")
	}

	// Pass 1: sizes. Label list lengths come from the per-vertex views;
	// the inverted side is counted through the same deterministic
	// iteration the packing pass uses.
	var totalIn, totalOut uint64
	for v := 0; v < n; v++ {
		totalIn += uint64(len(lab.In(graph.Vertex(v))))
		totalOut += uint64(len(lab.Out(graph.Vertex(v))))
	}
	var totalLists, totalInvEntries uint64
	for c := 0; c < nCats; c++ {
		inv.ILRange(graph.Category(c), func(_ graph.Vertex, list []invindex.Entry) bool {
			totalLists++
			totalInvEntries += uint64(len(list))
			return true
		})
	}

	// Section layout.
	type sec struct {
		id     uint32
		off    uint64
		length uint64
	}
	secs := make([]sec, 0, numSections)
	off := align64(headerSize + numSections*sectionEntSize)
	place := func(id uint32, length uint64) {
		secs = append(secs, sec{id: id, off: off, length: length})
		off = align64(off + length)
	}
	place(secRank, uint64(n)*4)
	place(secInOff, uint64(n+1)*8)
	place(secOutOff, uint64(n+1)*8)
	place(secInEntries, totalIn*labelEntrySize)
	place(secOutEntries, totalOut*labelEntrySize)
	place(secInvDir, uint64(nCats)*invDirSize)
	place(secInvLists, totalLists*invListSize)
	place(secInvEntries, totalInvEntries*invEntrySize)
	fileSize := off

	buf := make([]byte, fileSize)
	at := func(i int) []byte { return buf[secs[i].off : secs[i].off+secs[i].length] }

	// rank
	rank := lab.Ranks()
	b := at(0)
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint32(b[v*4:], uint32(rank[v]))
	}

	// Label offsets + entries.
	putLabel := func(offSec, entSec int, list func(graph.Vertex) []label.Entry) {
		ob, eb := at(offSec), at(entSec)
		var cum uint64
		for v := 0; v < n; v++ {
			binary.LittleEndian.PutUint64(ob[v*8:], cum)
			for _, e := range list(graph.Vertex(v)) {
				rec := eb[cum*labelEntrySize:]
				binary.LittleEndian.PutUint32(rec[0:], uint32(e.Hub))
				binary.LittleEndian.PutUint32(rec[4:], uint32(e.R))
				binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(float64(e.D)))
				binary.LittleEndian.PutUint32(rec[16:], uint32(e.Next))
				// rec[20:24] stays zero (padding).
				cum++
			}
		}
		binary.LittleEndian.PutUint64(ob[n*8:], cum)
	}
	putLabel(1, 3, lab.In)
	putLabel(2, 4, lab.Out)

	// Inverted directory, list descriptors, entries.
	db, lb, ib := at(5), at(6), at(7)
	var listCum, entCum uint64
	for c := 0; c < nCats; c++ {
		start := listCum
		inv.ILRange(graph.Category(c), func(hub graph.Vertex, list []invindex.Entry) bool {
			rec := lb[listCum*invListSize:]
			binary.LittleEndian.PutUint32(rec[0:], uint32(hub))
			binary.LittleEndian.PutUint32(rec[4:], uint32(len(list)))
			binary.LittleEndian.PutUint64(rec[8:], entCum)
			for _, e := range list {
				er := ib[entCum*invEntrySize:]
				binary.LittleEndian.PutUint32(er[0:], uint32(e.V))
				// er[4:8] stays zero (padding).
				binary.LittleEndian.PutUint64(er[8:], math.Float64bits(float64(e.D)))
				entCum++
			}
			listCum++
			return true
		})
		dr := db[c*invDirSize:]
		binary.LittleEndian.PutUint64(dr[0:], start)
		binary.LittleEndian.PutUint64(dr[8:], listCum-start)
	}

	// Section table.
	for i, s := range secs {
		rec := buf[headerSize+i*sectionEntSize:]
		binary.LittleEndian.PutUint32(rec[0:], s.id)
		binary.LittleEndian.PutUint64(rec[8:], s.off)
		binary.LittleEndian.PutUint64(rec[16:], s.length)
		binary.LittleEndian.PutUint32(rec[24:], crc(at(i)))
	}

	// Header. bodyCRC is computed last, over everything after the header
	// — section table, sections, and the zero padding between them — so
	// no byte of the file escapes a checksum.
	copy(buf[0:], Magic[:])
	binary.LittleEndian.PutUint32(buf[8:], Version)
	binary.LittleEndian.PutUint32(buf[12:], 0) // flags
	binary.LittleEndian.PutUint64(buf[16:], uint64(n))
	binary.LittleEndian.PutUint64(buf[24:], uint64(nCats))
	binary.LittleEndian.PutUint32(buf[32:], uint32(pagevec.PageSize))
	binary.LittleEndian.PutUint32(buf[36:], uint32(invindex.ILPageSize))
	binary.LittleEndian.PutUint32(buf[40:], numSections)
	binary.LittleEndian.PutUint64(buf[44:], fileSize)
	binary.LittleEndian.PutUint32(buf[52:], crc(buf[headerSize:]))
	binary.LittleEndian.PutUint32(buf[56:], crc(buf[:headerCRCSpan]))
	// buf[60:64] stays zero (reserved).
	return buf, nil
}
