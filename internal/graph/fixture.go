package graph

// Figure1 returns the road-network graph of Figure 1 of the paper, the
// running example behind Tables III–VI. Vertices s,a,b,c,d,e,f,t are named
// and categorized (MA = shopping mall, RE = restaurant, CI = cinema).
//
// The edge list is reverse-engineered from the paper's own numbers and is
// consistent with every distance the paper states: dis(s,a)=8, dis(s,c)=10,
// the 2-hop label index of Table IV (e.g. dis(a,c)=20, dis(t,s)=25,
// dis(b,t)=7), the inverted label index of Table V, and the query results
// of Examples 1–6 (top-3 costs 20, 21, 22).
func Figure1() *Graph {
	b := NewBuilder(8, true)
	ma := b.NameCategory("MA")
	re := b.NameCategory("RE")
	ci := b.NameCategory("CI")

	names := []string{"s", "a", "b", "c", "d", "e", "f", "t"}
	for v, name := range names {
		b.NameVertex(Vertex(v), name)
	}
	var (
		s  = Vertex(0)
		a  = Vertex(1)
		bb = Vertex(2)
		c  = Vertex(3)
		d  = Vertex(4)
		e  = Vertex(5)
		f  = Vertex(6)
		t  = Vertex(7)
	)
	b.AddCategory(a, ma).AddCategory(c, ma)
	b.AddCategory(bb, re).AddCategory(e, re)
	b.AddCategory(d, ci).AddCategory(f, ci)

	b.AddEdge(s, a, 8)
	b.AddEdge(s, c, 10)
	b.AddEdge(a, bb, 5)
	b.AddEdge(a, e, 6)
	b.AddEdge(bb, d, 3)
	b.AddEdge(bb, s, 5)
	b.AddEdge(c, bb, 5)
	b.AddEdge(c, d, 3)
	b.AddEdge(d, t, 4)
	b.AddEdge(e, d, 3)
	b.AddEdge(e, f, 10)
	b.AddEdge(f, t, 3)
	b.AddEdge(t, c, 15)
	b.AddEdge(t, e, 10)
	return b.MustBuild()
}
