package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is line-oriented:
//
//	g <directed|undirected> <numVertices> <numCategories>
//	c <catID> <name>            (optional category names)
//	v <vertex> <cat>[,<cat>...] (vertices with categories)
//	e <from> <to> <weight>
//
// Lines starting with '#' and blank lines are ignored. For undirected
// graphs each physical edge is written once.

// WriteTo serializes g in the text format. It returns the number of bytes
// written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	dir := "directed"
	if !g.directed {
		dir = "undirected"
	}
	if err := count(fmt.Fprintf(bw, "g %s %d %d\n", dir, g.n, g.NumCategories())); err != nil {
		return n, err
	}
	for c, name := range g.catNames {
		if name != "" {
			if err := count(fmt.Fprintf(bw, "c %d %s\n", c, name)); err != nil {
				return n, err
			}
		}
	}
	for v := 0; v < g.n; v++ {
		cs := g.Categories(Vertex(v))
		if len(cs) == 0 {
			continue
		}
		parts := make([]string, len(cs))
		for i, c := range cs {
			parts[i] = strconv.Itoa(int(c))
		}
		if err := count(fmt.Fprintf(bw, "v %d %s\n", v, strings.Join(parts, ","))); err != nil {
			return n, err
		}
	}
	seen := make(map[[2]Vertex]bool)
	var werr error
	g.Edges(func(e Edge) bool {
		if !g.directed {
			key := [2]Vertex{e.From, e.To}
			rev := [2]Vertex{e.To, e.From}
			if seen[rev] {
				return true // reverse arc of an undirected edge already written
			}
			seen[key] = true
		}
		werr = count(fmt.Fprintf(bw, "e %d %d %g\n", e.From, e.To, e.W))
		return werr == nil
	})
	if werr != nil {
		return n, werr
	}
	return n, bw.Flush()
}

// Read parses a graph in the text format produced by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "g":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: header needs 3 fields", lineNo)
			}
			var directed bool
			switch fields[1] {
			case "directed":
				directed = true
			case "undirected":
				directed = false
			default:
				return nil, fmt.Errorf("graph: line %d: bad direction %q", lineNo, fields[1])
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %v", lineNo, err)
			}
			nc, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad category count: %v", lineNo, err)
			}
			b = NewBuilder(n, directed)
			b.EnsureCategories(nc)
		case "c":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: %q before header", lineNo, fields[0])
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: category name needs 2 fields", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad category id: %v", lineNo, err)
			}
			b.SetCategoryName(Category(id), fields[2])
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: %q before header", lineNo, fields[0])
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: vertex line needs 2 fields", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex: %v", lineNo, err)
			}
			for _, part := range strings.Split(fields[2], ",") {
				c, err := strconv.Atoi(part)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad category: %v", lineNo, err)
				}
				b.AddCategory(Vertex(v), Category(c))
			}
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: %q before header", lineNo, fields[0])
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge line needs 3 fields", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge tail: %v", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge head: %v", lineNo, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge weight: %v", lineNo, err)
			}
			b.AddEdge(Vertex(u), Vertex(v), w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input (missing header)")
	}
	return b.Build()
}
