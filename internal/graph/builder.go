package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices, edges and categories and produces an
// immutable Graph. A Builder must be created with NewBuilder.
type Builder struct {
	n        int
	directed bool
	edges    []Edge
	cats     map[Vertex][]Category
	numCats  int

	catNames    []string
	catIndex    map[string]Category
	vertexNames map[Vertex]string
	vertexIndex map[string]Vertex

	err error
}

// NewBuilder returns a Builder for a graph with n vertices. When directed
// is false, AddEdge inserts both arcs.
func NewBuilder(n int, directed bool) *Builder {
	b := &Builder{
		n:           n,
		directed:    directed,
		cats:        make(map[Vertex][]Category),
		catIndex:    make(map[string]Category),
		vertexNames: make(map[Vertex]string),
		vertexIndex: make(map[string]Vertex),
	}
	if n < 0 {
		b.err = fmt.Errorf("graph: negative vertex count %d", n)
	}
	return b
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *Builder) checkVertex(v Vertex) bool {
	if v < 0 || int(v) >= b.n {
		b.setErr(fmt.Errorf("graph: vertex %d out of range [0,%d)", v, b.n))
		return false
	}
	return true
}

// AddEdge adds the edge (u, v) with weight w. For undirected builders the
// reverse arc is added as well. Self-loops are allowed (they never appear
// on shortest paths when w > 0); negative and NaN weights are rejected.
func (b *Builder) AddEdge(u, v Vertex, w Weight) *Builder {
	if !b.checkVertex(u) || !b.checkVertex(v) {
		return b
	}
	if w < 0 || w != w {
		b.setErr(fmt.Errorf("graph: invalid weight %v on edge (%d,%d)", w, u, v))
		return b
	}
	b.edges = append(b.edges, Edge{From: u, To: v, W: w})
	if !b.directed && u != v {
		b.edges = append(b.edges, Edge{From: v, To: u, W: w})
	}
	return b
}

// AddCategory adds category c to F(v). Categories are dense integers; the
// builder tracks the maximum id seen.
func (b *Builder) AddCategory(v Vertex, c Category) *Builder {
	if !b.checkVertex(v) {
		return b
	}
	if c < 0 {
		b.setErr(fmt.Errorf("graph: negative category %d", c))
		return b
	}
	for _, cc := range b.cats[v] {
		if cc == c {
			return b // idempotent
		}
	}
	b.cats[v] = append(b.cats[v], c)
	if int(c)+1 > b.numCats {
		b.numCats = int(c) + 1
	}
	return b
}

// NameCategory assigns a symbolic name to category c, creating the id if
// needed, and returns c for chaining into AddCategory calls.
func (b *Builder) NameCategory(name string) Category {
	if c, ok := b.catIndex[name]; ok {
		return c
	}
	c := Category(b.numCats)
	b.numCats++
	for len(b.catNames) <= int(c) {
		b.catNames = append(b.catNames, "")
	}
	b.catNames[c] = name
	b.catIndex[name] = c
	return c
}

// SetCategoryName binds a symbolic name to an existing (or future)
// category id without allocating a new id.
func (b *Builder) SetCategoryName(c Category, name string) *Builder {
	if c < 0 {
		b.setErr(fmt.Errorf("graph: negative category %d", c))
		return b
	}
	if old, ok := b.catIndex[name]; ok && old != c {
		b.setErr(fmt.Errorf("graph: category name %q already used by %d", name, old))
		return b
	}
	if int(c)+1 > b.numCats {
		b.numCats = int(c) + 1
	}
	for len(b.catNames) <= int(c) {
		b.catNames = append(b.catNames, "")
	}
	b.catNames[c] = name
	b.catIndex[name] = c
	return b
}

// NameVertex assigns a symbolic name to vertex v.
func (b *Builder) NameVertex(v Vertex, name string) *Builder {
	if !b.checkVertex(v) {
		return b
	}
	if old, ok := b.vertexIndex[name]; ok && old != v {
		b.setErr(fmt.Errorf("graph: vertex name %q already used by %d", name, old))
		return b
	}
	b.vertexNames[v] = name
	b.vertexIndex[name] = v
	return b
}

// EnsureCategories reserves category ids up to num-1 even when no vertex
// carries them (useful for generated workloads with empty categories).
func (b *Builder) EnsureCategories(num int) *Builder {
	if num > b.numCats {
		b.numCats = num
	}
	return b
}

// Build finalizes the graph. It returns the first error recorded while
// building, if any.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		n:        b.n,
		m:        len(b.edges),
		directed: b.directed,
		catIndex: b.catIndex,
	}

	// Forward CSR via counting sort on From.
	g.outOff = make([]int32, b.n+1)
	for _, e := range b.edges {
		g.outOff[e.From+1]++
	}
	for v := 0; v < b.n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}
	g.outArc = make([]Arc, len(b.edges))
	pos := make([]int32, b.n)
	for _, e := range b.edges {
		i := g.outOff[e.From] + pos[e.From]
		g.outArc[i] = Arc{To: e.To, W: e.W}
		pos[e.From]++
	}

	// Reverse CSR via counting sort on To.
	g.inOff = make([]int32, b.n+1)
	for _, e := range b.edges {
		g.inOff[e.To+1]++
	}
	for v := 0; v < b.n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	g.inArc = make([]Arc, len(b.edges))
	for i := range pos {
		pos[i] = 0
	}
	for _, e := range b.edges {
		i := g.inOff[e.To] + pos[e.To]
		g.inArc[i] = Arc{To: e.From, W: e.W}
		pos[e.To]++
	}

	// Categories.
	g.catOff = make([]int32, b.n+1)
	for v, cs := range b.cats {
		g.catOff[v+1] = int32(len(cs))
	}
	for v := 0; v < b.n; v++ {
		g.catOff[v+1] += g.catOff[v]
	}
	g.catIDs = make([]Category, g.catOff[b.n])
	g.byCat = make([][]Vertex, b.numCats)
	for v := 0; v < b.n; v++ {
		cs := b.cats[Vertex(v)]
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		copy(g.catIDs[g.catOff[v]:g.catOff[v+1]], cs)
		for _, c := range cs {
			g.byCat[c] = append(g.byCat[c], Vertex(v))
		}
	}

	g.catNames = b.catNames
	if len(b.vertexNames) > 0 {
		g.vertexNames = make([]string, b.n)
		for v, name := range b.vertexNames {
			g.vertexNames[v] = name
		}
		g.vertexIndex = b.vertexIndex
	}
	return g, nil
}

// MustBuild is Build for tests and fixtures known to be valid; it panics
// on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
