// Package graph provides the weighted, categorized graph model used by
// every subsystem of the KOSR reproduction (Definition 1 of the paper):
// a directed weighted graph G(V, E, F, W) where the category function F
// maps each vertex to a set of categories and the weight function W maps
// each edge to a non-negative cost. Edge weights are arbitrary and need
// not satisfy the triangle inequality.
//
// The in-memory representation is a compressed sparse row (CSR) adjacency
// for both the forward and the reverse direction, so that forward and
// backward Dijkstra searches (needed by pruned landmark labeling and by
// contraction hierarchies) are equally cheap.
package graph

import (
	"fmt"
	"math"
)

// Vertex identifies a vertex; vertices are dense integers in [0, N).
type Vertex = int32

// Category identifies a vertex category; categories are dense integers in
// [0, NumCategories).
type Category = int32

// Weight is a non-negative edge or path cost.
type Weight = float64

// Inf is the weight of a non-existent path.
var Inf = math.Inf(1)

// Edge is a single directed edge with its weight.
type Edge struct {
	From, To Vertex
	W        Weight
}

// Arc is the head of an edge as stored in adjacency lists.
type Arc struct {
	To Vertex
	W  Weight
}

// Graph is an immutable directed weighted graph with vertex categories.
// Build one with a Builder. The zero value is an empty graph.
type Graph struct {
	n        int
	m        int
	directed bool

	// Forward CSR adjacency.
	outOff []int32
	outArc []Arc
	// Reverse CSR adjacency.
	inOff []int32
	inArc []Arc

	// Vertex categories: catOff/catIDs is a CSR of F(v); byCat[c] lists
	// the vertices of category c (the set V_C of Definition 3).
	catOff []int32
	catIDs []Category
	byCat  [][]Vertex

	catNames []string
	catIndex map[string]Category

	vertexNames []string
	vertexIndex map[string]Vertex
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of stored directed arcs. For a graph built
// with Directed(false) each undirected edge counts twice.
func (g *Graph) NumEdges() int { return g.m }

// Directed reports whether the graph was built as a directed graph.
func (g *Graph) Directed() bool { return g.directed }

// Out returns the outgoing arcs of v. The returned slice is shared; do
// not modify it.
func (g *Graph) Out(v Vertex) []Arc { return g.outArc[g.outOff[v]:g.outOff[v+1]] }

// In returns the incoming arcs of v (as arcs of the reverse graph). The
// returned slice is shared; do not modify it.
func (g *Graph) In(v Vertex) []Arc { return g.inArc[g.inOff[v]:g.inOff[v+1]] }

// OutDegree returns the number of outgoing arcs of v.
func (g *Graph) OutDegree(v Vertex) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the number of incoming arcs of v.
func (g *Graph) InDegree(v Vertex) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Degree returns the total degree (in + out) of v.
func (g *Graph) Degree(v Vertex) int { return g.OutDegree(v) + g.InDegree(v) }

// NumCategories returns the number of distinct categories (|S|).
func (g *Graph) NumCategories() int { return len(g.byCat) }

// Categories returns F(v), the categories of vertex v. The returned slice
// is shared; do not modify it.
func (g *Graph) Categories(v Vertex) []Category {
	return g.catIDs[g.catOff[v]:g.catOff[v+1]]
}

// HasCategory reports whether c ∈ F(v).
func (g *Graph) HasCategory(v Vertex, c Category) bool {
	for _, cc := range g.Categories(v) {
		if cc == c {
			return true
		}
	}
	return false
}

// VerticesOf returns V_c, the vertices belonging to category c, in
// ascending vertex order. The returned slice is shared; do not modify it.
func (g *Graph) VerticesOf(c Category) []Vertex {
	if int(c) < 0 || int(c) >= len(g.byCat) {
		return nil
	}
	return g.byCat[c]
}

// CategorySize returns |V_c|.
func (g *Graph) CategorySize(c Category) int { return len(g.VerticesOf(c)) }

// CategoryName returns the symbolic name of category c, or a numeric
// fallback when the category was never named.
func (g *Graph) CategoryName(c Category) string {
	if int(c) < len(g.catNames) && g.catNames[c] != "" {
		return g.catNames[c]
	}
	return fmt.Sprintf("cat%d", c)
}

// CategoryByName resolves a symbolic category name.
func (g *Graph) CategoryByName(name string) (Category, bool) {
	c, ok := g.catIndex[name]
	return c, ok
}

// VertexName returns the symbolic name of vertex v, or a numeric fallback.
func (g *Graph) VertexName(v Vertex) string {
	if int(v) < len(g.vertexNames) && g.vertexNames[v] != "" {
		return g.vertexNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// VertexByName resolves a symbolic vertex name.
func (g *Graph) VertexByName(name string) (Vertex, bool) {
	v, ok := g.vertexIndex[name]
	return v, ok
}

// Edges calls fn for every stored arc. It stops early if fn returns false.
func (g *Graph) Edges(fn func(Edge) bool) {
	for u := 0; u < g.n; u++ {
		for _, a := range g.Out(Vertex(u)) {
			if !fn(Edge{From: Vertex(u), To: a.To, W: a.W}) {
				return
			}
		}
	}
}

// TotalWeight returns the sum of all arc weights (useful as a finite
// upper bound on any shortest path cost).
func (g *Graph) TotalWeight() Weight {
	var s Weight
	for _, a := range g.outArc {
		s += a.W
	}
	return s
}

// Validate checks structural invariants and returns a descriptive error
// when one is violated. Graphs produced by Builder.Build always validate.
func (g *Graph) Validate() error {
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return fmt.Errorf("graph: offset arrays have wrong length (n=%d)", g.n)
	}
	if len(g.outArc) != g.m || len(g.inArc) != g.m {
		return fmt.Errorf("graph: arc arrays have wrong length (m=%d, out=%d, in=%d)",
			g.m, len(g.outArc), len(g.inArc))
	}
	for v := 0; v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] || g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: non-monotone CSR offsets at vertex %d", v)
		}
	}
	for i, a := range g.outArc {
		if a.To < 0 || int(a.To) >= g.n {
			return fmt.Errorf("graph: arc %d has out-of-range head %d", i, a.To)
		}
		if a.W < 0 || math.IsNaN(a.W) {
			return fmt.Errorf("graph: arc %d has invalid weight %v", i, a.W)
		}
	}
	for c, vs := range g.byCat {
		for _, v := range vs {
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: category %d contains out-of-range vertex %d", c, v)
			}
			if !g.HasCategory(v, Category(c)) {
				return fmt.Errorf("graph: category %d lists vertex %d but F(%d) disagrees", c, v, v)
			}
		}
	}
	return nil
}
