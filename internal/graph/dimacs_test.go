package graph

import (
	"strings"
	"testing"
)

const sampleDIMACS = `c 9th DIMACS shortest path sample
c a triangle plus a pendant vertex
p sp 4 5
a 1 2 10
a 2 3 20
a 3 1 30
a 1 3 15
a 3 4 7
`

func TestReadDIMACS(t *testing.T) {
	g, err := ReadDIMACS(strings.NewReader(sampleDIMACS))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 5 || !g.Directed() {
		t.Fatalf("n=%d m=%d directed=%v", g.NumVertices(), g.NumEdges(), g.Directed())
	}
	// Arc 1→2 weight 10 becomes 0→1.
	found := false
	for _, a := range g.Out(0) {
		if a.To == 1 && a.W == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("arc 0->1 (10) missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	bad := []string{
		"",                              // no problem line
		"p sp 2 1\np sp 2 1\na 1 2 1\n", // duplicate problem line
		"a 1 2 3\n",                     // arc before problem
		"p tw 2 1\na 1 2 1\n",           // wrong problem type
		"p sp x 1\n",                    // bad n
		"p sp 2 1\na 0 2 1\n",           // 0-based vertex
		"p sp 2 1\na 1 2\n",             // short arc line
		"p sp 2 1\na 1 2 x\n",           // bad weight
		"p sp 2 2\na 1 2 1\n",           // arc count mismatch
		"p sp 2 1\nz nonsense\n",        // unknown record
		"p sp 2 1\na 1 9 1\n",           // head out of range
		"p sp 2 1\na 1 2 -5\n",          // negative weight (builder rejects)
	}
	for i, s := range bad {
		if _, err := ReadDIMACS(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: want error for %q", i, s)
		}
	}
}

func TestReadDIMACSCommentsAndBlanks(t *testing.T) {
	in := "c hi\n\nc there\np sp 2 1\n\na 1 2 4\nc trailing\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}
