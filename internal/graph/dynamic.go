package graph

import (
	"fmt"

	"repro/internal/pagevec"
)

// Dynamic overlays extra edges on an immutable Graph, supporting the
// graph-structure updates of Section IV-C without rebuilding the CSR
// representation. It satisfies the adjacency interface the label
// package's incremental update routines traverse.
//
// The per-vertex overlay arc lists live in paged copy-on-write vectors
// (see internal/pagevec), so Clone copies only the page tables —
// O(|V|/PageSize) — and an AddEdge pays for the pages it touches, never
// for the graph size.
type Dynamic struct {
	base     *Graph
	extraOut *pagevec.Vec[[]Arc]
	extraIn  *pagevec.Vec[[]Arc]
	extra    int
}

// NewDynamic wraps g.
func NewDynamic(g *Graph) *Dynamic {
	n := g.NumVertices()
	return &Dynamic{
		base:     g,
		extraOut: pagevec.New[[]Arc](n),
		extraIn:  pagevec.New[[]Arc](n),
	}
}

// Base returns the wrapped immutable graph.
func (d *Dynamic) Base() *Graph { return d.base }

// Clone returns an overlay that shares d's pages and arc slices until a
// mutation touches them: AddEdge replaces whole arc lists in
// copy-on-write pages, so a chain of clones forms a persistent history —
// snapshot N keeps reading its frozen overlay while snapshot N+1 is
// built from a clone. Cost is O(|V|/PageSize) page-table copies,
// independent of how many vertices the overlay has touched.
func (d *Dynamic) Clone() *Dynamic {
	return &Dynamic{
		base:     d.base,
		extraOut: d.extraOut.Clone(),
		extraIn:  d.extraIn.Clone(),
		extra:    d.extra,
	}
}

// NumVertices returns |V|.
func (d *Dynamic) NumVertices() int { return d.base.NumVertices() }

// NumExtraEdges returns the number of overlay arcs.
func (d *Dynamic) NumExtraEdges() int { return d.extra }

// CopyStats reports the cumulative copy-on-write work this overlay
// performed (pages copied and bytes moved) since it was created; the
// snapshot updater folds it into the apply metrics.
func (d *Dynamic) CopyStats() (pages, bytes uint64) {
	po, bo := d.extraOut.CopyStats()
	pi, bi := d.extraIn.CopyStats()
	return po + pi, bo + bi
}

// Residency reports the overlay's materialized pages split into shared
// (aliased by other epochs' clones) and owned; see
// pagevec.Vec.Residency.
func (d *Dynamic) Residency() (shared, owned int) {
	so, oo := d.extraOut.Residency()
	si, oi := d.extraIn.Residency()
	return so + si, oo + oi
}

// appendArc replaces vec[v] with a freshly allocated list carrying one
// more arc. Mutations never write a shared backing array, so clones of
// any earlier epoch keep reading their own lists.
func appendArc(vec *pagevec.Vec[[]Arc], v Vertex, a Arc) {
	old := vec.Get(int(v))
	fresh := make([]Arc, len(old)+1)
	copy(fresh, old)
	fresh[len(old)] = a
	vec.Set(int(v), fresh)
}

// AddEdge inserts the arc (u, v, w) into the overlay. For undirected
// base graphs the reverse arc is inserted as well. Lowering the weight
// of an existing edge is modelled by inserting a cheaper parallel arc.
func (d *Dynamic) AddEdge(u, v Vertex, w Weight) error {
	n := Vertex(d.base.NumVertices())
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: dynamic edge (%d,%d) out of range", u, v)
	}
	if w < 0 || w != w {
		return fmt.Errorf("graph: invalid weight %v", w)
	}
	appendArc(d.extraOut, u, Arc{To: v, W: w})
	appendArc(d.extraIn, v, Arc{To: u, W: w})
	d.extra++
	if !d.base.Directed() && u != v {
		appendArc(d.extraOut, v, Arc{To: u, W: w})
		appendArc(d.extraIn, u, Arc{To: v, W: w})
		d.extra++
	}
	return nil
}

// Out returns the combined outgoing arcs of v. When overlay arcs exist
// for v the result is freshly allocated.
func (d *Dynamic) Out(v Vertex) []Arc {
	base := d.base.Out(v)
	extra := d.extraOut.Get(int(v))
	if len(extra) == 0 {
		return base
	}
	out := make([]Arc, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// In returns the combined incoming arcs of v.
func (d *Dynamic) In(v Vertex) []Arc {
	base := d.base.In(v)
	extra := d.extraIn.Get(int(v))
	if len(extra) == 0 {
		return base
	}
	in := make([]Arc, 0, len(base)+len(extra))
	in = append(in, base...)
	return append(in, extra...)
}

// Rebuild materializes the overlay into a fresh immutable Graph
// (categories and names carry over).
func (d *Dynamic) Rebuild() (*Graph, error) {
	g := d.base
	b := NewBuilder(g.NumVertices(), true) // arcs are added individually
	b.EnsureCategories(g.NumCategories())
	g.Edges(func(e Edge) bool {
		b.AddEdge(e.From, e.To, e.W)
		return true
	})
	d.extraOut.Range(func(u int, arcs []Arc) bool {
		for _, a := range arcs {
			b.AddEdge(Vertex(u), a.To, a.W)
		}
		return true
	})
	for v := 0; v < g.NumVertices(); v++ {
		for _, c := range g.Categories(Vertex(v)) {
			b.AddCategory(Vertex(v), c)
		}
	}
	return b.Build()
}
