package graph

import "fmt"

// Dynamic overlays extra edges on an immutable Graph, supporting the
// graph-structure updates of Section IV-C without rebuilding the CSR
// representation. It satisfies the adjacency interface the label
// package's incremental update routines traverse.
type Dynamic struct {
	base     *Graph
	extraOut map[Vertex][]Arc
	extraIn  map[Vertex][]Arc
	extra    int
}

// NewDynamic wraps g.
func NewDynamic(g *Graph) *Dynamic {
	return &Dynamic{
		base:     g,
		extraOut: make(map[Vertex][]Arc),
		extraIn:  make(map[Vertex][]Arc),
	}
}

// Base returns the wrapped immutable graph.
func (d *Dynamic) Base() *Graph { return d.base }

// Clone returns an overlay that shares d's arc slices but owns its own
// adjacency maps, so AddEdge on the clone never changes what d's Out/In
// return. Together with the fact that AddEdge only ever appends — it
// never rewrites an existing slice element — a chain of clones forms a
// copy-on-write history: snapshot N keeps reading its frozen overlay
// while snapshot N+1 is built from a clone. Cost is O(#touched
// vertices), independent of |V| and of the base graph size.
func (d *Dynamic) Clone() *Dynamic {
	c := &Dynamic{
		base:     d.base,
		extraOut: make(map[Vertex][]Arc, len(d.extraOut)),
		extraIn:  make(map[Vertex][]Arc, len(d.extraIn)),
		extra:    d.extra,
	}
	for v, arcs := range d.extraOut {
		c.extraOut[v] = arcs[:len(arcs):len(arcs)]
	}
	for v, arcs := range d.extraIn {
		c.extraIn[v] = arcs[:len(arcs):len(arcs)]
	}
	return c
}

// NumVertices returns |V|.
func (d *Dynamic) NumVertices() int { return d.base.NumVertices() }

// NumExtraEdges returns the number of overlay arcs.
func (d *Dynamic) NumExtraEdges() int { return d.extra }

// AddEdge inserts the arc (u, v, w) into the overlay. For undirected
// base graphs the reverse arc is inserted as well. Lowering the weight
// of an existing edge is modelled by inserting a cheaper parallel arc.
func (d *Dynamic) AddEdge(u, v Vertex, w Weight) error {
	n := Vertex(d.base.NumVertices())
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: dynamic edge (%d,%d) out of range", u, v)
	}
	if w < 0 || w != w {
		return fmt.Errorf("graph: invalid weight %v", w)
	}
	d.extraOut[u] = append(d.extraOut[u], Arc{To: v, W: w})
	d.extraIn[v] = append(d.extraIn[v], Arc{To: u, W: w})
	d.extra++
	if !d.base.Directed() && u != v {
		d.extraOut[v] = append(d.extraOut[v], Arc{To: u, W: w})
		d.extraIn[u] = append(d.extraIn[u], Arc{To: v, W: w})
		d.extra++
	}
	return nil
}

// Out returns the combined outgoing arcs of v. When overlay arcs exist
// for v the result is freshly allocated.
func (d *Dynamic) Out(v Vertex) []Arc {
	base := d.base.Out(v)
	extra := d.extraOut[v]
	if len(extra) == 0 {
		return base
	}
	out := make([]Arc, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// In returns the combined incoming arcs of v.
func (d *Dynamic) In(v Vertex) []Arc {
	base := d.base.In(v)
	extra := d.extraIn[v]
	if len(extra) == 0 {
		return base
	}
	in := make([]Arc, 0, len(base)+len(extra))
	in = append(in, base...)
	return append(in, extra...)
}

// Rebuild materializes the overlay into a fresh immutable Graph
// (categories and names carry over).
func (d *Dynamic) Rebuild() (*Graph, error) {
	g := d.base
	b := NewBuilder(g.NumVertices(), true) // arcs are added individually
	b.EnsureCategories(g.NumCategories())
	g.Edges(func(e Edge) bool {
		b.AddEdge(e.From, e.To, e.W)
		return true
	})
	for u, arcs := range d.extraOut {
		for _, a := range arcs {
			b.AddEdge(u, a.To, a.W)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, c := range g.Categories(Vertex(v)) {
			b.AddCategory(Vertex(v), c)
		}
	}
	return b.Build()
}
