package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 10)
	b.AddCategory(1, 0)
	b.AddCategory(2, 1)
	b.AddCategory(2, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.Out(0); len(got) != 2 {
		t.Fatalf("Out(0)=%v", got)
	}
	if got := g.In(2); len(got) != 2 {
		t.Fatalf("In(2)=%v", got)
	}
	if !g.HasCategory(2, 0) || !g.HasCategory(2, 1) || g.HasCategory(0, 0) {
		t.Fatal("category membership wrong")
	}
	if got := g.VerticesOf(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("VerticesOf(0)=%v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderUndirectedAddsBothArcs(t *testing.T) {
	g := NewBuilder(2, false).AddEdge(0, 1, 3).MustBuild()
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2", g.NumEdges())
	}
	if g.Out(1)[0].To != 0 || g.Out(1)[0].W != 3 {
		t.Fatalf("reverse arc missing: %v", g.Out(1))
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Graph, error)
	}{
		{"vertex out of range", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(0, 5, 1).Build() }},
		{"negative vertex", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(-1, 0, 1).Build() }},
		{"negative weight", func() (*Graph, error) { return NewBuilder(2, true).AddEdge(0, 1, -2).Build() }},
		{"nan weight", func() (*Graph, error) {
			nan := 0.0
			nan /= nan
			return NewBuilder(2, true).AddEdge(0, 1, nan).Build()
		}},
		{"negative category", func() (*Graph, error) { return NewBuilder(2, true).AddCategory(0, -1).Build() }},
		{"negative count", func() (*Graph, error) { return NewBuilder(-1, true).Build() }},
		{"dup vertex name", func() (*Graph, error) {
			return NewBuilder(2, true).NameVertex(0, "x").NameVertex(1, "x").Build()
		}},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

func TestAddCategoryIdempotent(t *testing.T) {
	g := NewBuilder(1, true).AddCategory(0, 3).AddCategory(0, 3).MustBuild()
	if len(g.Categories(0)) != 1 {
		t.Fatalf("categories=%v", g.Categories(0))
	}
	if g.NumCategories() != 4 {
		t.Fatalf("numCategories=%d, want 4 (dense ids)", g.NumCategories())
	}
}

func TestFigure1Shape(t *testing.T) {
	g := Figure1()
	if g.NumVertices() != 8 || g.NumEdges() != 14 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ma, ok := g.CategoryByName("MA")
	if !ok {
		t.Fatal("MA missing")
	}
	vs := g.VerticesOf(ma)
	if len(vs) != 2 {
		t.Fatalf("|MA|=%d", len(vs))
	}
	a, _ := g.VertexByName("a")
	c, _ := g.VertexByName("c")
	if vs[0] != a || vs[1] != c {
		t.Fatalf("MA=%v, want [a c]=[%d %d]", vs, a, c)
	}
	s, _ := g.VertexByName("s")
	// dis(s,a)=8 is a direct edge.
	found := false
	for _, arc := range g.Out(s) {
		if arc.To == a && arc.W == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge s->a weight 8 missing")
	}
	if g.VertexName(s) != "s" || g.CategoryName(ma) != "MA" {
		t.Fatal("names not preserved")
	}
}

func TestRoundTripFigure1(t *testing.T) {
	g := Figure1()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		if len(g2.Categories(v)) != len(g.Categories(v)) {
			t.Fatalf("categories of %d differ", v)
		}
	}
}

func TestRoundTripUndirected(t *testing.T) {
	g := NewBuilder(4, false).
		AddEdge(0, 1, 1).AddEdge(1, 2, 2).AddEdge(2, 3, 3).AddEdge(3, 0, 4).
		MustBuild()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Each undirected edge written once.
	if n := strings.Count(buf.String(), "\ne "); n != 4 {
		t.Fatalf("wrote %d edge lines, want 4:\n%s", n, buf.String())
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 8 || g2.Directed() {
		t.Fatalf("m=%d directed=%v", g2.NumEdges(), g2.Directed())
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"",                                 // empty
		"e 0 1 2\n",                        // edge before header
		"g directed x 0\n",                 // bad vertex count
		"g sideways 3 0\n",                 // bad direction
		"g directed 3 0\ng directed 3 0\n", // duplicate header
		"g directed 3 0\ne 0 9 1\n",        // vertex out of range
		"g directed 3 0\ne 0 1\n",          // short edge line
		"g directed 3 0\nv 0 a\n",          // bad category id
		"g directed 3 0\nz 1 2\n",          // unknown record
		"g directed 3 0\ne 0 1 -3\n",       // negative weight
	}
	for i, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: want error for %q", i, s)
		}
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := Figure1()
	count := 0
	g.Edges(func(Edge) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("count=%d", count)
	}
}

// Property: CSR round trip — every edge added to the builder appears in
// both Out of its tail and In of its head.
func TestCSRConsistencyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n, true)
		type key struct{ u, v Vertex }
		want := make(map[key]int)
		for i := 0; i < 3*n; i++ {
			u := Vertex(rng.Intn(n))
			v := Vertex(rng.Intn(n))
			b.AddEdge(u, v, float64(rng.Intn(100)))
			want[key{u, v}]++
		}
		g := b.MustBuild()
		gotOut := make(map[key]int)
		g.Edges(func(e Edge) bool {
			gotOut[key{e.From, e.To}]++
			return true
		})
		gotIn := make(map[key]int)
		for v := 0; v < n; v++ {
			for _, a := range g.In(Vertex(v)) {
				gotIn[key{a.To, Vertex(v)}]++
			}
		}
		for k, c := range want {
			if gotOut[k] != c || gotIn[k] != c {
				return false
			}
		}
		return len(gotOut) == len(want) && len(gotIn) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalWeight(t *testing.T) {
	g := NewBuilder(3, true).AddEdge(0, 1, 1.5).AddEdge(1, 2, 2.5).MustBuild()
	if got := g.TotalWeight(); got != 4 {
		t.Fatalf("TotalWeight=%v", got)
	}
}

// TestDynamicClone pins the overlay's copy-on-write contract: AddEdge
// on a clone never changes what the parent's Out/In return, so a
// snapshot chain can keep the parent frozen while the next version
// grows.
func TestDynamicClone(t *testing.T) {
	g := NewBuilder(4, true).AddEdge(0, 1, 1).MustBuild()
	parent := NewDynamic(g)
	if err := parent.AddEdge(1, 2, 5); err != nil {
		t.Fatal(err)
	}

	child := parent.Clone()
	if err := child.AddEdge(1, 3, 7); err != nil {
		t.Fatal(err)
	}
	if err := child.AddEdge(2, 3, 2); err != nil {
		t.Fatal(err)
	}

	if n := parent.NumExtraEdges(); n != 1 {
		t.Fatalf("parent extra=%d, want 1", n)
	}
	if n := child.NumExtraEdges(); n != 3 {
		t.Fatalf("child extra=%d, want 3", n)
	}
	if out := parent.Out(1); len(out) != 1 || out[0].To != 2 {
		t.Fatalf("parent.Out(1)=%v, want only the (1,2) overlay arc", out)
	}
	if out := parent.Out(2); len(out) != 0 {
		t.Fatalf("parent.Out(2)=%v, want empty", out)
	}
	if out := child.Out(1); len(out) != 2 {
		t.Fatalf("child.Out(1)=%v, want 2 arcs", out)
	}
	if in := parent.In(3); len(in) != 0 {
		t.Fatalf("parent.In(3)=%v, want empty", in)
	}
	if in := child.In(3); len(in) != 2 {
		t.Fatalf("child.In(3)=%v, want 2 arcs", in)
	}

	// A grandchild keeps extending without disturbing either ancestor.
	grand := child.Clone()
	if err := grand.AddEdge(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(parent.Out(1)) != 1 || len(child.Out(1)) != 2 || len(grand.Out(1)) != 3 {
		t.Fatalf("chain lengths: parent=%d child=%d grand=%d",
			len(parent.Out(1)), len(child.Out(1)), len(grand.Out(1)))
	}
}
