package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses a graph in the 9th DIMACS Implementation Challenge
// shortest-path format — the format the paper's COL and FLA road
// networks are distributed in (http://www.dis.uniroma1.it/challenge9):
//
//	c <comment>
//	p sp <numVertices> <numArcs>
//	a <from> <to> <weight>     (vertices are 1-based)
//
// The result is a directed graph with 0-based vertices and no
// categories; assign categories afterwards (e.g. with the gen package's
// uniform or Zipf assigners, as the paper does for COL and FLA).
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var b *Builder
	lineNo := 0
	arcs := 0
	declared := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case 'c':
			continue
		case 'p':
			if b != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("dimacs: line %d: want \"p sp <n> <m>\"", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad vertex count %q", lineNo, fields[2])
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad arc count %q", lineNo, fields[3])
			}
			declared = m
			b = NewBuilder(n, true)
		case 'a':
			if b == nil {
				return nil, fmt.Errorf("dimacs: line %d: arc before problem line", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("dimacs: line %d: want \"a <from> <to> <w>\"", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil || u < 1 {
				return nil, fmt.Errorf("dimacs: line %d: bad tail %q", lineNo, fields[1])
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 1 {
				return nil, fmt.Errorf("dimacs: line %d: bad head %q", lineNo, fields[2])
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("dimacs: line %d: bad weight %q", lineNo, fields[3])
			}
			b.AddEdge(Vertex(u-1), Vertex(v-1), w)
			arcs++
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown record %q", lineNo, line[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dimacs: missing problem line")
	}
	if declared >= 0 && arcs != declared {
		return nil, fmt.Errorf("dimacs: declared %d arcs, found %d", declared, arcs)
	}
	return b.Build()
}
