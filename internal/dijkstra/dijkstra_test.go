package dijkstra

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// floydWarshall computes all-pairs shortest distances by dynamic
// programming; the reference oracle for every search test.
func floydWarshall(g *graph.Graph) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = graph.Inf
			}
		}
	}
	g.Edges(func(e graph.Edge) bool {
		if e.W < d[e.From][e.To] {
			d[e.From][e.To] = e.W
		}
		return true
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(d[i][k], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		b.AddEdge(u, v, float64(1+rng.Intn(20)))
	}
	return b.MustBuild()
}

func TestFigure1Distances(t *testing.T) {
	g := graph.Figure1()
	name := func(s string) graph.Vertex {
		v, ok := g.VertexByName(s)
		if !ok {
			t.Fatalf("vertex %q missing", s)
		}
		return v
	}
	s := New(g)
	// Every distance quoted in the paper (Tables IV/V, Examples 3–6).
	cases := []struct {
		from, to string
		want     float64
	}{
		{"s", "a", 8}, {"s", "c", 10}, {"s", "t", 17}, {"s", "e", 14},
		{"s", "b", 13}, {"s", "d", 13}, {"s", "f", 24},
		{"a", "c", 20}, {"a", "t", 12}, {"a", "s", 10}, {"a", "b", 5}, {"a", "e", 6},
		{"b", "t", 7}, {"b", "s", 5},
		{"c", "t", 7}, {"c", "d", 3}, {"c", "b", 5}, {"c", "e", 17},
		{"d", "t", 4}, {"e", "t", 7}, {"f", "t", 3},
		{"t", "s", 25}, {"t", "a", 33}, {"t", "b", 20}, {"t", "c", 15},
		{"t", "d", 13}, {"t", "e", 10}, {"t", "f", 20},
		{"e", "f", 10}, {"s", "s", 0},
	}
	for _, tc := range cases {
		got := s.ToTarget(name(tc.from), name(tc.to))
		if got != tc.want {
			t.Errorf("dis(%s,%s)=%v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestFromSourceMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 2+rng.Intn(25), 60)
		want := floydWarshall(g)
		s := New(g)
		for src := 0; src < g.NumVertices(); src++ {
			s.FromSource(graph.Vertex(src), false)
			for v := 0; v < g.NumVertices(); v++ {
				if s.Dist(graph.Vertex(v)) != want[src][v] {
					t.Fatalf("trial %d: dis(%d,%d)=%v, want %v",
						trial, src, v, s.Dist(graph.Vertex(v)), want[src][v])
				}
			}
		}
	}
}

func TestReverseSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 20, 50)
	want := floydWarshall(g)
	s := New(g)
	for dst := 0; dst < g.NumVertices(); dst++ {
		s.FromSource(graph.Vertex(dst), true)
		for v := 0; v < g.NumVertices(); v++ {
			if s.Dist(graph.Vertex(v)) != want[v][dst] {
				t.Fatalf("reverse dis(%d,%d)=%v, want %v",
					v, dst, s.Dist(graph.Vertex(v)), want[v][dst])
			}
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	g := graph.Figure1()
	sv, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	s := New(g)
	s.FromSource(sv, false)
	path := s.Path(tv)
	// Shortest s->t is s->c->d->t with cost 17.
	names := make([]string, len(path))
	for i, v := range path {
		names[i] = g.VertexName(v)
	}
	want := []string{"s", "c", "d", "t"}
	if len(names) != len(want) {
		t.Fatalf("path=%v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("path=%v, want %v", names, want)
		}
	}
	// Path cost must equal the distance label.
	var cost float64
	for i := 0; i+1 < len(path); i++ {
		best := graph.Inf
		for _, a := range g.Out(path[i]) {
			if a.To == path[i+1] && a.W < best {
				best = a.W
			}
		}
		cost += best
	}
	if cost != s.Dist(tv) {
		t.Fatalf("path cost %v != dist %v", cost, s.Dist(tv))
	}
}

func TestPathUnreachable(t *testing.T) {
	g := graph.NewBuilder(3, true).AddEdge(0, 1, 1).MustBuild()
	s := New(g)
	s.FromSource(0, false)
	if s.Path(2) != nil {
		t.Fatal("expected nil path to unreachable vertex")
	}
	if !math.IsInf(s.ToTarget(0, 2), 1) {
		t.Fatal("expected +Inf")
	}
}

func TestMultiSource(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 25, 70)
	want := floydWarshall(g)
	seeds := []Seed{{V: 3, D: 5}, {V: 10, D: 0}, {V: 17, D: 2.5}}
	s := New(g)
	s.MultiSource(seeds, false)
	for v := 0; v < g.NumVertices(); v++ {
		best := graph.Inf
		for _, seed := range seeds {
			if d := seed.D + want[seed.V][v]; d < best {
				best = d
			}
		}
		if s.Dist(graph.Vertex(v)) != best {
			t.Fatalf("multisource dist(%d)=%v, want %v", v, s.Dist(graph.Vertex(v)), best)
		}
	}
}

func TestSearchReuse(t *testing.T) {
	g := graph.Figure1()
	sv, _ := g.VertexByName("s")
	av, _ := g.VertexByName("a")
	tv, _ := g.VertexByName("t")
	s := New(g)
	for i := 0; i < 3; i++ { // repeated searches must not leak state
		if got := s.ToTarget(sv, tv); got != 17 {
			t.Fatalf("iter %d: dis(s,t)=%v", i, got)
		}
		if got := s.ToTarget(av, tv); got != 12 {
			t.Fatalf("iter %d: dis(a,t)=%v", i, got)
		}
	}
}

func TestKNNOrderAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomGraphWithCats(rng, 2+rng.Intn(20), 50, 3)
		want := floydWarshall(g)
		cat := graph.Category(rng.Intn(3))
		src := graph.Vertex(rng.Intn(g.NumVertices()))

		// Reference: category vertices sorted by distance (finite only).
		type nd struct {
			v graph.Vertex
			d float64
		}
		var ref []nd
		for _, v := range g.VerticesOf(cat) {
			if !math.IsInf(want[src][v], 1) {
				ref = append(ref, nd{v, want[src][v]})
			}
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].d != ref[j].d {
				return ref[i].d < ref[j].d
			}
			return ref[i].v < ref[j].v
		})

		k := NewKNN(g, src, cat)
		var got []nd
		for x := 1; ; x++ {
			nb, ok := k.Get(x)
			if !ok {
				break
			}
			got = append(got, nd{nb.V, nb.D})
		}
		if len(got) != len(ref) {
			t.Fatalf("trial %d: found %d neighbours, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i].d != ref[i].d {
				t.Fatalf("trial %d: %d-th NN dist=%v, want %v", trial, i+1, got[i].d, ref[i].d)
			}
		}
		// Repeat queries must be cached and identical.
		for x := 1; x <= len(got); x++ {
			nb, ok := k.Get(x)
			if !ok || nb.D != got[x-1].d {
				t.Fatalf("trial %d: cached Get(%d) changed", trial, x)
			}
		}
	}
}

func randomGraphWithCats(rng *rand.Rand, n, m, ncats int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(ncats)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(20)))
	}
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			b.AddCategory(graph.Vertex(v), graph.Category(rng.Intn(ncats)))
		}
	}
	return b.MustBuild()
}

// Property: ToTarget is symmetric with the reverse-graph search.
func TestForwardReverseAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(15), 40)
		s := New(g)
		u := graph.Vertex(rng.Intn(g.NumVertices()))
		v := graph.Vertex(rng.Intn(g.NumVertices()))
		fwd := s.ToTarget(u, v)
		s.FromSource(v, true)
		rev := s.Dist(u)
		return fwd == rev || (math.IsInf(fwd, 1) && math.IsInf(rev, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllDistances(t *testing.T) {
	g := graph.Figure1()
	sv, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	d := AllDistances(g, sv, false)
	if d[tv] != 17 {
		t.Fatalf("AllDistances: d[t]=%v", d[tv])
	}
	rd := AllDistances(g, tv, true)
	if rd[sv] != 17 {
		t.Fatalf("AllDistances reverse: rd[s]=%v", rd[sv])
	}
}
