package dijkstra

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func BenchmarkSSSPGrid1600(b *testing.B) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 40, Cols: 40, Diagonals: true, Seed: 11}).MustBuild()
	s := New(g)
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FromSource(graph.Vertex(rng.Intn(g.NumVertices())), false)
	}
}

func BenchmarkMultiSource(b *testing.B) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 40, Cols: 40, Diagonals: true, Seed: 11}).MustBuild()
	s := New(g)
	rng := rand.New(rand.NewSource(13))
	seeds := make([]Seed, 100)
	for i := range seeds {
		seeds[i] = Seed{V: graph.Vertex(rng.Intn(g.NumVertices())), D: float64(rng.Intn(10))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MultiSource(seeds, false)
	}
}
