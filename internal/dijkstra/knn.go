package dijkstra

import (
	"unsafe"

	"repro/internal/graph"
	"repro/internal/pq"
)

// KNN is an incremental nearest-neighbour iterator from a fixed source
// vertex into a fixed category, implemented as a pausable Dijkstra
// search. Each call to Next resumes the search exactly where the previous
// call stopped, so finding the (x+1)-th neighbour after the x-th costs
// only the additional settles — this is the Dijkstra-based FindNN used by
// the KPNE-Dij / PK-Dij / SK-Dij variants of Section V.
//
// State is held in maps rather than dense arrays because route searches
// keep many KNN iterators alive at once (one per partially explored
// route tail); dense per-iterator arrays would need O(|V|) memory each.
type KNN struct {
	g       *graph.Graph
	cat     graph.Category
	settled map[graph.Vertex]bool
	dist    map[graph.Vertex]float64
	heap    *pq.Heap[knnItem]
	found   []Neighbor
	hw      int // high-water frontier size, for MemFootprint
}

type knnItem struct {
	v graph.Vertex
	d float64
}

// Neighbor is a category vertex together with its shortest-path distance
// from the iterator's source.
type Neighbor struct {
	V graph.Vertex
	D float64
}

// NewKNN returns an iterator over the vertices of category cat in
// ascending dis(source, ·) order.
func NewKNN(g *graph.Graph, source graph.Vertex, cat graph.Category) *KNN {
	k := &KNN{
		g:       g,
		cat:     cat,
		settled: make(map[graph.Vertex]bool),
		dist:    map[graph.Vertex]float64{source: 0},
		heap:    pq.NewHeap[knnItem](func(a, b knnItem) bool { return a.d < b.d }),
	}
	k.heap.Push(knnItem{v: source, d: 0})
	return k
}

// Reset rebinds the iterator to a new (graph, source, category) triple,
// keeping the allocated map buckets, heap array, and neighbour slice so a
// recycled iterator performs no steady-state allocation. It leaves the
// iterator exactly as NewKNN would.
func (k *KNN) Reset(g *graph.Graph, source graph.Vertex, cat graph.Category) {
	if n := len(k.dist); n > k.hw {
		k.hw = n
	}
	clear(k.settled)
	clear(k.dist)
	k.heap.Clear()
	k.found = k.found[:0]
	k.g = g
	k.cat = cat
	k.dist[source] = 0
	k.heap.Push(knnItem{v: source, d: 0})
}

// Unbind drops the graph reference so an iterator parked on a free list
// does not pin a superseded snapshot's graph alive. Reset rebinds it.
func (k *KNN) Unbind() { k.g = nil }

// MemFootprint estimates the bytes the iterator retains for reuse. Go
// maps keep their buckets across clear(), so the high-water mark of the
// search frontier stands in for the (unobservable) map capacity.
func (k *KNN) MemFootprint() int64 {
	hw := k.hw
	if n := len(k.dist); n > hw {
		hw = n
	}
	// Rough per-frontier-vertex cost of the settled and dist maps
	// (key+value+bucket overhead each).
	const mapEntryBytes = 40
	return int64(hw)*mapEntryBytes +
		int64(k.heap.Cap())*int64(unsafe.Sizeof(knnItem{})) +
		int64(cap(k.found))*int64(unsafe.Sizeof(Neighbor{}))
}

// Found returns the number of neighbours discovered so far.
func (k *KNN) Found() int { return len(k.found) }

// Get returns the x-th (1-based) nearest neighbour, resuming the
// underlying search as needed. ok is false when the category has fewer
// than x reachable vertices.
func (k *KNN) Get(x int) (Neighbor, bool) {
	for len(k.found) < x {
		nb, ok := k.next()
		if !ok {
			return Neighbor{}, false
		}
		k.found = append(k.found, nb)
	}
	return k.found[x-1], true
}

// next resumes the Dijkstra search until one more category vertex is
// settled.
func (k *KNN) next() (Neighbor, bool) {
	for k.heap.Len() > 0 {
		it := k.heap.Pop()
		if k.settled[it.v] {
			continue // stale heap entry
		}
		k.settled[it.v] = true
		for _, a := range k.g.Out(it.v) {
			nd := it.d + a.W
			if old, ok := k.dist[a.To]; !ok || nd < old {
				k.dist[a.To] = nd
				k.heap.Push(knnItem{v: a.To, d: nd})
			}
		}
		if k.g.HasCategory(it.v, k.cat) {
			return Neighbor{V: it.v, D: it.d}, true
		}
	}
	return Neighbor{}, false
}
