// Package dijkstra implements the shortest-path searches that every other
// subsystem builds on: single-source (forward or reverse), point-to-point
// with early termination, multi-source seeded searches (the engine of the
// GSP dynamic program), and an incremental k-nearest-neighbour iterator
// (the Dijkstra-based FindNN used by the paper's -Dij method variants).
package dijkstra

import (
	"math"

	"repro/internal/graph"
	"repro/internal/pq"
)

// Search is a reusable single-source shortest path workspace over a fixed
// graph. A Search is not safe for concurrent use; create one per
// goroutine.
type Search struct {
	g       *graph.Graph
	dist    []float64
	parent  []int32
	heap    *pq.IndexedHeap
	touched []int32
	reverse bool
}

// New returns a Search workspace for g.
func New(g *graph.Graph) *Search {
	n := g.NumVertices()
	s := &Search{
		g:      g,
		dist:   make([]float64, n),
		parent: make([]int32, n),
		heap:   pq.NewIndexedHeap(n),
	}
	for i := range s.dist {
		s.dist[i] = graph.Inf
		s.parent[i] = -1
	}
	return s
}

func (s *Search) reset() {
	for _, v := range s.touched {
		s.dist[v] = graph.Inf
		s.parent[v] = -1
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
}

func (s *Search) arcs(v graph.Vertex) []graph.Arc {
	if s.reverse {
		return s.g.In(v)
	}
	return s.g.Out(v)
}

func (s *Search) relax(u graph.Vertex, a graph.Arc, du float64) {
	nd := du + a.W
	if nd < s.dist[a.To] {
		if math.IsInf(s.dist[a.To], 1) {
			s.touched = append(s.touched, a.To)
		}
		s.dist[a.To] = nd
		s.parent[a.To] = u
		s.heap.PushOrDecrease(a.To, nd)
	}
}

// FromSource runs a complete SSSP from src. With reverse set, it searches
// the reverse graph, so Dist(v) afterwards is dis(v, src) in the original
// graph.
func (s *Search) FromSource(src graph.Vertex, reverse bool) {
	s.reset()
	s.reverse = reverse
	s.dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap.PushOrDecrease(src, 0)
	for s.heap.Len() > 0 {
		u, du := s.heap.PopMin()
		for _, a := range s.arcs(u) {
			s.relax(u, a, du)
		}
	}
}

// MultiSource runs an SSSP seeded with dist[seeds[i].V] = seeds[i].D,
// computing min_i (seeds[i].D + dis(seeds[i].V, v)) for every v. This is
// exactly the transition of the GSP dynamic program (Section III-B2).
type Seed struct {
	V graph.Vertex
	D float64
}

// MultiSource runs the seeded search described on Seed.
func (s *Search) MultiSource(seeds []Seed, reverse bool) {
	s.reset()
	s.reverse = reverse
	for _, seed := range seeds {
		if seed.D < s.dist[seed.V] {
			if math.IsInf(s.dist[seed.V], 1) {
				s.touched = append(s.touched, seed.V)
			}
			s.dist[seed.V] = seed.D
			s.heap.PushOrDecrease(seed.V, seed.D)
		}
	}
	for s.heap.Len() > 0 {
		u, du := s.heap.PopMin()
		for _, a := range s.arcs(u) {
			s.relax(u, a, du)
		}
	}
}

// ToTarget computes dis(src, dst), stopping as soon as dst is settled.
// It returns +Inf when dst is unreachable.
func (s *Search) ToTarget(src, dst graph.Vertex) float64 {
	s.reset()
	s.reverse = false
	s.dist[src] = 0
	s.touched = append(s.touched, src)
	s.heap.PushOrDecrease(src, 0)
	for s.heap.Len() > 0 {
		u, du := s.heap.PopMin()
		if u == dst {
			return du
		}
		for _, a := range s.arcs(u) {
			s.relax(u, a, du)
		}
	}
	return graph.Inf
}

// Dist returns the distance label of v computed by the last search, or
// +Inf when v was not reached.
func (s *Search) Dist(v graph.Vertex) float64 { return s.dist[v] }

// Path reconstructs the vertex sequence of the shortest path found by the
// last FromSource call, from the source to v (already reoriented for
// reverse searches). It returns nil when v was not reached.
func (s *Search) Path(v graph.Vertex) []graph.Vertex {
	if math.IsInf(s.dist[v], 1) {
		return nil
	}
	var rev []graph.Vertex
	for u := v; u != -1; u = s.parent[u] {
		rev = append(rev, u)
	}
	if s.reverse {
		// The reverse search grew from the target; rev is already in
		// original-graph order (search root last popped first).
		return rev
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Parent returns the predecessor of v in the last search's shortest path
// tree, or -1 for roots/seeds and unreached vertices.
func (s *Search) Parent(v graph.Vertex) graph.Vertex {
	if math.IsInf(s.dist[v], 1) {
		return -1
	}
	return graph.Vertex(s.parent[v])
}

// Origin returns the root (for FromSource) or the seed vertex (for
// MultiSource) whose search tree contains v, by walking the parent chain.
// It returns -1 when v was not reached by the last search.
func (s *Search) Origin(v graph.Vertex) graph.Vertex {
	if math.IsInf(s.dist[v], 1) {
		return -1
	}
	u := v
	for s.parent[u] != -1 {
		u = s.parent[u]
	}
	return u
}

// AllDistances is a convenience wrapper returning a fresh distance slice
// for one SSSP from src (reverse optionally).
func AllDistances(g *graph.Graph, src graph.Vertex, reverse bool) []float64 {
	s := New(g)
	s.FromSource(src, reverse)
	out := make([]float64, g.NumVertices())
	copy(out, s.dist)
	return out
}
