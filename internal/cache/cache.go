// Package cache provides the single-flight LRU result cache behind the
// query server: identical requests arriving concurrently compute once
// (the followers wait for the leader's result), and completed results
// are kept in an LRU so skewed traffic stops recomputing its hot set.
//
// The cache is value-agnostic: the server stores fully serialized
// response bytes, which makes cached and freshly computed responses
// byte-identical by construction.
package cache

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a bounded LRU keyed by string with single-flight
// deduplication of concurrent misses. The zero value is not usable;
// create one with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // -> *entry[V]
	order    *list.List               // front = most recently used
	inflight map[string]*call[V]
	epoch    uint64 // current index epoch; entries remember theirs

	hits, misses, coalesced int64
}

type entry[V any] struct {
	key   string
	val   V
	epoch uint64 // index epoch the value was computed on
}

// call is one in-flight computation; followers block on done.
type call[V any] struct {
	done  chan struct{}
	val   V
	err   error
	store bool
}

// New returns a cache holding at most capacity entries. capacity <= 0
// disables storage entirely (Do still deduplicates concurrent calls).
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*call[V]),
	}
}

// Do returns the cached value for key, or runs compute to produce it.
// Concurrent Do calls with the same key run compute once: the leader
// executes, the followers wait and share the leader's result. compute
// reports whether its value may be stored — a false store (e.g. a
// truncated search, which depends on the leader's wall-clock budget)
// is neither cached nor shared: followers observing one run their own
// compute, since the leader's partial answer is specific to its budget.
//
// A follower that has its own deadline does not outwait it: when ctx
// expires while the leader is still computing, Do returns ctx.Err().
// A nil ctx behaves like context.Background().
//
// hit reports whether the value came from the cache or from another
// caller's in-flight computation rather than from this call's compute.
//
// The stored entry is tagged with the epoch last passed to SetEpoch;
// callers that know the exact index epoch their compute runs against
// should use DoAt instead.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, bool, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	return c.DoAt(ctx, key, epoch, compute)
}

// DoAt is Do with an explicit epoch tag for the stored entry: the epoch
// of the index snapshot compute answers from. Tagging at the call site
// keeps the fresh/stale accounting exact even when updates publish
// while older-epoch computations are still in flight.
func (c *Cache[V]) DoAt(ctx context.Context, key string, epoch uint64, compute func() (V, bool, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		//lint:ignore epochstamp the entry epoch is a freshness tag for degraded-serving accounting, not a validity stamp; stored entries are servable at any epoch
		return el.Value.(*entry[V]).val, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		if ctx != nil {
			select {
			case <-cl.done:
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
		} else {
			<-cl.done
		}
		if cl.err != nil || cl.store {
			return cl.val, true, cl.err
		}
		// The leader's result was not shareable (e.g. truncated by its
		// own budget): answer this caller from its own computation.
		c.mu.Lock()
		c.coalesced--
		c.misses++
		c.mu.Unlock()
		val, _, err := compute()
		return val, false, err
	}
	cl := &call[V]{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	c.mu.Unlock()

	val, store, err := compute()
	cl.val, cl.err, cl.store = val, err, store

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil && store && c.capacity > 0 {
		if el, ok := c.entries[key]; ok {
			// A racing leader for the same key stored first (possible
			// when this leader started before that entry was evicted);
			// refresh recency rather than duplicating.
			ent := el.Value.(*entry[V])
			ent.val, ent.epoch = val, epoch
			c.order.MoveToFront(el)
		} else {
			c.entries[key] = c.order.PushFront(&entry[V]{key: key, val: val, epoch: epoch})
			for len(c.entries) > c.capacity {
				oldest := c.order.Back()
				c.order.Remove(oldest)
				//lint:ignore epochstamp the entry epoch is a freshness tag, not a validity stamp; eviction touches entries of every epoch
				delete(c.entries, oldest.Value.(*entry[V]).key)
			}
		}
	}
	c.mu.Unlock()
	close(cl.done)
	return val, false, err
}

// Peek returns the stored value for key without promoting the entry or
// touching the hit/miss counters: a read with no side effects on what
// the cache keeps resident. It backs degraded serving (a stale-epoch
// probe must not let emergency reads displace the fresh working set)
// and is safe alongside concurrent Do/DoAt calls.
func (c *Cache[V]) Peek(key string) (v V, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[key]; found {
		//lint:ignore epochstamp Peek backs degraded serving, which reads stale-epoch entries on purpose
		return el.Value.(*entry[V]).val, true
	}
	return v, false
}

// Stats reports cumulative cache behaviour: stored-entry hits,
// leader computations, and calls coalesced onto another caller's
// in-flight computation.
func (c *Cache[V]) Stats() (hits, misses, coalesced int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.coalesced
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SetEpoch records the current index epoch: the default tag for Do
// stores and the reference EpochLens counts freshness against. It is
// monotonic — a lower value is ignored, so concurrent updaters racing
// their SetEpoch calls cannot regress the tag. Callers that key entries
// by epoch (the server prefixes every cache key with the snapshot
// epoch) do not need a purge when the index mutates — superseded
// entries stop being requested and age out of the LRU — but the tags
// let EpochLens report how much of the cache is stale at any moment.
func (c *Cache[V]) SetEpoch(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.epoch = epoch
	}
}

// EpochLens reports how many stored entries were computed on the
// current epoch or later (fresh) versus an earlier one (stale, aging
// out of the LRU after an index update). Entries tagged ahead of the
// SetEpoch watermark — stored via DoAt before anyone told the cache
// about the new epoch — count as fresh. The scan is O(entries); it
// backs the /health cache metrics, not any hot path.
func (c *Cache[V]) EpochLens() (fresh, stale int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*entry[V]).epoch >= c.epoch {
			fresh++
		} else {
			stale++
		}
	}
	return fresh, stale
}

// Purge drops every stored entry (in-flight computations finish
// normally). Used when the underlying index mutates.
func (c *Cache[V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order.Init()
}
