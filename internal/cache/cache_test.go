package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New[int](2)
	compute := func(v int) func() (int, bool, error) {
		return func() (int, bool, error) { return v, true, nil }
	}
	if v, hit, err := c.Do(t.Context(), "a", compute(1)); v != 1 || hit || err != nil {
		t.Fatalf("first a: v=%d hit=%v err=%v", v, hit, err)
	}
	if v, hit, _ := c.Do(t.Context(), "a", compute(99)); v != 1 || !hit {
		t.Fatalf("second a must hit with the stored value, got v=%d hit=%v", v, hit)
	}
	c.Do(t.Context(), "b", compute(2))
	c.Do(t.Context(), "a", compute(1)) // refresh a's recency
	c.Do(t.Context(), "c", compute(3)) // evicts b, the least recently used
	if v, hit, _ := c.Do(t.Context(), "a", compute(99)); v != 1 || !hit {
		t.Fatalf("a must have survived the eviction: v=%d hit=%v", v, hit)
	}
	if v, hit, _ := c.Do(t.Context(), "b", compute(42)); hit || v != 42 {
		t.Fatalf("b must have been evicted: v=%d hit=%v", v, hit)
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
}

func TestNoStoreAndErrorsNotCached(t *testing.T) {
	c := New[int](4)
	calls := 0
	truncated := func() (int, bool, error) { calls++; return 7, false, nil }
	for i := 0; i < 3; i++ {
		if v, hit, err := c.Do(t.Context(), "t", truncated); v != 7 || hit || err != nil {
			t.Fatalf("truncated call %d: v=%d hit=%v err=%v", i, v, hit, err)
		}
	}
	if calls != 3 {
		t.Fatalf("no-store results must recompute: %d calls", calls)
	}
	boom := errors.New("boom")
	fails := func() (int, bool, error) { return 0, true, boom }
	if _, _, err := c.Do(t.Context(), "e", fails); !errors.Is(err, boom) {
		t.Fatal("error not propagated")
	}
	if _, hit, _ := c.Do(t.Context(), "e", func() (int, bool, error) { return 1, true, nil }); hit {
		t.Fatal("errored computation must not be cached")
	}
}

// TestSingleFlight pins the deduplication contract: N concurrent Do
// calls for one cold key run compute exactly once, and every caller
// gets the leader's value.
func TestSingleFlight(t *testing.T) {
	c := New[int](4)
	var computes atomic.Int64
	gate := make(chan struct{})
	const workers = 16
	var wg sync.WaitGroup
	var hits atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Do(t.Context(), "k", func() (int, bool, error) {
				computes.Add(1)
				<-gate // hold the computation open so followers pile up
				return 11, true, nil
			})
			if err != nil || v != 11 {
				t.Errorf("v=%d err=%v", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	if hits.Load() != workers-1 {
		t.Fatalf("hits=%d, want %d (every follower shares the leader's result)", hits.Load(), workers-1)
	}
	h, m, co := c.Stats()
	if m != 1 || h+co != workers-1 {
		t.Fatalf("stats hits=%d misses=%d coalesced=%d", h, m, co)
	}
}

// TestFollowerDoesNotShareNonStorableResult pins the truncation
// contract: a leader whose result may not be stored (budget-truncated)
// must not hand it to coalesced followers — each follower computes
// independently, since the partial answer reflects the leader's budget.
func TestFollowerDoesNotShareNonStorableResult(t *testing.T) {
	c := New[int](4)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	var followerV atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // leader: truncated result, storable=false
		defer wg.Done()
		v, hit, err := c.Do(t.Context(), "k", func() (int, bool, error) {
			close(leaderIn)
			<-gate
			return 1, false, nil
		})
		if v != 1 || hit || err != nil {
			t.Errorf("leader: v=%d hit=%v err=%v", v, hit, err)
		}
	}()
	go func() { // follower: must run its own compute, seeing the full value
		defer wg.Done()
		<-leaderIn
		v, hit, err := c.Do(t.Context(), "k", func() (int, bool, error) {
			return 2, true, nil
		})
		if err != nil {
			t.Errorf("follower: %v", err)
		}
		if hit && v == 1 {
			t.Error("follower was served the leader's non-storable result")
		}
		followerV.Store(int64(v))
	}()
	<-leaderIn
	close(gate)
	wg.Wait()
	if v := followerV.Load(); v != 2 {
		t.Fatalf("follower got %d, want its own computation (2)", v)
	}
}

// TestFollowerHonoursOwnContext: a follower with an expired context
// must not outwait a slow leader.
func TestFollowerHonoursOwnContext(t *testing.T) {
	c := New[int](4)
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	go c.Do(context.Background(), "k", func() (int, bool, error) {
		close(leaderIn)
		<-gate
		return 1, true, nil
	})
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (int, bool, error) { return 2, true, nil })
	close(gate)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err=%v, want context.Canceled", err)
	}
}

func TestZeroCapacityStillDedups(t *testing.T) {
	c := New[string](0)
	if v, hit, err := c.Do(t.Context(), "x", func() (string, bool, error) { return "v", true, nil }); v != "v" || hit || err != nil {
		t.Fatalf("v=%q hit=%v err=%v", v, hit, err)
	}
	if _, hit, _ := c.Do(t.Context(), "x", func() (string, bool, error) { return "w", true, nil }); hit {
		t.Fatal("zero-capacity cache must not store")
	}
}

func TestPurge(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(t.Context(), k, func() (int, bool, error) { return i, true, nil })
	}
	if c.Len() != 5 {
		t.Fatalf("len=%d", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge=%d", c.Len())
	}
	if _, hit, _ := c.Do(t.Context(), "k1", func() (int, bool, error) { return 9, true, nil }); hit {
		t.Fatal("purged entry must miss")
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines (run
// with -race) across a small key space so hits, misses, coalescing and
// eviction all interleave.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int](4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%6)
				want := (w + i) % 6
				v, _, err := c.Do(t.Context(), k, func() (int, bool, error) { return want, true, nil })
				if err != nil || v != want {
					t.Errorf("k=%s v=%d want %d err=%v", k, v, want, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEpochLens pins the stale-entry accounting behind /health: entries
// stored before a SetEpoch are counted stale afterwards (their keys
// embed the old epoch, so they can only age out), entries stored after
// are fresh, and a racing re-store refreshes the tag.
func TestEpochLens(t *testing.T) {
	c := New[int](8)
	c.SetEpoch(1)
	store := func(key string, v int) {
		t.Helper()
		if _, _, err := c.Do(context.Background(), key, func() (int, bool, error) {
			return v, true, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	store("v1|a", 1)
	store("v1|b", 2)
	if fresh, stale := c.EpochLens(); fresh != 2 || stale != 0 {
		t.Fatalf("fresh=%d stale=%d, want 2/0", fresh, stale)
	}

	c.SetEpoch(2)
	store("v2|a", 3)
	if fresh, stale := c.EpochLens(); fresh != 1 || stale != 2 {
		t.Fatalf("after epoch bump: fresh=%d stale=%d, want 1/2", fresh, stale)
	}
	if c.Len() != 3 {
		t.Fatalf("len=%d, want 3 (no purge on epoch change)", c.Len())
	}

	// Old-epoch entries still answer their own keys (they are correct
	// for the epoch embedded in the key) until the LRU evicts them.
	v, hit, err := c.Do(context.Background(), "v1|a", func() (int, bool, error) {
		t.Fatal("must not recompute a stored entry")
		return 0, false, nil
	})
	if err != nil || !hit || v != 1 {
		t.Fatalf("v=%d hit=%v err=%v", v, hit, err)
	}
}
