package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	kosr "repro"
)

// shedBody is the wire shape of a writeShed response.
type shedBody struct {
	Error            string `json:"error"`
	Shed             bool   `json:"shed"`
	Reason           string `json:"reason"`
	RetryAfterMillis int64  `json:"retry_after_millis"`
}

func decodeShed(t *testing.T, resp *http.Response) shedBody {
	t.Helper()
	var sb shedBody
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	return sb
}

func postWithHeaders(t *testing.T, url string, hdr map[string]string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getHealth(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// saturate occupies a Workers:1/QueueDepth:1 server completely: one task
// holds the worker, a second fills the only queue slot. The returned
// release unblocks both; it is idempotent.
func saturate(t *testing.T, srv *Server) (release func()) {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.dispatch(context.Background(), "/query", func() { close(started); <-block })
	}()
	<-started // the worker is now busy and the queue is empty
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.dispatch(context.Background(), "/query", func() { <-block })
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}
	var once sync.Once
	return func() {
		once.Do(func() { close(block) })
		wg.Wait()
	}
}

var fig1Query = QueryRequest{
	Source: "s", Target: "t",
	Categories: []string{"MA", "RE", "CI"}, K: 3,
}

func TestQueueFullShed(t *testing.T) {
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	release := saturate(t, srv)
	defer release()

	// A single query on a full queue sheds with 429 and a retry hint.
	resp := postJSON(t, ts.URL+"/query", fig1Query)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /query: status=%d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response is missing Retry-After")
	}
	sb := decodeShed(t, resp)
	if !sb.Shed || sb.Reason != "queue_full" || sb.RetryAfterMillis < minRetryAfterDur.Milliseconds() {
		t.Fatalf("shed body=%+v", sb)
	}

	// A batch whose every entry sheds is rejected whole, not answered
	// as a 200 full of useless entries.
	respB, _ := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{fig1Query, fig1Query}})
	if respB.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status=%d, want 429", respB.StatusCode)
	}

	h := getHealth(t, ts.URL)
	if h.Sheds["/query"].QueueFull < 1 {
		t.Errorf("health /query queue_full=%d, want >=1", h.Sheds["/query"].QueueFull)
	}
	if h.Sheds["/v1/query"].QueueFull < 2 {
		t.Errorf("health /v1/query queue_full=%d, want >=2", h.Sheds["/v1/query"].QueueFull)
	}

	// Releasing the saturation restores normal service.
	release()
	resp2 := postJSON(t, ts.URL+"/query", fig1Query)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status=%d, want 200", resp2.StatusCode)
	}
}

func TestDeadlineUnmeetableShed(t *testing.T) {
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{Workers: 1})
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)

	// Price a queue slot at ten seconds: any request budgeting less is
	// hopeless and must be rejected before it wastes a worker.
	srv.ewmaNanos.Store((10 * time.Second).Nanoseconds())
	resp := postWithHeaders(t, ts.URL+"/query", map[string]string{"X-Deadline-Millis": "50"}, fig1Query)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unmeetable deadline: status=%d, want 503", resp.StatusCode)
	}
	sb := decodeShed(t, resp)
	if !sb.Shed || sb.Reason != "deadline_unmeetable" {
		t.Fatalf("shed body=%+v", sb)
	}
	if h := getHealth(t, ts.URL); h.Sheds["/query"].DeadlineUnmeetable < 1 {
		t.Errorf("health deadline_unmeetable=%d, want >=1", h.Sheds["/query"].DeadlineUnmeetable)
	}

	// With the estimate cleared the same budget is honoured and answered.
	srv.ewmaNanos.Store(0)
	resp2 := postWithHeaders(t, ts.URL+"/query", map[string]string{"X-Deadline-Millis": "50"}, fig1Query)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("meetable deadline: status=%d, want 200", resp2.StatusCode)
	}
}

// TestDispatchExpiredDeadline drives dispatch directly with a context
// whose deadline already passed: the request sheds as expired and the
// error still satisfies the historical errors.Is(err,
// context.DeadlineExceeded) contract through Unwrap.
func TestDispatchExpiredDeadline(t *testing.T) {
	srv := NewWithConfig(kosr.NewSystem(kosr.Figure1()), Config{Workers: 1})
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := srv.dispatch(ctx, "/query", func() { t.Error("expired request must not run") })
	var sh *shedError
	if !errors.As(err, &sh) {
		t.Fatalf("err=%v, want *shedError", err)
	}
	if sh.status != http.StatusServiceUnavailable || sh.reason != shedExpired {
		t.Fatalf("shed=%+v", sh)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("shed error must unwrap to context.DeadlineExceeded")
	}
	if got := srv.sheds["/query"].expired.Load(); got != 1 {
		t.Fatalf("expired counter=%d, want 1", got)
	}
}

func TestDeadlineHeaderValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/query", "/v1/stream", "/expand"} {
		for _, bad := range []string{"abc", "-5", "0", "1.5", "99999999999999999999"} {
			var body any = fig1Query
			if path == "/expand" {
				body = ExpandRequest{Witness: []int32{0, 1}}
			}
			resp := postWithHeaders(t, ts.URL+path, map[string]string{"X-Deadline-Millis": bad}, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s with X-Deadline-Millis=%q: status=%d, want 400", path, bad, resp.StatusCode)
			}
		}
	}
	resp, _ := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{fig1Query}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch without header: status=%d", resp.StatusCode)
	}
	respH := postWithHeaders(t, ts.URL+"/query", map[string]string{"X-Deadline-Millis": "30000"}, fig1Query)
	if respH.StatusCode != http.StatusOK {
		t.Fatalf("generous header budget: status=%d, want 200", respH.StatusCode)
	}
}

func TestServeStaleDegradedMode(t *testing.T) {
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{Workers: 1, QueueDepth: 1, CacheSize: 64, ServeStale: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)

	// Warm the cache on epoch 1.
	respWarm, brWarm := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{fig1Query}})
	if respWarm.StatusCode != http.StatusOK {
		t.Fatalf("warm status=%d", respWarm.StatusCode)
	}
	if xc := respWarm.Header.Get("X-Cache"); xc != "hits=0 misses=1" {
		t.Fatalf("warm X-Cache=%q", xc)
	}

	// Publish epoch 2: a heavy parallel edge that changes no answer but
	// makes every epoch-1 cache entry stale.
	respUpd := postJSON(t, ts.URL+"/v1/admin/update", AdminUpdateRequest{Updates: []UpdateJSON{
		{Op: "insert-edge", From: "s", To: "t", Weight: 1000},
	}})
	if respUpd.StatusCode != http.StatusOK {
		t.Fatalf("update status=%d", respUpd.StatusCode)
	}

	release := saturate(t, srv)
	defer release()

	// The shed query falls back to its epoch-1 answer, byte-identical,
	// and the degradation is visible in the X-Cache stale segment.
	respStale, brStale := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{fig1Query}})
	if respStale.StatusCode != http.StatusOK {
		t.Fatalf("stale fallback status=%d, want 200", respStale.StatusCode)
	}
	if xc := respStale.Header.Get("X-Cache"); xc != "hits=0 misses=0 stale=1" {
		t.Fatalf("stale X-Cache=%q", xc)
	}
	if !bytes.Equal(brStale.Results[0], brWarm.Results[0]) {
		t.Fatalf("stale answer differs from its epoch-1 original:\n%s\n%s", brStale.Results[0], brWarm.Results[0])
	}
	if got := respStale.Header.Get("X-Index-Epoch"); got != "2" {
		t.Fatalf("stale response epoch=%q, want 2", got)
	}

	// A query with no recent-epoch entry has nothing to degrade to: the
	// batch sheds whole with 429 as if ServeStale were off.
	respMiss, _ := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{"MA"}, K: 1},
	}})
	if respMiss.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("uncached shed status=%d, want 429", respMiss.StatusCode)
	}
}

// TestAdminUpdateStrictness locks in /v1/admin/update's input hygiene:
// non-JSON content types, unknown fields at either nesting level, and
// oversized bodies are all rejected before any mutation is attempted.
func TestAdminUpdateStrictness(t *testing.T) {
	ts, _ := newTestServer(t)
	url := ts.URL + "/v1/admin/update"
	valid := `{"updates":[{"op":"insert-edge","from":"s","to":"t","weight":2}]}`

	resp, err := http.Post(url, "text/plain", strings.NewReader(valid))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain: status=%d, want 415", resp.StatusCode)
	}

	for _, tc := range []struct{ name, body string }{
		{"unknown top-level field", `{"updates":[{"op":"insert-edge","from":"s","to":"t","weight":2}],"force":true}`},
		{"unknown update field", `{"updates":[{"op":"insert-edge","from":"s","to":"t","weight":2,"wat":1}]}`},
		{"oversized body", fmt.Sprintf(`{"updates":[{"op":"insert-edge","from":%q,"to":"t","weight":2}]}`,
			strings.Repeat("x", maxBodyBytes))},
	} {
		resp, err := http.Post(url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status=%d, want 400", tc.name, resp.StatusCode)
		}
	}

	// None of the rejected requests may have published an epoch.
	if h := getHealth(t, ts.URL); h.Epoch != 1 {
		t.Fatalf("epoch=%d after rejected updates, want 1", h.Epoch)
	}
}

func TestBreakerHalfOpen(t *testing.T) {
	b := newBreaker(2, time.Minute)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	if ok, _ := b.allow(); !ok {
		t.Fatal("new breaker must allow")
	}
	b.onFailure()
	if ok, _ := b.allow(); !ok {
		t.Fatal("one failure below threshold must still allow")
	}
	b.onFailure() // second consecutive failure trips it
	if ok, wait := b.allow(); ok || wait <= 0 {
		t.Fatalf("tripped breaker: ok=%v wait=%v", ok, wait)
	}
	now = now.Add(30 * time.Second)
	if ok, wait := b.allow(); ok || wait != 30*time.Second {
		t.Fatalf("mid-cooldown: ok=%v wait=%v, want open with 30s left", ok, wait)
	}
	now = now.Add(31 * time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("cooldown expiry must half-open the breaker")
	}
	// The failure run survives the open period: one failed half-open
	// probe re-opens immediately instead of needing a fresh run.
	b.onFailure()
	if ok, _ := b.allow(); ok {
		t.Fatal("failed half-open probe must re-open the breaker")
	}
	now = now.Add(2 * time.Minute)
	if ok, _ := b.allow(); !ok {
		t.Fatal("second cooldown expiry must half-open again")
	}
	b.onSuccess()
	b.onFailure()
	if ok, _ := b.allow(); !ok {
		t.Fatal("a success must clear the failure run")
	}
	if got := b.trips.Load(); got != 2 {
		t.Fatalf("trips=%d, want 2", got)
	}
}

// TestRequestHygiene runs a table of well-behaved and badly-behaved
// requests and asserts the invariant behind all of them: no pooled
// scratch stays checked out, no goroutine leaks, and the pool still
// answers a full-width batch correctly afterwards.
func TestRequestHygiene(t *testing.T) {
	before := runtime.NumGoroutine()
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{Workers: 2, QueryTimeout: 2 * time.Second})
	ts := httptest.NewServer(srv)

	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"query-ok", func(t *testing.T) {
			if resp := postJSON(t, ts.URL+"/query", fig1Query); resp.StatusCode != http.StatusOK {
				t.Fatalf("status=%d", resp.StatusCode)
			}
		}},
		{"query-tiny-budget", func(t *testing.T) {
			// 1ms may answer or shed depending on scheduling; either way
			// the invariants below must hold.
			resp := postWithHeaders(t, ts.URL+"/query", map[string]string{"X-Deadline-Millis": "1"}, fig1Query)
			resp.Body.Close()
		}},
		{"query-cancelled-client", func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			b, _ := json.Marshal(fig1Query)
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(b))
			req.Header.Set("Content-Type", "application/json")
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}},
		{"stream-abandoned", func(t *testing.T) {
			resp := postJSON(t, ts.URL+"/v1/stream", QueryRequest{
				Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"},
			})
			// Read nothing and walk away: the disconnect must cancel the
			// engine and return its scratch.
			resp.Body.Close()
		}},
	}
	for _, c := range cases {
		t.Run(c.name, c.run)
	}

	// Every scratch must come home once the traffic stops.
	deadline := time.Now().Add(10 * time.Second)
	for sys.ScratchesInFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scratches in flight=%d after traffic stopped, want 0", sys.ScratchesInFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Pool-size regression: a batch as wide as the pool still answers
	// correctly, so no worker or scratch was lost along the way.
	resp, br := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
		fig1Query, fig1Query, fig1Query, fig1Query,
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-hygiene batch status=%d", resp.StatusCode)
	}
	for i, raw := range br.Results {
		qr := decodeResult(t, raw)
		if qr.Error != "" || len(qr.Routes) != 3 || qr.Routes[0].Cost != 20 {
			t.Fatalf("post-hygiene result %d: %+v", i, qr)
		}
	}

	ts.Close()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines: %d before, %d after", before, n)
	}
}

// TestHealthRobustnessGauges locks in the /health fields the
// degradation machinery reports: the page-residency gauge, the fixed
// per-endpoint shed counter map, and the scratch accounting.
func TestHealthRobustnessGauges(t *testing.T) {
	ts, _ := newTestServer(t)
	h := getHealth(t, ts.URL)
	if h.Pages == nil || h.Pages.Shared+h.Pages.Owned == 0 {
		t.Fatalf("pages gauge=%+v, want materialized pages", h.Pages)
	}
	if len(h.Sheds) != 4 {
		t.Fatalf("sheds=%v, want the four shedding endpoints", h.Sheds)
	}
	for _, ep := range []string{"/query", "/v1/query", "/v1/stream", "/expand"} {
		if h.Sheds[ep] == nil {
			t.Fatalf("missing shed counters for %s in %v", ep, h.Sheds)
		}
	}
	if h.Updates == nil || h.Updates.ScratchInFlight != 0 {
		t.Fatalf("updates=%+v, want scratch_in_flight=0 at idle", h.Updates)
	}
	if h.Panics != 0 {
		t.Fatalf("panics=%d on a fresh server", h.Panics)
	}

	// After an update that only adds a new category, the live snapshot
	// shares its untouched pages with the superseded epoch.
	resp := postJSON(t, ts.URL+"/v1/admin/update", AdminUpdateRequest{Updates: []UpdateJSON{
		{Op: "add-category", Vertex: "0", Category: "3"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status=%d", resp.StatusCode)
	}
	resp.Body.Close()
	h2 := getHealth(t, ts.URL)
	if h2.Epoch != 2 {
		t.Fatalf("post-update epoch=%d, want 2", h2.Epoch)
	}
	if h2.Pages == nil || h2.Pages.Shared == 0 {
		t.Fatalf("post-update pages=%+v, want shared>0", h2.Pages)
	}
}
