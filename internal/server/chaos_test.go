//go:build faultinject

// Chaos tests: run with `go test -tags faultinject -race ./internal/server`.
// They drive mixed query/stream/update traffic through the server while
// the faultinject registry slows workers, panics computations, stalls
// stream writes, fails index applies and skews deadlines — and assert
// the robustness invariants: every response is either correct for its
// epoch or a structured shed/error, epochs never run backwards, no
// goroutine leaks, and every pooled scratch comes home.

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	kosr "repro"
	"repro/internal/faultinject"
)

var chaosWant = []float64{20, 21, 22}

// chaosQuery is Figure1's canonical query; a parallel edge of weight
// >= 1000 never shortens anything, so its top-3 costs are invariant
// across every epoch the chaos updater publishes.
func chaosQuery(k int) QueryRequest {
	return QueryRequest{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: k}
}

func TestChaosMixedTraffic(t *testing.T) {
	defer faultinject.Reset()
	before := runtime.NumGoroutine()
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{
		Workers: 4, QueueDepth: 8, CacheSize: 128, ServeStale: true,
		QueryTimeout: 2 * time.Second,
		ApplyRetries: 3, ApplyBackoff: time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	client := ts.Client()

	errInjectedApply := errors.New("chaos: injected apply failure")
	faultinject.Set(faultinject.SlowWorker, faultinject.Spec{Prob: 0.2, Delay: 2 * time.Millisecond})
	faultinject.Set(faultinject.PanicCompute, faultinject.Spec{Prob: 0.05, Panic: "chaos"})
	faultinject.Set(faultinject.StallStreamWriter, faultinject.Spec{Prob: 0.1, Delay: time.Millisecond})
	faultinject.Set(faultinject.FailApply, faultinject.Spec{Prob: 0.3, Err: errInjectedApply})
	faultinject.Set(faultinject.SkewDeadline, faultinject.Spec{Prob: 0.2, Skew: time.Millisecond})

	post := func(path string, hdr map[string]string, body any) *http.Response {
		b, err := json.Marshal(body)
		if err != nil {
			t.Error(err)
			return nil
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(b))
		if err != nil {
			t.Error(err)
			return nil
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		return resp
	}

	// checkErrorBody validates a structured 429/503/500: a JSON error
	// body, and Retry-After whenever the response is an admission shed.
	checkErrorBody := func(path string, resp *http.Response) {
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Errorf("%s %d: undecodable error body: %v", path, resp.StatusCode, err)
			return
		}
		if s, _ := m["error"].(string); s == "" {
			t.Errorf("%s %d: error body without error field: %v", path, resp.StatusCode, m)
		}
		if shed, _ := m["shed"].(bool); shed && resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s: shed response missing Retry-After", path)
		}
	}

	// checkEpoch enforces per-client monotonicity of X-Index-Epoch.
	checkEpoch := func(last uint64, resp *http.Response) uint64 {
		h := resp.Header.Get("X-Index-Epoch")
		if h == "" {
			return last
		}
		e, err := strconv.ParseUint(h, 10, 64)
		if err != nil {
			t.Errorf("bad X-Index-Epoch %q", h)
			return last
		}
		if e < last {
			t.Errorf("X-Index-Epoch went backwards: %d after %d", e, last)
		}
		return e
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < 30; i++ {
				hdr := map[string]string{}
				if i%2 == 0 {
					hdr["X-Deadline-Millis"] = "1500"
				}
				if g%2 == 0 {
					k := i%3 + 1
					resp := post("/query", hdr, chaosQuery(k))
					if resp == nil {
						continue
					}
					last = checkEpoch(last, resp)
					switch resp.StatusCode {
					case http.StatusOK:
						var qr QueryResponse
						err := json.NewDecoder(resp.Body).Decode(&qr)
						resp.Body.Close()
						if err != nil {
							t.Error(err)
							continue
						}
						if !qr.Truncated && len(qr.Routes) != k {
							t.Errorf("/query k=%d: %d routes", k, len(qr.Routes))
						}
						for j, r := range qr.Routes {
							if j >= len(chaosWant) || r.Cost != chaosWant[j] {
								t.Errorf("/query route %d cost %v", j, r.Cost)
							}
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError:
						checkErrorBody("/query", resp)
					default:
						resp.Body.Close()
						t.Errorf("/query: unexpected status %d", resp.StatusCode)
					}
				} else {
					queries := []QueryRequest{chaosQuery(1), chaosQuery(2), chaosQuery(3)}
					resp := post("/v1/query", hdr, BatchRequest{Queries: queries})
					if resp == nil {
						continue
					}
					last = checkEpoch(last, resp)
					switch resp.StatusCode {
					case http.StatusOK:
						var br BatchResponse
						err := json.NewDecoder(resp.Body).Decode(&br)
						resp.Body.Close()
						if err != nil {
							t.Error(err)
							continue
						}
						if len(br.Results) != len(queries) {
							t.Errorf("batch: %d results, want %d", len(br.Results), len(queries))
							continue
						}
						for j, raw := range br.Results {
							var qr QueryResult
							if err := json.Unmarshal(raw, &qr); err != nil {
								t.Errorf("entry %d: %v", j, err)
								continue
							}
							switch {
							case qr.Shed:
								if qr.Error == "" {
									t.Errorf("shed entry without error: %+v", qr)
								}
							case qr.Error != "":
								// A structured per-entry failure (worker
								// panic); the rest of the batch answered.
							default:
								if !qr.Truncated && len(qr.Routes) != j+1 {
									t.Errorf("entry %d: %d routes, want %d", j, len(qr.Routes), j+1)
								}
								for n, r := range qr.Routes {
									if n >= len(chaosWant) || r.Cost != chaosWant[n] {
										t.Errorf("entry %d route %d cost %v", j, n, r.Cost)
									}
								}
							}
						}
					case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError:
						checkErrorBody("/v1/query", resp)
					default:
						resp.Body.Close()
						t.Errorf("/v1/query: unexpected status %d", resp.StatusCode)
					}
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for i := 0; i < 10; i++ {
				resp := post("/v1/stream", map[string]string{"X-Deadline-Millis": "1500"}, chaosQuery(3))
				if resp == nil {
					continue
				}
				last = checkEpoch(last, resp)
				if resp.StatusCode != http.StatusOK {
					switch resp.StatusCode {
					case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError:
						checkErrorBody("/v1/stream", resp)
					default:
						resp.Body.Close()
						t.Errorf("/v1/stream: unexpected status %d", resp.StatusCode)
					}
					continue
				}
				sc := bufio.NewScanner(resp.Body)
				n := 0
				for sc.Scan() {
					var line map[string]any
					if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
						t.Errorf("stream line %q: %v", sc.Text(), err)
						break
					}
					if d, _ := line["done"].(bool); d {
						break
					}
					if _, isErr := line["error"]; isErr {
						break
					}
					cost, _ := line["cost"].(float64)
					if n >= len(chaosWant) || cost != chaosWant[n] {
						t.Errorf("stream route %d cost %v", n, cost)
					}
					n++
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastEpoch := uint64(1)
		for i := 0; i < 20; i++ {
			resp := post("/v1/admin/update", nil, AdminUpdateRequest{Updates: []UpdateJSON{
				{Op: "insert-edge", From: "s", To: "t", Weight: 1000 + float64(i)},
			}})
			if resp == nil {
				continue
			}
			switch resp.StatusCode {
			case http.StatusOK:
				var ar AdminUpdateResponse
				err := json.NewDecoder(resp.Body).Decode(&ar)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					continue
				}
				if ar.Epoch <= lastEpoch {
					t.Errorf("epoch %d did not advance past %d", ar.Epoch, lastEpoch)
				}
				lastEpoch = ar.Epoch
			case http.StatusServiceUnavailable:
				var sb shedBody
				err := json.NewDecoder(resp.Body).Decode(&sb)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					continue
				}
				if sb.Reason != "apply_failed" && sb.Reason != "breaker_open" {
					t.Errorf("update shed reason %q", sb.Reason)
				}
				time.Sleep(20 * time.Millisecond) // let a tripped breaker cool
			default:
				resp.Body.Close()
				t.Errorf("update: unexpected status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()

	firedPanics := faultinject.Fired(faultinject.PanicCompute)
	for _, pt := range []string{faultinject.SlowWorker, faultinject.SkewDeadline, faultinject.FailApply} {
		if faultinject.Fired(pt) == 0 {
			t.Errorf("injection point %s never fired", pt)
		}
	}
	faultinject.Reset()

	// Every scratch must be back in a pool once the chaos stops.
	drain := time.Now().Add(10 * time.Second)
	for sys.ScratchesInFlight() != 0 {
		if time.Now().After(drain) {
			t.Fatalf("scratches in flight=%d after chaos, want 0", sys.ScratchesInFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The pool survived: a full-width batch answers correctly with the
	// injections gone.
	resp, br := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
		chaosQuery(3), chaosQuery(3), chaosQuery(3), chaosQuery(3),
		chaosQuery(3), chaosQuery(3), chaosQuery(3), chaosQuery(3),
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos batch status=%d", resp.StatusCode)
	}
	for i, raw := range br.Results {
		qr := decodeResult(t, raw)
		if qr.Error != "" || qr.Shed || len(qr.Routes) != 3 || qr.Routes[0].Cost != 20 {
			t.Fatalf("post-chaos result %d: %+v", i, qr)
		}
	}

	// Every injected panic was recovered and counted — no more, no less.
	if got := srv.panics.Load(); got != firedPanics {
		t.Errorf("recovered panics=%d, injected %d", got, firedPanics)
	}
	h := getHealth(t, ts.URL)
	if h.Panics != firedPanics {
		t.Errorf("health panics=%d, injected %d", h.Panics, firedPanics)
	}
	if h.Updates == nil || h.Updates.ScratchInFlight != 0 {
		t.Errorf("health updates=%+v, want scratch_in_flight=0", h.Updates)
	}
	if h.Pages == nil || h.Pages.Shared+h.Pages.Owned == 0 {
		t.Errorf("health pages=%+v", h.Pages)
	}

	ts.Close()
	srv.Close()
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	for time.Now().Before(drain) && runtime.NumGoroutine() > before+2 {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines: %d before chaos, %d after", before, n)
	}
}

// TestPanicComputeRecovery exercises the three recovery layers one at a
// time: the worker's recover (single query → 500), the batch fan-out
// goroutine's recover (per-entry error, batch still answers), and the
// pool's health afterwards.
func TestPanicComputeRecovery(t *testing.T) {
	defer faultinject.Reset()
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)

	faultinject.Set(faultinject.PanicCompute, faultinject.Spec{Prob: 1, Count: 1, Panic: "boom"})
	resp := postJSON(t, ts.URL+"/query", chaosQuery(3))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking /query: status=%d, want 500", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "panic") {
		t.Fatalf("500 body=%v", body)
	}

	faultinject.Set(faultinject.PanicCompute, faultinject.Spec{Prob: 1, Count: 1, Panic: "boom"})
	respB, br := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{chaosQuery(1), chaosQuery(2)}})
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("batch with one panicking entry: status=%d, want 200", respB.StatusCode)
	}
	panicked, answered := 0, 0
	for _, raw := range br.Results {
		qr := decodeResult(t, raw)
		switch {
		case strings.Contains(qr.Error, "panic"):
			panicked++
		case qr.Error == "" && len(qr.Routes) > 0 && qr.Routes[0].Cost == 20:
			answered++
		default:
			t.Fatalf("unexpected entry: %+v", qr)
		}
	}
	if panicked != 1 || answered != 1 {
		t.Fatalf("panicked=%d answered=%d, want 1/1", panicked, answered)
	}

	if got := srv.panics.Load(); got != 2 {
		t.Fatalf("recovered panic count=%d, want 2", got)
	}
	// No scratch leaked and the pool still serves at full width.
	drain := time.Now().Add(5 * time.Second)
	for sys.ScratchesInFlight() != 0 {
		if time.Now().After(drain) {
			t.Fatalf("scratches in flight=%d, want 0", sys.ScratchesInFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
	respOK, brOK := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
		chaosQuery(3), chaosQuery(3), chaosQuery(3), chaosQuery(3),
	}})
	if respOK.StatusCode != http.StatusOK {
		t.Fatalf("post-panic batch status=%d", respOK.StatusCode)
	}
	for i, raw := range brOK.Results {
		if qr := decodeResult(t, raw); qr.Error != "" || len(qr.Routes) != 3 {
			t.Fatalf("post-panic result %d: %+v", i, qr)
		}
	}
}

// TestApplyRetryAndBreaker walks /v1/admin/update through the whole
// degradation ladder: a transient failure absorbed by the retry, retry
// exhaustion shedding with apply_failed, the breaker opening after
// consecutive failures, and recovery once the fault clears.
func TestApplyRetryAndBreaker(t *testing.T) {
	defer faultinject.Reset()
	errBoom := errors.New("injected apply failure")
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{
		Workers: 1, ApplyRetries: 2, ApplyBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	upd := AdminUpdateRequest{Updates: []UpdateJSON{
		{Op: "insert-edge", From: "s", To: "t", Weight: 500},
	}}

	// One transient failure is absorbed by the retry: the client sees 200.
	faultinject.Set(faultinject.FailApply, faultinject.Spec{Prob: 1, Count: 1, Err: errBoom})
	resp := postJSON(t, ts.URL+"/v1/admin/update", upd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried update: status=%d, want 200", resp.StatusCode)
	}
	var ar AdminUpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Epoch != 2 {
		t.Fatalf("epoch=%d, want 2", ar.Epoch)
	}

	// A persistent failure exhausts the retries: two updates shed with
	// apply_failed and trip the breaker.
	faultinject.Set(faultinject.FailApply, faultinject.Spec{Prob: 1, Err: errBoom})
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/v1/admin/update", upd)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("failing update %d: status=%d, want 503", i, resp.StatusCode)
		}
		if sb := decodeShed(t, resp); sb.Reason != "apply_failed" {
			t.Fatalf("failing update %d: reason=%q", i, sb.Reason)
		}
	}
	// The open breaker sheds without touching the updater at all.
	firedBefore := faultinject.Fired(faultinject.FailApply)
	resp = postJSON(t, ts.URL+"/v1/admin/update", upd)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open update: status=%d, want 503", resp.StatusCode)
	}
	if sb := decodeShed(t, resp); sb.Reason != "breaker_open" {
		t.Fatalf("breaker-open reason=%q", sb.Reason)
	}
	if fired := faultinject.Fired(faultinject.FailApply); fired != firedBefore {
		t.Fatalf("breaker-open update reached Apply: fired %d -> %d", firedBefore, fired)
	}

	// Fault cleared + cooldown passed: the half-open probe succeeds and
	// the breaker closes.
	faultinject.Clear(faultinject.FailApply)
	time.Sleep(150 * time.Millisecond)
	resp = postJSON(t, ts.URL+"/v1/admin/update", upd)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery update: status=%d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Epoch != 3 {
		t.Fatalf("post-recovery epoch=%d, want 3", ar.Epoch)
	}
}

// TestApplyRetryHonorsContext pins the retry loop's cancellation
// contract: when the client abandons /v1/admin/update mid-backoff, the
// loop must stop sleeping instead of riding out the full exponential
// schedule against a struggling updater.
func TestApplyRetryHonorsContext(t *testing.T) {
	defer faultinject.Reset()
	errBoom := errors.New("injected apply failure")
	sys := kosr.NewSystem(kosr.Figure1())
	srv := NewWithConfig(sys, Config{
		Workers: 1, ApplyRetries: 10, ApplyBackoff: time.Minute,
	})
	t.Cleanup(srv.Close)
	upd, err := srv.buildUpdate(UpdateJSON{Op: "insert-edge", From: "s", To: "t", Weight: 500})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(faultinject.FailApply, faultinject.Spec{Prob: 1, Err: errBoom})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = srv.applyWithRetry(ctx, []kosr.Update{upd})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop slept through cancellation: took %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), errBoom.Error()) {
		t.Fatalf("err=%v should carry the last apply failure", err)
	}
}
