package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	kosr "repro"
)

// TestAdminUpdateEpochCacheInvalidation is the end-to-end stale-cache
// regression test wired into CI: /v1/query (cached) → /v1/admin/update
// → /v1/query must return the post-update answer, never the pre-update
// cache entry, with the served epoch visible in X-Index-Epoch.
func TestAdminUpdateEpochCacheInvalidation(t *testing.T) {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)
	srv := NewWithConfig(sys, Config{Workers: 2, CacheSize: 64})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	batch := BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 1},
	}}
	ask := func(wantCost float64, wantEpoch string) *http.Response {
		t.Helper()
		resp, br := postBatch(t, ts.URL, batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status=%d", resp.StatusCode)
		}
		qr := decodeResult(t, br.Results[0])
		if qr.Error != "" || len(qr.Routes) != 1 || qr.Routes[0].Cost != wantCost {
			t.Fatalf("result=%+v, want cost %g", qr, wantCost)
		}
		if e := resp.Header.Get("X-Index-Epoch"); e != wantEpoch {
			t.Fatalf("X-Index-Epoch=%q, want %q", e, wantEpoch)
		}
		return resp
	}

	ask(20, "1")
	resp := ask(20, "1")
	if resp.Header.Get("X-Cache") != "hits=1 misses=0" {
		t.Fatalf("second identical query must hit: X-Cache=%q", resp.Header.Get("X-Cache"))
	}

	// Publish epoch 2: the d→t expressway lowers the optimum 20 → 17.
	uResp := postJSON(t, ts.URL+"/v1/admin/update", AdminUpdateRequest{Updates: []UpdateJSON{
		{Op: "insert-edge", From: "d", To: "t", Weight: 1},
	}})
	if uResp.StatusCode != http.StatusOK {
		t.Fatalf("admin update status=%d", uResp.StatusCode)
	}
	var ur AdminUpdateResponse
	if err := json.NewDecoder(uResp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 2 || ur.Applied != 1 {
		t.Fatalf("update response=%+v", ur)
	}
	if e := uResp.Header.Get("X-Index-Epoch"); e != "2" {
		t.Fatalf("update X-Index-Epoch=%q", e)
	}

	// The same query now keys to epoch 2: it must recompute (miss) and
	// see the new answer — the old entry is unreachable, not served.
	resp = ask(17, "2")
	if resp.Header.Get("X-Cache") != "hits=0 misses=1" {
		t.Fatalf("post-update query served stale cache: X-Cache=%q", resp.Header.Get("X-Cache"))
	}
	resp = ask(17, "2")
	if resp.Header.Get("X-Cache") != "hits=1 misses=0" {
		t.Fatalf("post-update repeat must hit the fresh entry: X-Cache=%q", resp.Header.Get("X-Cache"))
	}

	// /health reports the epoch and counts the superseded entry stale.
	hResp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hResp.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hResp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Epoch != 2 {
		t.Fatalf("health epoch=%d, want 2", h.Epoch)
	}
	if h.Cache == nil || h.Cache.Stale < 1 {
		t.Fatalf("health cache=%+v, want at least one stale entry", h.Cache)
	}
}

func TestAdminUpdateCategoryOps(t *testing.T) {
	ts, g := newTestServer(t)
	// Adding b to MA makes a third MA stop reachable; removing it
	// restores the original two. Symbolic names resolve like queries.
	for _, step := range []struct {
		op   string
		want int
	}{
		{"add-category", http.StatusOK},
		{"remove-category", http.StatusOK},
	} {
		resp := postJSON(t, ts.URL+"/v1/admin/update", AdminUpdateRequest{Updates: []UpdateJSON{
			{Op: step.op, Vertex: "b", Category: "MA"},
		}})
		if resp.StatusCode != step.want {
			t.Fatalf("%s: status=%d, want %d", step.op, resp.StatusCode, step.want)
		}
	}

	// A brand-new numeric category id (beyond the static set) can be
	// introduced through the endpoint and then queried over the wire.
	grown := strconv.Itoa(g.NumCategories())
	resp := postJSON(t, ts.URL+"/v1/admin/update", AdminUpdateRequest{Updates: []UpdateJSON{
		{Op: "add-category", Vertex: "b", Category: grown},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grown category add: status=%d", resp.StatusCode)
	}
	qResp, br := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{grown}, K: 1},
	}})
	if qResp.StatusCode != http.StatusOK {
		t.Fatalf("grown category query: status=%d", qResp.StatusCode)
	}
	qr := decodeResult(t, br.Results[0])
	if qr.Error != "" || len(qr.Routes) != 1 {
		t.Fatalf("grown category result=%+v, want one route through b", qr)
	}
}

func TestAdminUpdateValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, req := range map[string]AdminUpdateRequest{
		"empty batch":      {},
		"unknown op":       {Updates: []UpdateJSON{{Op: "drop-table"}}},
		"unknown vertex":   {Updates: []UpdateJSON{{Op: "insert-edge", From: "nope", To: "t", Weight: 1}}},
		"unknown category": {Updates: []UpdateJSON{{Op: "add-category", Vertex: "b", Category: "nope"}}},
		"negative weight":  {Updates: []UpdateJSON{{Op: "insert-edge", From: "s", To: "t", Weight: -3}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/admin/update", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status=%d, want 400", name, resp.StatusCode)
		}
	}

	// A system without a label index rejects updates at apply time.
	srv := New(kosr.NewSystemWithoutIndex(kosr.Figure1()))
	t.Cleanup(srv.Close)
	ts2 := httptest.NewServer(srv)
	t.Cleanup(ts2.Close)
	resp := postJSON(t, ts2.URL+"/v1/admin/update", AdminUpdateRequest{Updates: []UpdateJSON{
		{Op: "insert-edge", From: "s", To: "t", Weight: 1},
	}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("no-index update: status=%d, want 422", resp.StatusCode)
	}
}

// TestExaminedTruncationCached pins the new cache-admission rule:
// MaxExamined truncation is deterministic, so the truncated partial
// result is cached (keyed on the budget) instead of recomputed per
// request.
func TestExaminedTruncationCached(t *testing.T) {
	g := kosr.Figure1()
	srv := NewWithConfig(kosr.NewSystem(g), Config{Workers: 2, CacheSize: 64, MaxExamined: 5})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	batch := BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 30},
	}}
	resp, br := postBatch(t, ts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	first := decodeResult(t, br.Results[0])
	if !first.Truncated {
		t.Fatalf("want truncated result with MaxExamined=5, got %+v", first)
	}
	resp, br = postBatch(t, ts.URL, batch)
	if resp.Header.Get("X-Cache") != "hits=1 misses=0" {
		t.Fatalf("deterministic truncation must be cached: X-Cache=%q", resp.Header.Get("X-Cache"))
	}
	second := decodeResult(t, br.Results[0])
	if !second.Truncated || len(second.Routes) != len(first.Routes) {
		t.Fatalf("cached truncation differs: %+v vs %+v", second, first)
	}
}
