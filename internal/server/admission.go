package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Admission control: the worker pool is fronted by a bounded queue that
// sheds work instead of blocking on it. A request is rejected up front
// when the server is closing, when its deadline has already passed, when
// the queue's estimated drain time exceeds the request's remaining
// budget (an EWMA of recent service times times the queue length), or
// when the queue itself is full. Shed responses are structured JSON with
// a Retry-After hint, so a loaded node degrades into fast, explicit
// rejections rather than a convoy of slow timeouts.

var (
	errShuttingDown = errors.New("server shutting down")
	errQueueFull    = errors.New("admission queue full")
	// errWorkerPanic reports that the pool worker running the request's
	// task panicked; the recover in runTask keeps the worker alive and
	// the handler answers 500.
	errWorkerPanic = errors.New("internal error: worker panicked while computing the query")
)

// shedError is an admission-control rejection: the request was not run.
// cause carries the closest standard sentinel so existing
// errors.Is(err, context.DeadlineExceeded) / errors.Is(err,
// errShuttingDown) checks keep working.
type shedError struct {
	status     int // http.StatusTooManyRequests or StatusServiceUnavailable
	reason     string
	retryAfter time.Duration
	cause      error
}

func (e *shedError) Error() string {
	return fmt.Sprintf("request shed (%s)", e.reason)
}

func (e *shedError) Unwrap() error { return e.cause }

// Shed reasons, as reported in response bodies and /health counters.
const (
	shedQueueFull    = "queue_full"
	shedDeadline     = "deadline_unmeetable"
	shedExpired      = "deadline_expired"
	shedShutdown     = "shutting_down"
	shedBreakerOpen  = "breaker_open"
	shedApplyFailed  = "apply_failed"
	minRetryAfterDur = 10 * time.Millisecond
)

// endpointSheds counts admission rejections for one endpoint.
type endpointSheds struct {
	queueFull atomic.Uint64
	deadline  atomic.Uint64
	expired   atomic.Uint64
}

// ShedHealth is the /health view of one endpoint's shed counters.
type ShedHealth struct {
	// QueueFull counts 429s: the admission queue had no room.
	QueueFull uint64 `json:"queue_full"`
	// DeadlineUnmeetable counts 503s: the queue's estimated drain time
	// exceeded the request's remaining deadline, so running it would
	// only have produced a result nobody reads.
	DeadlineUnmeetable uint64 `json:"deadline_unmeetable"`
	// DeadlineExpired counts 503s: the deadline had already passed at
	// admission time.
	DeadlineExpired uint64 `json:"deadline_expired"`
}

// observeService folds one completed task's service time into the EWMA
// (α = 1/8) that prices queue positions during admission.
func (s *Server) observeService(d time.Duration) {
	n := d.Nanoseconds()
	for {
		old := s.ewmaNanos.Load()
		nw := n
		if old != 0 {
			nw = old + (n-old)/8
		}
		if s.ewmaNanos.CompareAndSwap(old, nw) {
			return
		}
	}
}

// estimateWait predicts how long a newly admitted task would wait for a
// worker: the recent mean service time, times the tasks already ahead
// of it, spread across the pool. Zero until the first task completes,
// so an idle server never sheds on a prediction.
func (s *Server) estimateWait() time.Duration {
	ewma := s.ewmaNanos.Load()
	if ewma == 0 {
		return 0
	}
	q := s.queued.Load()
	if q < 0 {
		q = 0
	}
	return time.Duration(ewma * (q + 1) / int64(s.workers))
}

// retryAfterHint suggests a client backoff: the estimated queue drain
// time, floored so the header never tells a client to hammer.
func (s *Server) retryAfterHint() time.Duration {
	if w := s.estimateWait(); w > minRetryAfterDur {
		return w
	}
	return minRetryAfterDur
}

// dispatch runs fn on the worker pool, blocking until it completes. It
// sheds without running fn when the server is closing, the context's
// deadline is unmeetable, or the queue is full; shed requests return a
// *shedError and never consume a worker.
func (s *Server) dispatch(ctx context.Context, endpoint string, fn func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &shedError{
			status: http.StatusServiceUnavailable, reason: shedShutdown,
			retryAfter: time.Second, cause: errShuttingDown,
		}
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	sheds := s.sheds[endpoint]
	if deadline, ok := ctx.Deadline(); ok {
		remaining := time.Until(deadline) - faultinject.Skew(faultinject.SkewDeadline)
		if remaining <= 0 {
			if sheds != nil {
				sheds.expired.Add(1)
			}
			return &shedError{
				status: http.StatusServiceUnavailable, reason: shedExpired,
				retryAfter: s.retryAfterHint(), cause: context.DeadlineExceeded,
			}
		}
		if wait := s.estimateWait(); wait > remaining {
			if sheds != nil {
				sheds.deadline.Add(1)
			}
			return &shedError{
				status: http.StatusServiceUnavailable, reason: shedDeadline,
				retryAfter: wait, cause: context.DeadlineExceeded,
			}
		}
	}
	t := &task{run: fn, done: make(chan struct{})}
	select {
	case s.jobs <- t:
		s.queued.Add(1)
	default:
		if sheds != nil {
			sheds.queueFull.Add(1)
		}
		return &shedError{
			status: http.StatusTooManyRequests, reason: shedQueueFull,
			retryAfter: s.retryAfterHint(), cause: errQueueFull,
		}
	}
	// Once enqueued the task will run; the request context threaded into
	// the engine bounds how long (responding early would race the
	// worker's writes into the handler's response).
	<-t.done
	if t.panicked {
		return errWorkerPanic
	}
	return nil
}

// writeShed answers a shed request: structured JSON naming the reason,
// plus a Retry-After header (whole seconds, floored at 1 per RFC 9110)
// and a finer-grained retry_after_millis in the body.
func writeShed(w http.ResponseWriter, e *shedError) {
	secs := int64(math.Ceil(e.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, e.status, map[string]any{
		"error":              e.Error(),
		"shed":               true,
		"reason":             e.reason,
		"retry_after_millis": e.retryAfter.Milliseconds(),
	})
}
