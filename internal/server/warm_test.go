package server

import (
	"testing"

	kosr "repro"
)

// TestBatchWarmCategories pins the batch prewarming hint: multi-entry
// batches get the deduplicated union of resolvable category ids,
// single-entry batches get no hint, and unresolvable specs are skipped
// (the entry itself reports the error later).
func TestBatchWarmCategories(t *testing.T) {
	srv := New(kosr.NewSystem(kosr.Figure1()))
	t.Cleanup(srv.Close)
	snap := srv.sys.Snapshot()

	q := func(cats ...string) QueryRequest {
		return QueryRequest{Source: "s", Target: "t", Categories: cats, K: 1}
	}
	resolve := func(name string) kosr.Category {
		c, err := srv.resolveCategory(snap, name)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	if warm := srv.batchWarmCategories(snap, []QueryRequest{q("MA", "RE")}); warm != nil {
		t.Errorf("single-entry batch: warm = %v, want nil", warm)
	}

	warm := srv.batchWarmCategories(snap, []QueryRequest{
		q("MA", "RE"),
		q("RE", "CI"),
		q("no-such-category", "MA"),
	})
	want := map[kosr.Category]bool{resolve("MA"): true, resolve("RE"): true, resolve("CI"): true}
	if len(warm) != len(want) {
		t.Fatalf("warm = %v, want the union of MA/RE/CI", warm)
	}
	for _, c := range warm {
		if !want[c] {
			t.Errorf("warm contains unexpected category %d", c)
		}
		delete(want, c) // also catches duplicates
	}
}
