package server

import (
	"bufio"
	"bytes"
	"encoding/json"

	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	kosr "repro"
	"repro/internal/gen"
)

func postBatch(t *testing.T, url string, batch BatchRequest) (*http.Response, BatchResponse) {
	t.Helper()
	resp := postJSON(t, url+"/v1/query", batch)
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp, br
}

func decodeResult(t *testing.T, raw json.RawMessage) QueryResult {
	t.Helper()
	var qr QueryResult
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	return qr
}

func TestBatchQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, br := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 3},
		{Source: "nope", Target: "t", K: 1},
		{Source: "0", Target: "7", Categories: []string{"0", "1", "2"}, K: 1, Method: "PK", Expand: true},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results=%d, want 3", len(br.Results))
	}
	r0 := decodeResult(t, br.Results[0])
	if r0.Error != "" || len(r0.Routes) != 3 || r0.Routes[0].Cost != 20 || r0.Routes[2].Cost != 22 {
		t.Fatalf("result 0: %+v", r0)
	}
	r1 := decodeResult(t, br.Results[1])
	if !strings.Contains(r1.Error, "unknown vertex") {
		t.Fatalf("result 1 must carry the per-query error, got %+v", r1)
	}
	r2 := decodeResult(t, br.Results[2])
	if r2.Error != "" || len(r2.Routes) != 1 || r2.Routes[0].Cost != 20 || len(r2.Routes[0].Route) == 0 {
		t.Fatalf("result 2: %+v", r2)
	}
	if resp.Header.Get("X-Query-Millis") == "" {
		t.Error("missing X-Query-Millis header")
	}
}

func TestBatchQueryLimits(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, _ := postBatch(t, ts.URL, BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status=%d", resp.StatusCode)
	}
	big := BatchRequest{Queries: make([]QueryRequest, 65)}
	for i := range big.Queries {
		big.Queries[i] = QueryRequest{Source: "s", Target: "t", Categories: []string{"MA"}, K: 1}
	}
	resp, _ = postBatch(t, ts.URL, big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status=%d", resp.StatusCode)
	}
}

// TestCacheByteIdentity is the cache-correctness gate wired into CI: a
// /v1/query response served from the result cache must be byte-for-byte
// identical to the same batch computed fresh — both against the cold
// run of the same server and against a server with caching disabled.
func TestCacheByteIdentity(t *testing.T) {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)
	cached := NewWithConfig(sys, Config{Workers: 2, CacheSize: 64})
	t.Cleanup(cached.Close)
	tsCached := httptest.NewServer(cached)
	t.Cleanup(tsCached.Close)
	uncached := NewWithConfig(sys, Config{Workers: 2})
	t.Cleanup(uncached.Close)
	tsUncached := httptest.NewServer(uncached)
	t.Cleanup(tsUncached.Close)

	batch := BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 3},
		{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 3, Method: "PK"},
		{Source: "0", Target: "7", Categories: []string{"0"}, K: 2, Expand: true},
	}}
	read := func(url string) (string, string) {
		resp := postJSON(t, url+"/v1/query", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status=%d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("X-Cache")
	}

	cold, coldHdr := read(tsCached.URL)
	warm, warmHdr := read(tsCached.URL)
	plain, _ := read(tsUncached.URL)
	if cold != warm {
		t.Errorf("cached response diverges from cold response:\ncold: %s\nwarm: %s", cold, warm)
	}
	if cold != plain {
		t.Errorf("cached server diverges from uncached server:\ncached:   %s\nuncached: %s", cold, plain)
	}
	if coldHdr != "hits=0 misses=3" {
		t.Errorf("cold X-Cache=%q", coldHdr)
	}
	if warmHdr != "hits=3 misses=0" {
		t.Errorf("warm X-Cache=%q", warmHdr)
	}
	if hits, misses, _, entries := cached.CacheStats(); hits != 3 || misses != 3 || entries != 3 {
		t.Errorf("cache stats: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
}

// TestCacheSingleFlight fires many concurrent identical queries at a
// cached server and checks that they collapsed onto few computations
// (leaders) while every caller got the full answer.
func TestCacheSingleFlight(t *testing.T) {
	g := kosr.Figure1()
	srv := NewWithConfig(kosr.NewSystem(g), Config{Workers: 4, CacheSize: 64})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	const callers = 24
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, br := postBatch(t, ts.URL, BatchRequest{Queries: []QueryRequest{
				{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 3},
			}})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status=%d", resp.StatusCode)
				return
			}
			if r := decodeResult(t, br.Results[0]); len(r.Routes) != 3 || r.Routes[0].Cost != 20 {
				t.Errorf("routes=%+v", r)
			}
		}()
	}
	wg.Wait()
	hits, misses, coalesced, _ := srv.CacheStats()
	if hits+misses+coalesced != callers {
		t.Fatalf("accounting: hits=%d misses=%d coalesced=%d, want sum %d", hits, misses, coalesced, callers)
	}
	if misses != 1 {
		t.Fatalf("identical concurrent queries computed %d times, want 1 (single-flight)", misses)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/query", "/v1/stream", "/query", "/expand"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status=%d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST" {
			t.Errorf("GET %s: Allow=%q, want POST", path, allow)
		}
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/health", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET" {
		t.Errorf("POST /health: status=%d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

func TestUnknownFieldsRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct{ path, body string }{
		{"/query", `{"source":"s","target":"t","categories":["MA"],"k":1,"bogus":true}`},
		{"/v1/query", `{"queries":[{"source":"s","target":"t","k":1,"wat":1}]}`},
		{"/v1/query", `{"quieries":[]}`},
		{"/v1/stream", `{"source":"s","target":"t","stream":true}`},
		{"/expand", `{"witness":[0,1],"extra":"x"}`},
	} {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with unknown field: status=%d, want 400", tc.path, resp.StatusCode)
		}
	}
}

func TestContentTypeRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"queries":[{"source":"s","target":"t","categories":["MA"],"k":1}]}`
	resp, err := http.Post(ts.URL+"/v1/query", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain: status=%d, want 415", resp.StatusCode)
	}
	// Empty Content-Type is tolerated (curl-less clients, tests).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", strings.NewReader(body))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("no Content-Type: status=%d, want 200", resp2.StatusCode)
	}
}

func TestStreamNDJSON(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/stream", QueryRequest{
		Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type=%q", ct)
	}
	var costs []float64
	var done bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if d, ok := line["done"].(bool); ok && d {
			done = true
			if n, _ := line["results"].(float64); int(n) != len(costs) {
				t.Errorf("summary results=%v, streamed %d", line["results"], len(costs))
			}
			continue
		}
		costs = append(costs, line["cost"].(float64))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("stream ended without a done summary line")
	}
	want := []float64{20, 21, 22}
	if len(costs) != 3 || costs[0] != want[0] || costs[1] != want[1] || costs[2] != want[2] {
		t.Fatalf("streamed costs=%v, want %v", costs, want)
	}
}

// streamTestSystem builds a grid city whose unbounded streams yield
// thousands of routes — enough NDJSON to outlast any socket buffer, so
// a disconnecting client is guaranteed to abandon a live engine.
func streamTestSystem(t *testing.T) *kosr.System {
	t.Helper()
	const rows, cols = 24, 24
	b := gen.GridBuilder(gen.GridOptions{Rows: rows, Cols: cols, Seed: 3, Diagonals: true})
	poi := b.NameCategory("poi")
	cafe := b.NameCategory("cafe")
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), poi)
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), cafe)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return kosr.NewSystem(g)
}

// TestStreamClientDisconnect is the abandoned-stream regression test: a
// client that walks away mid-NDJSON must cancel the engine (freeing the
// worker and its scratch) and leave no goroutines behind. The server
// runs a single worker, so a leaked engine would deadlock the follow-up
// query outright.
func TestStreamClientDisconnect(t *testing.T) {
	sys := streamTestSystem(t)
	srv := NewWithConfig(sys, Config{Workers: 1, QueryTimeout: 30 * time.Second})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(QueryRequest{Source: "0", Target: "575", Categories: []string{"poi", "cafe"}})
		resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		// Read one route, then hang up mid-stream.
		if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// The disconnects must free the single worker: a normal query now
	// has to come back with routes, not a queue timeout. (Drain and
	// close each poll response so its connection goes idle and the
	// goroutine check below sees only real leaks.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		body, _ := json.Marshal(QueryRequest{
			Source: "0", Target: "575", Categories: []string{"poi"}, K: 1,
		})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still pinned by abandoned streams: status=%d", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// And the stream goroutines must unwind (allow the HTTP machinery a
	// moment to notice the closed connections; drop the client's idle
	// keep-alive connections so only real leaks remain).
	deadline = time.Now().Add(5 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked by abandoned streams: before=%d now=%d", before, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestStreamBudgetTruncation pins the graceful end of a budget-limited
// stream: the summary line reports truncated=true.
func TestStreamBudgetTruncation(t *testing.T) {
	g := kosr.Figure1()
	srv := NewWithConfig(kosr.NewSystem(g), Config{MaxExamined: 5})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/stream", QueryRequest{
		Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 30,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var sawTruncated bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if d, ok := line["done"].(bool); ok && d {
			sawTruncated, _ = line["truncated"].(bool)
		}
	}
	if !sawTruncated {
		t.Fatal("budget-limited stream did not report truncated=true in its summary")
	}
}

// TestBatchConcurrentMixed hammers /v1/query from many goroutines with
// overlapping cacheable queries (run with -race): the single-flight
// cache, the worker pool, and the scratch pool all interleave.
func TestBatchConcurrentMixed(t *testing.T) {
	g := kosr.Figure1()
	srv := NewWithConfig(kosr.NewSystem(g), Config{Workers: 4, CacheSize: 8})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	methods := []string{"SK", "PK", "KPNE"}
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				batch := BatchRequest{Queries: []QueryRequest{
					{Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"},
						K: 2 + (worker+i)%2, Method: methods[(worker+i)%3]},
					{Source: "s", Target: "t", Categories: []string{"MA"}, K: 1},
				}}
				resp, br := postBatch(t, ts.URL, batch)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status=%d", worker, resp.StatusCode)
					return
				}
				r0 := decodeResult(t, br.Results[0])
				if r0.Error != "" || len(r0.Routes) == 0 || r0.Routes[0].Cost != 20 {
					t.Errorf("worker %d: %+v", worker, r0)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
