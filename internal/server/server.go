// Package server exposes a System over HTTP, so the KOSR engine can
// back a routing service:
//
//	GET  /health           liveness, index epoch, index and cache statistics
//	POST /v1/query         answer a batch of KOSR queries
//	POST /v1/stream        stream one query's routes as NDJSON
//	POST /v1/admin/update  apply a batch of dynamic index updates
//	POST /expand           expand a witness into a full route
//	POST /query            deprecated single-query endpoint
//
// Everything enters through the context-first Request path: queries
// execute on a bounded worker pool over the shared read-only index, the
// request context is threaded into the engine so a disconnected client
// aborts its in-flight search (and its scratch returns to the pool),
// and /v1/query results pass through an LRU cache with single-flight
// deduplication — concurrent identical queries compute once, and skewed
// traffic stops recomputing its hot set. Cached entries store the
// serialized response bytes, so cached and freshly computed responses
// are byte-identical by construction.
//
// Dynamic updates are safe under live traffic: every query handler pins
// one index Snapshot for the request's lifetime (a wait-free atomic
// load) and reports its version in the X-Index-Epoch response header,
// while /v1/admin/update applies its batch to a copy-on-write clone and
// publishes atomically. Cache keys embed the pinned epoch, so an update
// invalidates cached answers without a purge — superseded entries age
// out of the LRU, and /health reports how many remain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	kosr "repro"
	"repro/internal/cache"
	"repro/internal/faultinject"
)

// maxBodyBytes bounds request bodies; KOSR queries are tiny, so
// anything larger is hostile or confused.
const maxBodyBytes = 1 << 20

// Config tunes a Server. The zero value picks sane defaults.
type Config struct {
	// Workers bounds how many queries execute concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many accepted requests may wait for a
	// worker (default: 4×Workers, floored at 64 so a default-sized
	// batch fans out without shedding on small machines). Beyond it,
	// requests are shed immediately with 429.
	QueueDepth int
	// MaxExamined bounds each query's search (0 = unlimited); a routing
	// service should always set it. Queries over budget return their
	// partial results marked "truncated".
	MaxExamined int64
	// QueryTimeout bounds each query's wall-clock time, queueing
	// included (0 = no limit).
	QueryTimeout time.Duration
	// CacheSize bounds the /v1/query result cache in entries
	// (0 = caching disabled). Complete results are stored, as are
	// results truncated by the deterministic MaxExamined budget (keyed
	// on that budget); wall-clock truncations are recomputed. Cache
	// keys embed the index epoch the query was answered on, so
	// /v1/admin/update invalidates without a purge: entries from
	// superseded epochs age out of the LRU.
	CacheSize int
	// MaxBatch bounds how many queries one /v1/query request may carry
	// (default 64).
	MaxBatch int
	// StreamWriteTimeout bounds how long one /v1/stream NDJSON line may
	// take to reach the client before the stream is torn down, so a
	// stalled reader cannot pin a pool worker forever (0 applies
	// DefaultStreamWriteTimeout; negative disables the deadline).
	StreamWriteTimeout time.Duration
	// MaxUpdateBatch bounds how many mutations one /v1/admin/update
	// request may carry (default 1024).
	MaxUpdateBatch int
	// ServeStale allows a query that admission control shed to be
	// answered from a cache entry computed on a recent superseded epoch,
	// marked stale in X-Cache, instead of rejected. Off by default:
	// stale answers are wrong answers unless the operator opts in.
	ServeStale bool
	// StaleEpochs bounds how many epochs behind a stale answer may be
	// (default 1 when ServeStale is set). Ignored unless ServeStale.
	StaleEpochs int
	// ApplyRetries is how many times /v1/admin/update retries a
	// transiently failing System.Apply before giving up (default 3;
	// validation failures never retry).
	ApplyRetries int
	// ApplyBackoff is the initial sleep between Apply retries, doubling
	// each attempt (default 5ms).
	ApplyBackoff time.Duration
	// BreakerThreshold opens the apply circuit breaker after this many
	// consecutive exhausted-retry failures (default 3), shedding
	// further updates with 503 until BreakerCooldown passes.
	BreakerThreshold int
	// BreakerCooldown is how long the apply breaker stays open
	// (default 5s).
	BreakerCooldown time.Duration
}

// DefaultStreamWriteTimeout is the per-line write deadline applied to
// /v1/stream when Config.StreamWriteTimeout is zero. A healthy client
// drains a line in microseconds; 30 seconds distinguishes slow links
// from dead ones without cutting either off aggressively.
const DefaultStreamWriteTimeout = 30 * time.Second

// Server wires a System into an http.Handler backed by a worker pool.
// Create one with New or NewWithConfig and Close it on shutdown.
type Server struct {
	sys *kosr.System
	mux *http.ServeMux
	// MaxExamined bounds each query's search (0 = unlimited); it may be
	// adjusted between requests.
	MaxExamined int64
	// QueryTimeout bounds each query's wall-clock time (0 = no limit).
	QueryTimeout time.Duration

	cache          *cache.Cache[[]byte] // nil when CacheSize == 0
	maxBatch       int
	maxUpdateBatch int
	streamTimeout  time.Duration // per-line /v1/stream write deadline; <0 = none
	workers        int
	staleEpochs    int // >0 enables stale serving, bounding the window
	applyRetries   int
	applyBackoff   time.Duration
	brk            *breaker

	jobs     chan *task
	workerWG sync.WaitGroup

	// Admission-control state: tasks waiting in jobs, the recent mean
	// service time pricing a queue slot, per-endpoint shed counters,
	// and recovered panics (worker- and handler-side).
	queued    atomic.Int64
	ewmaNanos atomic.Int64
	sheds     map[string]*endpointSheds // fixed at construction; values mutate
	panics    atomic.Uint64

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

type task struct {
	run      func()
	done     chan struct{}
	panicked bool // set by the worker's recover before done closes
}

// New returns a Server for sys with default Config.
func New(sys *kosr.System) *Server { return NewWithConfig(sys, Config{}) }

// NewWithConfig returns a Server for sys and starts its worker pool.
func NewWithConfig(sys *kosr.System, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
		if cfg.QueueDepth < 64 {
			cfg.QueueDepth = 64
		}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxUpdateBatch <= 0 {
		cfg.MaxUpdateBatch = 1024
	}
	if cfg.StreamWriteTimeout == 0 {
		cfg.StreamWriteTimeout = DefaultStreamWriteTimeout
	}
	if cfg.StaleEpochs <= 0 {
		cfg.StaleEpochs = 1
	}
	if cfg.ApplyRetries <= 0 {
		cfg.ApplyRetries = 3
	}
	if cfg.ApplyBackoff <= 0 {
		cfg.ApplyBackoff = 5 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	s := &Server{
		sys:            sys,
		mux:            http.NewServeMux(),
		MaxExamined:    cfg.MaxExamined,
		QueryTimeout:   cfg.QueryTimeout,
		maxBatch:       cfg.MaxBatch,
		maxUpdateBatch: cfg.MaxUpdateBatch,
		streamTimeout:  cfg.StreamWriteTimeout,
		workers:        cfg.Workers,
		applyRetries:   cfg.ApplyRetries,
		applyBackoff:   cfg.ApplyBackoff,
		brk:            newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		jobs:           make(chan *task, cfg.QueueDepth),
		sheds: map[string]*endpointSheds{
			"/v1/query":  {},
			"/v1/stream": {},
			"/query":     {},
			"/expand":    {},
		},
	}
	if cfg.ServeStale {
		s.staleEpochs = cfg.StaleEpochs
	}
	if cfg.CacheSize > 0 {
		s.cache = cache.New[[]byte](cfg.CacheSize)
		s.cache.SetEpoch(sys.Epoch())
	}
	s.mux.HandleFunc("/health", methodOnly(http.MethodGet, s.handleHealth))
	s.mux.HandleFunc("/v1/query", methodOnly(http.MethodPost, s.handleBatchQuery))
	s.mux.HandleFunc("/v1/stream", methodOnly(http.MethodPost, s.handleStream))
	s.mux.HandleFunc("/v1/admin/update", methodOnly(http.MethodPost, s.handleAdminUpdate))
	s.mux.HandleFunc("/query", methodOnly(http.MethodPost, s.handleQuery))
	s.mux.HandleFunc("/expand", methodOnly(http.MethodPost, s.handleExpand))
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.jobs {
		s.queued.Add(-1)
		start := time.Now()
		s.runTask(t)
		s.observeService(time.Since(start))
		close(t.done)
	}
}

// runTask runs one task, converting a panic into t.panicked so the
// worker survives and the dispatching handler answers 500. The engine
// releases its own resources on the unwind (snapshot pins are plain
// pointers; scratch acquisition sites defer their release), so a
// panicking query does not shrink the scratch pool.
func (s *Server) runTask(t *task) {
	defer func() {
		if r := recover(); r != nil {
			t.panicked = true
			s.panics.Add(1)
		}
	}()
	faultinject.Sleep(faultinject.SlowWorker)
	t.run()
}

// Close stops accepting work, waits for queued and running queries to
// finish, and stops the workers. Safe to call more than once. When the
// Server sits behind an http.Server, call its Shutdown first so no
// handler is mid-dispatch.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait() // no dispatcher past the closed check
	close(s.jobs)     // lets workers drain the queue and exit
	s.workerWG.Wait()
}

// CacheStats reports the result cache's cumulative behaviour (all zero
// when caching is disabled). entries is the current stored count.
func (s *Server) CacheStats() (hits, misses, coalesced int64, entries int) {
	if s.cache == nil {
		return 0, 0, 0, 0
	}
	h, m, c := s.cache.Stats()
	return h, m, c, s.cache.Len()
}

// ServeHTTP implements http.Handler. Every handler runs under panic
// recovery: a panicking handler goroutine answers 500 (when no bytes
// have gone out yet) instead of killing the connection with a stack
// trace, and the panic is counted in /health.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rw := &recoveryWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			if !rw.wrote {
				writeError(rw, http.StatusInternalServerError, "internal error")
			}
		}
	}()
	s.mux.ServeHTTP(rw, r)
}

// recoveryWriter tracks whether any response bytes were written, so the
// recovery middleware knows whether a 500 can still be answered.
type recoveryWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *recoveryWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *recoveryWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *recoveryWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// deadline controls through the wrapper.
func (w *recoveryWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// methodOnly rejects every verb but the given one with a 405 carrying
// the mandatory Allow header.
func methodOnly(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, "use %s", method)
			return
		}
		h(w, r)
	}
}

// decodeJSON parses a JSON request body strictly: the Content-Type (when
// present) must be a JSON media type, unknown fields are rejected, and
// the body is capped at maxBodyBytes. It writes the error response
// itself and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && mt != "text/json") {
			writeError(w, http.StatusUnsupportedMediaType, "Content-Type %q is not JSON", ct)
			return false
		}
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HealthResponse is the /health payload.
type HealthResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch"`
	// Store names the index backing the serving snapshot chain was
	// opened from: "memory" (built or legacy-loaded), "mmap" (flat
	// index file served zero-copy), or "disk" (SK-DB).
	Store      string  `json:"store"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Categories int     `json:"categories"`
	AvgLin     float64 `json:"avgLin,omitempty"`
	AvgLout    float64 `json:"avgLout,omitempty"`
	IndexBytes int64   `json:"indexBytes,omitempty"`

	// Result cache counters (absent when caching is disabled).
	Cache *CacheHealth `json:"cache,omitempty"`

	// Updates reports the cumulative cost of dynamic index updates.
	Updates *UpdateHealth `json:"updates,omitempty"`

	// Sheds reports per-endpoint admission-control rejections since
	// startup, keyed by endpoint path.
	Sheds map[string]*ShedHealth `json:"sheds"`
	// Panics counts recovered panics (worker- and handler-side); any
	// nonzero value deserves a look at the logs.
	Panics uint64 `json:"panics,omitempty"`
	// Pages reports the current snapshot's page residency: Shared pages
	// are borrowed from ancestor epochs, Owned were copied on write.
	// Owned growing toward Shared+Owned across a long epoch chain is
	// the memory-amplification signature to alarm on.
	Pages *PageHealth `json:"pages,omitempty"`
}

// PageHealth is the /health view of Snapshot.PageResidency.
type PageHealth struct {
	Shared int `json:"shared"`
	Owned  int `json:"owned"`
}

// UpdateHealth is the /health view of the dynamic-update cost counters
// (kosr.ApplyStats): how many batches/mutations were applied, how much
// copy-on-write page work they performed, and how many warm query
// scratches carried across epoch publications. apply_bytes growing with
// the update count — not with the graph size — is the operational
// signature of the chunked copy-on-write index pages.
type UpdateHealth struct {
	Batches uint64 `json:"batches"`
	Applied uint64 `json:"applied"`
	// PagesCopied / ApplyBytes: copy-on-write pages and bytes the index
	// clones copied across all applied batches (page-table copies
	// included).
	PagesCopied uint64 `json:"pages_copied"`
	ApplyBytes  uint64 `json:"apply_bytes"`
	// HubRepairs / RepairSeeds / SeedsSkipped: deduplicated (hub,
	// direction) label repairs run by edge insertions, the raw seed
	// count before batch dedup and filtering, and the seeds dropped
	// because the pre-batch labels already covered them. RepairReruns:
	// parallel speculative repairs invalidated by cross-hub conflicts
	// and re-run serially at commit (0 with serial repair).
	HubRepairs   uint64 `json:"hub_repairs"`
	RepairSeeds  uint64 `json:"repair_seeds"`
	SeedsSkipped uint64 `json:"seeds_skipped"`
	RepairReruns uint64 `json:"repair_reruns"`
	// ScratchCarryover: pooled query scratches inherited by new epochs'
	// providers, keeping post-update queries warm.
	ScratchCarryover uint64 `json:"scratch_carryover"`
	// ScratchForwarded: scratch releases redirected from a superseded
	// epoch's provider into the live pool. Carryover only counts
	// scratches at rest at publication time; under saturation most are
	// checked out then and come home through this path instead.
	ScratchForwarded uint64 `json:"scratch_forwarded"`
	// ScratchInFlight: scratches currently checked out by running
	// queries; should fall back to 0 when traffic stops (a persistent
	// nonzero value at idle means a leak).
	ScratchInFlight int64 `json:"scratch_in_flight"`
}

// CacheHealth is the /health view of the result cache.
type CacheHealth struct {
	Entries int `json:"entries"`
	// Stale counts entries computed on a superseded index epoch; they
	// can no longer be hit (keys embed the epoch) and age out of the
	// LRU as fresh traffic displaces them.
	Stale     int   `json:"stale"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.sys.Snapshot()
	resp := HealthResponse{
		Status:     "ok",
		Epoch:      snap.Epoch,
		Store:      string(snap.Backing),
		Vertices:   snap.Graph.NumVertices(),
		Edges:      snap.Graph.NumEdges(),
		Categories: snap.Graph.NumCategories(),
	}
	if snap.Labels != nil {
		st := snap.Labels.Stats()
		resp.AvgLin = st.AvgIn
		resp.AvgLout = st.AvgOut
		resp.IndexBytes = st.SizeBytes
	}
	ast := s.sys.ApplyStats()
	resp.Updates = &UpdateHealth{
		Batches:          ast.Batches,
		Applied:          ast.Updates,
		PagesCopied:      ast.PagesCopied,
		ApplyBytes:       ast.ApplyBytes,
		HubRepairs:       ast.HubRepairs,
		RepairSeeds:      ast.RepairSeeds,
		SeedsSkipped:     ast.SeedsSkipped,
		RepairReruns:     ast.RepairReruns,
		ScratchCarryover: ast.ScratchCarryover,
		ScratchForwarded: ast.ScratchForwarded,
		ScratchInFlight:  s.sys.ScratchesInFlight(),
	}
	shared, owned := snap.PageResidency()
	resp.Pages = &PageHealth{Shared: shared, Owned: owned}
	resp.Sheds = make(map[string]*ShedHealth, len(s.sheds))
	for ep, c := range s.sheds {
		resp.Sheds[ep] = &ShedHealth{
			QueueFull:          c.queueFull.Load(),
			DeadlineUnmeetable: c.deadline.Load(),
			DeadlineExpired:    c.expired.Load(),
		}
	}
	resp.Panics = s.panics.Load()
	if s.cache != nil {
		// Refresh the freshness watermark from the snapshot, so the
		// stale count stays right even when an embedder publishes
		// updates through System.Apply without touching this server.
		s.cache.SetEpoch(snap.Epoch)
		h, m, c := s.cache.Stats()
		_, stale := s.cache.EpochLens()
		resp.Cache = &CacheHealth{Entries: s.cache.Len(), Stale: stale, Hits: h, Misses: m, Coalesced: c}
	}
	w.Header().Set("X-Index-Epoch", strconv.FormatUint(snap.Epoch, 10))
	writeJSON(w, http.StatusOK, resp)
}

// QueryRequest is one KOSR query on the wire. Vertices and categories
// may be given as numeric ids or symbolic names.
type QueryRequest struct {
	Source     string   `json:"source"`
	Target     string   `json:"target"`
	Categories []string `json:"categories"`
	K          int      `json:"k"`
	// Method is "SK" (default), "PK" or "KPNE".
	Method string `json:"method,omitempty"`
	// Expand additionally returns the full vertex walk of each route.
	Expand bool `json:"expand,omitempty"`
}

// RouteJSON is one result route.
type RouteJSON struct {
	Witness []int32  `json:"witness"`
	Names   []string `json:"names,omitempty"`
	Cost    float64  `json:"cost"`
	Route   []int32  `json:"route,omitempty"`
}

// QueryResult is one query's answer inside a /v1/query batch response.
// Every field is deterministic for a given index, which is what makes
// cached results byte-identical to freshly computed ones (wall-clock
// timing travels in the X-Query-Millis response header instead).
type QueryResult struct {
	Routes    []RouteJSON `json:"routes"`
	Examined  int64       `json:"examined"`
	NNQueries int64       `json:"nnQueries"`
	// Truncated marks that the search budget tripped before k routes
	// were found; Routes holds the (possibly empty) partial result.
	Truncated bool `json:"truncated,omitempty"`
	// Error reports a per-query failure (unknown vertex, bad method,
	// …); the surrounding batch still answers its other queries.
	Error string `json:"error,omitempty"`
	// Shed marks that admission control rejected this query without
	// running it; Error names the reason and RetryAfterMillis suggests
	// a backoff. The surrounding batch still answers its other queries
	// (an entirely shed batch is rejected whole with 429/503 instead).
	Shed bool `json:"shed,omitempty"`
	// RetryAfterMillis accompanies Shed.
	RetryAfterMillis int64 `json:"retry_after_millis,omitempty"`
}

// BatchRequest is the /v1/query payload: a batch of queries answered
// concurrently on the worker pool.
type BatchRequest struct {
	Queries []QueryRequest `json:"queries"`
}

// BatchResponse is the /v1/query result; Results is parallel to the
// request's Queries.
type BatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// QueryResponse is the deprecated /query result.
type QueryResponse struct {
	Routes    []RouteJSON `json:"routes"`
	Examined  int64       `json:"examined"`
	NNQueries int64       `json:"nnQueries"`
	Millis    float64     `json:"millis"`
	Truncated bool        `json:"truncated,omitempty"`
}

// resolveVertex maps a symbolic name or a decimal id to a vertex,
// rejecting ids with trailing garbage and ids outside [0, |V|).
func (s *Server) resolveVertex(spec string) (kosr.Vertex, error) {
	if v, ok := s.sys.Graph.VertexByName(spec); ok {
		return v, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("unknown vertex %q", spec)
	}
	if id < 0 || id >= s.sys.Graph.NumVertices() {
		return 0, fmt.Errorf("vertex id %d out of range [0, %d)", id, s.sys.Graph.NumVertices())
	}
	return kosr.Vertex(id), nil
}

// resolveCategory maps a symbolic name or a decimal id to a category,
// rejecting ids with trailing garbage and ids outside the snapshot's
// effective category space [0, snap.NumCategories()) — which includes
// ids grown dynamically via /v1/admin/update, not just the base
// graph's static set.
func (s *Server) resolveCategory(snap *kosr.Snapshot, spec string) (kosr.Category, error) {
	if c, ok := s.sys.Graph.CategoryByName(spec); ok {
		return c, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("unknown category %q", spec)
	}
	if id < 0 || id >= snap.NumCategories() {
		return 0, fmt.Errorf("category id %d out of range [0, %d)", id, snap.NumCategories())
	}
	return kosr.Category(id), nil
}

// buildRequest resolves a wire query into an engine Request against the
// pinned snapshot's id spaces.
func (s *Server) buildRequest(snap *kosr.Snapshot, qr QueryRequest) (kosr.Request, error) {
	var req kosr.Request
	src, err := s.resolveVertex(qr.Source)
	if err != nil {
		return req, fmt.Errorf("source: %w", err)
	}
	dst, err := s.resolveVertex(qr.Target)
	if err != nil {
		return req, fmt.Errorf("target: %w", err)
	}
	cats := make([]kosr.Category, len(qr.Categories))
	for i, cs := range qr.Categories {
		if cats[i], err = s.resolveCategory(snap, cs); err != nil {
			return req, fmt.Errorf("category %d: %w", i, err)
		}
	}
	var method kosr.Method
	switch qr.Method {
	case "", "SK":
		method = kosr.StarKOSR
	case "PK":
		method = kosr.PruningKOSR
	case "KPNE":
		method = kosr.KPNE
	default:
		return req, fmt.Errorf("unknown method %q", qr.Method)
	}
	k := qr.K
	if k <= 0 {
		k = 1
	}
	return kosr.Request{
		Source: src, Target: dst, Categories: cats, K: k,
		Method: method, MaxExamined: s.MaxExamined,
	}, nil
}

// queryCtx derives the per-query context from the request context, the
// configured timeout, and the optional X-Deadline-Millis header, which
// lets a client pass its remaining budget so the server stops working
// the moment an answer could no longer arrive in time. The tighter of
// the header and QueryTimeout wins. A malformed header is a caller bug
// and reports an error (the handler answers 400).
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	budget := s.QueryTimeout
	if h := r.Header.Get("X-Deadline-Millis"); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad X-Deadline-Millis %q: want a positive integer", h)
		}
		if d := time.Duration(ms) * time.Millisecond; budget <= 0 || d < budget {
			budget = d
		}
	}
	if budget > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		return ctx, cancel, nil
	}
	return r.Context(), func() {}, nil
}

// runQuery answers one Request on the worker pool against the pinned
// snapshot: the shared worker-side body of /v1/query, /v1/stream's
// sibling handlers and the deprecated /query. The engine honours the
// context itself, but MaxDuration additionally caps the search at the
// time left when the worker picks the query up, so queueing cannot
// extend the request's stay. Expansion runs on the worker too, so the
// pool bounds all engine CPU, not just Do.
func (s *Server) runQuery(ctx context.Context, endpoint string, snap *kosr.Snapshot, req kosr.Request, expand bool) (res *kosr.Result, expanded [][]int32, err error) {
	var doErr error
	if err := s.dispatch(ctx, endpoint, func() {
		if deadline, ok := ctx.Deadline(); ok {
			remaining := time.Until(deadline) - faultinject.Skew(faultinject.SkewDeadline)
			if remaining <= 0 {
				doErr = context.DeadlineExceeded
				return
			}
			req.MaxDuration = remaining
		}
		faultinject.Panic(faultinject.PanicCompute)
		res, doErr = snap.Do(ctx, req)
		if doErr == nil && expand {
			expanded = make([][]int32, len(res.Routes))
			for i, rt := range res.Routes {
				expanded[i] = snap.ExpandWitness(rt.Witness)
			}
		}
	}); err != nil {
		return nil, nil, err
	}
	return res, expanded, doErr
}

// compute answers one Request on the worker pool and serializes the
// deterministic QueryResult. storable is false for wall-clock-truncated
// results (they depend on the leader's budget, so caching one would
// serve stale partial answers to requests with healthier budgets);
// results truncated by the deterministic MaxExamined budget are
// storable — the cache key covers the budget, so every request sharing
// the key truncates identically.
func (s *Server) compute(ctx context.Context, endpoint string, snap *kosr.Snapshot, req kosr.Request, expand bool) (body []byte, storable bool, err error) {
	res, expanded, err := s.runQuery(ctx, endpoint, snap, req, expand)
	if err != nil {
		return nil, false, err
	}
	qr := QueryResult{
		Routes:    s.routesJSON(res.Routes, expanded),
		Examined:  res.Stats.Examined,
		NNQueries: res.Stats.NNQueries,
		Truncated: res.Truncated,
	}
	b, err := json.Marshal(qr)
	if err != nil {
		return nil, false, err
	}
	return b, !res.Truncated || res.TruncatedByExamined, nil
}

func (s *Server) routesJSON(routes []kosr.Route, expanded [][]int32) []RouteJSON {
	out := make([]RouteJSON, len(routes))
	for i, rt := range routes {
		rj := RouteJSON{Witness: rt.Witness, Cost: rt.Cost}
		rj.Names = make([]string, len(rt.Witness))
		for k, v := range rt.Witness {
			rj.Names[k] = s.sys.Graph.VertexName(v)
		}
		if expanded != nil {
			rj.Route = expanded[i]
		}
		out[i] = rj
	}
	return out
}

// answerOne resolves and answers one batch entry against the pinned
// snapshot, going through the result cache when the query is cacheable.
// The cache key embeds the snapshot epoch (via Request.IndexEpoch), so
// answers computed on different index versions never collide and an
// update needs no purge. The returned bytes are a serialized
// QueryResult; per-query failures become the Error field so the batch's
// other queries still answer. hit reports a cache hit (or a coalesced
// in-flight computation).
func (s *Server) answerOne(ctx context.Context, snap *kosr.Snapshot, qr QueryRequest, warm []kosr.Category) (body json.RawMessage, hit, stale bool, shed *shedError) {
	const endpoint = "/v1/query"
	req, err := s.buildRequest(snap, qr)
	if err != nil {
		return errResult(err), false, false, nil
	}
	req.IndexEpoch = snap.Epoch
	req.WarmCategories = warm
	key, cacheable := req.CanonicalKey()
	if qr.Expand {
		key = "e|" + key
	}
	if s.cache == nil || !cacheable {
		b, _, err := s.compute(ctx, endpoint, snap, req, qr.Expand)
		return s.finishOne(b, false, req, qr.Expand, err)
	}
	b, hit, err := s.cache.DoAt(ctx, key, snap.Epoch, func() ([]byte, bool, error) {
		return s.compute(ctx, endpoint, snap, req, qr.Expand)
	})
	if err != nil && hit {
		// The leader we coalesced onto failed (most likely its client
		// disconnected, cancelling its context). Its failure is not
		// ours: compute independently.
		b, _, err = s.compute(ctx, endpoint, snap, req, qr.Expand)
		hit = false
	}
	return s.finishOne(b, hit, req, qr.Expand, err)
}

// finishOne folds one batch entry's compute outcome into a wire result.
// A shed query falls back to a bounded-staleness cache entry when the
// operator enabled -serve-stale; otherwise it reports the shed
// structurally so the rest of the batch still answers.
func (s *Server) finishOne(b []byte, hit bool, req kosr.Request, expand bool, err error) (json.RawMessage, bool, bool, *shedError) {
	if err == nil {
		return b, hit, false, nil
	}
	var sh *shedError
	if errors.As(err, &sh) {
		if sb, ok := s.peekStale(req, expand); ok {
			return sb, false, true, nil
		}
		return shedResult(sh), false, false, sh
	}
	return errResult(err), false, false, nil
}

// peekStale probes the result cache for this query answered on a recent
// superseded epoch, newest first, within the configured staleness
// window. Peek does not promote or count: a degraded read must not
// perturb what the fresh working set keeps resident.
func (s *Server) peekStale(req kosr.Request, expand bool) (json.RawMessage, bool) {
	if s.staleEpochs <= 0 || s.cache == nil {
		return nil, false
	}
	epoch := req.IndexEpoch
	for back := uint64(1); back <= uint64(s.staleEpochs) && back <= epoch; back++ {
		req.IndexEpoch = epoch - back
		key, cacheable := req.CanonicalKey()
		if !cacheable {
			return nil, false
		}
		if expand {
			key = "e|" + key
		}
		if b, ok := s.cache.Peek(key); ok {
			return b, true
		}
	}
	return nil, false
}

func errResult(err error) json.RawMessage {
	b, mErr := json.Marshal(QueryResult{Error: err.Error()})
	if mErr != nil {
		return json.RawMessage(`{"error":"internal error"}`)
	}
	return b
}

func shedResult(sh *shedError) json.RawMessage {
	b, err := json.Marshal(QueryResult{
		Error: sh.Error(), Shed: true,
		RetryAfterMillis: sh.retryAfter.Milliseconds(),
	})
	if err != nil {
		return json.RawMessage(`{"error":"internal error"}`)
	}
	return b
}

// batchWarmCategories computes the Request.WarmCategories hint for one
// batch: the deduplicated union of resolvable category ids across all
// entries, so queries sharing categories warm each pooled scratch's
// iterator rows once per batch rather than once per query. Single-entry
// batches get no hint (warming beyond the query's own categories buys
// nothing), and unresolvable specs are skipped here — the entry itself
// reports the error when it is answered.
func (s *Server) batchWarmCategories(snap *kosr.Snapshot, queries []QueryRequest) []kosr.Category {
	if len(queries) < 2 {
		return nil
	}
	var union []kosr.Category
outer:
	for _, q := range queries {
		for _, spec := range q.Categories {
			c, err := s.resolveCategory(snap, spec)
			if err != nil {
				continue
			}
			seen := false
			for _, u := range union {
				if u == c {
					seen = true
					break
				}
			}
			if !seen {
				union = append(union, c)
				if len(union) >= maxBatchWarmCategories {
					break outer
				}
			}
		}
	}
	return union
}

// maxBatchWarmCategories bounds the warm hint: each warmed iterator row
// is an O(|V|) allocation retained by a pooled scratch, so a batch
// naming many distinct categories must not widen every scratch.
const maxBatchWarmCategories = 16

// handleBatchQuery answers POST /v1/query: a batch of queries fanned
// out across the worker pool, each passing through the result cache.
func (s *Server) handleBatchQuery(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if !decodeJSON(w, r, &batch) {
		return
	}
	if len(batch.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: provide at least one query")
		return
	}
	if len(batch.Queries) > s.maxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d queries exceeds the limit of %d", len(batch.Queries), s.maxBatch)
		return
	}
	ctx, cancel, err := s.queryCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()

	// One snapshot pin serves the whole batch: every query of the batch
	// is answered on the same index version, even if an update publishes
	// mid-flight.
	snap := s.sys.Snapshot()
	warm := s.batchWarmCategories(snap, batch.Queries)
	start := time.Now()
	results := make([]json.RawMessage, len(batch.Queries))
	hits := make([]bool, len(batch.Queries))
	stales := make([]bool, len(batch.Queries))
	shedErrs := make([]*shedError, len(batch.Queries))
	var wg sync.WaitGroup
	for i, q := range batch.Queries {
		wg.Add(1)
		go func(i int, q QueryRequest) {
			defer wg.Done()
			// A panic here would escape the handler's recovery (it is a
			// different goroutine) and kill the process: degrade to a
			// per-query error instead, like any other entry failure.
			defer func() {
				if rec := recover(); rec != nil {
					s.panics.Add(1)
					results[i] = errResult(errWorkerPanic)
				}
			}()
			results[i], hits[i], stales[i], shedErrs[i] = s.answerOne(ctx, snap, q, warm)
		}(i, q)
	}
	wg.Wait()

	nHits, nStale, nShed := 0, 0, 0
	worst := (*shedError)(nil)
	for i := range results {
		if hits[i] {
			nHits++
		}
		if stales[i] {
			nStale++
		}
		if sh := shedErrs[i]; sh != nil {
			nShed++
			if worst == nil || sh.retryAfter > worst.retryAfter ||
				(sh.status == http.StatusServiceUnavailable && worst.status != http.StatusServiceUnavailable) {
				worst = sh
			}
		}
	}
	// When admission control rejected every entry there is no partial
	// answer worth a 200: reject the batch whole, with the most
	// conservative Retry-After among the per-entry sheds.
	if nShed == len(results) {
		writeShed(w, worst)
		return
	}
	// Timing and cache outcome travel as headers: the body stays
	// deterministic, so cached and uncached responses are byte-identical.
	// The stale segment appears only when stale entries were served, so
	// the header is byte-stable for every fully fresh response.
	xc := fmt.Sprintf("hits=%d misses=%d", nHits, len(results)-nHits-nStale)
	if nStale > 0 {
		xc += fmt.Sprintf(" stale=%d", nStale)
	}
	w.Header().Set("X-Index-Epoch", strconv.FormatUint(snap.Epoch, 10))
	w.Header().Set("X-Cache", xc)
	w.Header().Set("X-Query-Millis",
		strconv.FormatFloat(float64(time.Since(start).Microseconds())/1000, 'f', 3, 64))
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// handleStream answers POST /v1/stream: the query's routes stream back
// as NDJSON (one RouteJSON per line) in nondecreasing cost order,
// produced lazily by the progressive searcher. K caps the stream when
// positive. A client that disconnects cancels the request context,
// which aborts the in-flight search within one engine check interval
// and returns its scratch to the pool; a client that stays connected
// but stops reading trips the per-line write deadline instead, so a
// stalled NDJSON reader cannot pin a pool worker forever. The final
// line is a summary: {"done":true, ...} — its absence means the stream
// was cut short.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	var qr QueryRequest
	if !decodeJSON(w, r, &qr) {
		return
	}
	snap := s.sys.Snapshot() // the whole stream reads one index version
	req, err := s.buildRequest(snap, qr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	req.K = qr.K // DoStream treats K<=0 as unbounded; don't default to 1
	ctx, cancel, err := s.queryCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	req.IndexEpoch = snap.Epoch

	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	// armWriteDeadline gives the next NDJSON line s.streamTimeout to
	// reach the client. ErrNotSupported (recorders, exotic wrappers)
	// quietly disables the guard rather than the stream.
	armWriteDeadline := func() {
		if s.streamTimeout > 0 {
			rc.SetWriteDeadline(time.Now().Add(s.streamTimeout))
		}
	}
	// The whole stream runs on one pool worker, so the pool bounds all
	// engine CPU; the context threading above keeps a dead client from
	// pinning the worker, and the write deadline keeps a stalled one
	// from doing so.
	expired := false
	started := false
	if err := s.dispatch(ctx, "/v1/stream", func() {
		// The deadline is a property of the connection, not the request:
		// clear it on the way out or a later keep-alive request on the
		// same connection would inherit it (http.Server only re-arms
		// per request when WriteTimeout is set).
		defer func() {
			if s.streamTimeout > 0 {
				rc.SetWriteDeadline(time.Time{})
			}
		}()
		if deadline, ok := ctx.Deadline(); ok {
			remaining := time.Until(deadline) - faultinject.Skew(faultinject.SkewDeadline)
			if remaining <= 0 {
				expired = true // queueing ate the whole budget
				return
			}
			req.MaxDuration = remaining
		}
		// Headers go out only once the stream really starts, so the
		// expired path below can still answer with a proper status.
		started = true
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Index-Epoch", strconv.FormatUint(snap.Epoch, 10))
		n := 0
		truncated := false
		for rt, err := range snap.DoStream(ctx, req) {
			if err != nil {
				// Budget exhaustion ends the stream gracefully;
				// cancellation means nobody is reading anymore.
				truncated = errors.Is(err, kosr.ErrBudgetExceeded)
				if !truncated {
					return
				}
				break
			}
			line := RouteJSON{Witness: rt.Witness, Cost: rt.Cost}
			line.Names = make([]string, len(rt.Witness))
			for k, v := range rt.Witness {
				line.Names[k] = s.sys.Graph.VertexName(v)
			}
			if qr.Expand {
				line.Route = snap.ExpandWitness(rt.Witness)
			}
			armWriteDeadline()
			faultinject.Sleep(faultinject.StallStreamWriter)
			if enc.Encode(line) != nil {
				// Client gone or its socket write blocked past the
				// deadline; ctx cancellation tears down the engine.
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			n++
		}
		armWriteDeadline()
		enc.Encode(map[string]any{"done": true, "results": n, "truncated": truncated})
	}); err != nil {
		// Nothing was written yet (dispatch failed before the worker
		// ran), so a proper error status is still possible.
		writeDispatchError(w, err)
		return
	}
	if expired && !started {
		writeError(w, http.StatusServiceUnavailable, "no worker available before the query timeout")
	}
}

// handleQuery answers POST /query, the deprecated single-query
// endpoint. It rides the same Request path (context threading included)
// but keeps the historical response shape with inline timing, and
// bypasses the result cache.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr QueryRequest
	if !decodeJSON(w, r, &qr) {
		return
	}
	snap := s.sys.Snapshot()
	req, err := s.buildRequest(snap, qr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.queryCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	req.IndexEpoch = snap.Epoch

	start := time.Now()
	res, expanded, err := s.runQuery(ctx, "/query", snap, req, qr.Expand)
	if isDispatchError(err) || errors.Is(err, context.Canceled) {
		writeDispatchError(w, err)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, "query timed out before a worker could start it")
		return
	} else if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("X-Index-Epoch", strconv.FormatUint(snap.Epoch, 10))
	writeJSON(w, http.StatusOK, QueryResponse{
		Routes:    s.routesJSON(res.Routes, expanded),
		Examined:  res.Stats.Examined,
		NNQueries: res.Stats.NNQueries,
		Millis:    float64(time.Since(start).Microseconds()) / 1000,
		Truncated: res.Truncated,
	})
}

// isDispatchError reports whether err came from dispatch itself (a shed
// or a worker panic) rather than the query's own execution.
func isDispatchError(err error) bool {
	var sh *shedError
	return errors.As(err, &sh) || errors.Is(err, errWorkerPanic)
}

func writeDispatchError(w http.ResponseWriter, err error) {
	var sh *shedError
	switch {
	case errors.As(err, &sh):
		writeShed(w, sh)
	case errors.Is(err, errWorkerPanic):
		writeError(w, http.StatusInternalServerError, "%v", err)
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "no worker available before the query timeout")
	default:
		writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
	}
}

// UpdateJSON is one mutation of a /v1/admin/update batch. Vertices and
// categories may be given as numeric ids or symbolic names, exactly
// like query endpoints.
type UpdateJSON struct {
	// Op is "insert-edge", "add-category" or "remove-category".
	Op string `json:"op"`
	// From, To, Weight describe the new arc for insert-edge.
	From   string  `json:"from,omitempty"`
	To     string  `json:"to,omitempty"`
	Weight float64 `json:"weight,omitempty"`
	// Vertex, Category identify the membership change for
	// add-category / remove-category.
	Vertex   string `json:"vertex,omitempty"`
	Category string `json:"category,omitempty"`
}

// AdminUpdateRequest is the /v1/admin/update payload: an ordered batch
// of mutations applied atomically as one new index epoch.
type AdminUpdateRequest struct {
	Updates []UpdateJSON `json:"updates"`
}

// AdminUpdateResponse reports the published epoch.
type AdminUpdateResponse struct {
	// Epoch is the index version now serving queries; every /v1/query
	// response issued after this call reports it (or a later one) in
	// X-Index-Epoch.
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
}

// handleAdminUpdate answers POST /v1/admin/update: the batch is
// resolved, applied to a copy-on-write clone of the current snapshot by
// the system's serialized updater, and published atomically. In-flight
// queries finish on the snapshot they pinned; queries arriving after
// the response see the new epoch, and the result cache switches its
// epoch tag so superseded entries are counted stale (they age out of
// the LRU — no purge). The endpoint carries no authentication; deploy
// it behind the same trust boundary as your other mutating admin
// surfaces.
func (s *Server) handleAdminUpdate(w http.ResponseWriter, r *http.Request) {
	var req AdminUpdateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: provide at least one update")
		return
	}
	if len(req.Updates) > s.maxUpdateBatch {
		writeError(w, http.StatusBadRequest, "batch of %d updates exceeds the limit of %d", len(req.Updates), s.maxUpdateBatch)
		return
	}
	updates := make([]kosr.Update, len(req.Updates))
	for i, u := range req.Updates {
		var err error
		if updates[i], err = s.buildUpdate(u); err != nil {
			writeError(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
	}
	// The apply path is guarded by a circuit breaker: while it is open
	// (after repeated transient failures) updates shed immediately
	// instead of piling retries onto a struggling updater.
	if ok, wait := s.brk.allow(); !ok {
		writeShed(w, &shedError{
			status: http.StatusServiceUnavailable, reason: shedBreakerOpen,
			retryAfter: wait, cause: errApplyBreakerOpen,
		})
		return
	}
	epoch, err := s.applyWithRetry(r.Context(), updates)
	if errors.Is(err, kosr.ErrInvalidUpdate) {
		// The batch itself is bad; retrying cannot help and the updater
		// is healthy, so the breaker is untouched.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if err != nil {
		s.brk.onFailure()
		writeShed(w, &shedError{
			status: http.StatusServiceUnavailable, reason: shedApplyFailed,
			retryAfter: s.brk.cooldown, cause: err,
		})
		return
	}
	s.brk.onSuccess()
	if s.cache != nil {
		s.cache.SetEpoch(epoch)
	}
	w.Header().Set("X-Index-Epoch", strconv.FormatUint(epoch, 10))
	writeJSON(w, http.StatusOK, AdminUpdateResponse{Epoch: epoch, Applied: len(updates)})
}

// applyWithRetry runs System.Apply with bounded exponential backoff on
// transient failures. Validation failures (ErrInvalidUpdate) return
// immediately: the batch would fail identically every time. Backoff
// sleeps watch ctx so a client that gives up (or a shutting-down
// server) stops the retry loop instead of holding the handler.
func (s *Server) applyWithRetry(ctx context.Context, updates []kosr.Update) (epoch uint64, err error) {
	backoff := s.applyBackoff
	for attempt := 0; ; attempt++ {
		epoch, err = s.sys.Apply(updates...)
		if err == nil || errors.Is(err, kosr.ErrInvalidUpdate) || attempt+1 >= s.applyRetries {
			return epoch, err
		}
		t := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			t.Stop()
			return epoch, fmt.Errorf("apply retry abandoned: %w (last attempt: %v)", ctx.Err(), err)
		case <-t.C:
		}
		backoff *= 2
	}
}

// buildUpdate resolves one wire mutation into an engine Update.
func (s *Server) buildUpdate(u UpdateJSON) (kosr.Update, error) {
	switch u.Op {
	case "insert-edge":
		from, err := s.resolveVertex(u.From)
		if err != nil {
			return kosr.Update{}, fmt.Errorf("from: %w", err)
		}
		to, err := s.resolveVertex(u.To)
		if err != nil {
			return kosr.Update{}, fmt.Errorf("to: %w", err)
		}
		if u.Weight < 0 || u.Weight != u.Weight {
			return kosr.Update{}, fmt.Errorf("invalid weight %v", u.Weight)
		}
		return kosr.Update{Op: kosr.OpInsertEdge, From: from, To: to, Weight: u.Weight}, nil
	case "add-category", "remove-category":
		v, err := s.resolveVertex(u.Vertex)
		if err != nil {
			return kosr.Update{}, fmt.Errorf("vertex: %w", err)
		}
		c, err := s.resolveUpdateCategory(u.Category)
		if err != nil {
			return kosr.Update{}, fmt.Errorf("category: %w", err)
		}
		op := kosr.OpAddCategory
		if u.Op == "remove-category" {
			op = kosr.OpRemoveCategory
		}
		return kosr.Update{Op: op, Vertex: v, Category: c}, nil
	default:
		return kosr.Update{}, fmt.Errorf("unknown op %q (want insert-edge, add-category or remove-category)", u.Op)
	}
}

// resolveUpdateCategory resolves a category for an admin mutation.
// Unlike query resolution it accepts numeric ids beyond the current
// category space, up to the growth bound System.Apply enforces —
// OpAddCategory is exactly how new ids come into existence.
func (s *Server) resolveUpdateCategory(spec string) (kosr.Category, error) {
	if c, ok := s.sys.Graph.CategoryByName(spec); ok {
		return c, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("unknown category %q", spec)
	}
	max := s.sys.Graph.NumCategories() + kosr.MaxDynamicCategoryGrowth
	if id < 0 || id >= max {
		return 0, fmt.Errorf("category id %d out of range [0, %d)", id, max)
	}
	return kosr.Category(id), nil
}

// ExpandRequest is the /expand payload.
type ExpandRequest struct {
	Witness []int32 `json:"witness"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	var req ExpandRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	n := int32(s.sys.Graph.NumVertices())
	for _, v := range req.Witness {
		if v < 0 || v >= n {
			writeError(w, http.StatusBadRequest, "vertex %d out of range", v)
			return
		}
	}
	ctx, cancel, err := s.queryCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	snap := s.sys.Snapshot()
	var route []int32
	if err := s.dispatch(ctx, "/expand", func() {
		route = snap.ExpandWitness(req.Witness)
	}); err != nil {
		writeDispatchError(w, err)
		return
	}
	if route == nil {
		writeError(w, http.StatusUnprocessableEntity, "witness has an unreachable leg")
		return
	}
	writeJSON(w, http.StatusOK, map[string][]int32{"route": route})
}
