// Package server exposes a System over HTTP with a small JSON API, so
// the KOSR engine can back a routing service:
//
//	GET  /health          liveness and index statistics
//	POST /query           answer a KOSR query
//	POST /expand          expand a witness into a full route
//
// The handler is safe for concurrent use: the underlying indexes are
// immutable and every query builds its own search state.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	kosr "repro"
	"repro/internal/core"
)

// Server wires a System into an http.Handler.
type Server struct {
	sys *kosr.System
	mux *http.ServeMux
	// MaxExamined bounds each query's search (0 = unlimited); a routing
	// service should always set it.
	MaxExamined int64
}

// New returns a Server for sys.
func New(sys *kosr.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("/health", s.handleHealth)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/expand", s.handleExpand)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HealthResponse is the /health payload.
type HealthResponse struct {
	Status     string  `json:"status"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Categories int     `json:"categories"`
	AvgLin     float64 `json:"avgLin,omitempty"`
	AvgLout    float64 `json:"avgLout,omitempty"`
	IndexBytes int64   `json:"indexBytes,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := HealthResponse{
		Status:     "ok",
		Vertices:   s.sys.Graph.NumVertices(),
		Edges:      s.sys.Graph.NumEdges(),
		Categories: s.sys.Graph.NumCategories(),
	}
	if s.sys.Labels != nil {
		st := s.sys.Labels.Stats()
		resp.AvgLin = st.AvgIn
		resp.AvgLout = st.AvgOut
		resp.IndexBytes = st.SizeBytes
	}
	writeJSON(w, http.StatusOK, resp)
}

// QueryRequest is the /query payload. Vertices and categories may be
// given as numeric ids or symbolic names.
type QueryRequest struct {
	Source     string   `json:"source"`
	Target     string   `json:"target"`
	Categories []string `json:"categories"`
	K          int      `json:"k"`
	// Method is "SK" (default), "PK" or "KPNE".
	Method string `json:"method,omitempty"`
	// Expand additionally returns the full vertex walk of each route.
	Expand bool `json:"expand,omitempty"`
}

// RouteJSON is one result route.
type RouteJSON struct {
	Witness []int32  `json:"witness"`
	Names   []string `json:"names,omitempty"`
	Cost    float64  `json:"cost"`
	Route   []int32  `json:"route,omitempty"`
}

// QueryResponse is the /query result.
type QueryResponse struct {
	Routes    []RouteJSON `json:"routes"`
	Examined  int64       `json:"examined"`
	NNQueries int64       `json:"nnQueries"`
	Millis    float64     `json:"millis"`
}

func (s *Server) resolveVertex(spec string) (kosr.Vertex, error) {
	if v, ok := s.sys.Graph.VertexByName(spec); ok {
		return v, nil
	}
	var id int32
	if _, err := fmt.Sscanf(spec, "%d", &id); err != nil {
		return 0, fmt.Errorf("unknown vertex %q", spec)
	}
	return id, nil
}

func (s *Server) resolveCategory(spec string) (kosr.Category, error) {
	if c, ok := s.sys.Graph.CategoryByName(spec); ok {
		return c, nil
	}
	var id int32
	if _, err := fmt.Sscanf(spec, "%d", &id); err != nil {
		return 0, fmt.Errorf("unknown category %q", spec)
	}
	return id, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	src, err := s.resolveVertex(req.Source)
	if err != nil {
		writeError(w, http.StatusBadRequest, "source: %v", err)
		return
	}
	dst, err := s.resolveVertex(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, "target: %v", err)
		return
	}
	cats := make([]kosr.Category, len(req.Categories))
	for i, cs := range req.Categories {
		if cats[i], err = s.resolveCategory(cs); err != nil {
			writeError(w, http.StatusBadRequest, "category %d: %v", i, err)
			return
		}
	}
	var method kosr.Method
	switch req.Method {
	case "", "SK":
		method = kosr.StarKOSR
	case "PK":
		method = kosr.PruningKOSR
	case "KPNE":
		method = kosr.KPNE
	default:
		writeError(w, http.StatusBadRequest, "unknown method %q", req.Method)
		return
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	start := time.Now()
	routes, st, err := s.sys.Solve(
		kosr.Query{Source: src, Target: dst, Categories: cats, K: k},
		kosr.Options{Method: method, MaxExamined: s.MaxExamined})
	if err == core.ErrBudgetExceeded {
		writeError(w, http.StatusServiceUnavailable, "query exceeded the search budget")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := QueryResponse{
		Routes:    make([]RouteJSON, len(routes)),
		Examined:  st.Examined,
		NNQueries: st.NNQueries,
		Millis:    float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, rt := range routes {
		rj := RouteJSON{Witness: rt.Witness, Cost: rt.Cost}
		rj.Names = make([]string, len(rt.Witness))
		for k, v := range rt.Witness {
			rj.Names[k] = s.sys.Graph.VertexName(v)
		}
		if req.Expand {
			rj.Route = s.sys.ExpandWitness(rt.Witness)
		}
		resp.Routes[i] = rj
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExpandRequest is the /expand payload.
type ExpandRequest struct {
	Witness []int32 `json:"witness"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req ExpandRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	n := int32(s.sys.Graph.NumVertices())
	for _, v := range req.Witness {
		if v < 0 || v >= n {
			writeError(w, http.StatusBadRequest, "vertex %d out of range", v)
			return
		}
	}
	route := s.sys.ExpandWitness(req.Witness)
	if route == nil {
		writeError(w, http.StatusUnprocessableEntity, "witness has an unreachable leg")
		return
	}
	writeJSON(w, http.StatusOK, map[string][]int32{"route": route})
}
