// Package server exposes a System over HTTP with a small JSON API, so
// the KOSR engine can back a routing service:
//
//	GET  /health          liveness and index statistics
//	POST /query           answer a KOSR query
//	POST /expand          expand a witness into a full route
//
// Queries execute on a bounded worker pool over the shared read-only
// index: each worker reuses a warm query scratch from the provider's
// pool, so steady-state queries allocate no per-vertex state, and the
// pool bounds how many engines run at once no matter how many HTTP
// connections are open. Requests that cannot be scheduled before their
// timeout are rejected rather than queued without bound, and Close
// drains the pool for graceful shutdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	kosr "repro"
	"repro/internal/core"
)

// maxBodyBytes bounds request bodies; KOSR queries are tiny, so
// anything larger is hostile or confused.
const maxBodyBytes = 1 << 20

// Config tunes a Server. The zero value picks sane defaults.
type Config struct {
	// Workers bounds how many queries execute concurrently
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many accepted requests may wait for a
	// worker (default: 4×Workers). Beyond it, requests block until
	// their timeout and are rejected.
	QueueDepth int
	// MaxExamined bounds each query's search (0 = unlimited); a routing
	// service should always set it. Queries over budget return their
	// partial results marked "truncated".
	MaxExamined int64
	// QueryTimeout bounds each query's wall-clock time, queueing
	// included (0 = no limit).
	QueryTimeout time.Duration
}

// Server wires a System into an http.Handler backed by a worker pool.
// Create one with New or NewWithConfig and Close it on shutdown.
type Server struct {
	sys *kosr.System
	mux *http.ServeMux
	// MaxExamined bounds each query's search (0 = unlimited); it may be
	// adjusted between requests.
	MaxExamined int64
	// QueryTimeout bounds each query's wall-clock time (0 = no limit).
	QueryTimeout time.Duration

	jobs     chan *task
	workerWG sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

type task struct {
	run  func()
	done chan struct{}
}

// New returns a Server for sys with default Config.
func New(sys *kosr.System) *Server { return NewWithConfig(sys, Config{}) }

// NewWithConfig returns a Server for sys and starts its worker pool.
func NewWithConfig(sys *kosr.System, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	s := &Server{
		sys:          sys,
		mux:          http.NewServeMux(),
		MaxExamined:  cfg.MaxExamined,
		QueryTimeout: cfg.QueryTimeout,
		jobs:         make(chan *task, cfg.QueueDepth),
	}
	s.mux.HandleFunc("/health", s.handleHealth)
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/expand", s.handleExpand)
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.jobs {
		t.run()
		close(t.done)
	}
}

// Close stops accepting work, waits for queued and running queries to
// finish, and stops the workers. Safe to call more than once. When the
// Server sits behind an http.Server, call its Shutdown first so no
// handler is mid-dispatch.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.inflight.Wait() // no dispatcher past the closed check
	close(s.jobs)     // lets workers drain the queue and exit
	s.workerWG.Wait()
}

var errShuttingDown = errors.New("server shutting down")

// dispatch runs fn on the worker pool, blocking until it completes.
// It fails without running fn when the server is closing or ctx expires
// before a worker picks the task up.
func (s *Server) dispatch(ctx context.Context, fn func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errShuttingDown
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	t := &task{run: fn, done: make(chan struct{})}
	select {
	case s.jobs <- t:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Once scheduled the task will run; the engine's own MaxDuration
	// budget bounds how long (responding early would race the worker's
	// writes into the handler's response).
	<-t.done
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// HealthResponse is the /health payload.
type HealthResponse struct {
	Status     string  `json:"status"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	Categories int     `json:"categories"`
	AvgLin     float64 `json:"avgLin,omitempty"`
	AvgLout    float64 `json:"avgLout,omitempty"`
	IndexBytes int64   `json:"indexBytes,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	resp := HealthResponse{
		Status:     "ok",
		Vertices:   s.sys.Graph.NumVertices(),
		Edges:      s.sys.Graph.NumEdges(),
		Categories: s.sys.Graph.NumCategories(),
	}
	if s.sys.Labels != nil {
		st := s.sys.Labels.Stats()
		resp.AvgLin = st.AvgIn
		resp.AvgLout = st.AvgOut
		resp.IndexBytes = st.SizeBytes
	}
	writeJSON(w, http.StatusOK, resp)
}

// QueryRequest is the /query payload. Vertices and categories may be
// given as numeric ids or symbolic names.
type QueryRequest struct {
	Source     string   `json:"source"`
	Target     string   `json:"target"`
	Categories []string `json:"categories"`
	K          int      `json:"k"`
	// Method is "SK" (default), "PK" or "KPNE".
	Method string `json:"method,omitempty"`
	// Expand additionally returns the full vertex walk of each route.
	Expand bool `json:"expand,omitempty"`
}

// RouteJSON is one result route.
type RouteJSON struct {
	Witness []int32  `json:"witness"`
	Names   []string `json:"names,omitempty"`
	Cost    float64  `json:"cost"`
	Route   []int32  `json:"route,omitempty"`
}

// QueryResponse is the /query result.
type QueryResponse struct {
	Routes    []RouteJSON `json:"routes"`
	Examined  int64       `json:"examined"`
	NNQueries int64       `json:"nnQueries"`
	Millis    float64     `json:"millis"`
	// Truncated marks that the search budget tripped before k routes
	// were found; Routes holds the (possibly empty) partial result.
	Truncated bool `json:"truncated,omitempty"`
}

// resolveVertex maps a symbolic name or a decimal id to a vertex,
// rejecting ids with trailing garbage and ids outside [0, |V|).
func (s *Server) resolveVertex(spec string) (kosr.Vertex, error) {
	if v, ok := s.sys.Graph.VertexByName(spec); ok {
		return v, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("unknown vertex %q", spec)
	}
	if id < 0 || id >= s.sys.Graph.NumVertices() {
		return 0, fmt.Errorf("vertex id %d out of range [0, %d)", id, s.sys.Graph.NumVertices())
	}
	return kosr.Vertex(id), nil
}

// resolveCategory maps a symbolic name or a decimal id to a category,
// rejecting ids with trailing garbage and ids outside [0, |S|).
func (s *Server) resolveCategory(spec string) (kosr.Category, error) {
	if c, ok := s.sys.Graph.CategoryByName(spec); ok {
		return c, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("unknown category %q", spec)
	}
	if id < 0 || id >= s.sys.Graph.NumCategories() {
		return 0, fmt.Errorf("category id %d out of range [0, %d)", id, s.sys.Graph.NumCategories())
	}
	return kosr.Category(id), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	src, err := s.resolveVertex(req.Source)
	if err != nil {
		writeError(w, http.StatusBadRequest, "source: %v", err)
		return
	}
	dst, err := s.resolveVertex(req.Target)
	if err != nil {
		writeError(w, http.StatusBadRequest, "target: %v", err)
		return
	}
	cats := make([]kosr.Category, len(req.Categories))
	for i, cs := range req.Categories {
		if cats[i], err = s.resolveCategory(cs); err != nil {
			writeError(w, http.StatusBadRequest, "category %d: %v", i, err)
			return
		}
	}
	var method kosr.Method
	switch req.Method {
	case "", "SK":
		method = kosr.StarKOSR
	case "PK":
		method = kosr.PruningKOSR
	case "KPNE":
		method = kosr.KPNE
	default:
		writeError(w, http.StatusBadRequest, "unknown method %q", req.Method)
		return
	}
	k := req.K
	if k <= 0 {
		k = 1
	}

	ctx := r.Context()
	if s.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.QueryTimeout)
		defer cancel()
	}

	start := time.Now()
	var routes []kosr.Route
	var expanded [][]int32
	var st *kosr.Stats
	var solveErr error
	if err := s.dispatch(ctx, func() {
		opts := kosr.Options{Method: method, MaxExamined: s.MaxExamined}
		if deadline, ok := ctx.Deadline(); ok {
			// The budget is the time left when the worker picks the
			// query up (queueing already spent part of it), so a
			// scheduled query never overstays the request timeout.
			remaining := time.Until(deadline)
			if remaining <= 0 {
				solveErr = context.DeadlineExceeded
				return
			}
			opts.MaxDuration = remaining
		}
		routes, st, solveErr = s.sys.Solve(
			kosr.Query{Source: src, Target: dst, Categories: cats, K: k}, opts)
		if req.Expand {
			// Expansion is Dijkstra work too; it runs here on the
			// worker so the pool bounds all engine CPU, not just Solve.
			expanded = make([][]int32, len(routes))
			for i, rt := range routes {
				expanded[i] = s.sys.ExpandWitness(rt.Witness)
			}
		}
	}); err != nil {
		writeDispatchError(w, err)
		return
	}
	truncated := false
	if errors.Is(solveErr, core.ErrBudgetExceeded) {
		// The budget tripping is not a failure: return the routes found
		// so far, marked truncated, so clients can degrade gracefully.
		truncated = true
	} else if errors.Is(solveErr, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, "query timed out before a worker could start it")
		return
	} else if solveErr != nil {
		writeError(w, http.StatusBadRequest, "%v", solveErr)
		return
	}
	resp := QueryResponse{
		Routes:    make([]RouteJSON, len(routes)),
		Examined:  st.Examined,
		NNQueries: st.NNQueries,
		Millis:    float64(time.Since(start).Microseconds()) / 1000,
		Truncated: truncated,
	}
	for i, rt := range routes {
		rj := RouteJSON{Witness: rt.Witness, Cost: rt.Cost}
		rj.Names = make([]string, len(rt.Witness))
		for k, v := range rt.Witness {
			rj.Names[k] = s.sys.Graph.VertexName(v)
		}
		if expanded != nil {
			rj.Route = expanded[i]
		}
		resp.Routes[i] = rj
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeDispatchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "no worker available before the query timeout")
	default:
		writeError(w, http.StatusServiceUnavailable, "request cancelled: %v", err)
	}
}

// ExpandRequest is the /expand payload.
type ExpandRequest struct {
	Witness []int32 `json:"witness"`
}

func (s *Server) handleExpand(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req ExpandRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	n := int32(s.sys.Graph.NumVertices())
	for _, v := range req.Witness {
		if v < 0 || v >= n {
			writeError(w, http.StatusBadRequest, "vertex %d out of range", v)
			return
		}
	}
	ctx := r.Context()
	if s.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.QueryTimeout)
		defer cancel()
	}
	var route []int32
	if err := s.dispatch(ctx, func() {
		route = s.sys.ExpandWitness(req.Witness)
	}); err != nil {
		writeDispatchError(w, err)
		return
	}
	if route == nil {
		writeError(w, http.StatusUnprocessableEntity, "witness has an unreachable leg")
		return
	}
	writeJSON(w, http.StatusOK, map[string][]int32{"route": route})
}
