package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	kosr "repro"
)

// stallingWriter is a ResponseWriter standing in for a client that
// stops reading: it supports per-write deadlines (so the handler's
// http.ResponseController finds them) and fails every Write after the
// first maxWrites with the same error a real conn returns when a write
// blocks past its deadline.
type stallingWriter struct {
	mu        sync.Mutex
	header    http.Header
	writes    int
	maxWrites int
	deadlines []time.Time
}

func newStallingWriter(maxWrites int) *stallingWriter {
	return &stallingWriter{header: make(http.Header), maxWrites: maxWrites}
}

func (w *stallingWriter) Header() http.Header { return w.header }
func (w *stallingWriter) WriteHeader(int)     {}

func (w *stallingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes++
	if w.writes > w.maxWrites {
		return 0, os.ErrDeadlineExceeded
	}
	return len(p), nil
}

func (w *stallingWriter) SetWriteDeadline(d time.Time) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.deadlines = append(w.deadlines, d)
	return nil
}

func (w *stallingWriter) stats() (writes int, deadlines []time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, append([]time.Time(nil), w.deadlines...)
}

func streamRequest(t *testing.T) *http.Request {
	t.Helper()
	body, err := json.Marshal(QueryRequest{
		Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/stream", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	return req
}

// TestStreamWriteDeadline pins the stalled-reader guard: when a write
// trips its deadline mid-stream, the handler must return promptly
// (freeing its pool worker) instead of pushing the rest of the stream,
// and each line must have been armed with the configured deadline.
func TestStreamWriteDeadline(t *testing.T) {
	srv := NewWithConfig(kosr.NewSystem(kosr.Figure1()),
		Config{Workers: 1, StreamWriteTimeout: 250 * time.Millisecond})
	t.Cleanup(srv.Close)

	w := newStallingWriter(2) // first line goes out, then the "client" stalls
	start := time.Now()
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(w, streamRequest(t))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream handler did not return after the write deadline tripped")
	}

	writes, deadlines := w.stats()
	if writes != w.maxWrites+1 {
		t.Fatalf("writes=%d, want exactly %d (stream must stop at the failed write)", writes, w.maxWrites+1)
	}
	if len(deadlines) < 2 {
		t.Fatalf("deadlines=%v, want per-line arms plus the final clear", deadlines)
	}
	// Every line was armed with a future deadline; the handler cleared
	// it on the way out (the connection outlives the request).
	last := deadlines[len(deadlines)-1]
	if !last.IsZero() {
		t.Fatalf("final deadline %v, want the zero-time clear", last)
	}
	for i, d := range deadlines[:len(deadlines)-1] {
		lead := d.Sub(start)
		if lead <= 0 || lead > time.Minute {
			t.Fatalf("deadline %d armed %v from start, want ≈ the 250ms stream timeout", i, lead)
		}
	}

	// The single pool worker must be free again: a normal query runs.
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(BatchRequest{Queries: []QueryRequest{
		{Source: "s", Target: "t", Categories: []string{"MA"}, K: 1},
	}})
	req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up query status=%d: worker still pinned?", rec.Code)
	}
}

// TestStreamWriteDeadlineDisabled pins the opt-out: a negative
// StreamWriteTimeout must never arm a deadline (recorders and healthy
// streams behave as before).
func TestStreamWriteDeadlineDisabled(t *testing.T) {
	srv := NewWithConfig(kosr.NewSystem(kosr.Figure1()),
		Config{Workers: 1, StreamWriteTimeout: -1})
	t.Cleanup(srv.Close)

	w := newStallingWriter(1 << 30) // healthy reader
	srv.ServeHTTP(w, streamRequest(t))
	writes, deadlines := w.stats()
	if len(deadlines) != 0 {
		t.Fatalf("deadlines armed with StreamWriteTimeout<0: %v", deadlines)
	}
	if writes < 2 {
		t.Fatalf("stream produced %d writes, want the full route stream", writes)
	}
}
