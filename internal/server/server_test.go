package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	kosr "repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *kosr.Graph) {
	t.Helper()
	g := kosr.Figure1()
	srv := New(kosr.NewSystem(g))
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	return ts, g
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vertices != 8 || h.Categories != 3 || h.AvgLin <= 0 {
		t.Fatalf("health=%+v", h)
	}
}

func TestQueryByNames(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{
		Source: "s", Target: "t",
		Categories: []string{"MA", "RE", "CI"},
		K:          3, Expand: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Routes) != 3 {
		t.Fatalf("routes=%v", qr.Routes)
	}
	want := []float64{20, 21, 22}
	for i, r := range qr.Routes {
		if r.Cost != want[i] {
			t.Fatalf("route %d cost %v", i, r.Cost)
		}
		if len(r.Route) == 0 || len(r.Names) != len(r.Witness) {
			t.Fatalf("route %d not expanded/named: %+v", i, r)
		}
	}
	if qr.Examined == 0 || qr.Millis < 0 {
		t.Fatalf("stats missing: %+v", qr)
	}
}

func TestQueryByIDsAndMethods(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, method := range []string{"", "SK", "PK", "KPNE"} {
		resp := postJSON(t, ts.URL+"/query", QueryRequest{
			Source: "0", Target: "7",
			Categories: []string{"0", "1", "2"},
			K:          1, Method: method,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("method %q: status=%d", method, resp.StatusCode)
		}
		var qr QueryResponse
		json.NewDecoder(resp.Body).Decode(&qr)
		if len(qr.Routes) != 1 || qr.Routes[0].Cost != 20 {
			t.Fatalf("method %q: %+v", method, qr)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		req  QueryRequest
		want int
	}{
		{QueryRequest{Source: "nope", Target: "t", K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "nope", K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Categories: []string{"XX"}, K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Method: "BOGUS", K: 1}, http.StatusBadRequest},
		// Numeric ids must be pure decimals within range: the seed's
		// fmt.Sscanf parser accepted trailing garbage and never
		// bounds-checked, letting out-of-range ids reach the engine.
		{QueryRequest{Source: "12abc", Target: "t", K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "99", Target: "t", Categories: []string{"MA"}, K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "-3", Target: "t", Categories: []string{"MA"}, K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Categories: []string{"7"}, K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Categories: []string{"1junk"}, K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Categories: []string{"-1"}, K: 1}, http.StatusBadRequest},
	}
	for i, tc := range cases {
		resp := postJSON(t, ts.URL+"/query", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("case %d: status=%d, want %d", i, resp.StatusCode, tc.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status=%d", resp.StatusCode)
	}
	// Wrong verb.
	get, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status=%d", get.StatusCode)
	}
}

// TestQueryBudget pins the truncation contract: a query whose search
// budget trips is not an error — the routes found so far come back with
// truncated=true (the seed discarded them and returned a bare 503).
func TestQueryBudget(t *testing.T) {
	g := kosr.Figure1()
	srv := New(kosr.NewSystem(g))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, budget := range []int64{1, 12} {
		srv.MaxExamined = budget
		resp := postJSON(t, ts.URL+"/query", QueryRequest{
			Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 30,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("budget %d: status=%d, want 200", budget, resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if !qr.Truncated {
			t.Fatalf("budget %d: response not marked truncated: %+v", budget, qr)
		}
		if budget == 12 && len(qr.Routes) == 0 {
			t.Fatalf("budget %d: partial routes discarded: %+v", budget, qr)
		}
		for _, r := range qr.Routes {
			if len(r.Witness) == 0 {
				t.Fatalf("budget %d: empty witness in partial result", budget)
			}
		}
	}
}

func TestExpand(t *testing.T) {
	ts, g := newTestServer(t)
	s, _ := g.VertexByName("s")
	a, _ := g.VertexByName("a")
	tv, _ := g.VertexByName("t")
	resp := postJSON(t, ts.URL+"/expand", ExpandRequest{Witness: []int32{s, a, tv}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var out map[string][]int32
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out["route"]) < 3 {
		t.Fatalf("route=%v", out)
	}
	// Out-of-range witness.
	bad := postJSON(t, ts.URL+"/expand", ExpandRequest{Witness: []int32{99}})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("status=%d", bad.StatusCode)
	}
}

// TestConcurrentHTTPQueries is the scratch-reuse race guard (run with
// -race): many goroutines fire mixed SK/PK/KPNE queries — some
// budget-limited, some expanded — against one shared index, so the
// worker pool recycles scratches across methods and budget outcomes
// while answers stay exact.
func TestConcurrentHTTPQueries(t *testing.T) {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g)
	srv := NewWithConfig(sys, Config{Workers: 4, QueryTimeout: 30 * time.Second})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	methods := []string{"SK", "PK", "KPNE"}
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				req := QueryRequest{
					Source: "s", Target: "t",
					Categories: []string{"MA", "RE", "CI"},
					K:          2 + (worker+i)%2,
					Method:     methods[(worker+i)%len(methods)],
					Expand:     i%3 == 0,
				}
				resp := postJSON(t, ts.URL+"/query", req)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status=%d", worker, resp.StatusCode)
					return
				}
				var qr QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					t.Errorf("worker %d: %v", worker, err)
					return
				}
				if len(qr.Routes) == 0 || qr.Routes[0].Cost != 20 {
					t.Errorf("worker %d: routes=%+v", worker, qr.Routes)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentBudgetLimitedQueries races budget-truncated queries
// (partial results, early engine exit) against each other on a shared
// pool, covering the scratch release path after ErrBudgetExceeded.
func TestConcurrentBudgetLimitedQueries(t *testing.T) {
	g := kosr.Figure1()
	srv := NewWithConfig(kosr.NewSystem(g), Config{Workers: 3, MaxExamined: 20})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				resp := postJSON(t, ts.URL+"/query", QueryRequest{
					Source: "s", Target: "t",
					Categories: []string{"MA", "RE", "CI"},
					K:          30,
					Method:     []string{"SK", "PK", "KPNE"}[(worker+i)%3],
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status=%d", worker, resp.StatusCode)
					return
				}
				var qr QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					t.Errorf("worker %d: %v", worker, err)
					return
				}
				if !qr.Truncated {
					t.Errorf("worker %d: expected truncated response, got %+v", worker, qr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestGracefulClose verifies shutdown semantics: Close drains queued
// work, and requests arriving afterwards get a clean 503.
func TestGracefulClose(t *testing.T) {
	g := kosr.Figure1()
	srv := New(kosr.NewSystem(g))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/query", QueryRequest{
		Source: "s", Target: "t", Categories: []string{"MA"}, K: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-close status=%d", resp.StatusCode)
	}
	srv.Close()
	srv.Close() // idempotent
	after := postJSON(t, ts.URL+"/query", QueryRequest{
		Source: "s", Target: "t", Categories: []string{"MA"}, K: 1,
	})
	if after.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close status=%d, want 503", after.StatusCode)
	}
}
