package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	kosr "repro"
)

func newTestServer(t *testing.T) (*httptest.Server, *kosr.Graph) {
	t.Helper()
	g := kosr.Figure1()
	srv := New(kosr.NewSystem(g))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, g
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHealth(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Vertices != 8 || h.Categories != 3 || h.AvgLin <= 0 {
		t.Fatalf("health=%+v", h)
	}
}

func TestQueryByNames(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/query", QueryRequest{
		Source: "s", Target: "t",
		Categories: []string{"MA", "RE", "CI"},
		K:          3, Expand: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Routes) != 3 {
		t.Fatalf("routes=%v", qr.Routes)
	}
	want := []float64{20, 21, 22}
	for i, r := range qr.Routes {
		if r.Cost != want[i] {
			t.Fatalf("route %d cost %v", i, r.Cost)
		}
		if len(r.Route) == 0 || len(r.Names) != len(r.Witness) {
			t.Fatalf("route %d not expanded/named: %+v", i, r)
		}
	}
	if qr.Examined == 0 || qr.Millis < 0 {
		t.Fatalf("stats missing: %+v", qr)
	}
}

func TestQueryByIDsAndMethods(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, method := range []string{"", "SK", "PK", "KPNE"} {
		resp := postJSON(t, ts.URL+"/query", QueryRequest{
			Source: "0", Target: "7",
			Categories: []string{"0", "1", "2"},
			K:          1, Method: method,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("method %q: status=%d", method, resp.StatusCode)
		}
		var qr QueryResponse
		json.NewDecoder(resp.Body).Decode(&qr)
		if len(qr.Routes) != 1 || qr.Routes[0].Cost != 20 {
			t.Fatalf("method %q: %+v", method, qr)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		req  QueryRequest
		want int
	}{
		{QueryRequest{Source: "nope", Target: "t", K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "nope", K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Categories: []string{"XX"}, K: 1}, http.StatusBadRequest},
		{QueryRequest{Source: "s", Target: "t", Method: "BOGUS", K: 1}, http.StatusBadRequest},
	}
	for i, tc := range cases {
		resp := postJSON(t, ts.URL+"/query", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("case %d: status=%d, want %d", i, resp.StatusCode, tc.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status=%d", resp.StatusCode)
	}
	// Wrong verb.
	get, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status=%d", get.StatusCode)
	}
}

func TestQueryBudget(t *testing.T) {
	g := kosr.Figure1()
	srv := New(kosr.NewSystem(g))
	srv.MaxExamined = 1
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/query", QueryRequest{
		Source: "s", Target: "t", Categories: []string{"MA", "RE", "CI"}, K: 3,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d, want 503", resp.StatusCode)
	}
}

func TestExpand(t *testing.T) {
	ts, g := newTestServer(t)
	s, _ := g.VertexByName("s")
	a, _ := g.VertexByName("a")
	tv, _ := g.VertexByName("t")
	resp := postJSON(t, ts.URL+"/expand", ExpandRequest{Witness: []int32{s, a, tv}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var out map[string][]int32
	json.NewDecoder(resp.Body).Decode(&out)
	if len(out["route"]) < 3 {
		t.Fatalf("route=%v", out)
	}
	// Out-of-range witness.
	bad := postJSON(t, ts.URL+"/expand", ExpandRequest{Witness: []int32{99}})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("status=%d", bad.StatusCode)
	}
}

func TestConcurrentHTTPQueries(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp := postJSON(t, ts.URL+"/query", QueryRequest{
					Source: "s", Target: "t",
					Categories: []string{"MA", "RE", "CI"}, K: 2,
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status=%d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
}
