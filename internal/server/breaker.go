package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var errApplyBreakerOpen = errors.New("apply circuit breaker open")

// breaker is a consecutive-failure circuit breaker for the admin apply
// path. It opens after threshold consecutive failures and stays open
// for cooldown; while open, allow reports false with the remaining
// wait. Any success closes it and clears the failure run. A poisoned
// or flapping updater therefore costs each caller one fast 503 rather
// than a blocking seat on the serialized update mutex.
type breaker struct {
	threshold int
	cooldown  time.Duration
	trips     atomic.Uint64 // cumulative opens, for tests and health

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	now       func() time.Time // test hook; time.Now in production
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a call may proceed; when the breaker is open it
// returns the remaining cooldown instead. The cooldown's expiry
// half-opens the breaker: the next call goes through, and its outcome
// decides whether the breaker closes or re-opens.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if wait := b.openUntil.Sub(b.now()); wait > 0 {
		return false, wait
	}
	return true, 0
}

func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.openUntil = time.Time{}
}

func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	// failures is not cleared on open: after the cooldown half-opens the
	// breaker, one more failure re-opens it immediately.
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		b.trips.Add(1)
	}
}
