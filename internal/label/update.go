package label

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/pq"
)

// This file is the batched, allocation-free successor of the per-arc
// map-backed resume path (see dynamic.go for the compatibility
// wrapper). An Apply batch's arc insertions are folded into one
// InsertEdgeBatch call: seeds are collected from the pre-batch labels,
// deduplicated per (hub, direction) so a hub repaired once covers every
// arc of the batch that touches it, and the repairs run on a dense
// epoch-stamped UpdateScratch — optionally speculated in parallel and
// committed in rank order, byte-identical to the serial schedule.

// NewArc describes one arc inserted by a batch. The adjacency handed to
// InsertEdgeBatch must already contain every arc of the batch: a single
// multi-seed repair per hub only covers cascades through sibling arcs
// when it can traverse them.
type NewArc struct {
	From, To graph.Vertex
	W        graph.Weight
}

// RepairOptions controls one InsertEdgeBatch call.
type RepairOptions struct {
	// Workers caps the parallelism of the speculative repair stage.
	// Values <= 1 run the serial reference schedule. The committed
	// index is byte-identical for every value.
	Workers int
}

// RepairResult reports what one batch repair did. Updates aliases the
// scratch's staging buffer and is valid only until the next batch
// checked out on the same UpdateScratch.
type RepairResult struct {
	// Updates stages the Lin changes of the batch, in commit order,
	// for downstream refresh (see invindex.RefreshBatch).
	Updates []LinUpdate
	// Repairs counts the deduplicated (hub, direction) searches run.
	Repairs int
	// Seeds counts raw seed entries before deduplication and filtering;
	// Seeds-SeedsSkipped spread over Repairs groups is the work the
	// per-arc path would have repeated.
	Seeds int
	// SeedsSkipped counts seeds already covered by the pre-batch labels
	// and dropped without a search: label distances only improve during
	// a batch, so a seed covered before the batch is provably pruned on
	// its first pop in the serial schedule too.
	SeedsSkipped int
	// Reruns counts speculative repairs invalidated by a cross-hub
	// conflict and re-run serially at commit time.
	Reruns int
}

// repairSlot is one vertex's tentative search state: valid only when
// its stamp matches the owning repairScratch's current epoch, so a new
// search begins by bumping the epoch instead of clearing |V| slots
// (same discipline as core.Scratch).
type repairSlot struct {
	epoch  uint32
	parent graph.Vertex
	d      graph.Weight
}

// repairItem is one heap entry of a repair search. Duplicates are
// resolved lazily: a popped item older than its slot is skipped.
type repairItem struct {
	v graph.Vertex
	d graph.Weight
}

func lessRepairItem(a, b repairItem) bool { return a.d < b.d }

// pruneSlot is one rank's scattered label distance, valid only when its
// stamp matches the owning table's current epoch. Stamp and distance
// share a slot so a prune lookup costs one cache line, not two.
type pruneSlot struct {
	stamp uint32
	d     graph.Weight
}

// repairScratch is one worker's dense search state, reused across every
// repair it runs: stamped dist/parent slots, a heap with retained
// capacity, and the root-label prune table — the repair's root list
// scattered by hub rank once per run, so each popped vertex's prune is
// one scan of its own list with O(1) lookups instead of a two-list
// merge.
type repairScratch struct {
	epoch uint32
	slots []repairSlot
	heap  *pq.Heap[repairItem]
	prune []pruneSlot
}

func newRepairScratch(n int) *repairScratch {
	return &repairScratch{
		slots: make([]repairSlot, n),
		heap:  pq.NewHeap[repairItem](lessRepairItem),
		prune: make([]pruneSlot, n),
	}
}

// begin opens a new search epoch, invalidating every slot and prune
// entry in O(1). On uint32 wrap-around stale stamps could alias the new
// epoch, so the tables are hard-reset — once per 4G searches.
func (rs *repairScratch) begin() {
	rs.epoch++
	if rs.epoch == 0 {
		for i := range rs.slots {
			rs.slots[i] = repairSlot{}
			rs.prune[i] = pruneSlot{}
		}
		rs.epoch = 1
	}
}

// repairSeed is one resume point of a (hub, direction) repair: the
// search reaches v via the pre-batch label distance plus one new arc.
type repairSeed struct {
	v   graph.Vertex
	via graph.Vertex
	d   graph.Weight
}

// repairOp is one buffered label write (settle order): upsert of
// (hub, d) into v's list at commit time.
type repairOp struct {
	v    graph.Vertex
	next graph.Vertex
	d    graph.Weight
}

// repairGroup is the deduplicated unit of work: all seeds of one
// (hub, direction) across the arcs of the batch, and — after its
// speculative run — the buffered writes plus the vertices whose label
// lists the search read (its conflict set).
type repairGroup struct {
	hub     graph.Vertex
	rank    int32
	reverse bool
	seeds   []repairSeed
	ops     []repairOp
	reads   []graph.Vertex
}

// groupsByRank orders groups by hub rank, forward before backward for
// the same hub — the fixed commit schedule both the serial and the
// parallel path follow. Keys are unique per batch, so the order is
// total and the sort deterministic.
type groupsByRank []repairGroup

func (s groupsByRank) Len() int { return len(s) }
func (s groupsByRank) Less(i, j int) bool {
	if s[i].rank != s[j].rank {
		return s[i].rank < s[j].rank
	}
	return !s[i].reverse && s[j].reverse
}
func (s groupsByRank) Swap(i, j int) { s[i], s[j] = s[j], s[i] }

// UpdateScratch is the serialized updater's reusable state: per-worker
// dense search scratches, the (hub, direction) dedup table, the commit
// conflict marks and the LinUpdate staging buffer. All per-vertex
// tables are batch-epoch-stamped, so checking out a new batch is O(1).
// It is owned by one updater at a time (System.Apply holds it under the
// update mutex) and is NOT safe for concurrent use.
type UpdateScratch struct {
	n     int
	batch uint32

	// Dedup table: group ordinal per hub and direction, valid when the
	// stamp matches the current batch.
	groupF, groupB []int32
	stampF, stampB []uint32

	// Commit-time write marks: dirtyIn[v] (resp. dirtyOut) is stamped
	// when a committed group wrote v's Lin (resp. Lout) list this
	// batch. A speculated group conflicts iff it read a stamped list.
	dirtyIn, dirtyOut []uint32

	// Commit-time list ownership: ownIn[v] (resp. ownOut) is stamped
	// when this batch's commit path has already allocated a fresh
	// backing array for v's Lin (resp. Lout) list, so later upserts of
	// the same batch may mutate it in place (see upsertBatch).
	ownIn, ownOut []uint32

	// Seed-filter table: one arc endpoint's label list scattered by
	// rank, used to drop seeds the pre-batch labels already cover
	// without opening a repair group for them.
	filterEpoch uint32
	filter      []pruneSlot

	groups []repairGroup
	ng     int

	updates []LinUpdate

	workers []*repairScratch
}

// NewUpdateScratch returns an updater scratch for indexes over n
// vertices. Worker search scratches are allocated lazily on first use
// (or eagerly via Prewarm).
func NewUpdateScratch(n int) *UpdateScratch {
	return &UpdateScratch{
		n:      n,
		groupF: make([]int32, n),
		groupB: make([]int32, n),
		stampF: make([]uint32, n),
		stampB: make([]uint32, n),

		dirtyIn:  make([]uint32, n),
		dirtyOut: make([]uint32, n),

		ownIn:  make([]uint32, n),
		ownOut: make([]uint32, n),

		filter: make([]pruneSlot, n),
	}
}

// NumVertices returns the vertex count the scratch was sized for; an
// index may only use a scratch of matching size.
func (us *UpdateScratch) NumVertices() int { return us.n }

// Prewarm eagerly allocates the per-worker search scratches for the
// given worker count, so the first Apply after startup does not pay the
// O(|V|) slot allocations.
func (us *UpdateScratch) Prewarm(workers int) {
	if workers < 1 {
		workers = 1
	}
	us.worker(workers - 1)
}

// FootprintBytes reports the resident size of the scratch's dense
// tables and retained buffers, for capacity accounting.
func (us *UpdateScratch) FootprintBytes() uint64 {
	b := uint64(us.n) * (2*4 + 2*4 + 2*4 + 2*4) // dedup + dirty + ownership tables
	for _, rs := range us.workers {
		//lint:ignore epochstamp capacity accounting reads buffer sizes, not stamped search state
		b += uint64(cap(rs.slots))*16 + uint64(rs.heap.Cap())*16
		//lint:ignore epochstamp capacity accounting reads buffer sizes, not stamped search state
		b += uint64(cap(rs.prune)) * 16
	}
	for i := range us.groups {
		g := &us.groups[i]
		b += uint64(cap(g.seeds))*16 + uint64(cap(g.ops))*16 + uint64(cap(g.reads))*4
	}
	b += uint64(cap(us.updates)) * 32
	return b
}

func (us *UpdateScratch) worker(i int) *repairScratch {
	for len(us.workers) <= i {
		us.workers = append(us.workers, newRepairScratch(us.n))
	}
	return us.workers[i]
}

// beginBatch opens a new batch epoch: the dedup table and dirty marks
// invalidate in O(1), the group list and staging buffer rewind keeping
// their capacity. Stamp wrap-around hard-resets, once per 4G batches.
func (us *UpdateScratch) beginBatch() {
	us.batch++
	if us.batch == 0 {
		for i := range us.stampF {
			us.stampF[i] = 0
			us.stampB[i] = 0
			us.dirtyIn[i] = 0
			us.dirtyOut[i] = 0
			us.ownIn[i] = 0
			us.ownOut[i] = 0
		}
		us.batch = 1
	}
	us.ng = 0
	us.updates = us.updates[:0]
}

// scatterFilter opens a fresh filter epoch over list (a rank-sorted
// label list), so seedCovered lookups answer "do the pre-batch labels
// cover (hub, v) through one of list's hubs?" in one scan of the hub's
// own list. Stamp wrap-around hard-resets, once per 4G scatters.
func (us *UpdateScratch) scatterFilter(list []Entry) {
	us.filterEpoch++
	if us.filterEpoch == 0 {
		for i := range us.filter {
			us.filter[i] = pruneSlot{}
		}
		us.filterEpoch = 1
	}
	for _, e := range list {
		us.filter[e.R] = pruneSlot{stamp: us.filterEpoch, d: e.D}
	}
}

// seedCovered reports whether the scattered endpoint list and hubList
// (the seed hub's same-side list) witness a 2-hop distance <= d — in
// which case the seed's first pop would be pruned and the seed can be
// dropped before any repair group is opened. Label distances only
// improve during a batch, so a pre-batch witness remains one at any
// point of the serial schedule.
func (us *UpdateScratch) seedCovered(hubList []Entry, d graph.Weight) bool {
	for _, e := range hubList {
		if sl := us.filter[e.R]; sl.stamp == us.filterEpoch && sl.d+e.D <= d {
			return true
		}
	}
	return false
}

// group returns this batch's group for (hub, reverse), creating it on
// first sight.
func (us *UpdateScratch) group(hub graph.Vertex, rank int32, reverse bool) *repairGroup {
	groupOf, stamps := us.groupF, us.stampF
	if reverse {
		groupOf, stamps = us.groupB, us.stampB
	}
	if stamps[hub] == us.batch {
		return &us.groups[groupOf[hub]]
	}
	gi := us.ng
	if gi < len(us.groups) {
		g := &us.groups[gi]
		g.hub, g.rank, g.reverse = hub, rank, reverse
		g.seeds = g.seeds[:0]
		g.ops = g.ops[:0]
		g.reads = g.reads[:0]
	} else {
		us.groups = append(us.groups, repairGroup{hub: hub, rank: rank, reverse: reverse})
	}
	us.ng++
	groupOf[hub] = int32(gi)
	stamps[hub] = us.batch
	return &us.groups[gi]
}

// InsertEdgeBatch incrementally repairs the index for a batch of
// inserted arcs. adj must already contain every arc of the batch. The
// scratch must have been created for this index's vertex count and is
// reused across batches; the returned Updates alias its staging buffer.
//
// Seeds are collected from the pre-batch labels: for each arc (a,b,w),
// every hub reaching a resumes its forward search at b, and every hub
// reached from b resumes its backward search at a (Akiba–Iwata–Yoshida
// resumed pruned search, weighted). Collecting all seeds up front and
// running ONE multi-seed search per (hub, direction) is equivalent to
// the sequential per-arc schedule: any label entry a later per-arc
// resume would have read mid-batch stems from that same hub's own
// repair, whose cascade the merged search discovers by traversing the
// already-inserted sibling arcs itself.
//
// With opt.Workers > 1 the repairs are speculated in parallel against
// the pre-batch labels (the index is not written during that stage) and
// committed single-threaded in rank order; a group that read a list an
// earlier-ranked group committed to is detected via the dirty marks and
// re-run serially. The committed index is byte-identical to the serial
// schedule for every worker count.
func (ix *Index) InsertEdgeBatch(adj Adjacency, arcs []NewArc, us *UpdateScratch, opt RepairOptions) RepairResult {
	if us.n != ix.n {
		panic("label: UpdateScratch sized for a different index")
	}
	us.beginBatch()
	var res RepairResult
	for _, a := range arcs {
		us.scatterFilter(ix.In(a.To))
		for _, e := range ix.In(a.From) {
			res.Seeds++
			d := e.D + a.W
			if us.seedCovered(ix.Out(e.Hub), d) {
				res.SeedsSkipped++
				continue
			}
			g := us.group(e.Hub, e.R, false)
			g.seeds = append(g.seeds, repairSeed{v: a.To, via: a.From, d: d})
		}
		us.scatterFilter(ix.Out(a.From))
		for _, e := range ix.Out(a.To) {
			res.Seeds++
			d := e.D + a.W
			if us.seedCovered(ix.In(e.Hub), d) {
				res.SeedsSkipped++
				continue
			}
			g := us.group(e.Hub, e.R, true)
			g.seeds = append(g.seeds, repairSeed{v: a.From, via: a.To, d: d})
		}
	}
	res.Repairs = us.ng
	if us.ng == 0 {
		res.Updates = us.updates
		return res
	}
	groups := us.groups[:us.ng]
	sort.Sort(groupsByRank(groups))

	workers := opt.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		// Serial reference schedule: repair and commit one group at a
		// time, in rank order, each search reading the labels as left
		// by every earlier commit.
		rs := us.worker(0)
		for i := range groups {
			g := &groups[i]
			ix.repairRun(adj, g, rs)
			ix.commitGroup(g, us)
		}
		res.Updates = us.updates
		return res
	}

	// Phase A — speculation: every group repairs against the pre-batch
	// labels, read-only, on per-worker scratches. Each group's buffered
	// ops and read set depend only on the immutable pre-batch state, so
	// the outcome is independent of scheduling.
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rs *repairScratch) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(groups) {
					return
				}
				ix.repairRun(adj, &groups[i], rs)
			}
		}(us.worker(w))
	}
	wg.Wait()

	// Phase B — rank-order commit: a speculated group is valid exactly
	// when no earlier commit wrote a list it read; the first diverging
	// input of a hypothetical serial run would be such a read. Invalid
	// groups re-run here against the current labels, which IS the
	// serial schedule for them.
	rs := us.worker(0)
	for i := range groups {
		g := &groups[i]
		if us.conflicts(g) {
			res.Reruns++
			ix.repairRun(adj, g, rs)
		}
		ix.commitGroup(g, us)
		us.markDirty(g)
	}
	res.Updates = us.updates
	return res
}

// conflicts reports whether any label list g's speculative run read has
// since been written by a committed group: the popped vertices' lists
// on the search side, plus the root's list on the opposite side (the
// other half of every distMerge prune).
func (us *UpdateScratch) conflicts(g *repairGroup) bool {
	same, opp := us.dirtyIn, us.dirtyOut
	if g.reverse {
		same, opp = us.dirtyOut, us.dirtyIn
	}
	if opp[g.hub] == us.batch {
		return true
	}
	for _, v := range g.reads {
		if same[v] == us.batch {
			return true
		}
	}
	return false
}

// markDirty stamps the lists g's commit wrote. A forward repair writes
// only Lin lists, a backward repair only Lout lists.
func (us *UpdateScratch) markDirty(g *repairGroup) {
	marks := us.dirtyIn
	if g.reverse {
		marks = us.dirtyOut
	}
	for _, op := range g.ops {
		marks[op.v] = us.batch
	}
}

// commitGroup applies a group's buffered writes through the COW upsert,
// staging forward (Lin) changes for the inverted-index refresh. Ops are
// in settle order, and every op still strictly improves its list at
// commit time: the search's own-hub prune guarantees the existing entry,
// if any, is strictly worse.
func (ix *Index) commitGroup(g *repairGroup, us *UpdateScratch) {
	for _, op := range g.ops {
		upd := ix.upsertBatch(op.v, g.hub, op.d, op.next, g.reverse, us)
		if !g.reverse {
			us.updates = append(us.updates, upd)
		}
	}
}

// repairRun executes one (hub, direction) resumed pruned Dijkstra on a
// dense scratch, buffering label writes into g.ops instead of applying
// them. Buffering is equivalent to the old interleaved upsert: a search
// never reads a list it writes (each vertex settles at most once — the
// prune consults Lin(v)/Lout(root) for forward runs, and v's own write
// happens only at its settle — so the labels it observes are identical
// either way). g.reads records every popped vertex: together with the
// root, exactly the lists the distMerge prunes consulted, which the
// parallel commit uses as the conflict set.
//
//kosr:hotpath
func (ix *Index) repairRun(adj Adjacency, g *repairGroup, rs *repairScratch) {
	rs.begin()
	rs.heap.Clear()
	g.ops = g.ops[:0]
	g.reads = g.reads[:0]
	root := g.hub
	// Scatter the root's opposite-side list — the half of every prune
	// that is constant across the run (the index is not written mid-run,
	// so reading it once is exactly equivalent to re-reading per pop) —
	// into the rank-indexed prune table.
	rootList := ix.Out(root)
	if g.reverse {
		rootList = ix.In(root)
	}
	for _, e := range rootList {
		rs.prune[e.R] = pruneSlot{stamp: rs.epoch, d: e.D}
	}
	for _, s := range g.seeds {
		sl := &rs.slots[s.v]
		if sl.epoch != rs.epoch || s.d < sl.d {
			sl.epoch = rs.epoch
			sl.d = s.d
			sl.parent = s.via
			rs.heap.Push(repairItem{v: s.v, d: s.d})
		}
	}
	for rs.heap.Len() > 0 {
		it := rs.heap.Pop()
		sl := &rs.slots[it.v]
		if sl.epoch == rs.epoch && it.d > sl.d {
			continue // stale heap entry, superseded by a cheaper push
		}
		g.reads = append(g.reads, it.v)
		// Prune when the current labels already cover (root, v) at
		// least as cheaply — including the root itself, covered at 0
		// by its own (root, 0) entries. One scan of v's same-side list
		// against the prune table, with early exit on the first
		// witness (existence is enough; the exact minimum is not
		// needed).
		vlist := ix.In(it.v)
		if g.reverse {
			vlist = ix.Out(it.v)
		}
		pruned := false
		for _, e := range vlist {
			if sl := rs.prune[e.R]; sl.stamp == rs.epoch && sl.d+e.D <= it.d {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		g.ops = append(g.ops, repairOp{v: it.v, next: sl.parent, d: it.d})
		var arcs []graph.Arc
		if g.reverse {
			arcs = adj.In(it.v)
		} else {
			arcs = adj.Out(it.v)
		}
		for _, a := range arcs {
			nd := it.d + a.W
			nsl := &rs.slots[a.To]
			if nsl.epoch != rs.epoch || nd < nsl.d {
				nsl.epoch = rs.epoch
				nsl.d = nd
				nsl.parent = it.v
				rs.heap.Push(repairItem{v: a.To, d: nd})
			}
		}
	}
}
