package label

import (
	"sort"

	"repro/internal/graph"
)

// This file implements incremental label maintenance for graph-structure
// updates (Section IV-C), following the resumed-pruned-search technique
// of Akiba, Iwata and Yoshida (WWW 2014), generalized from BFS to
// weighted Dijkstra. Edge insertions (including weight decreases modelled
// as cheaper parallel arcs) are supported; entries whose distances become
// stale are either overwritten by cheaper ones or harmlessly dominated in
// the min-merge of Dist, so queries stay exact.

// Adjacency is the graph view the update routines traverse; both
// *graph.Graph and *graph.Dynamic satisfy it.
type Adjacency interface {
	NumVertices() int
	Out(v graph.Vertex) []graph.Arc
	In(v graph.Vertex) []graph.Arc
}

// LinUpdate records one Lin label change made by InsertEdge, so that
// dependent structures (the inverted label index) can be refreshed.
type LinUpdate struct {
	V      graph.Vertex // vertex whose Lin changed
	Hub    graph.Vertex
	D      graph.Weight // new distance dis(Hub, V)
	OldD   graph.Weight // previous distance, when HadOld
	HadOld bool
}

// InsertEdge incrementally updates the index for a new arc (a, b, w).
// adj must already contain the arc. It returns the Lin changes for
// downstream refresh (see invindex.Refresh). For undirected graphs call
// it once per direction.
//
// This is the single-arc convenience form: it allocates a transient
// UpdateScratch per call. The batch Apply path holds a long-lived
// scratch and calls InsertEdgeBatch directly (see update.go).
func (ix *Index) InsertEdge(adj Adjacency, a, b graph.Vertex, w graph.Weight) []LinUpdate {
	us := NewUpdateScratch(ix.n)
	res := ix.InsertEdgeBatch(adj, []NewArc{{From: a, To: b, W: w}}, us, RepairOptions{})
	return res.Updates
}

// upsertBatch inserts or improves the (hub, d) entry of v's Lin (or
// Lout) list, keeping the list rank-ordered.
//
// Copy-on-write is paid once per (list, batch): the first touch of a
// list in a batch allocates a fresh backing array (the previous one —
// possibly still read by an earlier snapshot's in-flight queries — is
// never written) and stamps the scratch's ownership mark; later
// touches of the same list in the same batch mutate that
// batch-private array in place. A single-edge weight decrease
// typically improves the same vertex's distance from many hubs, so
// the in-place path turns O(hubs·|list|) copying into one copy. The
// header write goes through the paged vector, which copies the
// touched page when it is still shared with an earlier epoch; an
// in-place distance overwrite leaves the header untouched and skips
// the vector entirely.
func (ix *Index) upsertBatch(v, hub graph.Vertex, d graph.Weight, next graph.Vertex, reverse bool, us *UpdateScratch) LinUpdate {
	lists, own := ix.in, us.ownIn
	if reverse {
		lists, own = ix.out, us.ownOut
	}
	list := lists.Get(int(v))
	r := ix.rank[hub]
	pos := sort.Search(len(list), func(i int) bool { return list[i].R >= r })
	upd := LinUpdate{V: v, Hub: hub, D: d}
	owned := own[v] == us.batch
	if pos < len(list) && list[pos].Hub == hub {
		upd.HadOld = true
		upd.OldD = list[pos].D
		if owned {
			list[pos].D = d
			list[pos].Next = next
			return upd
		}
		fresh := make([]Entry, len(list))
		copy(fresh, list)
		fresh[pos].D = d
		fresh[pos].Next = next
		lists.Set(int(v), fresh)
		own[v] = us.batch
		return upd
	}
	if owned && cap(list) > len(list) {
		list = list[:len(list)+1]
		copy(list[pos+1:], list[pos:len(list)-1])
		list[pos] = Entry{Hub: hub, R: r, D: d, Next: next}
		lists.Set(int(v), list)
		return upd
	}
	fresh := make([]Entry, len(list)+1, len(list)+4)
	copy(fresh, list[:pos])
	fresh[pos] = Entry{Hub: hub, R: r, D: d, Next: next}
	copy(fresh[pos+1:], list[pos:])
	lists.Set(int(v), fresh)
	own[v] = us.batch
	return upd
}

// Clone returns a copy-on-write clone: only the page tables of the
// per-vertex header vectors are copied — O(|V|/pagevec.PageSize) — and
// the rank array is shared. Every mutation made through InsertEdge
// replaces whole lists (see upsert) and pays for the header pages it
// touches, so the original index — typically the one a published
// snapshot's in-flight queries are still reading — is never written,
// and an update costs its delta rather than O(|V|).
func (ix *Index) Clone() *Index {
	return &Index{
		n:    ix.n,
		in:   ix.in.Clone(),
		out:  ix.out.Clone(),
		rank: ix.rank,
	}
}

// CopyStats reports the cumulative copy-on-write work this index
// performed (header pages copied and bytes moved, including the
// page-table copies of its own cloning) since it was created. The
// snapshot updater reads it once per published epoch to account apply
// cost.
func (ix *Index) CopyStats() (pages, bytes uint64) {
	pi, bi := ix.in.CopyStats()
	po, bo := ix.out.CopyStats()
	return pi + po, bi + bo
}

// Residency reports the index's header pages split into shared (still
// aliased by other epochs' clones) and owned (copied on write by this
// epoch chain); see pagevec.Vec.Residency.
func (ix *Index) Residency() (shared, owned int) {
	si, oi := ix.in.Residency()
	so, oo := ix.out.Residency()
	return si + so, oi + oo
}
