package label

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/pq"
)

// This file implements incremental label maintenance for graph-structure
// updates (Section IV-C), following the resumed-pruned-search technique
// of Akiba, Iwata and Yoshida (WWW 2014), generalized from BFS to
// weighted Dijkstra. Edge insertions (including weight decreases modelled
// as cheaper parallel arcs) are supported; entries whose distances become
// stale are either overwritten by cheaper ones or harmlessly dominated in
// the min-merge of Dist, so queries stay exact.

// Adjacency is the graph view the update routines traverse; both
// *graph.Graph and *graph.Dynamic satisfy it.
type Adjacency interface {
	NumVertices() int
	Out(v graph.Vertex) []graph.Arc
	In(v graph.Vertex) []graph.Arc
}

// LinUpdate records one Lin label change made by InsertEdge, so that
// dependent structures (the inverted label index) can be refreshed.
type LinUpdate struct {
	V      graph.Vertex // vertex whose Lin changed
	Hub    graph.Vertex
	D      graph.Weight // new distance dis(Hub, V)
	OldD   graph.Weight // previous distance, when HadOld
	HadOld bool
}

// InsertEdge incrementally updates the index for a new arc (a, b, w).
// adj must already contain the arc. It returns the Lin changes for
// downstream refresh (see invindex.Refresh). For undirected graphs call
// it once per direction.
func (ix *Index) InsertEdge(adj Adjacency, a, b graph.Vertex, w graph.Weight) []LinUpdate {
	var updates []LinUpdate
	// Hubs that reach a may now reach further through b: resume their
	// forward searches seeded at b.
	for _, e := range ix.In(a) {
		updates = ix.resume(adj, e.Hub, b, a, e.D+w, false, updates)
	}
	// Hubs reached from b may now be reached from a's side: resume
	// their backward searches seeded at a.
	for _, e := range ix.Out(b) {
		ix.resume(adj, e.Hub, a, b, e.D+w, true, nil)
	}
	return updates
}

// resume runs a pruned Dijkstra for hub root seeded at start with
// distance d0 (the first parent is via). With reverse=false it updates
// Lin labels over forward arcs; with reverse=true, Lout labels over
// reverse arcs.
func (ix *Index) resume(adj Adjacency, root, start, via graph.Vertex, d0 graph.Weight,
	reverse bool, updates []LinUpdate) []LinUpdate {

	type item struct {
		v graph.Vertex
		d graph.Weight
	}
	dist := map[graph.Vertex]graph.Weight{start: d0}
	parent := map[graph.Vertex]graph.Vertex{start: via}
	h := pq.NewHeap[item](func(x, y item) bool { return x.d < y.d })
	h.Push(item{v: start, d: d0})
	for h.Len() > 0 {
		it := h.Pop()
		if it.d > dist[it.v] {
			continue // stale entry
		}
		// Prune when the current labels already cover (root, v) at
		// least as cheaply.
		var covered graph.Weight
		if reverse {
			covered = ix.distMerge(it.v, root)
		} else {
			covered = ix.distMerge(root, it.v)
		}
		if covered <= it.d {
			continue
		}
		upd := ix.upsert(it.v, root, it.d, parent[it.v], reverse)
		if !reverse {
			updates = append(updates, upd)
		}
		var arcs []graph.Arc
		if reverse {
			arcs = adj.In(it.v)
		} else {
			arcs = adj.Out(it.v)
		}
		for _, a := range arcs {
			nd := it.d + a.W
			if old, ok := dist[a.To]; !ok || nd < old {
				dist[a.To] = nd
				parent[a.To] = it.v
				h.Push(item{v: a.To, d: nd})
			}
		}
	}
	return updates
}

// upsert inserts or improves the (hub, d) entry of v's Lin (or Lout)
// list, keeping the list rank-ordered.
//
// The modified list is always freshly allocated — the previous backing
// array is never written — and the header write goes through the paged
// vector, which copies the touched page when it is still shared with an
// earlier epoch. This makes updates copy-on-write end to end: an index
// cloned from a snapshot can absorb InsertEdge while queries keep
// reading the original's lists concurrently, without locks.
func (ix *Index) upsert(v, hub graph.Vertex, d graph.Weight, next graph.Vertex, reverse bool) LinUpdate {
	lists := ix.in
	if reverse {
		lists = ix.out
	}
	list := lists.Get(int(v))
	r := ix.rank[hub]
	pos := sort.Search(len(list), func(i int) bool { return list[i].R >= r })
	upd := LinUpdate{V: v, Hub: hub, D: d}
	if pos < len(list) && list[pos].Hub == hub {
		upd.HadOld = true
		upd.OldD = list[pos].D
		fresh := make([]Entry, len(list))
		copy(fresh, list)
		fresh[pos].D = d
		fresh[pos].Next = next
		lists.Set(int(v), fresh)
		return upd
	}
	fresh := make([]Entry, len(list)+1)
	copy(fresh, list[:pos])
	fresh[pos] = Entry{Hub: hub, R: r, D: d, Next: next}
	copy(fresh[pos+1:], list[pos:])
	lists.Set(int(v), fresh)
	return upd
}

// Clone returns a copy-on-write clone: only the page tables of the
// per-vertex header vectors are copied — O(|V|/pagevec.PageSize) — and
// the rank array is shared. Every mutation made through InsertEdge
// replaces whole lists (see upsert) and pays for the header pages it
// touches, so the original index — typically the one a published
// snapshot's in-flight queries are still reading — is never written,
// and an update costs its delta rather than O(|V|).
func (ix *Index) Clone() *Index {
	return &Index{
		n:    ix.n,
		in:   ix.in.Clone(),
		out:  ix.out.Clone(),
		rank: ix.rank,
	}
}

// CopyStats reports the cumulative copy-on-write work this index
// performed (header pages copied and bytes moved, including the
// page-table copies of its own cloning) since it was created. The
// snapshot updater reads it once per published epoch to account apply
// cost.
func (ix *Index) CopyStats() (pages, bytes uint64) {
	pi, bi := ix.in.CopyStats()
	po, bo := ix.out.CopyStats()
	return pi + po, bi + bo
}

// Residency reports the index's header pages split into shared (still
// aliased by other epochs' clones) and owned (copied on write by this
// epoch chain); see pagevec.Vec.Residency.
func (ix *Index) Residency() (shared, owned int) {
	si, oi := ix.in.Residency()
	so, oo := ix.out.Residency()
	return si + so, oi + oo
}
