package label

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return gen.GridBuilder(gen.GridOptions{Rows: 40, Cols: 40, Diagonals: true, Seed: 1}).MustBuild()
}

func BenchmarkBuildGrid1600(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := Build(g)
		if i == 0 {
			st := ix.Stats()
			b.ReportMetric(st.AvgOut, "avgLout")
		}
	}
}

// BenchmarkBuildSequentialVsParallel compares the Workers=1 reference
// build against the concurrent per-root forward/reverse build. On a
// multi-core runner the parallel build approaches 2× (the two searches
// of each root run concurrently); on one core it measures the channel
// hand-off overhead.
func BenchmarkBuildSequentialVsParallel(b *testing.B) {
	g := benchGraph(b)
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BuildWithOptions(g, BuildOptions{Workers: tc.workers})
			}
		})
	}
}

// Ordering ablation: build time and index size per landmark ordering.
func BenchmarkBuildOrderings(b *testing.B) {
	g := benchGraph(b)
	for _, tc := range []struct {
		name string
		ord  Order
	}{
		{"degree", OrderDegree},
		{"pathsample", OrderPathSample},
		{"random", OrderRandom},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				ix := BuildWithOptions(g, BuildOptions{Order: tc.ord, Seed: 1})
				entries = ix.Stats().Entries
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

func BenchmarkDist(b *testing.B) {
	g := benchGraph(b)
	ix := Build(g)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		_ = ix.Dist(u, v)
	}
}

func BenchmarkPath(b *testing.B) {
	g := benchGraph(b)
	ix := Build(g)
	rng := rand.New(rand.NewSource(3))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		_ = ix.Path(u, v)
	}
}

func BenchmarkInsertEdge(b *testing.B) {
	g := benchGraph(b)
	rng := rand.New(rand.NewSource(4))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix := Build(g) // fresh index per insertion batch
		dyn := graph.NewDynamic(g)
		b.StartTimer()
		u := graph.Vertex(rng.Intn(n))
		v := graph.Vertex(rng.Intn(n))
		dyn.AddEdge(u, v, 1)
		ix.InsertEdge(dyn, u, v, 1)
	}
}
