package label

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(20)))
	}
	return b.MustBuild()
}

// checkAllPairs verifies label distances against Dijkstra for every pair.
func checkAllPairs(t *testing.T, g *graph.Graph, ix *Index) {
	t.Helper()
	s := dijkstra.New(g)
	for u := 0; u < g.NumVertices(); u++ {
		s.FromSource(graph.Vertex(u), false)
		for v := 0; v < g.NumVertices(); v++ {
			want := s.Dist(graph.Vertex(v))
			got := ix.Dist(graph.Vertex(u), graph.Vertex(v))
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("dis(%d,%d)=%v, want %v", u, v, got, want)
			}
		}
	}
}

func TestFigure1AllPairs(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g)
	checkAllPairs(t, g, ix)
}

func TestFigure1KnownDistances(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g)
	name := func(s string) graph.Vertex { v, _ := g.VertexByName(s); return v }
	// Example 3 of the paper: dis(a,c) = 20.
	if got := ix.Dist(name("a"), name("c")); got != 20 {
		t.Fatalf("dis(a,c)=%v, want 20", got)
	}
	if got := ix.Dist(name("s"), name("t")); got != 17 {
		t.Fatalf("dis(s,t)=%v, want 17", got)
	}
}

func TestRandomGraphsAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 2+rng.Intn(30), 80)
		checkAllPairs(t, g, Build(g))
	}
}

func TestUndirectedGridAllPairs(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 6, Cols: 7, Seed: 4, Diagonals: true}).MustBuild()
	checkAllPairs(t, g, Build(g))
}

func TestDirectedGridAllPairs(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 5, Cols: 6, Directed: true, Seed: 5}).MustBuild()
	checkAllPairs(t, g, Build(g))
}

func TestDisconnected(t *testing.T) {
	g := graph.NewBuilder(4, true).AddEdge(0, 1, 1).AddEdge(2, 3, 1).MustBuild()
	ix := Build(g)
	if !math.IsInf(ix.Dist(0, 3), 1) {
		t.Fatal("expected +Inf across components")
	}
	if ix.Path(0, 3) != nil {
		t.Fatal("expected nil path")
	}
	if ix.Dist(2, 3) != 1 {
		t.Fatal("within-component distance wrong")
	}
}

func pathCost(t *testing.T, g *graph.Graph, path []graph.Vertex) float64 {
	t.Helper()
	var cost float64
	for i := 0; i+1 < len(path); i++ {
		best := graph.Inf
		for _, a := range g.Out(path[i]) {
			if a.To == path[i+1] && a.W < best {
				best = a.W
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("path uses non-edge %d->%d", path[i], path[i+1])
		}
		cost += best
	}
	return cost
}

func TestPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 2+rng.Intn(25), 70)
		ix := Build(g)
		for u := 0; u < g.NumVertices(); u++ {
			for v := 0; v < g.NumVertices(); v++ {
				d := ix.Dist(graph.Vertex(u), graph.Vertex(v))
				path := ix.Path(graph.Vertex(u), graph.Vertex(v))
				if math.IsInf(d, 1) {
					if path != nil {
						t.Fatalf("path to unreachable %d->%d", u, v)
					}
					continue
				}
				if len(path) == 0 || path[0] != graph.Vertex(u) || path[len(path)-1] != graph.Vertex(v) {
					t.Fatalf("path endpoints wrong: %v (%d->%d)", path, u, v)
				}
				if got := pathCost(t, g, path); got != d {
					t.Fatalf("path cost %v != dist %v (%d->%d, path %v)", got, d, u, v, path)
				}
			}
		}
	}
}

func TestPathSelf(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g)
	p := ix.Path(3, 3)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path=%v", p)
	}
}

func TestLabelListsRankOrdered(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 5, Cols: 5, Seed: 6}).MustBuild()
	ix := Build(g)
	for v := 0; v < g.NumVertices(); v++ {
		for _, list := range [][]Entry{ix.In(graph.Vertex(v)), ix.Out(graph.Vertex(v))} {
			for i := 1; i < len(list); i++ {
				if ix.Rank(list[i-1].Hub) >= ix.Rank(list[i].Hub) {
					t.Fatalf("label list of %d not strictly rank-ordered", v)
				}
			}
		}
	}
}

func TestStats(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g)
	st := ix.Stats()
	if st.Vertices != 8 || st.Entries <= 0 || st.SizeBytes != st.Entries*16 {
		t.Fatalf("stats=%+v", st)
	}
	if st.AvgIn <= 0 || st.AvgOut <= 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 25, 70)
	ix := Build(g)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			a := ix.Dist(graph.Vertex(u), graph.Vertex(v))
			b := ix2.Dist(graph.Vertex(u), graph.Vertex(v))
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("round trip changed dis(%d,%d): %v vs %v", u, v, a, b)
			}
		}
	}
	// Path reconstruction also survives.
	p1 := ix.Path(0, 10)
	p2 := ix2.Path(0, 10)
	if len(p1) != len(p2) {
		t.Fatalf("paths differ after round trip: %v vs %v", p1, p2)
	}
}

func TestReadCorrupt(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTMAGIC"), full[8:]...),
		"truncated":   full[:len(full)/2],
		"short magic": full[:4],
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// Property: on random graphs, label distance equals Dijkstra distance for
// random pairs (complements the exhaustive small tests above).
func TestDistMatchesDijkstraQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(40), 120)
		ix := Build(g)
		s := dijkstra.New(g)
		for i := 0; i < 10; i++ {
			u := graph.Vertex(rng.Intn(g.NumVertices()))
			v := graph.Vertex(rng.Intn(g.NumVertices()))
			want := s.ToTarget(u, v)
			got := ix.Dist(u, v)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := graph.NewBuilder(3, true).
		AddEdge(0, 1, 0).AddEdge(1, 2, 0).AddEdge(0, 2, 5).
		MustBuild()
	ix := Build(g)
	if got := ix.Dist(0, 2); got != 0 {
		t.Fatalf("dis(0,2)=%v, want 0", got)
	}
}
