package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// Compressed serialization (the paper points to hub-label compression
// [Delling et al., SEA'13] for shrinking large indexes; this file
// implements the storage-level half of that idea):
//
//   - hubs are stored as varint deltas of their ranks (lists are
//     rank-ordered, so deltas are small),
//   - integral distances — the common case for road networks with
//     integer weights — are stored as varints instead of 8-byte floats,
//   - Next pointers are stored as varints of (next+1).
//
// The format typically shrinks road-network indexes by 2–3× versus the
// fixed-width format of serialize.go.
var compressedMagic = [8]byte{'K', 'O', 'S', 'R', 'L', 'B', 'C', '1'}

// WriteCompressed serializes the index in the compressed format.
func (ix *Index) WriteCompressed(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	buf := make([]byte, binary.MaxVarintLen64)
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf, v)
		m, err := bw.Write(buf[:n])
		written += int64(m)
		return err
	}
	if _, err := bw.Write(compressedMagic[:]); err != nil {
		return written, err
	}
	written += 8
	if err := putUvarint(uint64(ix.n)); err != nil {
		return written, err
	}
	for _, r := range ix.rank {
		if err := putUvarint(uint64(r)); err != nil {
			return written, err
		}
	}
	writeList := func(list []Entry) error {
		if err := putUvarint(uint64(len(list))); err != nil {
			return err
		}
		prevRank := int64(-1)
		for _, e := range list {
			r := int64(ix.rank[e.Hub])
			if err := putUvarint(uint64(r - prevRank)); err != nil {
				return err
			}
			prevRank = r
			// Distances: integral values as the even varint 2·v; the odd
			// marker 1 announces a raw 8-byte float.
			if e.D == math.Trunc(e.D) && e.D >= 0 && e.D < 1<<52 {
				if err := putUvarint(uint64(e.D) << 1); err != nil {
					return err
				}
			} else {
				if err := putUvarint(1); err != nil {
					return err
				}
				var fb [8]byte
				binary.LittleEndian.PutUint64(fb[:], math.Float64bits(e.D))
				m, err := bw.Write(fb[:])
				written += int64(m)
				if err != nil {
					return err
				}
			}
			if err := putUvarint(uint64(e.Next + 1)); err != nil {
				return err
			}
		}
		return nil
	}
	for v := 0; v < ix.n; v++ {
		if err := writeList(ix.In(graph.Vertex(v))); err != nil {
			return written, err
		}
		if err := writeList(ix.Out(graph.Vertex(v))); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadCompressed deserializes an index written by WriteCompressed.
func ReadCompressed(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("label: reading magic: %w", err)
	}
	if m != compressedMagic {
		return nil, fmt.Errorf("label: bad compressed magic %q", m)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("label: reading size: %w", err)
	}
	if n64 > 1<<28 {
		return nil, fmt.Errorf("label: implausible vertex count %d", n64)
	}
	n := int(n64)
	ix := newIndexShell(n)
	// rank → vertex mapping to restore hub ids from rank deltas.
	byRank := make([]graph.Vertex, n)
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		r, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("label: reading rank: %w", err)
		}
		if r >= uint64(n) || seen[r] {
			return nil, fmt.Errorf("label: invalid rank %d for vertex %d", r, v)
		}
		seen[r] = true
		ix.rank[v] = int32(r)
		byRank[r] = graph.Vertex(v)
	}
	readList := func() ([]Entry, error) {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("label: reading list length: %w", err)
		}
		if l > uint64(n) {
			return nil, fmt.Errorf("label: list length %d exceeds vertex count %d", l, n)
		}
		list := make([]Entry, 0, l)
		prevRank := int64(-1)
		for i := uint64(0); i < l; i++ {
			dr, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("label: reading entry: %w", err)
			}
			rank := prevRank + int64(dr)
			if rank < 0 || rank >= int64(n) {
				return nil, fmt.Errorf("label: corrupt rank delta")
			}
			prevRank = rank
			dv, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("label: reading entry: %w", err)
			}
			var d graph.Weight
			if dv&1 == 0 {
				d = graph.Weight(dv >> 1)
			} else {
				var fb [8]byte
				if _, err := io.ReadFull(br, fb[:]); err != nil {
					return nil, fmt.Errorf("label: reading float distance: %w", err)
				}
				d = math.Float64frombits(binary.LittleEndian.Uint64(fb[:]))
			}
			nx, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("label: reading entry: %w", err)
			}
			if nx > uint64(n) {
				return nil, fmt.Errorf("label: corrupt next pointer %d", nx)
			}
			list = append(list, Entry{
				Hub:  byRank[rank],
				R:    int32(rank),
				D:    d,
				Next: graph.Vertex(int32(nx) - 1),
			})
		}
		return list, nil
	}
	for v := 0; v < n; v++ {
		var list []Entry
		if list, err = readList(); err != nil {
			return nil, err
		}
		ix.in.Set(v, list)
		if list, err = readList(); err != nil {
			return nil, err
		}
		ix.out.Set(v, list)
	}
	return ix, nil
}
