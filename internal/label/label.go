// Package label implements 2-hop labeling for exact shortest-path
// distance queries on directed weighted graphs, built with the Pruned
// Landmark Labeling algorithm of Akiba, Iwata and Yoshida (SIGMOD 2013),
// the method the paper adopts for its label index (Section V-A).
//
// Every vertex v carries two label sets (Section IV-A of the paper):
// Lin(v) with entries (u, dis(u,v)) and Lout(v) with entries
// (u, dis(v,u)), satisfying the 2-hop cover property: for any s, t some
// vertex on a shortest s→t path appears in both Lout(s) and Lin(t), so
//
//	dis(s,t) = min { ds,h + dh,t | (h,ds,h) ∈ Lout(s), (h,dh,t) ∈ Lin(t) }.
//
// Each entry additionally records the neighbouring vertex toward the hub,
// which lets the index reconstruct actual shortest paths (the paper's
// "parent vertex" remark at the end of Section IV-A).
package label

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/pagevec"
	"repro/internal/pq"
)

// Entry is one label entry. For an entry in Lin(v), Hub reaches v and
// Next is the predecessor of v on the shortest Hub→v path. For an entry
// in Lout(v), v reaches Hub and Next is the successor of v on the
// shortest v→Hub path. Next is -1 when v == Hub.
//
// R caches the landmark rank of Hub so the merge joins of Dist/BestHub
// read it without an indirect rank-array load per entry. The label
// package maintains it everywhere it constructs entries; externally
// built lists are normalized by SetIn/SetOut.
type Entry struct {
	Hub  graph.Vertex
	R    int32
	D    graph.Weight
	Next graph.Vertex
}

// Index is an immutable 2-hop label index. Build one with Build or load
// one with Read. Label lists are stored in hub-rank order (the pruned
// landmark ordering), which both distance queries and the inverted label
// index rely on.
//
// The per-vertex list headers live in paged copy-on-write vectors
// (internal/pagevec): Clone copies only the page tables, and the
// incremental-update routines of dynamic.go copy only the pages they
// touch, so publishing a new index epoch costs the update's delta, not
// O(|V|).
type Index struct {
	n    int
	in   *pagevec.Vec[[]Entry]
	out  *pagevec.Vec[[]Entry]
	rank []int32 // rank[v] = position of v in the landmark order
}

// newIndexShell returns an index with empty label vectors and an
// all-zero rank array of n entries.
func newIndexShell(n int) *Index {
	return &Index{
		n:    n,
		in:   pagevec.New[[]Entry](n),
		out:  pagevec.New[[]Entry](n),
		rank: make([]int32, n),
	}
}

// Order selects the landmark (hub) ordering heuristic. Ordering quality
// drives both label size and build time: better orderings prune more.
type Order int

// The available orderings.
const (
	// OrderDegree ranks vertices by total degree, descending — the
	// classic pruned-landmark-labeling default.
	OrderDegree Order = iota
	// OrderPathSample estimates vertex centrality by sampling shortest
	// path trees from random roots and counting how often each vertex
	// appears on sampled root-to-vertex paths; high-coverage vertices
	// become early hubs. Slower to compute, usually smaller labels on
	// road networks.
	OrderPathSample
	// OrderRandom is the ablation baseline: a random permutation.
	OrderRandom
)

// BuildOptions tunes Build.
type BuildOptions struct {
	Order Order
	// Seed drives OrderRandom and OrderPathSample.
	Seed int64
	// SampleRoots is the number of shortest path trees sampled by
	// OrderPathSample (default 16).
	SampleRoots int
	// Workers caps the build parallelism. 0 means GOMAXPROCS; 1 forces
	// the sequential reference build. The produced index is byte-identical
	// regardless of the worker count.
	Workers int
}

func (opt BuildOptions) workers() int {
	if opt.Workers > 0 {
		return opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Build constructs the index for g using degree-descending landmark
// ordering and all available cores.
func Build(g *graph.Graph) *Index {
	return BuildWithOptions(g, BuildOptions{})
}

// BuildWithOptions constructs the index with an explicit ordering
// heuristic.
//
// Pruned landmark labeling is inherently sequential across roots (each
// root's searches prune against the labels of all higher-ranked roots),
// but within one root the forward search (which only appends Lin entries)
// and the reverse search (which only appends Lout entries) never observe
// each other's output: the prune test of either search can only pair a
// current-root entry in one list with a current-root entry in the other,
// and neither entry exists before the vertex under test is settled. Both
// searches therefore run concurrently against the snapshot of previously
// built labels, each buffering its appends into per-worker scratch, and
// the buffers are applied in the sequential order afterwards — so the
// result is byte-identical to the Workers=1 build.
func BuildWithOptions(g *graph.Graph, opt BuildOptions) *Index {
	order := landmarkOrder(g, opt)
	ix := newIndexShell(g.NumVertices())
	for r, v := range order {
		ix.rank[v] = int32(r)
	}

	fwd := newBuilder(g, ix)
	if opt.workers() == 1 {
		for _, root := range order {
			fwd.prunedSearch(root, false)
			fwd.flush(false)
			fwd.prunedSearch(root, true)
			fwd.flush(true)
		}
		return ix
	}

	// One persistent worker owns the reverse search scratch; the calling
	// goroutine runs the forward search of the same root concurrently.
	rev := newBuilder(g, ix)
	roots := make(chan graph.Vertex)
	done := make(chan struct{})
	go func() {
		for root := range roots {
			rev.prunedSearch(root, true)
			done <- struct{}{}
		}
	}()
	for _, root := range order {
		roots <- root
		fwd.prunedSearch(root, false)
		<-done
		fwd.flush(false)
		rev.flush(true)
	}
	close(roots)
	return ix
}

// landmarkOrder computes the hub order for the selected heuristic.
func landmarkOrder(g *graph.Graph, opt BuildOptions) []graph.Vertex {
	n := g.NumVertices()
	order := make([]graph.Vertex, n)
	for i := range order {
		order[i] = graph.Vertex(i)
	}
	switch opt.Order {
	case OrderRandom:
		rng := rand.New(rand.NewSource(opt.Seed))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	case OrderPathSample:
		score := samplePathCoverage(g, opt)
		sort.Slice(order, func(i, j int) bool {
			si, sj := score[order[i]], score[order[j]]
			if si != sj {
				return si > sj
			}
			return order[i] < order[j]
		})
	default: // OrderDegree
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
	}
	return order
}

// samplePathCoverage runs full Dijkstra trees from sampled roots and
// counts, for each vertex, how many sampled root→vertex shortest paths
// pass through it (computed bottom-up over each tree). The root sequence
// is drawn up front from the seeded RNG; the trees themselves are
// embarrassingly parallel, and the per-worker partial scores are reduced
// by integer addition, so the result is deterministic for any worker
// count.
func samplePathCoverage(g *graph.Graph, opt BuildOptions) []int64 {
	n := g.NumVertices()
	roots := opt.SampleRoots
	if roots <= 0 {
		roots = 16
	}
	if roots > n {
		roots = n
	}
	if roots == 0 { // empty graph: nothing to sample
		return make([]int64, n)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	type sample struct {
		root    graph.Vertex
		reverse bool
	}
	samples := make([]sample, roots)
	for i := range samples {
		samples[i] = sample{root: graph.Vertex(rng.Intn(n)), reverse: i%2 == 1} // alternate directions
	}

	workers := opt.workers()
	if workers > roots {
		workers = roots
	}
	partial := make([][]int64, workers)
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			score := make([]int64, n)
			partial[w] = score
			s := dijkstra.New(g)
			type vd struct {
				v graph.Vertex
				d graph.Weight
			}
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= roots {
					return
				}
				s.FromSource(samples[i].root, samples[i].reverse)
				// Count subtree sizes: process vertices in descending
				// distance.
				var reached []vd
				sub := make([]int64, n)
				for v := 0; v < n; v++ {
					if d := s.Dist(graph.Vertex(v)); !math.IsInf(d, 1) {
						reached = append(reached, vd{graph.Vertex(v), d})
						sub[v] = 1
					}
				}
				sort.Slice(reached, func(a, b int) bool { return reached[a].d > reached[b].d })
				for _, x := range reached {
					score[x.v] += sub[x.v]
					if p := s.Parent(x.v); p >= 0 {
						sub[p] += sub[x.v]
					}
				}
			}
		}(w)
	}
	wg.Wait()
	score := partial[0]
	for _, p := range partial[1:] {
		for v, s := range p {
			score[v] += s
		}
	}
	return score
}

// builder is the per-search scratch state of one pruned Dijkstra worker.
type builder struct {
	g      *graph.Graph
	ix     *Index
	dist   []graph.Weight
	parent []int32
	heap   *pq.IndexedHeap
	touch  []int32
	// Label appends are buffered per search (bufV[i] receives bufE[i])
	// and applied by flush, so concurrent forward/reverse searches never
	// mutate the index they prune against.
	bufV []int32
	bufE []Entry
}

func newBuilder(g *graph.Graph, ix *Index) *builder {
	n := g.NumVertices()
	b := &builder{g: g, ix: ix,
		dist:   make([]graph.Weight, n),
		parent: make([]int32, n),
		heap:   pq.NewIndexedHeap(n),
	}
	for i := range b.dist {
		b.dist[i] = graph.Inf
	}
	return b
}

// prunedSearch runs a pruned Dijkstra from root. With reverse=false it
// explores forward arcs and buffers (root, d, parent) appends for Lin(u)
// of every non-pruned settled u; with reverse=true it explores reverse
// arcs and buffers appends for Lout(u).
func (b *builder) prunedSearch(root graph.Vertex, reverse bool) {
	for _, v := range b.touch {
		b.dist[v] = graph.Inf
	}
	b.touch = b.touch[:0]
	b.heap.Reset()

	b.dist[root] = 0
	b.parent[root] = -1
	b.touch = append(b.touch, root)
	b.heap.PushOrDecrease(root, 0)
	rootRank := b.ix.rank[root]

	for b.heap.Len() > 0 {
		u, du := b.heap.PopMin()
		// Prune when the labels built so far already cover (root,u) at
		// cost ≤ du.
		var covered graph.Weight
		if reverse {
			covered = b.ix.distMerge(graph.Vertex(u), root)
		} else {
			covered = b.ix.distMerge(root, graph.Vertex(u))
		}
		if covered <= du {
			continue
		}
		b.bufV = append(b.bufV, u)
		b.bufE = append(b.bufE, Entry{Hub: root, R: rootRank, D: du, Next: graph.Vertex(b.parent[u])})
		var arcs []graph.Arc
		if reverse {
			arcs = b.g.In(graph.Vertex(u))
		} else {
			arcs = b.g.Out(graph.Vertex(u))
		}
		for _, a := range arcs {
			nd := du + a.W
			if nd < b.dist[a.To] {
				if math.IsInf(b.dist[a.To], 1) {
					b.touch = append(b.touch, a.To)
				}
				b.dist[a.To] = nd
				b.parent[a.To] = u
				b.heap.PushOrDecrease(a.To, nd)
			}
		}
	}
}

// flush applies the buffered appends in settle order, reproducing exactly
// the sequential build's list contents.
func (b *builder) flush(reverse bool) {
	lists := b.ix.in
	if reverse {
		lists = b.ix.out
	}
	for i, v := range b.bufV {
		lists.Set(int(v), append(lists.Get(int(v)), b.bufE[i]))
	}
	b.bufV = b.bufV[:0]
	b.bufE = b.bufE[:0]
}

// NewSparse returns an index shell with the given landmark ranks and no
// label lists. Labels are attached with SetIn/SetOut; entries must be in
// ascending rank order, as produced by Build. The disk-resident store
// (Section IV-C) uses this to materialize only the labels a query needs.
func NewSparse(rank []int32) *Index {
	ix := newIndexShell(len(rank))
	copy(ix.rank, rank)
	return ix
}

// FromVectors assembles an index directly from pre-built label-list
// vectors. Lists must be rank-ordered with R fields already filled, as
// produced by Build — no normalization happens. The flat mmap loader
// uses this: its vectors carry borrowed read-only pages whose list
// headers point into the mapping, so the index serves with zero copying
// and the first dynamic update of a page materializes it (pagevec
// copy-on-write over the mmap base).
func FromVectors(rank []int32, in, out *pagevec.Vec[[]Entry]) *Index {
	return &Index{n: len(rank), in: in, out: out, rank: rank}
}

// SetIn attaches Lin(v). The entries must be rank-ordered; their R fields
// are filled in from the index's rank array.
func (ix *Index) SetIn(v graph.Vertex, entries []Entry) {
	for i := range entries {
		entries[i].R = ix.rank[entries[i].Hub]
	}
	ix.in.Set(int(v), entries)
}

// SetOut attaches Lout(v). The entries must be rank-ordered; their R
// fields are filled in from the index's rank array.
func (ix *Index) SetOut(v graph.Vertex, entries []Entry) {
	for i := range entries {
		entries[i].R = ix.rank[entries[i].Hub]
	}
	ix.out.Set(int(v), entries)
}

// Ranks returns the landmark rank array (shared; do not modify).
func (ix *Index) Ranks() []int32 { return ix.rank }

// NumVertices returns the number of vertices the index covers.
func (ix *Index) NumVertices() int { return ix.n }

// In returns Lin(v). The slice is shared; do not modify.
func (ix *Index) In(v graph.Vertex) []Entry { return ix.in.Get(int(v)) }

// Out returns Lout(v). The slice is shared; do not modify.
func (ix *Index) Out(v graph.Vertex) []Entry { return ix.out.Get(int(v)) }

// Rank returns the landmark rank of v (0 = highest priority hub).
func (ix *Index) Rank(v graph.Vertex) int32 { return ix.rank[v] }

// Dist returns dis(s, t), or +Inf when t is unreachable from s. It is a
// merge join of Lout(s) and Lin(t) in hub-rank order. dis(v, v) is 0 by
// definition (the empty path), which also keeps sparse indexes — where a
// vertex may carry only one of its two labels — exact.
//
//kosr:hotpath
func (ix *Index) Dist(s, t graph.Vertex) graph.Weight {
	if s == t {
		return 0
	}
	return ix.distMerge(s, t)
}

// distMerge is the raw label merge join, without the s == t shortcut.
// The builder's prune test must use it: during the root's own search the
// shortcut would make the root prune itself.
//
//kosr:hotpath
func (ix *Index) distMerge(s, t graph.Vertex) graph.Weight {
	best := graph.Inf
	ls, lt := ix.out.Get(int(s)), ix.in.Get(int(t))
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		ri, rj := ls[i].R, lt[j].R
		switch {
		case ri == rj:
			if d := ls[i].D + lt[j].D; d < best {
				best = d
			}
			i++
			j++
		case ri < rj:
			i++
		default:
			j++
		}
	}
	return best
}

// BestHub returns the hub minimizing ds,h + dh,t together with that
// distance; ok is false when t is unreachable from s.
//
//kosr:hotpath
func (ix *Index) BestHub(s, t graph.Vertex) (hub graph.Vertex, d graph.Weight, ok bool) {
	best := graph.Inf
	var bestHub graph.Vertex = -1
	ls, lt := ix.out.Get(int(s)), ix.in.Get(int(t))
	i, j := 0, 0
	for i < len(ls) && j < len(lt) {
		ri, rj := ls[i].R, lt[j].R
		switch {
		case ri == rj:
			if d := ls[i].D + lt[j].D; d < best {
				best = d
				bestHub = ls[i].Hub
			}
			i++
			j++
		case ri < rj:
			i++
		default:
			j++
		}
	}
	return bestHub, best, bestHub >= 0
}

// lookup finds the entry with the given hub in a rank-ordered label list.
//
//kosr:hotpath
func (ix *Index) lookup(list []Entry, hub graph.Vertex) (Entry, bool) {
	r := ix.rank[hub]
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid].R < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo].Hub == hub {
		return list[lo], true
	}
	return Entry{}, false
}

// Path reconstructs a shortest path from s to t as a vertex sequence
// (inclusive of both endpoints), or nil when t is unreachable. The path
// is assembled from the per-entry Next pointers: s→hub via Lout
// successors, hub→t via Lin predecessors.
func (ix *Index) Path(s, t graph.Vertex) []graph.Vertex {
	if s == t {
		return []graph.Vertex{s}
	}
	hub, _, ok := ix.BestHub(s, t)
	if !ok {
		return nil
	}
	path := []graph.Vertex{s}
	for cur := s; cur != hub; {
		e, ok := ix.lookup(ix.Out(cur), hub)
		if !ok || e.Next < 0 {
			return nil // index corrupted
		}
		cur = e.Next
		path = append(path, cur)
	}
	var back []graph.Vertex
	for cur := t; cur != hub; {
		e, ok := ix.lookup(ix.In(cur), hub)
		if !ok || e.Next < 0 {
			return nil // index corrupted
		}
		back = append(back, cur)
		cur = e.Next
	}
	for i := len(back) - 1; i >= 0; i-- {
		path = append(path, back[i])
	}
	return path
}

// Stats summarizes the index (the paper's Table IX columns).
type Stats struct {
	Vertices  int
	AvgIn     float64
	AvgOut    float64
	Entries   int64
	SizeBytes int64
}

// Stats computes summary statistics.
func (ix *Index) Stats() Stats {
	var st Stats
	st.Vertices = ix.n
	var in, out int64
	ix.in.Range(func(_ int, list []Entry) bool { in += int64(len(list)); return true })
	ix.out.Range(func(_ int, list []Entry) bool { out += int64(len(list)); return true })
	st.Entries = in + out
	if ix.n > 0 {
		st.AvgIn = float64(in) / float64(ix.n)
		st.AvgOut = float64(out) / float64(ix.n)
	}
	// Hub (4) + distance (8) + next (4) bytes per entry.
	st.SizeBytes = st.Entries * 16
	return st
}
