package label

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Every ordering must produce an exact index.
func TestAllOrdersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 2+rng.Intn(25), 70)
		for _, ord := range []Order{OrderDegree, OrderPathSample, OrderRandom} {
			ix := BuildWithOptions(g, BuildOptions{Order: ord, Seed: int64(trial)})
			s := dijkstra.New(g)
			for u := 0; u < g.NumVertices(); u++ {
				s.FromSource(graph.Vertex(u), false)
				for v := 0; v < g.NumVertices(); v++ {
					want := s.Dist(graph.Vertex(v))
					got := ix.Dist(graph.Vertex(u), graph.Vertex(v))
					if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
						t.Fatalf("order %d: dis(%d,%d)=%v, want %v", ord, u, v, got, want)
					}
				}
			}
		}
	}
}

// On a road-like grid, informed orderings must beat the random baseline
// on label size (the whole point of landmark ordering).
func TestOrderingQuality(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 16, Cols: 16, Diagonals: true, Seed: 4}).MustBuild()
	entries := func(ord Order) int64 {
		return BuildWithOptions(g, BuildOptions{Order: ord, Seed: 5}).Stats().Entries
	}
	degree := entries(OrderDegree)
	sampled := entries(OrderPathSample)
	random := entries(OrderRandom)
	if degree >= random {
		t.Errorf("degree ordering (%d entries) not better than random (%d)", degree, random)
	}
	if sampled >= random {
		t.Errorf("sampled ordering (%d entries) not better than random (%d)", sampled, random)
	}
	t.Logf("label entries: degree=%d sampled=%d random=%d", degree, sampled, random)
}

func TestOrderPathSampleDeterministic(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 8, Cols: 8, Seed: 2}).MustBuild()
	a := BuildWithOptions(g, BuildOptions{Order: OrderPathSample, Seed: 9}).Stats()
	b := BuildWithOptions(g, BuildOptions{Order: OrderPathSample, Seed: 9}).Stats()
	if a.Entries != b.Entries {
		t.Fatalf("same seed produced different indexes: %d vs %d", a.Entries, b.Entries)
	}
}
