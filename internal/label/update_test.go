package label

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// countNaiveRepairs is what the old per-arc path would have run: one
// resume per label entry of every arc endpoint, with no cross-arc
// dedup. Counted against the same pre-batch index the batch path
// collects its seeds from.
func countNaiveRepairs(ix *Index, arcs []NewArc) int {
	n := 0
	for _, a := range arcs {
		n += len(ix.In(a.From)) + len(ix.Out(a.To))
	}
	return n
}

// TestInsertEdgeBatchDedupesRepairs pins the satellite fix: a batch
// whose arcs share endpoints (so their seed hub sets overlap heavily)
// must run one repair per distinct (hub, direction), not one per seed.
func TestInsertEdgeBatchDedupesRepairs(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := randomGraph(rng, 30, 90)
	ix := Build(g)
	dyn := graph.NewDynamic(g)

	// Three arcs out of vertex 0 and two into vertex 1: every arc out
	// of 0 re-seeds all hubs of Lin(0), every arc into 1 re-seeds all
	// hubs of Lout(1).
	arcs := []NewArc{
		{From: 0, To: 5, W: 2}, {From: 0, To: 9, W: 3}, {From: 0, To: 13, W: 1},
		{From: 4, To: 1, W: 2}, {From: 8, To: 1, W: 4},
	}
	naive := countNaiveRepairs(ix, arcs)

	// Distinct (hub, direction) pairs across all seeds — the most work
	// a deduplicating batch may do.
	type key struct {
		hub graph.Vertex
		rev bool
	}
	want := map[key]bool{}
	for _, a := range arcs {
		for _, e := range ix.In(a.From) {
			want[key{e.Hub, false}] = true
		}
		for _, e := range ix.Out(a.To) {
			want[key{e.Hub, true}] = true
		}
	}

	for _, a := range arcs {
		if err := dyn.AddEdge(a.From, a.To, a.W); err != nil {
			t.Fatal(err)
		}
	}
	us := NewUpdateScratch(ix.n)
	res := ix.InsertEdgeBatch(dyn, arcs, us, RepairOptions{})

	if res.Seeds != naive {
		t.Fatalf("Seeds=%d, want the naive per-arc count %d", res.Seeds, naive)
	}
	// The covered-seed filter may drop some of the distinct groups
	// entirely (their repairs would have settled nothing), but a batch
	// may never run more than one repair per distinct (hub, direction).
	if res.Repairs > len(want) {
		t.Fatalf("Repairs=%d, want at most %d distinct (hub, direction) groups", res.Repairs, len(want))
	}
	if res.Repairs+res.SeedsSkipped < len(want) {
		t.Fatalf("Repairs=%d SeedsSkipped=%d cannot account for %d distinct groups",
			res.Repairs, res.SeedsSkipped, len(want))
	}
	if res.Repairs == 0 {
		t.Fatal("every repair was filtered; the batch should improve some distances")
	}
	if res.Repairs >= naive {
		t.Fatalf("no dedup: %d repairs for %d seeds on an overlapping batch", res.Repairs, naive)
	}
	checkDynamicAllPairs(t, dyn, ix)
}

// TestInsertEdgeBatchScratchReuse verifies the batch-scoped scratch
// lifecycle: one scratch carries many batches, each batch's result
// staying exact and its Updates buffer rewinding rather than growing.
func TestInsertEdgeBatchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := randomGraph(rng, 25, 60)
	ix := Build(g)
	dyn := graph.NewDynamic(g)
	us := NewUpdateScratch(ix.n)
	for batch := 0; batch < 6; batch++ {
		var arcs []NewArc
		for i := 0; i < 3; i++ {
			a := NewArc{
				From: graph.Vertex(rng.Intn(25)),
				To:   graph.Vertex(rng.Intn(25)),
				W:    float64(1 + rng.Intn(9)),
			}
			if err := dyn.AddEdge(a.From, a.To, a.W); err != nil {
				t.Fatal(err)
			}
			arcs = append(arcs, a)
		}
		ix.InsertEdgeBatch(dyn, arcs, us, RepairOptions{})
	}
	checkDynamicAllPairs(t, dyn, ix)
	if us.FootprintBytes() == 0 {
		t.Fatal("scratch reports zero footprint after use")
	}
}

// TestParallelRepairDeterminism asserts the tentpole invariant of the
// parallel repair stage, mirroring TestParallelBuildDeterminism: for
// every worker count, applying the same arc batches leaves an index
// byte-identical to the serial (Workers=1) schedule — same serialized
// form, same staged LinUpdates in the same order.
func TestParallelRepairDeterminism(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure1": graph.Figure1(),
		"grid": gen.GridBuilder(gen.GridOptions{
			Rows: 16, Cols: 16, Directed: true, Diagonals: true, MaxWeight: 9, Seed: 7,
		}).MustBuild(),
		"smallworld": gen.SmallWorldBuilder(gen.SmallWorldOptions{
			N: 200, OutDegree: 5, Seed: 3,
		}).MustBuild(),
	}
	for gname, g := range graphs {
		t.Run(gname, func(t *testing.T) {
			base := Build(g)
			rng := rand.New(rand.NewSource(17))
			n := g.NumVertices()
			// Three successive batches so later batches repair state the
			// earlier ones produced.
			var batches [][]NewArc
			for b := 0; b < 3; b++ {
				var arcs []NewArc
				for i := 0; i < 4; i++ {
					arcs = append(arcs, NewArc{
						From: graph.Vertex(rng.Intn(n)),
						To:   graph.Vertex(rng.Intn(n)),
						W:    float64(1 + rng.Intn(9)),
					})
				}
				batches = append(batches, arcs)
			}
			apply := func(workers int) (*Index, [][]LinUpdate) {
				ix := base.Clone()
				dyn := graph.NewDynamic(g)
				us := NewUpdateScratch(ix.n)
				var staged [][]LinUpdate
				for _, arcs := range batches {
					for _, a := range arcs {
						if err := dyn.AddEdge(a.From, a.To, a.W); err != nil {
							t.Fatal(err)
						}
					}
					res := ix.InsertEdgeBatch(dyn, arcs, us, RepairOptions{Workers: workers})
					staged = append(staged, append([]LinUpdate(nil), res.Updates...))
				}
				return ix, staged
			}
			seq, seqUpd := apply(1)
			var sb bytes.Buffer
			if _, err := seq.WriteTo(&sb); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par, parUpd := apply(workers)
				if !reflect.DeepEqual(seqUpd, parUpd) {
					t.Fatalf("workers=%d: staged LinUpdates differ from serial", workers)
				}
				var pb bytes.Buffer
				if _, err := par.WriteTo(&pb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Fatalf("workers=%d: serialized indexes differ from serial repair", workers)
				}
			}
			// And the serial result itself is exact.
			dyn := graph.NewDynamic(g)
			for _, arcs := range batches {
				for _, a := range arcs {
					dyn.AddEdge(a.From, a.To, a.W)
				}
			}
			checkDynamicAllPairs(t, dyn, seq)
		})
	}
}

// TestParallelRepairConflictRerun drives the commit-time conflict path:
// with hubs whose repair cascades overlap, at least some speculated
// groups must be invalidated and re-run — and the result must still be
// byte-identical to serial. A long chain plus a batch of shortcuts into
// it makes every hub's repair walk the same corridor.
func TestParallelRepairConflictRerun(t *testing.T) {
	const n = 40
	b := graph.NewBuilder(n, true)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.Vertex(i), graph.Vertex(i+1), 10)
	}
	g := b.MustBuild()
	base := Build(g)

	var arcs []NewArc
	for i := 0; i < 8; i++ {
		arcs = append(arcs, NewArc{From: graph.Vertex(i), To: graph.Vertex(n - 1 - i), W: 1})
	}
	run := func(workers int) (*Index, RepairResult) {
		ix := base.Clone()
		dyn := graph.NewDynamic(g)
		for _, a := range arcs {
			if err := dyn.AddEdge(a.From, a.To, a.W); err != nil {
				t.Fatal(err)
			}
		}
		us := NewUpdateScratch(ix.n)
		return ix, ix.InsertEdgeBatch(dyn, arcs, us, RepairOptions{Workers: workers})
	}
	seq, seqRes := run(1)
	if seqRes.Reruns != 0 {
		t.Fatalf("serial path reports %d reruns", seqRes.Reruns)
	}
	par, parRes := run(4)
	if parRes.Reruns == 0 {
		t.Fatal("expected cross-hub conflicts to force reruns on this batch")
	}
	var sb, pb bytes.Buffer
	if _, err := seq.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := par.WriteTo(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatal("parallel repair with reruns diverged from serial")
	}
}
