package label

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestParallelBuildDeterminism asserts the tentpole invariant of the
// parallel builder: for every ordering heuristic and worker count, the
// produced index is byte-identical to the sequential (Workers=1) build.
func TestParallelBuildDeterminism(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"figure1": graph.Figure1(),
		"grid": gen.GridBuilder(gen.GridOptions{
			Rows: 24, Cols: 24, Directed: true, Diagonals: true, MaxWeight: 9, Seed: 7,
		}).MustBuild(),
		"smallworld": gen.SmallWorldBuilder(gen.SmallWorldOptions{
			N: 300, OutDegree: 6, Seed: 3,
		}).MustBuild(),
	}
	orders := map[string]Order{
		"degree":     OrderDegree,
		"pathsample": OrderPathSample,
		"random":     OrderRandom,
	}
	for gname, g := range graphs {
		for oname, ord := range orders {
			t.Run(gname+"/"+oname, func(t *testing.T) {
				seq := BuildWithOptions(g, BuildOptions{Order: ord, Seed: 11, Workers: 1})
				for _, workers := range []int{2, 4, 8} {
					par := BuildWithOptions(g, BuildOptions{Order: ord, Seed: 11, Workers: workers})
					if !reflect.DeepEqual(seq.rank, par.rank) {
						t.Fatalf("workers=%d: ranks differ", workers)
					}
					for v := 0; v < g.NumVertices(); v++ {
						if !reflect.DeepEqual(seq.In(graph.Vertex(v)), par.In(graph.Vertex(v))) {
							t.Fatalf("workers=%d: Lin(%d) differs:\nseq %v\npar %v",
								workers, v, seq.In(graph.Vertex(v)), par.In(graph.Vertex(v)))
						}
						if !reflect.DeepEqual(seq.Out(graph.Vertex(v)), par.Out(graph.Vertex(v))) {
							t.Fatalf("workers=%d: Lout(%d) differs:\nseq %v\npar %v",
								workers, v, seq.Out(graph.Vertex(v)), par.Out(graph.Vertex(v)))
						}
					}
					// Byte-identical in the strict sense: identical
					// serialized form.
					var sb, pb bytes.Buffer
					if _, err := seq.WriteTo(&sb); err != nil {
						t.Fatal(err)
					}
					if _, err := par.WriteTo(&pb); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
						t.Fatalf("workers=%d: serialized indexes differ", workers)
					}
				}
			})
		}
	}
}

// TestBuildEmptyGraph guards the degenerate input: every ordering must
// build a valid empty index on a 0-vertex graph (OrderPathSample used to
// panic indexing the per-worker partial scores).
func TestBuildEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, true).MustBuild()
	for _, ord := range []Order{OrderDegree, OrderPathSample, OrderRandom} {
		ix := BuildWithOptions(g, BuildOptions{Order: ord})
		if ix.NumVertices() != 0 {
			t.Fatalf("order %v: got %d vertices", ord, ix.NumVertices())
		}
	}
}

// TestEntryRankCache asserts that every entry of a built index carries
// the rank of its hub, whichever construction path produced it.
func TestEntryRankCache(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 12, Cols: 12, Seed: 5}).MustBuild()
	ix := Build(g)
	check := func(list []Entry, kind string, v int) {
		for _, e := range list {
			if e.R != ix.Rank(e.Hub) {
				t.Fatalf("%s(%d): entry hub %d has R=%d, rank is %d", kind, v, e.Hub, e.R, ix.Rank(e.Hub))
			}
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		check(ix.In(graph.Vertex(v)), "Lin", v)
		check(ix.Out(graph.Vertex(v)), "Lout", v)
	}

	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		check(rt.In(graph.Vertex(v)), "roundtrip Lin", v)
		check(rt.Out(graph.Vertex(v)), "roundtrip Lout", v)
	}
}
