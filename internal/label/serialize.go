package label

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Binary index format (little endian):
//
//	magic   [8]byte  "KOSRLBL1"
//	n       uint32
//	rank    n × uint32
//	per vertex v in [0, n):
//	    lenIn  uint32, lenIn entries
//	    lenOut uint32, lenOut entries
//	entry: hub uint32, d float64, next int32
var magic = [8]byte{'K', 'O', 'S', 'R', 'L', 'B', 'L', '1'}

// WriteTo serializes the index.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return n, err
	}
	if err := write(uint32(ix.n)); err != nil {
		return n, err
	}
	for _, r := range ix.rank {
		if err := write(uint32(r)); err != nil {
			return n, err
		}
	}
	writeList := func(list []Entry) error {
		if err := write(uint32(len(list))); err != nil {
			return err
		}
		for _, e := range list {
			if err := write(uint32(e.Hub)); err != nil {
				return err
			}
			if err := write(e.D); err != nil {
				return err
			}
			if err := write(int32(e.Next)); err != nil {
				return err
			}
		}
		return nil
	}
	for v := 0; v < ix.n; v++ {
		if err := writeList(ix.In(graph.Vertex(v))); err != nil {
			return n, err
		}
		if err := writeList(ix.Out(graph.Vertex(v))); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read deserializes an index written by WriteTo. It validates the header
// and entry bounds and fails with a descriptive error on corrupt input.
func Read(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("label: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("label: bad magic %q", m)
	}
	var n32 uint32
	if err := binary.Read(br, binary.LittleEndian, &n32); err != nil {
		return nil, fmt.Errorf("label: reading size: %w", err)
	}
	n := int(n32)
	if n < 0 || n > 1<<28 {
		return nil, fmt.Errorf("label: implausible vertex count %d", n)
	}
	ix := newIndexShell(n)
	seen := make([]bool, n)
	for v := 0; v < n; v++ {
		var r uint32
		if err := binary.Read(br, binary.LittleEndian, &r); err != nil {
			return nil, fmt.Errorf("label: reading rank: %w", err)
		}
		if int(r) >= n || seen[r] {
			return nil, fmt.Errorf("label: invalid rank %d for vertex %d", r, v)
		}
		seen[r] = true
		ix.rank[v] = int32(r)
	}
	readList := func() ([]Entry, error) {
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return nil, fmt.Errorf("label: reading list length: %w", err)
		}
		if int(l) > n {
			return nil, fmt.Errorf("label: list length %d exceeds vertex count %d", l, n)
		}
		list := make([]Entry, l)
		for i := range list {
			var hub uint32
			var d float64
			var next int32
			if err := binary.Read(br, binary.LittleEndian, &hub); err != nil {
				return nil, fmt.Errorf("label: reading entry: %w", err)
			}
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return nil, fmt.Errorf("label: reading entry: %w", err)
			}
			if err := binary.Read(br, binary.LittleEndian, &next); err != nil {
				return nil, fmt.Errorf("label: reading entry: %w", err)
			}
			if int(hub) >= n || int(next) >= n || d < 0 {
				return nil, fmt.Errorf("label: corrupt entry (hub=%d next=%d d=%v)", hub, next, d)
			}
			list[i] = Entry{Hub: graph.Vertex(hub), R: ix.rank[hub], D: d, Next: graph.Vertex(next)}
		}
		return list, nil
	}
	for v := 0; v < n; v++ {
		list, err := readList()
		if err != nil {
			return nil, err
		}
		ix.in.Set(v, list)
		if list, err = readList(); err != nil {
			return nil, err
		}
		ix.out.Set(v, list)
	}
	return ix, nil
}
