package label

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

// checkDynamicAllPairs verifies that after incremental insertions, label
// distances equal Dijkstra distances on the rebuilt graph.
func checkDynamicAllPairs(t *testing.T, dyn *graph.Dynamic, ix *Index) {
	t.Helper()
	full, err := dyn.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	s := dijkstra.New(full)
	for u := 0; u < full.NumVertices(); u++ {
		s.FromSource(graph.Vertex(u), false)
		for v := 0; v < full.NumVertices(); v++ {
			want := s.Dist(graph.Vertex(v))
			got := ix.Dist(graph.Vertex(u), graph.Vertex(v))
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("after update: dis(%d,%d)=%v, want %v", u, v, got, want)
			}
		}
	}
}

func TestInsertEdgeSimple(t *testing.T) {
	// Path 0→1→2 (cost 10 each); insert shortcut 0→2 (cost 3).
	g := graph.NewBuilder(3, true).AddEdge(0, 1, 10).AddEdge(1, 2, 10).MustBuild()
	ix := Build(g)
	if ix.Dist(0, 2) != 20 {
		t.Fatalf("pre: %v", ix.Dist(0, 2))
	}
	dyn := graph.NewDynamic(g)
	if err := dyn.AddEdge(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	ix.InsertEdge(dyn, 0, 2, 3)
	if got := ix.Dist(0, 2); got != 3 {
		t.Fatalf("post: dis(0,2)=%v, want 3", got)
	}
	checkDynamicAllPairs(t, dyn, ix)
}

func TestInsertEdgeConnectsComponents(t *testing.T) {
	g := graph.NewBuilder(4, true).AddEdge(0, 1, 2).AddEdge(2, 3, 2).MustBuild()
	ix := Build(g)
	if !math.IsInf(ix.Dist(0, 3), 1) {
		t.Fatal("pre: components connected?")
	}
	dyn := graph.NewDynamic(g)
	dyn.AddEdge(1, 2, 5)
	ix.InsertEdge(dyn, 1, 2, 5)
	if got := ix.Dist(0, 3); got != 9 {
		t.Fatalf("post: dis(0,3)=%v, want 9", got)
	}
	checkDynamicAllPairs(t, dyn, ix)
}

func TestInsertEdgeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		g := randomGraph(rng, n, 3*n)
		ix := Build(g)
		dyn := graph.NewDynamic(g)
		for i := 0; i < 5; i++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			w := float64(1 + rng.Intn(10))
			if err := dyn.AddEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			ix.InsertEdge(dyn, u, v, w)
		}
		checkDynamicAllPairs(t, dyn, ix)
	}
}

func TestInsertEdgeUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	b := graph.NewBuilder(15, false)
	for i := 0; i < 25; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(15)), graph.Vertex(rng.Intn(15)), float64(1+rng.Intn(9)))
	}
	g := b.MustBuild()
	ix := Build(g)
	dyn := graph.NewDynamic(g)
	// For undirected graphs insert both directions.
	u, v, w := graph.Vertex(0), graph.Vertex(14), 1.0
	dyn.AddEdge(u, v, w) // Dynamic adds both arcs for undirected bases
	ix.InsertEdge(dyn, u, v, w)
	ix.InsertEdge(dyn, v, u, w)
	checkDynamicAllPairs(t, dyn, ix)
}

func TestInsertEdgeWeightDecrease(t *testing.T) {
	g := graph.NewBuilder(2, true).AddEdge(0, 1, 100).MustBuild()
	ix := Build(g)
	dyn := graph.NewDynamic(g)
	dyn.AddEdge(0, 1, 7) // cheaper parallel arc = weight decrease
	ix.InsertEdge(dyn, 0, 1, 7)
	if got := ix.Dist(0, 1); got != 7 {
		t.Fatalf("dis(0,1)=%v, want 7", got)
	}
}

func TestPathAfterInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(15)
		g := randomGraph(rng, n, 2*n)
		ix := Build(g)
		dyn := graph.NewDynamic(g)
		for i := 0; i < 3; i++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			w := float64(1 + rng.Intn(5))
			dyn.AddEdge(u, v, w)
			ix.InsertEdge(dyn, u, v, w)
		}
		full, err := dyn.Rebuild()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				d := ix.Dist(graph.Vertex(u), graph.Vertex(v))
				path := ix.Path(graph.Vertex(u), graph.Vertex(v))
				if math.IsInf(d, 1) {
					continue
				}
				if path == nil {
					t.Fatalf("no path %d->%d despite finite dist %v", u, v, d)
				}
				if got := pathCost(t, full, path); got != d {
					t.Fatalf("path cost %v != dist %v (%d->%d)", got, d, u, v)
				}
			}
		}
	}
}

// Property: random insertions never break exactness.
func TestInsertEdgeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(15)
		g := randomGraph(rng, n, 2*n)
		ix := Build(g)
		dyn := graph.NewDynamic(g)
		for i := 0; i < 3; i++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			w := float64(1 + rng.Intn(8))
			dyn.AddEdge(u, v, w)
			ix.InsertEdge(dyn, u, v, w)
		}
		full, err := dyn.Rebuild()
		if err != nil {
			return false
		}
		s := dijkstra.New(full)
		for i := 0; i < 10; i++ {
			u := graph.Vertex(rng.Intn(n))
			v := graph.Vertex(rng.Intn(n))
			want := s.ToTarget(u, v)
			got := ix.Dist(u, v)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicOverlayErrors(t *testing.T) {
	g := graph.Figure1()
	dyn := graph.NewDynamic(g)
	if err := dyn.AddEdge(-1, 0, 1); err == nil {
		t.Fatal("want error for bad vertex")
	}
	if err := dyn.AddEdge(0, 1, -3); err == nil {
		t.Fatal("want error for negative weight")
	}
	if dyn.NumExtraEdges() != 0 {
		t.Fatal("failed inserts must not count")
	}
}

// snapshotLists deep-copies every label list of ix for later comparison.
func snapshotLists(g *graph.Graph, ix *Index) (in, out [][]Entry) {
	n := g.NumVertices()
	in, out = make([][]Entry, n), make([][]Entry, n)
	for v := 0; v < n; v++ {
		in[v] = append([]Entry(nil), ix.In(graph.Vertex(v))...)
		out[v] = append([]Entry(nil), ix.Out(graph.Vertex(v))...)
	}
	return in, out
}

// TestCloneCopyOnWrite pins the snapshot-chain contract: InsertEdge on
// a clone must leave the original index bit-for-bit untouched (its
// in-flight readers depend on it), while the clone absorbs the update
// exactly.
func TestCloneCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(12)
		b := graph.NewBuilder(n, true)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(9)))
		}
		g := b.MustBuild()
		orig := Build(g)
		wantIn, wantOut := snapshotLists(g, orig)

		clone := orig.Clone()
		dyn := graph.NewDynamic(g)
		for i := 0; i < 3; i++ {
			u, v := graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n))
			w := float64(1 + rng.Intn(4))
			if err := dyn.AddEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			clone.InsertEdge(dyn, u, v, w)
		}

		// The clone is exact on the updated graph.
		checkDynamicAllPairs(t, dyn, clone)

		// The original never changed: same lists, element for element.
		gotIn, gotOut := snapshotLists(g, orig)
		for v := 0; v < n; v++ {
			if !sameEntrySlices(wantIn[v], gotIn[v]) || !sameEntrySlices(wantOut[v], gotOut[v]) {
				t.Fatalf("trial %d: original labels of vertex %d mutated by clone update", trial, v)
			}
		}
	}
}

func sameEntrySlices(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
