package label

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func roundTripCompressed(t *testing.T, g *graph.Graph, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ix.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	ix2, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			a := ix.Dist(graph.Vertex(u), graph.Vertex(v))
			b := ix2.Dist(graph.Vertex(u), graph.Vertex(v))
			if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
				t.Fatalf("compressed round trip changed dis(%d,%d): %v vs %v", u, v, a, b)
			}
		}
	}
	return ix2
}

func TestCompressedRoundTripIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomGraph(rng, 30, 90)
	ix := Build(g)
	ix2 := roundTripCompressed(t, g, ix)
	// Path reconstruction must survive (Next pointers preserved).
	for i := 0; i < 20; i++ {
		u := graph.Vertex(rng.Intn(30))
		v := graph.Vertex(rng.Intn(30))
		p1 := ix.Path(u, v)
		p2 := ix2.Path(u, v)
		if len(p1) != len(p2) {
			t.Fatalf("paths differ: %v vs %v", p1, p2)
		}
	}
}

func TestCompressedRoundTripFractional(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	b := graph.NewBuilder(20, true)
	for i := 0; i < 60; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(20)), graph.Vertex(rng.Intn(20)), rng.Float64()*10)
	}
	g := b.MustBuild()
	roundTripCompressed(t, g, Build(g))
}

func TestCompressedSmaller(t *testing.T) {
	g := gen.GridBuilder(gen.GridOptions{Rows: 20, Cols: 20, Diagonals: true, Seed: 3}).MustBuild()
	ix := Build(g)
	var plain, comp bytes.Buffer
	if _, err := ix.WriteTo(&plain); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteCompressed(&comp); err != nil {
		t.Fatal(err)
	}
	ratio := float64(plain.Len()) / float64(comp.Len())
	if ratio < 1.8 {
		t.Fatalf("compression ratio %.2f (plain %d, compressed %d), want ≥ 1.8",
			ratio, plain.Len(), comp.Len())
	}
	t.Logf("compression: plain %d bytes, compressed %d bytes (%.2fx)", plain.Len(), comp.Len(), ratio)
}

func TestCompressedCorrupt(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g)
	var buf bytes.Buffer
	if _, err := ix.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOTMAGIC"), full[8:]...),
		"truncated": full[:len(full)/3],
	}
	for name, data := range cases {
		if _, err := ReadCompressed(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Plain format must reject compressed data and vice versa.
	if _, err := Read(bytes.NewReader(full)); err == nil {
		t.Error("plain Read accepted compressed data")
	}
	var plain bytes.Buffer
	ix.WriteTo(&plain)
	if _, err := ReadCompressed(bytes.NewReader(plain.Bytes())); err == nil {
		t.Error("ReadCompressed accepted plain data")
	}
}
