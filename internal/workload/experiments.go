package workload

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Experiment regenerates one table or figure of the paper. Cancelling
// ctx stops the run between (not within) individual query solves.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, cfg Config, w io.Writer) error
}

// Experiments lists every reproducible artifact of the evaluation, keyed
// by the ids used in DESIGN.md and EXPERIMENTS.md.
var Experiments = []Experiment{
	{"t7", "Table VII: dataset inventory (synthetic analogues)", runTable7},
	{"t9", "Table IX: preprocessing results (label + inverted indexes)", runTable9},
	{"t10", "Table X: query time distribution, PK vs SK", runTable10},
	{"f3a", "Figure 3(a–c): per-graph run-time, examined routes, NN queries", runFig3},
	{"f3b", "Figure 3(a–c): per-graph run-time, examined routes, NN queries", runFig3},
	{"f3c", "Figure 3(a–c): per-graph run-time, examined routes, NN queries", runFig3},
	{"f3d", "Figure 3(d): effect of k (FLA analogue)", runFig3d},
	{"f3e", "Figure 3(e): effect of k (CAL analogue)", runFig3e},
	{"f3f", "Figure 3(f): effect of |C| (FLA analogue)", runFig3f},
	{"f3g", "Figure 3(g): effect of |C| (CAL analogue)", runFig3g},
	{"f3h", "Figure 3(h): effect of |Ci| (FLA analogue)", runFig3h},
	{"f4", "Figure 4: small k", runFig4},
	{"f5", "Figure 5: searching space of SK per category", runFig5},
	{"f6", "Figure 6: Zipfian category distributions (FLA analogue)", runFig6},
	{"f7", "Figure 7: OSR queries (k = 1) incl. GSP", runFig7},
	{"ablation", "Ablation: dominance vs A* estimate in isolation", runAblation},
	{"scaling", "Scaling probe: SK vs GSP as |V| grows (Figure 7 crossover)", runScaling},
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func fmtMS(ms float64, inf bool) string {
	if inf {
		return "INF"
	}
	return fmt.Sprintf("%.2f", ms)
}

func fmtCount(c float64, inf bool) string {
	if inf {
		return "INF"
	}
	return fmt.Sprintf("%.0f", c)
}

func runTable7(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	fmt.Fprintf(w, "Table VII analogue inventory (scale=%d)\n", cfg.Scale)
	fmt.Fprintf(w, "%-6s %10s %10s %9s %6s %9s\n", "graph", "|V|", "|E|", "directed", "|S|", "avg|Ci|")
	for _, a := range gen.AllAnalogues {
		g, err := gen.BuildAnalogue(a, gen.AnalogueOptions{
			Scale: cfg.Scale, NumCats: cfg.NumCats, CatSize: cfg.CatSize, Seed: cfg.Seed,
		})
		if err != nil {
			return err
		}
		var total int
		for c := 0; c < g.NumCategories(); c++ {
			total += g.CategorySize(graph.Category(c))
		}
		avg := 0.0
		if g.NumCategories() > 0 {
			avg = float64(total) / float64(g.NumCategories())
		}
		fmt.Fprintf(w, "%-6s %10d %10d %9v %6d %9.1f\n",
			a, g.NumVertices(), g.NumEdges(), g.Directed(), g.NumCategories(), avg)
	}
	return nil
}

func runTable9(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	fmt.Fprintln(w, "Table IX preprocessing results")
	fmt.Fprintf(w, "%-6s %10s %9s %9s %10s | %10s %12s %10s %10s\n",
		"graph", "build", "avg|Lin|", "avg|Lout|", "labelMB",
		"invBuild", "avg|IL(Ci)|", "avg|IL(v)|", "invMB")
	for _, a := range gen.AllAnalogues {
		d, err := Prepare(a, cfg)
		if err != nil {
			return err
		}
		ls := d.Lab.Stats()
		is := d.Inv.Stats()
		fmt.Fprintf(w, "%-6s %10s %9.2f %9.2f %10.2f | %10s %12.1f %10.2f %10.2f\n",
			d.Name, d.LabelBuildTime.Round(time.Millisecond), ls.AvgIn, ls.AvgOut,
			float64(ls.SizeBytes)/(1<<20),
			d.InvBuildTime.Round(time.Millisecond), is.AvgPerCategory, is.AvgPerList,
			float64(is.SizeBytes)/(1<<20))
	}
	return nil
}

func runTable10(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	d, err := Prepare(gen.FLA, cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+1)
	fmt.Fprintf(w, "Table X query time distribution on %s (ms, avg over %d queries)\n", d.Name, len(queries))
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s\n", "method", "overall", "NN", "queue", "estimate", "other")
	for _, m := range []MethodID{MPK, MSK} {
		r, err := d.RunMethod(ctx, m, queries, cfg, true)
		if err != nil {
			return err
		}
		other := r.AvgTimeMS - r.AvgNNTimeMS - r.AvgPQTimeMS - r.AvgEstTimeMS
		if other < 0 {
			other = 0
		}
		fmt.Fprintf(w, "%-10s %12s %12.3f %12.3f %12.3f %12.3f\n",
			m, fmtMS(r.AvgTimeMS, r.INF), r.AvgNNTimeMS, r.AvgPQTimeMS, r.AvgEstTimeMS, other)
	}
	return nil
}

func runFig3(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	type cell struct{ res Result }
	rows := map[gen.Analogue]map[MethodID]Result{}
	for _, a := range gen.AllAnalogues {
		d, err := Prepare(a, cfg)
		if err != nil {
			return err
		}
		queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+2)
		rows[a] = map[MethodID]Result{}
		for _, m := range AllKOSRMethods {
			r, err := d.RunMethod(ctx, m, queries, cfg, false)
			if err != nil {
				return err
			}
			rows[a][m] = r
		}
		d.Close()
	}
	print := func(title string, get func(Result) string) {
		fmt.Fprintln(w, title)
		fmt.Fprintf(w, "%-6s", "graph")
		for _, m := range AllKOSRMethods {
			fmt.Fprintf(w, " %12s", m)
		}
		fmt.Fprintln(w)
		for _, a := range gen.AllAnalogues {
			fmt.Fprintf(w, "%-6s", a)
			for _, m := range AllKOSRMethods {
				fmt.Fprintf(w, " %12s", get(rows[a][m]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	print("Figure 3(a): query run-time (ms)", func(r Result) string { return fmtMS(r.AvgTimeMS, r.INF) })
	print("Figure 3(b): # examined routes", func(r Result) string { return fmtCount(r.AvgExamined, r.INF) })
	print("Figure 3(c): # NN queries", func(r Result) string { return fmtCount(r.AvgNN, r.INF) })
	return nil
}

// sweep renders one "effect of <param>" figure: a time series per method.
func sweep(ctx context.Context, cfg Config, w io.Writer, a gen.Analogue, title, param string,
	values []int, mk func(base Config, v int) (Config, []core.Query, *Dataset, error)) error {
	fmt.Fprintf(w, "%s on the %s analogue (query time, ms)\n", title, a)
	fmt.Fprintf(w, "%-8s", param)
	for _, m := range AllKOSRMethods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, v := range values {
		c2, queries, d, err := mk(cfg, v)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d", v)
		for _, m := range AllKOSRMethods {
			r, err := d.RunMethod(ctx, m, queries, c2, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", fmtMS(r.AvgTimeMS, r.INF))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runEffectOfK(ctx context.Context, cfg Config, w io.Writer, a gen.Analogue, ks []int, figure string) error {
	cfg.Fill()
	d, err := Prepare(a, cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	return sweep(ctx, cfg, w, a, figure, "k", ks,
		func(base Config, k int) (Config, []core.Query, *Dataset, error) {
			qs := RandomQueries(d.G, base.NumQueries, base.LenC, k, base.Seed+3)
			return base, qs, d, nil
		})
}

func runFig3d(ctx context.Context, cfg Config, w io.Writer) error {
	return runEffectOfK(ctx, cfg, w, gen.FLA, []int{10, 20, 30, 40, 50}, "Figure 3(d): effect of k")
}

func runFig3e(ctx context.Context, cfg Config, w io.Writer) error {
	return runEffectOfK(ctx, cfg, w, gen.CAL, []int{10, 20, 30, 40, 50}, "Figure 3(e): effect of k")
}

func runEffectOfC(ctx context.Context, cfg Config, w io.Writer, a gen.Analogue, figure string) error {
	cfg.Fill()
	d, err := Prepare(a, cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	return sweep(ctx, cfg, w, a, figure, "|C|", []int{2, 4, 6, 8, 10},
		func(base Config, lenC int) (Config, []core.Query, *Dataset, error) {
			qs := RandomQueries(d.G, base.NumQueries, lenC, base.K, base.Seed+4)
			return base, qs, d, nil
		})
}

func runFig3f(ctx context.Context, cfg Config, w io.Writer) error {
	return runEffectOfC(ctx, cfg, w, gen.FLA, "Figure 3(f): effect of |C|")
}

func runFig3g(ctx context.Context, cfg Config, w io.Writer) error {
	return runEffectOfC(ctx, cfg, w, gen.CAL, "Figure 3(g): effect of |C|")
}

func runFig3h(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	// |Ci| sweep as per-mille of |V| (the paper sweeps 5k–20k of ~1.07M).
	base, err := gen.BuildAnalogue(gen.FLA, gen.AnalogueOptions{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	n := base.NumVertices()
	sizes := []int{n / 80, n / 40, n / 20, n / 10}
	fmt.Fprintf(w, "Figure 3(h): effect of |Ci| on the FLA analogue (query time, ms)\n")
	fmt.Fprintf(w, "%-8s", "|Ci|")
	for _, m := range AllKOSRMethods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	// The grid topology is identical across |Ci| values (category
	// assignment draws from an independent RNG stream), so the 2-hop
	// labels are built once and shared.
	var shared *Dataset
	for _, size := range sizes {
		c2 := cfg
		c2.CatSize = size
		g, err := gen.BuildAnalogue(gen.FLA, gen.AnalogueOptions{
			Scale: c2.Scale, NumCats: c2.NumCats, CatSize: size, Seed: c2.Seed,
		})
		if err != nil {
			return err
		}
		var d *Dataset
		if shared == nil {
			if d, err = PrepareGraph(string(gen.FLA), g); err != nil {
				return err
			}
			shared = d
		} else if d, err = PrepareReusingLabels(string(gen.FLA), g, shared.Lab); err != nil {
			return err
		}
		queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+5)
		fmt.Fprintf(w, "%-8d", size)
		for _, m := range AllKOSRMethods {
			r, err := d.RunMethod(ctx, m, queries, c2, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", fmtMS(r.AvgTimeMS, r.INF))
		}
		fmt.Fprintln(w)
		d.Close()
	}
	return nil
}

func runFig4(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	for _, a := range []gen.Analogue{gen.CAL, gen.FLA} {
		if err := runEffectOfK(ctx, cfg, w, a, []int{1, 2, 3, 4, 5, 10}, "Figure 4: small k"); err != nil {
			return err
		}
	}
	return nil
}

func runFig5(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	fmt.Fprintf(w, "Figure 5: searching space of SK at each category (avg # examined routes)\n")
	fmt.Fprintf(w, "%-6s", "graph")
	for i := 0; i <= cfg.LenC+1; i++ {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("cat %d", i))
	}
	fmt.Fprintln(w)
	for _, a := range gen.AllAnalogues {
		d, err := Prepare(a, cfg)
		if err != nil {
			return err
		}
		queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+6)
		r, err := d.RunMethod(ctx, MSK, queries, cfg, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s", a)
		for _, c := range r.ExaminedPerLevel {
			fmt.Fprintf(w, " %10.1f", c)
		}
		fmt.Fprintln(w)
		d.Close()
	}
	return nil
}

func runFig6(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	fmt.Fprintf(w, "Figure 6: Zipfian category skew factor f on the FLA analogue (query time, ms; |C|=%d, k=%d)\n", cfg.LenC, cfg.K)
	methods := []MethodID{MKPNE, MPK, MSK}
	fmt.Fprintf(w, "%-6s", "f")
	for _, m := range methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	var shared *Dataset
	for _, f := range []float64{1.2, 1.4, 1.6, 1.8} {
		g, err := buildZipfFLA(cfg, f)
		if err != nil {
			return err
		}
		var d *Dataset
		if shared == nil {
			if d, err = PrepareGraph(fmt.Sprintf("FLA-z%.1f", f), g); err != nil {
				return err
			}
			shared = d
		} else if d, err = PrepareReusingLabels(fmt.Sprintf("FLA-z%.1f", f), g, shared.Lab); err != nil {
			return err
		}
		queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+7)
		fmt.Fprintf(w, "%-6.1f", f)
		for _, m := range methods {
			r, err := d.RunMethod(ctx, m, queries, cfg, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12s", fmtMS(r.AvgTimeMS, r.INF))
		}
		fmt.Fprintln(w)
		d.Close()
	}
	return nil
}

// buildZipfFLA rebuilds the FLA grid with Zipf-distributed categories.
func buildZipfFLA(cfg Config, f float64) (*graph.Graph, error) {
	cfg.Fill()
	rows, cols := 112, 128 // mirrors gen.BuildAnalogue's FLA dimensions
	b := gen.GridBuilder(gen.GridOptions{
		Rows: rows, Cols: cols, Directed: true, MaxWeight: 12, Diagonals: true, Seed: cfg.Seed,
	})
	gen.AssignZipfCategories(b, rows*cols, cfg.NumCats, f, cfg.Seed+8)
	return b.Build()
}

func runFig7(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	methods := append(append([]MethodID(nil), AllKOSRMethods...), MGSP, MGSPCH)
	fmt.Fprintln(w, "Figure 7: OSR queries (k = 1), query run-time (ms)")
	fmt.Fprintf(w, "%-6s", "graph")
	for _, m := range methods {
		fmt.Fprintf(w, " %12s", m)
	}
	fmt.Fprintln(w)
	for _, a := range gen.AllAnalogues {
		d, err := Prepare(a, cfg)
		if err != nil {
			return err
		}
		queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, 1, cfg.Seed+9)
		fmt.Fprintf(w, "%-6s", a)
		var hierarchy *ch.Index
		for _, m := range methods {
			switch m {
			case MGSP:
				start := time.Now()
				for _, q := range queries {
					if _, _, _, err := core.GSP(d.G, q); err != nil {
						return err
					}
				}
				ms := float64(time.Since(start).Microseconds()) / 1000 / float64(len(queries))
				fmt.Fprintf(w, " %12.2f", ms)
			case MGSPCH:
				if a == gen.GPlus {
					// The paper could not build the contraction
					// hierarchy for GSP on G+ within 3 days; CH on a
					// dense small-world graph degenerates the same way
					// here, so the cell is reported as INF.
					fmt.Fprintf(w, " %12s", "INF")
					continue
				}
				if hierarchy == nil {
					hierarchy = ch.Build(d.G)
				}
				start := time.Now()
				for _, q := range queries {
					if _, _, _, err := core.GSPCH(d.G, hierarchy, q); err != nil {
						return err
					}
				}
				ms := float64(time.Since(start).Microseconds()) / 1000 / float64(len(queries))
				fmt.Fprintf(w, " %12.2f", ms)
			default:
				r, err := d.RunMethod(ctx, m, queries, cfg, false)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %12s", fmtMS(r.AvgTimeMS, r.INF))
			}
		}
		fmt.Fprintln(w)
		d.Close()
	}
	return nil
}

func runAblation(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	d, err := Prepare(gen.FLA, cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+10)
	fmt.Fprintln(w, "Ablation on the FLA analogue: dominance pruning vs A* estimation")
	fmt.Fprintf(w, "%-22s %12s %14s %12s\n", "variant", "time (ms)", "examined", "NN queries")
	rows := []struct {
		name string
		m    MethodID
	}{
		{"neither (KPNE)", MKPNE},
		{"dominance only (PK)", MPK},
		{"estimate only", MKStar},
		{"both (SK)", MSK},
	}
	for _, row := range rows {
		r, err := d.RunMethod(ctx, row.m, queries, cfg, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %12s %14s %12s\n", row.name,
			fmtMS(r.AvgTimeMS, r.INF), fmtCount(r.AvgExamined, r.INF), fmtCount(r.AvgNN, r.INF))
	}
	return nil
}

// runScaling measures SK, PK and GSP (k=1) on FLA analogues of growing
// size. The paper reports SK beating GSP on 10⁶-vertex graphs; at laptop
// scale GSP's O(|C|) graph-wide Dijkstra sweeps are cheap, so this probe
// shows how the gap moves with |V| (GSP grows with the graph, SK with
// the category size and label size).
func runScaling(ctx context.Context, cfg Config, w io.Writer) error {
	cfg.Fill()
	// Hold |Ci| fixed while |V| grows, as the paper does (|Ci|=10,000 on
	// every graph size); otherwise SK's |Ci|-driven work grows together
	// with GSP's |V|-driven work and the crossover is masked.
	if cfg.CatSize <= 0 {
		cfg.CatSize = 716 // the scale-1 FLA default (5% of 14,336)
	}
	fmt.Fprintf(w, "Scaling probe on FLA analogues (k = 1, |Ci|=%d fixed, query time in ms)\n", cfg.CatSize)
	fmt.Fprintf(w, "%-8s %10s %12s %12s %12s %12s\n", "scale", "|V|", "PK", "SK", "GSP", "SK/GSP")
	for _, scale := range []int{1, 2, 4} {
		c2 := cfg
		c2.Scale = scale
		d, err := Prepare(gen.FLA, c2)
		if err != nil {
			return err
		}
		queries := RandomQueries(d.G, cfg.NumQueries, cfg.LenC, 1, cfg.Seed+11)
		pk, err := d.RunMethod(ctx, MPK, queries, c2, false)
		if err != nil {
			return err
		}
		sk, err := d.RunMethod(ctx, MSK, queries, c2, false)
		if err != nil {
			return err
		}
		start := time.Now()
		for _, q := range queries {
			if _, _, _, err := core.GSP(d.G, q); err != nil {
				return err
			}
		}
		gspMS := float64(time.Since(start).Microseconds()) / 1000 / float64(len(queries))
		ratio := sk.AvgTimeMS / gspMS
		fmt.Fprintf(w, "%-8d %10d %12s %12s %12.2f %12.2f\n",
			scale, d.G.NumVertices(), fmtMS(pk.AvgTimeMS, pk.INF), fmtMS(sk.AvgTimeMS, sk.INF), gspMS, ratio)
		d.Close()
	}
	return nil
}

// IDs returns all experiment ids in order (deduplicated).
func IDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range Experiments {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e.ID)
		}
	}
	sort.Strings(out)
	return out
}
