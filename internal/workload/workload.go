// Package workload is the experiment harness: it prepares the synthetic
// dataset analogues, generates random KOSR queries with the paper's
// parameter grid (Table VIII), runs every method and prints the rows and
// series of each table and figure of the evaluation (Section V).
package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

// Config scales the experiments. The zero value is filled with defaults
// mirroring Table VIII at laptop scale.
type Config struct {
	Scale      int   // dataset scale factor (1 = default sizes)
	Seed       int64 // RNG seed for datasets and queries
	NumQueries int   // random query instances per data point (paper: 50)

	K       int // default k (paper: 30)
	LenC    int // default |C| (paper: 6)
	NumCats int // number of categories |S| for synthetic assignments
	CatSize int // default |Ci| (0 = 5% of |V|)

	// Budgets after which a method is reported as the paper's INF.
	MaxExamined int64
	MaxDuration time.Duration
}

// Fill populates defaults.
func (c *Config) Fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 10
	}
	if c.K <= 0 {
		c.K = 30
	}
	if c.LenC <= 0 {
		c.LenC = 6
	}
	if c.NumCats <= 0 {
		c.NumCats = 24
	}
	if c.MaxExamined <= 0 {
		c.MaxExamined = 3_000_000
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = 15 * time.Second
	}
}

// Dataset is a prepared graph with its indexes.
type Dataset struct {
	Name string
	G    *graph.Graph
	Lab  *label.Index
	Inv  *invindex.Index

	LabelBuildTime time.Duration
	InvBuildTime   time.Duration

	diskDir   string
	diskStore *disk.Store
}

// Prepare builds the named analogue and its in-memory indexes.
func Prepare(a gen.Analogue, cfg Config) (*Dataset, error) {
	cfg.Fill()
	g, err := gen.BuildAnalogue(a, gen.AnalogueOptions{
		Scale:   cfg.Scale,
		NumCats: cfg.NumCats,
		CatSize: cfg.CatSize,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return PrepareGraph(string(a), g)
}

// PrepareGraph builds indexes for an arbitrary graph.
func PrepareGraph(name string, g *graph.Graph) (*Dataset, error) {
	d := &Dataset{Name: name, G: g}
	t0 := time.Now()
	d.Lab = label.Build(g)
	d.LabelBuildTime = time.Since(t0)
	t0 = time.Now()
	d.Inv = invindex.Build(g, d.Lab)
	d.InvBuildTime = time.Since(t0)
	return d, nil
}

// PrepareReusingLabels builds only the inverted index, reusing a label
// index built for a graph with identical topology. Category sweeps (the
// |Ci| and Zipf experiments) regenerate the same grid with different
// category assignments, so the expensive 2-hop labels can be shared.
// The caller must guarantee that lab was built on the same edge set.
func PrepareReusingLabels(name string, g *graph.Graph, lab *label.Index) (*Dataset, error) {
	d := &Dataset{Name: name, G: g, Lab: lab}
	t0 := time.Now()
	d.Inv = invindex.Build(g, lab)
	d.InvBuildTime = time.Since(t0)
	return d, nil
}

// EnsureDiskStore materializes the dataset's disk store (for SK-DB) in a
// temporary directory, reusing it across queries.
func (d *Dataset) EnsureDiskStore() error {
	if d.diskStore != nil {
		return nil
	}
	dir, err := os.MkdirTemp("", "kosr-store-*")
	if err != nil {
		return err
	}
	if err := disk.Write(dir, d.G, d.Lab); err != nil {
		return err
	}
	st, err := disk.Open(dir)
	if err != nil {
		return err
	}
	d.diskDir = dir
	d.diskStore = st
	return nil
}

// Close releases the disk store, if any.
func (d *Dataset) Close() {
	if d.diskStore != nil {
		d.diskStore.Close()
		os.RemoveAll(d.diskDir)
		d.diskStore = nil
	}
}

// RandomQueries draws query instances: random source/destination, a
// random category sequence of length lenC, and the given k.
func RandomQueries(g *graph.Graph, num, lenC, k int, seed int64) []core.Query {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	nc := g.NumCategories()
	out := make([]core.Query, num)
	for i := range out {
		cats := make([]graph.Category, lenC)
		for j := range cats {
			// Draw only non-empty categories so queries are feasible on
			// CAL-like datasets where some category ids may be sparse.
			for {
				c := graph.Category(rng.Intn(nc))
				if g.CategorySize(c) > 0 {
					cats[j] = c
					break
				}
			}
		}
		out[i] = core.Query{
			Source:     graph.Vertex(rng.Intn(n)),
			Target:     graph.Vertex(rng.Intn(n)),
			Categories: cats,
			K:          k,
		}
	}
	return out
}

// MethodID names a method column of the evaluation.
type MethodID string

// The methods of Section V-A plus the GSP baselines and the KPNE+A*
// ablation.
const (
	MKPNE    MethodID = "KPNE"
	MPK      MethodID = "PK"
	MSK      MethodID = "SK"
	MSKDB    MethodID = "SK-DB"
	MKPNEDij MethodID = "KPNE-Dij"
	MPKDij   MethodID = "PK-Dij"
	MSKDij   MethodID = "SK-Dij"
	MKStar   MethodID = "KPNE+A*"
	MGSP     MethodID = "GSP"
	MGSPCH   MethodID = "GSP-CH"
)

// AllKOSRMethods is the method set of Figure 3.
var AllKOSRMethods = []MethodID{MKPNEDij, MPKDij, MSKDij, MKPNE, MPK, MSK, MSKDB}

// Result aggregates one (dataset, method) cell.
type Result struct {
	Graph  string
	Method MethodID
	// INF marks that some query exceeded the budget (the paper's INF).
	INF bool

	AvgTimeMS   float64
	AvgExamined float64
	AvgNN       float64
	AvgPeakQ    float64

	// Breakdown (Table X), populated when collectBreakdown is set.
	AvgNNTimeMS  float64
	AvgPQTimeMS  float64
	AvgEstTimeMS float64

	// ExaminedPerLevel sums the Figure 5 per-category counts.
	ExaminedPerLevel []float64
}

func (m MethodID) coreMethod() (core.Method, bool) {
	switch m {
	case MKPNE, MKPNEDij:
		return core.MethodKPNE, true
	case MPK, MPKDij:
		return core.MethodPK, true
	case MSK, MSKDij, MSKDB:
		return core.MethodSK, true
	case MKStar:
		return core.MethodKStar, true
	}
	return 0, false
}

func (m MethodID) usesDijkstra() bool {
	return m == MKPNEDij || m == MPKDij || m == MSKDij
}

// RunMethod executes the queries with one method and aggregates stats.
// Budget overruns mark the result INF, matching the paper's reporting.
// Cancelling ctx aborts the run at the granularity the engine's pop
// loop polls the context.
func (d *Dataset) RunMethod(ctx context.Context, m MethodID, queries []core.Query, cfg Config, breakdown bool) (Result, error) {
	cfg.Fill()
	res := Result{Graph: d.Name, Method: m}
	cm, ok := m.coreMethod()
	if !ok {
		return res, fmt.Errorf("workload: %q is not a KOSR method", m)
	}
	opts := core.Options{
		Method:        cm,
		MaxExamined:   cfg.MaxExamined,
		MaxDuration:   cfg.MaxDuration,
		TimeBreakdown: breakdown,
	}
	// Long-lived providers shared across the query loop, so their scratch
	// pools serve every query after the first from warm state (the disk
	// method rebuilds its provider per query by design: each query loads
	// its own label subset).
	var labelProv *core.LabelProvider
	var dijProv *core.DijkstraProvider
	var perLevel []float64
	for _, q := range queries {
		var prov core.Provider
		var loadStart time.Time
		switch {
		case m.usesDijkstra():
			if dijProv == nil {
				dijProv = &core.DijkstraProvider{Graph: d.G}
			}
			prov = dijProv
		case m == MSKDB:
			if err := d.EnsureDiskStore(); err != nil {
				return res, err
			}
			loadStart = time.Now()
			lab, inv, err := d.diskStore.LoadQuery(q.Categories, q.Source, q.Target)
			if err != nil {
				return res, err
			}
			res.AvgTimeMS += float64(time.Since(loadStart).Microseconds()) / 1000
			prov = &core.LabelProvider{Graph: d.G, Labels: lab, Inv: inv}
		default:
			if labelProv == nil {
				labelProv = &core.LabelProvider{Graph: d.G, Labels: d.Lab, Inv: d.Inv}
			}
			prov = labelProv
		}
		_, st, err := core.Solve(ctx, d.G, q, prov, opts)
		if errors.Is(err, core.ErrBudgetExceeded) {
			res.INF = true
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.AvgTimeMS += float64(st.Total.Microseconds()) / 1000
		res.AvgExamined += float64(st.Examined)
		res.AvgNN += float64(st.NNQueries)
		res.AvgPeakQ += float64(st.PeakQueue)
		if breakdown {
			res.AvgNNTimeMS += float64(st.NNTime.Microseconds()) / 1000
			res.AvgPQTimeMS += float64(st.PQTime.Microseconds()) / 1000
			res.AvgEstTimeMS += float64(st.EstTime.Microseconds()) / 1000
		}
		if perLevel == nil {
			perLevel = make([]float64, len(st.ExaminedPerLevel))
		}
		for i, c := range st.ExaminedPerLevel {
			if i < len(perLevel) {
				perLevel[i] += float64(c)
			}
		}
	}
	n := float64(len(queries))
	res.AvgTimeMS /= n
	res.AvgExamined /= n
	res.AvgNN /= n
	res.AvgPeakQ /= n
	res.AvgNNTimeMS /= n
	res.AvgPQTimeMS /= n
	res.AvgEstTimeMS /= n
	for i := range perLevel {
		perLevel[i] /= n
	}
	res.ExaminedPerLevel = perLevel
	return res, nil
}
