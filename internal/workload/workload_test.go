package workload

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// tinyDataset builds a small grid dataset quickly.
func tinyDataset(t *testing.T) *Dataset {
	t.Helper()
	b := gen.GridBuilder(gen.GridOptions{Rows: 12, Cols: 12, Seed: 3, Diagonals: true})
	gen.AssignUniformCategories(b, 144, 5, 20, 7)
	g := b.MustBuild()
	d, err := PrepareGraph("tiny", g)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestConfigFill(t *testing.T) {
	var c Config
	c.Fill()
	if c.K != 30 || c.LenC != 6 || c.NumQueries <= 0 || c.MaxExamined <= 0 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestRandomQueries(t *testing.T) {
	d := tinyDataset(t)
	qs := RandomQueries(d.G, 20, 4, 7, 11)
	if len(qs) != 20 {
		t.Fatalf("len=%d", len(qs))
	}
	for _, q := range qs {
		if q.K != 7 || len(q.Categories) != 4 {
			t.Fatalf("query=%+v", q)
		}
		if err := q.Validate(d.G); err != nil {
			t.Fatal(err)
		}
		for _, c := range q.Categories {
			if d.G.CategorySize(c) == 0 {
				t.Fatal("empty category drawn")
			}
		}
	}
	// Determinism.
	qs2 := RandomQueries(d.G, 20, 4, 7, 11)
	for i := range qs {
		if qs[i].Source != qs2[i].Source || qs[i].Target != qs2[i].Target {
			t.Fatal("queries not deterministic")
		}
	}
}

func TestRunMethodAllVariants(t *testing.T) {
	d := tinyDataset(t)
	cfg := Config{NumQueries: 3}
	cfg.Fill()
	qs := RandomQueries(d.G, 3, 3, 5, 13)
	var ref Result
	for i, m := range []MethodID{MSK, MPK, MKPNE, MSKDij, MPKDij, MKPNEDij, MSKDB, MKStar} {
		r, err := d.RunMethod(context.Background(), m, qs, cfg, false)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.INF {
			t.Fatalf("%s: unexpected INF on tiny dataset", m)
		}
		if r.AvgExamined <= 0 {
			t.Fatalf("%s: no work recorded: %+v", m, r)
		}
		if i == 0 {
			ref = r
			continue
		}
		// All methods search the same instance; examined counts differ
		// but every method must have found the same number of levels.
		if len(r.ExaminedPerLevel) != len(ref.ExaminedPerLevel) {
			t.Fatalf("%s: levels %d vs %d", m, len(r.ExaminedPerLevel), len(ref.ExaminedPerLevel))
		}
	}
}

func TestRunMethodUnknown(t *testing.T) {
	d := tinyDataset(t)
	cfg := Config{}
	cfg.Fill()
	if _, err := d.RunMethod(context.Background(), MGSP, RandomQueries(d.G, 1, 2, 1, 1), cfg, false); err == nil {
		t.Fatal("GSP is not a KOSR method; want error")
	}
}

func TestINFReporting(t *testing.T) {
	d := tinyDataset(t)
	cfg := Config{NumQueries: 2, MaxExamined: 3}
	cfg.Fill()
	cfg.MaxExamined = 3 // Fill would raise it
	qs := RandomQueries(d.G, 2, 4, 10, 17)
	r, err := d.RunMethod(context.Background(), MKPNE, qs, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.INF {
		t.Fatal("expected INF with a 3-route budget")
	}
}

func TestBreakdownCollected(t *testing.T) {
	d := tinyDataset(t)
	cfg := Config{NumQueries: 2}
	cfg.Fill()
	qs := RandomQueries(d.G, 2, 3, 5, 19)
	r, err := d.RunMethod(context.Background(), MSK, qs, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgTimeMS <= 0 {
		t.Fatalf("no time recorded: %+v", r)
	}
}

func TestDiskStoreReuse(t *testing.T) {
	d := tinyDataset(t)
	if err := d.EnsureDiskStore(); err != nil {
		t.Fatal(err)
	}
	first := d.diskStore
	if err := d.EnsureDiskStore(); err != nil {
		t.Fatal(err)
	}
	if d.diskStore != first {
		t.Fatal("disk store rebuilt instead of reused")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) < 10 {
		t.Fatalf("ids=%v", ids)
	}
	for _, id := range ids {
		if _, ok := Get(id); !ok {
			t.Fatalf("id %s not resolvable", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("bogus id resolved")
	}
}

// Table VII only builds graphs (no label indexes), so it is fast enough
// to run end to end in a unit test.
func TestRunTable7(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Get("t7")
	cfg := Config{NumQueries: 1}
	if err := e.Run(context.Background(), cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, a := range gen.AllAnalogues {
		if !strings.Contains(out, string(a)) {
			t.Fatalf("output missing %s:\n%s", a, out)
		}
	}
}

func TestPrepareAnalogueCAL(t *testing.T) {
	// CAL is the cheapest analogue to index; exercise Prepare end-to-end.
	if testing.Short() {
		t.Skip("indexing in short mode")
	}
	cfg := Config{NumQueries: 1, CatSize: 100}
	d, err := Prepare(gen.CAL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.LabelBuildTime <= 0 || d.Lab.Stats().Entries == 0 {
		t.Fatal("label index not built")
	}
	qs := RandomQueries(d.G, 1, 3, 5, 23)
	cfg.Fill()
	cfg.MaxDuration = 30 * time.Second
	r, err := d.RunMethod(context.Background(), MSK, qs, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.INF {
		t.Fatal("SK INF on CAL analogue")
	}
	_ = graph.Vertex(0)
}
