package invindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/label"
)

func randomCatGraph(rng *rand.Rand, n, m, ncats int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(ncats)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(20)))
	}
	for v := 0; v < n; v++ {
		if rng.Intn(3) != 0 {
			b.AddCategory(graph.Vertex(v), graph.Category(rng.Intn(ncats)))
		}
	}
	return b.MustBuild()
}

// nnReference returns the category's reachable vertices sorted by
// distance from src (ties by vertex id), computed with Dijkstra.
func nnReference(g *graph.Graph, src graph.Vertex, cat graph.Category) []Neighbor {
	d := dijkstra.AllDistances(g, src, false)
	var out []Neighbor
	for _, v := range g.VerticesOf(cat) {
		if !math.IsInf(d[v], 1) {
			out = append(out, Neighbor{V: v, D: d[v]})
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].D < out[j-1].D || (out[j].D == out[j-1].D && out[j].V < out[j-1].V)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestPaperExample4And5(t *testing.T) {
	// Example 4: nearest neighbour of s in MA is a with cost 8.
	// Example 5: the 2nd nearest neighbour of s in MA is c with cost 10.
	g := graph.Figure1()
	ix := Build(g, label.Build(g))
	s, _ := g.VertexByName("s")
	a, _ := g.VertexByName("a")
	c, _ := g.VertexByName("c")
	ma, _ := g.CategoryByName("MA")
	it := ix.NewNNIterator(s, ma)
	nb1, ok := it.Get(1)
	if !ok || nb1.V != a || nb1.D != 8 {
		t.Fatalf("1st NN = %+v ok=%v, want (a, 8)", nb1, ok)
	}
	nb2, ok := it.Get(2)
	if !ok || nb2.V != c || nb2.D != 10 {
		t.Fatalf("2nd NN = %+v ok=%v, want (c, 10)", nb2, ok)
	}
	if _, ok := it.Get(3); ok {
		t.Fatal("MA has only two vertices")
	}
	// NL cache hit path.
	again, ok := it.Get(1)
	if !ok || again != nb1 {
		t.Fatal("cached Get(1) changed")
	}
}

func TestFindNNMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		g := randomCatGraph(rng, 2+rng.Intn(30), 90, 4)
		lab := label.Build(g)
		ix := Build(g, lab)
		for src := 0; src < g.NumVertices(); src += 3 {
			for cat := 0; cat < g.NumCategories(); cat++ {
				ref := nnReference(g, graph.Vertex(src), graph.Category(cat))
				it := ix.NewNNIterator(graph.Vertex(src), graph.Category(cat))
				for x := 1; x <= len(ref); x++ {
					nb, ok := it.Get(x)
					if !ok {
						t.Fatalf("trial %d: Get(%d) failed, ref has %d", trial, x, len(ref))
					}
					if nb.D != ref[x-1].D {
						t.Fatalf("trial %d: src=%d cat=%d x=%d: dist %v, want %v",
							trial, src, cat, x, nb.D, ref[x-1].D)
					}
				}
				if _, ok := it.Get(len(ref) + 1); ok {
					t.Fatalf("trial %d: Get past end succeeded", trial)
				}
			}
		}
	}
}

func TestFindNNNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomCatGraph(rng, 40, 150, 2)
	ix := Build(g, label.Build(g))
	it := ix.NewNNIterator(0, 0)
	seen := map[graph.Vertex]bool{}
	prev := -1.0
	for x := 1; ; x++ {
		nb, ok := it.Get(x)
		if !ok {
			break
		}
		if seen[nb.V] {
			t.Fatalf("duplicate neighbour %d", nb.V)
		}
		if nb.D < prev {
			t.Fatalf("distances not monotone: %v after %v", nb.D, prev)
		}
		if !g.HasCategory(nb.V, 0) {
			t.Fatalf("neighbour %d not in category", nb.V)
		}
		seen[nb.V] = true
		prev = nb.D
	}
}

func TestEmptyAndInvalidCategory(t *testing.T) {
	g := graph.NewBuilder(3, true).AddEdge(0, 1, 1).EnsureCategories(2).MustBuild()
	ix := Build(g, label.Build(g))
	it := ix.NewNNIterator(0, 0) // category 0 is empty
	if _, ok := it.Get(1); ok {
		t.Fatal("empty category returned a neighbour")
	}
	it2 := ix.NewNNIterator(0, 99) // out of range
	if _, ok := it2.Get(1); ok {
		t.Fatal("invalid category returned a neighbour")
	}
}

func TestDynamicCategoryUpdates(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g, label.Build(g))
	s, _ := g.VertexByName("s")
	b, _ := g.VertexByName("b")
	ma, _ := g.CategoryByName("MA")

	// Add b to MA: dis(s,b)=13 puts it behind a (8) and c (10).
	ix.AddVertexCategory(b, ma)
	it := ix.NewNNIterator(s, ma)
	nb3, ok := it.Get(3)
	if !ok || nb3.V != b || nb3.D != 13 {
		t.Fatalf("3rd NN after add = %+v ok=%v, want (b, 13)", nb3, ok)
	}

	// Remove it again: only two MA vertices remain.
	ix.RemoveVertexCategory(b, ma)
	it2 := ix.NewNNIterator(s, ma)
	if _, ok := it2.Get(3); ok {
		t.Fatal("b still present after removal")
	}
	two, ok := it2.Get(2)
	if !ok || two.D != 10 {
		t.Fatalf("2nd NN after removal = %+v", two)
	}
}

func TestAddVertexCategoryIdempotent(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g, label.Build(g))
	b, _ := g.VertexByName("b")
	ma, _ := g.CategoryByName("MA")
	ix.AddVertexCategory(b, ma)
	ix.AddVertexCategory(b, ma) // duplicate insert must be a no-op
	s, _ := g.VertexByName("s")
	it := ix.NewNNIterator(s, ma)
	if _, ok := it.Get(4); ok {
		t.Fatal("duplicate insert created a 4th neighbour")
	}
}

func TestAddCategoryBeyondRange(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g, label.Build(g))
	s, _ := g.VertexByName("s")
	d, _ := g.VertexByName("d")
	// Category 7 did not exist at build time.
	ix.AddVertexCategory(d, 7)
	it := ix.NewNNIterator(s, 7)
	nb, ok := it.Get(1)
	if !ok || nb.V != d || nb.D != 13 {
		t.Fatalf("NN in new category = %+v ok=%v, want (d, 13)", nb, ok)
	}
}

func TestStats(t *testing.T) {
	g := graph.Figure1()
	ix := Build(g, label.Build(g))
	st := ix.Stats()
	if st.Categories != 3 || st.Entries <= 0 {
		t.Fatalf("stats=%+v", st)
	}
	if st.AvgPerCategory <= 0 || st.AvgPerList <= 0 || st.SizeBytes != st.Entries*12 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestILAccessor(t *testing.T) {
	// Table V of the paper: IL(MA) has IL(s) = [(a,8),(c,10)].
	g := graph.Figure1()
	ix := Build(g, label.Build(g))
	s, _ := g.VertexByName("s")
	ma, _ := g.CategoryByName("MA")
	list := ix.IL(ma, s)
	// The exact hub set depends on the landmark order, so only check
	// soundness: entries sorted, all in MA, distances correct.
	prev := -1.0
	for _, e := range list {
		if e.D < prev {
			t.Fatal("IL list not sorted")
		}
		prev = e.D
		if !g.HasCategory(e.V, ma) {
			t.Fatalf("IL entry %v not in MA", e)
		}
	}
	if ix.IL(99, s) != nil {
		t.Fatal("out-of-range category should return nil")
	}
}

// Property: on random graphs FindNN enumerates exactly the reachable
// category vertices, in nondecreasing distance order.
func TestFindNNCompleteQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomCatGraph(rng, 2+rng.Intn(25), 70, 3)
		ix := Build(g, label.Build(g))
		src := graph.Vertex(rng.Intn(g.NumVertices()))
		cat := graph.Category(rng.Intn(3))
		ref := nnReference(g, src, cat)
		it := ix.NewNNIterator(src, cat)
		got := map[graph.Vertex]bool{}
		for x := 1; ; x++ {
			nb, ok := it.Get(x)
			if !ok {
				break
			}
			if nb.D != ref[x-1].D {
				return false
			}
			got[nb.V] = true
		}
		return len(got) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOnGridGraph(t *testing.T) {
	b := gen.GridBuilder(gen.GridOptions{Rows: 8, Cols: 8, Seed: 9})
	gen.AssignUniformCategories(b, 64, 3, 10, 4)
	g := b.MustBuild()
	ix := Build(g, label.Build(g))
	for cat := 0; cat < 3; cat++ {
		ref := nnReference(g, 0, graph.Category(cat))
		it := ix.NewNNIterator(0, graph.Category(cat))
		for x := 1; x <= len(ref); x++ {
			nb, ok := it.Get(x)
			if !ok || nb.D != ref[x-1].D {
				t.Fatalf("cat %d x=%d: got %+v ok=%v want %v", cat, x, nb, ok, ref[x-1])
			}
		}
	}
}

// ilSnapshot deep-copies every inverted list of ix for later comparison.
func ilSnapshot(g *graph.Graph, ix *Index) map[graph.Category]map[graph.Vertex][]Entry {
	snap := make(map[graph.Category]map[graph.Vertex][]Entry)
	for c := 0; c < ix.NumCategories(); c++ {
		lists := make(map[graph.Vertex][]Entry)
		for v := 0; v < g.NumVertices(); v++ {
			if l := ix.IL(graph.Category(c), graph.Vertex(v)); len(l) > 0 {
				lists[graph.Vertex(v)] = append([]Entry(nil), l...)
			}
		}
		snap[graph.Category(c)] = lists
	}
	return snap
}

func sameILSnapshot(a, b map[graph.Category]map[graph.Vertex][]Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for c, la := range a {
		lb := b[c]
		if len(la) != len(lb) {
			return false
		}
		for hub, ea := range la {
			eb := lb[hub]
			if len(ea) != len(eb) {
				return false
			}
			for i := range ea {
				if ea[i] != eb[i] {
					return false
				}
			}
		}
	}
	return true
}

// TestCloneCopyOnWrite pins the snapshot-chain contract: every mutation
// applied to a clone (category add/remove, Refresh after an edge
// insertion) must leave the original's inverted lists untouched, while
// the clone reflects the mutation.
func TestCloneCopyOnWrite(t *testing.T) {
	g := graph.Figure1()
	lab := label.Build(g)
	orig := Build(g, lab)
	before := ilSnapshot(g, orig)

	s, _ := g.VertexByName("s")
	b, _ := g.VertexByName("b")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")

	clone := orig.Clone(lab)
	clone.AddVertexCategory(b, ma)
	clone.RemoveVertexCategory(b, re)
	clone.AddVertexCategory(b, 9) // grow path

	// The clone sees all three changes.
	if nb, ok := clone.NewNNIterator(s, ma).Get(3); !ok || nb.V != b {
		t.Fatalf("clone: 3rd MA neighbour = %+v ok=%v, want b", nb, ok)
	}
	if nb, ok := clone.NewNNIterator(s, 9).Get(1); !ok || nb.V != b {
		t.Fatalf("clone: neighbour in grown category = %+v ok=%v", nb, ok)
	}

	// The original saw none of them.
	if !sameILSnapshot(before, ilSnapshot(g, orig)) {
		t.Fatal("clone mutations leaked into the original index")
	}
	if _, ok := orig.NewNNIterator(s, ma).Get(3); ok {
		t.Fatal("original gained the clone's MA membership")
	}

	// Refresh on a second-generation clone: an edge insertion that
	// rewrites labels must not disturb either ancestor.
	cloneBefore := ilSnapshot(g, clone)
	lab2 := lab.Clone()
	clone2 := clone.Clone(lab2)
	dyn := graph.NewDynamic(g)
	d, _ := g.VertexByName("d")
	tv, _ := g.VertexByName("t")
	if err := dyn.AddEdge(d, tv, 1); err != nil {
		t.Fatal(err)
	}
	updates := lab2.InsertEdge(dyn, d, tv, 1)
	clone2.Refresh(g.Categories, updates)
	if !sameILSnapshot(before, ilSnapshot(g, orig)) {
		t.Fatal("Refresh on grandchild leaked into the original")
	}
	if !sameILSnapshot(cloneBefore, ilSnapshot(g, clone)) {
		t.Fatal("Refresh on child clone leaked into its parent")
	}
}
