package invindex

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/label"
)

// TestBuildMatchesSequentialReference checks that the chunked parallel
// build produces exactly the lists of a straightforward sequential
// inversion, for every category and hub.
func TestBuildMatchesSequentialReference(t *testing.T) {
	b := gen.GridBuilder(gen.GridOptions{Rows: 20, Cols: 20, Directed: true, Seed: 9})
	gen.AssignUniformCategories(b, 400, 5, 60, 10)
	g := b.MustBuild()
	lab := label.Build(g)
	ix := Build(g, lab)

	for c := 0; c < g.NumCategories(); c++ {
		want := make(map[graph.Vertex][]Entry)
		for _, u := range g.VerticesOf(graph.Category(c)) {
			for _, e := range lab.In(u) {
				want[e.Hub] = append(want[e.Hub], Entry{V: u, D: e.D})
			}
		}
		for hub := range want {
			list := want[hub]
			sort.Slice(list, func(i, j int) bool {
				if list[i].D != list[j].D {
					return list[i].D < list[j].D
				}
				return list[i].V < list[j].V
			})
			got := ix.IL(graph.Category(c), hub)
			if !reflect.DeepEqual(got, list) {
				t.Fatalf("cat %d hub %d: got %v want %v", c, hub, got, list)
			}
		}
		got := 0
		ix.cats[c].Range(func(_ int, list []Entry) bool {
			if len(list) > 0 {
				got++
			}
			return true
		})
		if got != len(want) {
			t.Fatalf("cat %d: %d hub lists, want %d", c, got, len(want))
		}
	}
}
