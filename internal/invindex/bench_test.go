package invindex

import (
	"math/rand"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/label"
)

func benchIndex(b *testing.B) (*graph.Graph, *Index) {
	b.Helper()
	gb := gen.GridBuilder(gen.GridOptions{Rows: 40, Cols: 40, Diagonals: true, Seed: 5})
	gen.AssignUniformCategories(gb, 1600, 8, 100, 6)
	g := gb.MustBuild()
	return g, Build(g, label.Build(g))
}

// BenchmarkFindNN measures the label-based x-th nearest neighbour
// (Algorithm 3) against the Dijkstra-based alternative below — the
// paper's core efficiency claim for the inverted label index.
func BenchmarkFindNNLabel(b *testing.B) {
	g, ix := benchIndex(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := graph.Vertex(rng.Intn(g.NumVertices()))
		it := ix.NewNNIterator(src, graph.Category(rng.Intn(8)))
		for x := 1; x <= 10; x++ {
			if _, ok := it.Get(x); !ok {
				break
			}
		}
	}
}

func BenchmarkFindNNDijkstra(b *testing.B) {
	g, _ := benchIndex(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := graph.Vertex(rng.Intn(g.NumVertices()))
		it := dijkstra.NewKNN(g, src, graph.Category(rng.Intn(8)))
		for x := 1; x <= 10; x++ {
			if _, ok := it.Get(x); !ok {
				break
			}
		}
	}
}

func BenchmarkBuildInvertedIndex(b *testing.B) {
	gb := gen.GridBuilder(gen.GridOptions{Rows: 40, Cols: 40, Diagonals: true, Seed: 5})
	gen.AssignUniformCategories(gb, 1600, 8, 100, 6)
	g := gb.MustBuild()
	lab := label.Build(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(g, lab)
	}
}
