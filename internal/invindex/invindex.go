// Package invindex implements the inverted label index of Section IV-A:
// for every category Ci, the label entries of Lin(u) of all u ∈ V_Ci are
// inverted into per-hub lists IL(v′) sorted by distance, so the x-th
// nearest neighbour of any vertex inside a category can be found by a
// k-way merge over the (few) hubs of its Lout label — Algorithm 3
// (FindNN) — without any graph search. It also supports the dynamic
// category updates of Section IV-C.
package invindex

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/label"
	"repro/internal/pagevec"
	"repro/internal/pq"
)

// Entry is one inverted label entry: category vertex V at distance D from
// the hub owning the list.
type Entry struct {
	V graph.Vertex
	D graph.Weight
}

// Neighbor is a category vertex with its distance from a query vertex.
type Neighbor struct {
	V graph.Vertex
	D graph.Weight
}

// ILPageSize is the pagevec page size of the inverted-list vectors.
// Inverted lists are sparse in hub space — only the vertices that
// actually serve as hubs of some Lin label carry a list, and a category
// update touches a handful of hubs — so the label side's 1024-slot pages
// would copy mostly-empty headers on every touch. 256 cuts the per-touch
// copy 4× while the page table stays far smaller than the entry data.
// The flat on-disk format pages its inverted-list directory with the
// same constant so an mmap'd page maps one-to-one onto a pagevec page.
const ILPageSize = 256

// ilVec holds one category's inverted label lists, indexed by hub
// vertex: slot hub lists the vertices of the category that carry hub in
// their Lin label, sorted ascending by distance from the hub. The paged
// layout (internal/pagevec) is what makes cloning an epoch cheap: a
// clone copies only the page table, and a mutation pays for the header
// pages it touches.
type ilVec = pagevec.Vec[[]Entry]

// newILVec allocates one category's inverted-list vector over n hub
// slots at the inverted-list page granularity.
func newILVec(n int) *ilVec { return pagevec.NewSized[[]Entry](n, ILPageSize) }

// Index is the inverted label index over all categories of a graph.
type Index struct {
	lab *label.Index
	// cats[c] is category c's inverted label vector (nil when the
	// category has never had entries, or when it is sparse-backed).
	cats []*ilVec
	// sparse[c] is a map-backed IL for categories loaded per query from
	// the disk store (FromParts): those indexes live for one query and
	// are never cloned, so paying a page materialization per touched
	// hub page would be pure overhead. nil (or a nil entry) means the
	// category is vector-backed; a mutation converts sparse → vector
	// first (see mutableIL).
	sparse []map[graph.Vertex][]Entry
	// shared[c] marks that cats[c] is still an ancestor's vector after a
	// Clone: the first mutation of category c clones the vector (page
	// table only) before writing. nil means every vector is owned (the
	// index was built, not cloned). Entry lists are never written in
	// place by any mutation — see mutableIL — so they are always safe
	// to share across clones.
	shared []bool
}

// Build constructs the inverted label index for every category of g from
// the 2-hop label index lab. The work is split into (category,
// vertex-chunk) tasks so the build saturates every core even when one
// large category dominates (or when there are fewer categories than
// CPUs): chunks are inverted independently, then each category's chunk
// maps are concatenated in chunk order and every hub list is sorted by
// (distance, vertex) — a total order, so the result is identical for any
// worker count.
func Build(g *graph.Graph, lab *label.Index) *Index {
	nc := g.NumCategories()
	ix := &Index{
		lab:  lab,
		cats: make([]*ilVec, nc),
	}
	if nc == 0 {
		return ix
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}

	type task struct {
		cat    int
		lo, hi int // slice bounds within VerticesOf(cat)
		chunk  int // chunk ordinal within the category
	}
	total := 0
	for c := 0; c < nc; c++ {
		total += len(g.VerticesOf(graph.Category(c)))
	}
	chunkSize := total/(workers*4) + 1
	if chunkSize < 256 {
		chunkSize = 256
	}
	var tasks []task
	partial := make([][]map[graph.Vertex][]Entry, nc)
	for c := 0; c < nc; c++ {
		vs := g.VerticesOf(graph.Category(c))
		nChunks := (len(vs) + chunkSize - 1) / chunkSize
		partial[c] = make([]map[graph.Vertex][]Entry, nChunks)
		for k := 0; k < nChunks; k++ {
			hi := (k + 1) * chunkSize
			if hi > len(vs) {
				hi = len(vs)
			}
			tasks = append(tasks, task{cat: c, lo: k * chunkSize, hi: hi, chunk: k})
		}
	}

	// Phase 1: invert every chunk independently.
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				il := make(map[graph.Vertex][]Entry)
				vs := g.VerticesOf(graph.Category(t.cat))
				for _, u := range vs[t.lo:t.hi] {
					for _, e := range lab.In(u) {
						il[e.Hub] = append(il[e.Hub], Entry{V: u, D: e.D})
					}
				}
				partial[t.cat][t.chunk] = il
			}
		}()
	}
	wg.Wait()

	// Phase 2: merge each category's chunks and sort its hub lists.
	next = -1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1))
				if c >= nc {
					return
				}
				var il map[graph.Vertex][]Entry
				if len(partial[c]) == 1 {
					il = partial[c][0]
				} else {
					il = make(map[graph.Vertex][]Entry)
					for _, p := range partial[c] {
						for hub, list := range p {
							il[hub] = append(il[hub], list...)
						}
					}
				}
				partial[c] = nil // release the chunk maps as categories merge
				vec := newILVec(lab.NumVertices())
				for hub := range il {
					list := il[hub]
					sort.Slice(list, func(i, j int) bool {
						if list[i].D != list[j].D {
							return list[i].D < list[j].D
						}
						return list[i].V < list[j].V
					})
					vec.Set(int(hub), list)
				}
				ix.cats[c] = vec
			}
		}()
	}
	wg.Wait()
	return ix
}

// FromParts assembles an index from a (possibly sparse) label index and
// pre-built inverted lists for a subset of categories. Lists must be
// sorted by distance, as produced by Build. The disk-resident store uses
// this to materialize only the categories a query visits.
func FromParts(lab *label.Index, numCats int, loaded map[graph.Category]map[graph.Vertex][]Entry) *Index {
	// The loaded maps are stored as-is (sparse-backed categories): a
	// disk-resident store assembles one of these per query, so the
	// conversion must be free — paging only pays off for the long-lived,
	// clone-per-epoch indexes Build produces.
	ix := &Index{
		lab:    lab,
		cats:   make([]*ilVec, numCats),
		sparse: make([]map[graph.Vertex][]Entry, numCats),
	}
	for c, il := range loaded {
		if int(c) >= 0 && int(c) < numCats {
			ix.sparse[c] = il
		}
	}
	return ix
}

// FromVectors assembles an index directly from per-category inverted-
// list vectors, one per category (nil for categories without entries).
// Each vector must be hub-indexed over lab.NumVertices() slots with
// lists sorted by (distance, vertex), as produced by Build. The flat
// mmap loader uses this: its vectors carry borrowed read-only pages, so
// the index serves straight from the mapping and the first mutation of
// a page copies it into owned memory (pagevec.FromPages semantics).
func FromVectors(lab *label.Index, cats []*pagevec.Vec[[]Entry]) *Index {
	return &Index{lab: lab, cats: cats}
}

// ILRange calls f for every non-empty inverted label list of category c
// in ascending hub order, until f returns false. Both vector-backed and
// sparse-backed categories iterate in the same deterministic order, so
// the flat writer's output does not depend on the backing.
func (ix *Index) ILRange(c graph.Category, f func(hub graph.Vertex, list []Entry) bool) {
	if int(c) < 0 || int(c) >= len(ix.cats) {
		return
	}
	if ix.sparse != nil && int(c) < len(ix.sparse) && ix.sparse[c] != nil {
		hubs := make([]graph.Vertex, 0, len(ix.sparse[c]))
		for hub := range ix.sparse[c] {
			hubs = append(hubs, hub)
		}
		sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
		for _, hub := range hubs {
			if list := ix.sparse[c][hub]; len(list) > 0 && !f(hub, list) {
				return
			}
		}
		return
	}
	if ix.cats[c] == nil {
		return
	}
	ix.cats[c].Range(func(i int, list []Entry) bool {
		if len(list) == 0 {
			return true
		}
		return f(graph.Vertex(i), list)
	})
}

// Clone returns a copy-on-write clone backed by lab (the label index of
// the new snapshot — pass ix.Labels() when the labels did not change).
// The per-category vector pointers are copied; the vectors themselves
// and every entry list stay shared until a mutation touches them, so
// cloning costs O(|S|), not O(|V|·|C|). All mutating methods
// (AddVertexCategory, RemoveVertexCategory, Refresh) clone the touched
// category's vector once per epoch — a page-table copy — then replace
// entry lists wholesale in copied pages, so the original index —
// typically pinned by a published snapshot's in-flight queries — is
// never written.
func (ix *Index) Clone(lab *label.Index) *Index {
	c := &Index{
		lab:    lab,
		cats:   make([]*ilVec, len(ix.cats)),
		shared: make([]bool, len(ix.cats)),
	}
	copy(c.cats, ix.cats)
	for i := range c.shared {
		c.shared[i] = c.cats[i] != nil
	}
	if ix.sparse != nil {
		// Sparse-backed categories stay shared maps; the first mutation
		// through the clone converts them to an owned vector.
		c.sparse = make([]map[graph.Vertex][]Entry, len(ix.sparse))
		copy(c.sparse, ix.sparse)
	}
	return c
}

// CopyStats reports the cumulative copy-on-write work this index
// performed since it was created or cloned: pages copied and bytes
// moved by the category vectors it owns (vectors still shared with an
// ancestor were never written and contribute nothing).
func (ix *Index) CopyStats() (pages, bytes uint64) {
	for c, il := range ix.cats {
		if il == nil || (ix.shared != nil && ix.shared[c]) {
			continue
		}
		p, b := il.CopyStats()
		pages += p
		bytes += b
	}
	return pages, bytes
}

// Residency reports the index's materialized inverted-list pages split
// into shared and owned. A whole category vector still aliased from an
// ancestor (shared[c]) contributes all its pages as shared regardless
// of the ancestor's ownership bits — this epoch does not own them.
// Sparse-backed (disk-loaded) categories have no pages and contribute
// nothing.
func (ix *Index) Residency() (shared, owned int) {
	for c, il := range ix.cats {
		if il == nil {
			continue
		}
		s, o := il.Residency()
		if ix.shared != nil && ix.shared[c] {
			shared += s + o
		} else {
			shared += s
			owned += o
		}
	}
	return shared, owned
}

// mutableIL returns category c's vector, owned by this index so hub
// lists may be added or replaced. It clones a vector still shared with
// a clone ancestor (page-table copy only) and allocates missing ones.
// Callers must replace entry lists wholesale (never write list elements
// in place): shared lists may be concurrently read through older
// clones.
func (ix *Index) mutableIL(c graph.Category) *ilVec {
	if ix.sparse != nil && int(c) < len(ix.sparse) && ix.sparse[c] != nil {
		// A sparse-backed (disk-loaded) category is being mutated:
		// materialize it into an owned vector once.
		il := newILVec(ix.lab.NumVertices())
		for hub, list := range ix.sparse[c] {
			il.Set(int(hub), list)
		}
		ix.sparse[c] = nil
		ix.cats[c] = il
		if ix.shared != nil {
			ix.shared[c] = false
		}
		return il
	}
	il := ix.cats[c]
	if il == nil {
		il = newILVec(ix.lab.NumVertices())
		ix.cats[c] = il
		if ix.shared != nil {
			ix.shared[c] = false
		}
		return il
	}
	if ix.shared != nil && ix.shared[c] {
		il = il.Clone()
		ix.cats[c] = il
		ix.shared[c] = false
	}
	return il
}

// Labels returns the underlying 2-hop label index.
func (ix *Index) Labels() *label.Index { return ix.lab }

// NumCategories returns the number of categories covered.
func (ix *Index) NumCategories() int { return len(ix.cats) }

// IL returns the inverted label list of hub within category c (the
// paper's IL(v′) ∈ IL(Ci)). The slice is shared; do not modify.
func (ix *Index) IL(c graph.Category, hub graph.Vertex) []Entry {
	if int(c) < 0 || int(c) >= len(ix.cats) {
		return nil
	}
	if ix.sparse != nil && int(c) < len(ix.sparse) && ix.sparse[c] != nil {
		return ix.sparse[c][hub]
	}
	if ix.cats[c] == nil {
		return nil
	}
	return ix.cats[c].Get(int(hub))
}

// hasIL reports whether category c has any IL backing at all.
func (ix *Index) hasIL(c graph.Category) bool {
	if int(c) < 0 || int(c) >= len(ix.cats) {
		return false
	}
	if ix.cats[c] != nil {
		return true
	}
	return ix.sparse != nil && int(c) < len(ix.sparse) && ix.sparse[c] != nil
}

// AddVertexCategory registers that category c was added to F(v)
// (Section IV-C): for each entry (u, du,v) ∈ Lin(v) the pair (v, du,v) is
// inserted into IL(u) of category c, keeping the list sorted.
func (ix *Index) AddVertexCategory(v graph.Vertex, c graph.Category) {
	if int(c) < 0 {
		return
	}
	for int(c) >= len(ix.cats) {
		ix.cats = append(ix.cats, nil)
		if ix.shared != nil {
			ix.shared = append(ix.shared, false)
		}
		if ix.sparse != nil {
			ix.sparse = append(ix.sparse, nil)
		}
	}
	il := ix.mutableIL(c)
	for _, e := range ix.lab.In(v) {
		insertEntry(il, e.Hub, v, e.D)
	}
}

// RemoveVertexCategory undoes AddVertexCategory (Section IV-C).
func (ix *Index) RemoveVertexCategory(v graph.Vertex, c graph.Category) {
	if !ix.hasIL(c) {
		return
	}
	il := ix.mutableIL(c)
	for _, e := range ix.lab.In(v) {
		removeEntry(il, e.Hub, v, e.D)
	}
}

// Refresh applies Lin label changes produced by label.(*Index).InsertEdge
// (Section IV-C graph-structure updates): for every changed label of a
// categorized vertex, the stale inverted entry is removed and the new one
// inserted in distance order. cats reports the category memberships of a
// vertex — pass g.Categories for a plain graph, or a closure folding in
// dynamically added/removed categories so vertices recategorized at run
// time keep their inverted lists exact across edge insertions.
func (ix *Index) Refresh(cats func(graph.Vertex) []graph.Category, updates []label.LinUpdate) {
	var sc RefreshScratch
	ix.RefreshBatch(&sc, cats, updates)
}

// RefreshScratch is the reusable coalescing state of RefreshBatch,
// owned by the serialized updater and checked out once per Apply batch.
// The zero value is ready to use; reuse amortizes the grouping map and
// the list rebuild buffer across batches.
type RefreshScratch struct {
	keys   map[uint64]int32 // (category, hub) -> group ordinal
	groups []refreshGroup
	ng     int
	buf    []Entry
}

type refreshGroup struct {
	cat graph.Category
	hub graph.Vertex
	ops []refreshOp
}

type refreshOp struct {
	v      graph.Vertex
	d      graph.Weight
	oldD   graph.Weight
	hadOld bool
}

// RefreshBatch is Refresh with batched list rebuilds: the updates are
// coalesced per (category, hub), and each touched inverted list is
// rebuilt once in a scratch buffer and written back with a single fresh
// allocation — instead of one fresh list per change, which dominated
// apply cost when a batch revisits the same hub's list repeatedly.
// Ops targeting the same list keep their arrival order and ops on
// different lists commute, so the result is identical to Refresh.
func (ix *Index) RefreshBatch(sc *RefreshScratch, cats func(graph.Vertex) []graph.Category, updates []label.LinUpdate) {
	if len(updates) == 0 {
		return
	}
	if sc.keys == nil {
		sc.keys = make(map[uint64]int32)
	}
	sc.ng = 0
	for _, u := range updates {
		for _, c := range cats(u.V) {
			if !ix.hasIL(c) {
				continue
			}
			key := uint64(uint32(c))<<32 | uint64(uint32(u.Hub))
			gi, ok := sc.keys[key]
			if !ok {
				gi = int32(sc.ng)
				if int(gi) < len(sc.groups) {
					g := &sc.groups[gi]
					g.cat, g.hub = c, u.Hub
					g.ops = g.ops[:0]
				} else {
					sc.groups = append(sc.groups, refreshGroup{cat: c, hub: u.Hub})
				}
				sc.ng++
				sc.keys[key] = gi
			}
			g := &sc.groups[gi]
			g.ops = append(g.ops, refreshOp{v: u.V, d: u.D, oldD: u.OldD, hadOld: u.HadOld})
		}
	}
	for k := range sc.keys {
		delete(sc.keys, k)
	}
	for i := 0; i < sc.ng; i++ {
		g := &sc.groups[i]
		il := ix.mutableIL(g.cat)
		sc.buf = append(sc.buf[:0], il.Get(int(g.hub))...)
		for _, op := range g.ops {
			if op.hadOld {
				sc.buf = removeFromBuf(sc.buf, op.v, op.oldD)
			}
			sc.buf = insertIntoBuf(sc.buf, op.v, op.d)
		}
		if len(sc.buf) == 0 {
			il.Set(int(g.hub), nil)
			continue
		}
		fresh := make([]Entry, len(sc.buf))
		copy(fresh, sc.buf)
		il.Set(int(g.hub), fresh)
	}
}

// removeFromBuf deletes (v, d) from the scratch list in place, with
// removeEntry's search and match rule.
func removeFromBuf(buf []Entry, v graph.Vertex, d graph.Weight) []Entry {
	pos := searchIL(buf, v, d)
	if pos < len(buf) && buf[pos].V == v && buf[pos].D == d {
		copy(buf[pos:], buf[pos+1:])
		buf = buf[:len(buf)-1]
	}
	return buf
}

// insertIntoBuf inserts (v, d) into the scratch list in place in
// (distance, vertex) order, skipping exact duplicates like insertEntry.
func insertIntoBuf(buf []Entry, v graph.Vertex, d graph.Weight) []Entry {
	pos := searchIL(buf, v, d)
	if pos < len(buf) && buf[pos].V == v && buf[pos].D == d {
		return buf
	}
	buf = append(buf, Entry{})
	copy(buf[pos+1:], buf[pos:])
	buf[pos] = Entry{V: v, D: d}
	return buf
}

// searchIL finds the position of (v, d) in a (distance, vertex)-ordered
// inverted list — the shared search of every IL mutation.
func searchIL(list []Entry, v graph.Vertex, d graph.Weight) int {
	return sort.Search(len(list), func(i int) bool {
		if list[i].D != d {
			return list[i].D > d
		}
		return list[i].V >= v
	})
}

// removeEntry deletes (v, d) from the hub's list. The shrunken list is
// freshly allocated — mutations never write a shared backing array.
func removeEntry(il *ilVec, hub, v graph.Vertex, d graph.Weight) {
	list := il.Get(int(hub))
	pos := searchIL(list, v, d)
	if pos < len(list) && list[pos].V == v && list[pos].D == d {
		if len(list) == 1 {
			il.Set(int(hub), nil)
			return
		}
		fresh := make([]Entry, len(list)-1)
		copy(fresh, list[:pos])
		copy(fresh[pos:], list[pos+1:])
		il.Set(int(hub), fresh)
	}
}

// insertEntry inserts (v, d) into the hub's list in (distance, vertex)
// order, skipping exact duplicates. The grown list is freshly allocated.
func insertEntry(il *ilVec, hub, v graph.Vertex, d graph.Weight) {
	list := il.Get(int(hub))
	pos := searchIL(list, v, d)
	if pos < len(list) && list[pos].V == v && list[pos].D == d {
		return
	}
	fresh := make([]Entry, len(list)+1)
	copy(fresh, list[:pos])
	fresh[pos] = Entry{V: v, D: d}
	copy(fresh[pos+1:], list[pos:])
	il.Set(int(hub), fresh)
}

// Stats summarizes the inverted index (Table IX, lower half).
type Stats struct {
	Categories int
	// AvgPerCategory is the average total number of entries of IL(Ci).
	AvgPerCategory float64
	// AvgPerList is the average length of a single inverted label IL(v′).
	AvgPerList float64
	Entries    int64
	SizeBytes  int64
}

// Stats computes summary statistics.
func (ix *Index) Stats() Stats {
	var st Stats
	st.Categories = len(ix.cats)
	var lists int64
	for c, il := range ix.cats {
		if ix.sparse != nil && c < len(ix.sparse) && ix.sparse[c] != nil {
			for _, list := range ix.sparse[c] {
				lists++
				st.Entries += int64(len(list))
			}
			continue
		}
		if il == nil {
			continue
		}
		il.Range(func(_ int, list []Entry) bool {
			if len(list) > 0 {
				lists++
				st.Entries += int64(len(list))
			}
			return true
		})
	}
	if st.Categories > 0 {
		st.AvgPerCategory = float64(st.Entries) / float64(st.Categories)
	}
	if lists > 0 {
		st.AvgPerList = float64(st.Entries) / float64(lists)
	}
	st.SizeBytes = st.Entries * 12 // vertex (4) + distance (8)
	return st
}

// vset is a small open-addressing hash set of vertices. It replaces the
// map[graph.Vertex]bool the seed iterator used for NL membership: the
// probing table is a single flat slice, so recycled iterators reuse its
// backing array and steady-state inserts allocate nothing.
type vset struct {
	tab []int32 // vertex+1 per slot; 0 = empty
	n   int
}

func (s *vset) reset() {
	for i := range s.tab {
		s.tab[i] = 0
	}
	s.n = 0
}

func (s *vset) has(v graph.Vertex) bool {
	if len(s.tab) == 0 {
		return false
	}
	mask := uint32(len(s.tab) - 1)
	for i := (uint32(v) * 2654435761) & mask; ; i = (i + 1) & mask {
		switch s.tab[i] {
		case 0:
			return false
		case int32(v) + 1:
			return true
		}
	}
}

func (s *vset) add(v graph.Vertex) {
	if 4*(s.n+1) >= 3*len(s.tab) {
		s.grow()
	}
	mask := uint32(len(s.tab) - 1)
	for i := (uint32(v) * 2654435761) & mask; ; i = (i + 1) & mask {
		switch s.tab[i] {
		case 0:
			s.tab[i] = int32(v) + 1
			s.n++
			return
		case int32(v) + 1:
			return
		}
	}
}

func (s *vset) grow() {
	old := s.tab
	size := 2 * len(old)
	if size < 16 {
		size = 16
	}
	s.tab = make([]int32, size)
	s.n = 0
	for _, e := range old {
		if e != 0 {
			s.add(graph.Vertex(e - 1))
		}
	}
}

// NNIterator finds the x-th nearest neighbour of a fixed vertex in a
// fixed category (Algorithm 3, FindNN). It keeps the paper's NL / NQ / KV
// state across calls, so successive calls never repeat work: finding the
// (x+1)-th neighbour after the x-th costs O(log |Lout|).
//
// The seed kept NL membership and the per-hub read positions in hash
// maps; both are now flat slices (a probing set and a hub-ordinal indexed
// position array), so an iterator recycled through Reset performs no
// steady-state allocation.
type NNIterator struct {
	ix  *Index
	v   graph.Vertex
	cat graph.Category

	nl     []Neighbor       // NL: neighbours found, ascending distance
	seen   vset             // NL membership
	nq     *pq.Heap[nnCand] // NQ: one candidate per hub list
	out    []label.Entry    // Lout(v), shared with the label index
	lists  [][]Entry        // inverted list per hub, parallel to out
	pos    []int32          // KV: next unread position, parallel to out
	primed bool
}

type nnCand struct {
	target graph.Vertex
	d      graph.Weight // dis(v, hub) + dis(hub, target)
	ord    int32        // ordinal of the hub in Lout(v)
}

func lessNNCand(a, b nnCand) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.target < b.target
}

// NewNNIterator returns a FindNN iterator for (v, cat).
func (ix *Index) NewNNIterator(v graph.Vertex, cat graph.Category) *NNIterator {
	return &NNIterator{
		ix:  ix,
		v:   v,
		cat: cat,
		nq:  pq.NewHeap[nnCand](lessNNCand),
	}
}

// Reset retargets a used iterator at (v, cat) on the index it is
// currently bound to, keeping every backing buffer (NL, probing set,
// candidate heap, position array) so recycled iterators run
// allocation-free. Use ResetOn to retarget across indexes.
func (it *NNIterator) Reset(v graph.Vertex, cat graph.Category) {
	it.v, it.cat = v, cat
	it.nl = it.nl[:0]
	it.seen.reset()
	it.nq.Clear()
	it.out = nil
	it.lists = it.lists[:0]
	it.pos = it.pos[:0]
	it.primed = false
}

// ResetOn retargets a used iterator at (v, cat) on ix — possibly a
// different index than the one it was created on, such as the next
// copy-on-write epoch of the same system. Every buffer is content-free
// after the reset and prime() re-reads all index state, so rebinding is
// safe; it is what lets query scratches carry their iterator free lists
// across snapshot publications instead of reallocating them after every
// update.
func (it *NNIterator) ResetOn(ix *Index, v graph.Vertex, cat graph.Category) {
	it.ix = ix
	it.Reset(v, cat)
}

// Unbind drops every index reference an idle iterator retains (the
// index pointer, the Lout view, and the per-hub list views hiding in
// the recycled buffer's spare capacity), so a free-listed iterator
// handed to a later epoch does not pin the superseded index alive. The
// buffers stay allocated; ResetOn must run before the next use.
func (it *NNIterator) Unbind() {
	it.ix = nil
	it.out = nil
	it.lists = it.lists[:cap(it.lists)]
	for i := range it.lists {
		it.lists[i] = nil
	}
	it.lists = it.lists[:0]
}

// Found returns the number of neighbours materialized in NL so far.
func (it *NNIterator) Found() int { return len(it.nl) }

// MemFootprint estimates the bytes this iterator retains across Reset
// calls: the NL cache, the probing set, the candidate heap, and the
// per-hub read positions. Used by the query-scratch release policy.
func (it *NNIterator) MemFootprint() int64 {
	return int64(cap(it.nl))*int64(unsafe.Sizeof(Neighbor{})) +
		int64(cap(it.seen.tab))*int64(unsafe.Sizeof(int32(0))) +
		int64(it.nq.Cap())*int64(unsafe.Sizeof(nnCand{})) +
		int64(cap(it.lists))*int64(unsafe.Sizeof([]Entry(nil))) +
		int64(cap(it.pos))*int64(unsafe.Sizeof(int32(0)))
}

// Get returns the x-th (1-based) nearest neighbour of v in the category.
// ok is false when fewer than x vertices of the category are reachable.
// Calls with x ≤ Found() are NL cache hits and cost O(1).
//
//kosr:hotpath
func (it *NNIterator) Get(x int) (Neighbor, bool) {
	for len(it.nl) < x {
		nb, ok := it.next()
		if !ok {
			return Neighbor{}, false
		}
		it.nl = append(it.nl, nb)
		it.seen.add(nb.V)
	}
	return it.nl[x-1], true
}

//kosr:hotpath
func (it *NNIterator) prime() {
	it.primed = true
	if !it.ix.hasIL(it.cat) {
		return
	}
	vec := it.ix.cats[it.cat] // nil when the category is sparse-backed
	var m map[graph.Vertex][]Entry
	if vec == nil {
		m = it.ix.sparse[it.cat]
	}
	it.out = it.ix.lab.Out(it.v)
	for i, e := range it.out {
		var list []Entry
		if vec != nil {
			list = vec.Get(int(e.Hub))
		} else {
			list = m[e.Hub]
		}
		it.lists = append(it.lists, list)
		if len(list) == 0 {
			it.pos = append(it.pos, 0)
			continue
		}
		it.nq.Push(nnCand{target: list[0].V, d: e.D + list[0].D, ord: int32(i)})
		it.pos = append(it.pos, 1)
	}
}

// advance pushes the next unseen entry of the popped candidate's hub list
// into NQ (lines 12–16 of Algorithm 3).
//
//kosr:hotpath
func (it *NNIterator) advance(ord int32) {
	list := it.lists[ord]
	p := it.pos[ord]
	for int(p) < len(list) && it.seen.has(list[p].V) {
		p++
	}
	if int(p) < len(list) {
		it.nq.Push(nnCand{target: list[p].V, d: it.out[ord].D + list[p].D, ord: ord})
		it.pos[ord] = p + 1
	} else {
		it.pos[ord] = int32(len(list))
	}
}

//kosr:hotpath
func (it *NNIterator) next() (Neighbor, bool) {
	if !it.primed {
		it.prime()
	}
	for it.nq.Len() > 0 {
		c := it.nq.Pop()
		it.advance(c.ord)
		if it.seen.has(c.target) {
			// The same target was already returned through another hub
			// with a smaller (or equal) combined distance.
			continue
		}
		// First occurrence in the ascending merge: by the 2-hop cover
		// property c.d equals dis(v, target).
		return Neighbor{V: c.target, D: c.d}, true
	}
	return Neighbor{}, false
}
