package pagevec

import "testing"

// TestResidency pins the shared/owned accounting the /health page gauge
// is built on: unmaterialized pages count as neither, writes own their
// page, Clone demotes every materialized page to shared on BOTH sides,
// and a post-clone write re-owns exactly the touched page.
func TestResidency(t *testing.T) {
	v := New[int](2*PageSize + 10) // three pages, the last short
	if s, o := v.Residency(); s != 0 || o != 0 {
		t.Fatalf("empty vec: shared=%d owned=%d, want 0/0", s, o)
	}

	v.Set(0, 1)
	v.Set(PageSize, 2)
	if s, o := v.Residency(); s != 0 || o != 2 {
		t.Fatalf("after writes: shared=%d owned=%d, want 0/2", s, o)
	}

	c := v.Clone()
	for name, vec := range map[string]*Vec[int]{"parent": v, "clone": c} {
		if s, o := vec.Residency(); s != 2 || o != 0 {
			t.Fatalf("%s after clone: shared=%d owned=%d, want 2/0", name, s, o)
		}
	}

	c.Set(0, 5)
	if s, o := c.Residency(); s != 1 || o != 1 {
		t.Fatalf("clone after write: shared=%d owned=%d, want 1/1", s, o)
	}
	if s, o := v.Residency(); s != 2 || o != 0 {
		t.Fatalf("parent after clone's write: shared=%d owned=%d, want 2/0", s, o)
	}
	if got := v.Get(0); got != 1 {
		t.Fatalf("parent value after clone's write: %d, want 1", got)
	}
	if got := c.Get(PageSize); got != 2 {
		t.Fatalf("clone read-through of shared page: %d, want 2", got)
	}
}
