// Package pagevec implements a fixed-length, chunked vector with
// copy-on-write structural sharing: the elements live in fixed-size
// pages behind a page table, and Clone copies only the page table —
// O(n/pageSize) — leaving every page shared until a Set touches it.
//
// It is the storage layer under the system's epoch-versioned indexes
// (the per-vertex label-list headers of label.Index, the per-category
// inverted lists of invindex.Index, the edge overlays of graph.Dynamic):
// publishing a new index epoch clones these vectors instead of copying
// O(|V|) header arrays, so a dynamic update costs its delta — the pages
// it touches — not the graph size.
//
// The page size is per vector (New applies PageSize; NewSized picks any
// power of two), so dense structures (label headers: most vertices carry
// labels) and sparse ones (inverted lists: few hubs per category have
// entries) each pay a page-copy granularity matched to their density.
//
// A vector may also be built over externally owned read-only pages
// (FromPages) — views into an mmap'd flat index file. Such a vector
// reads straight from the mapping, and the first Set through it (or any
// clone) copies the touched page into owned heap memory, exactly like a
// page shared with a clone: copy-on-write overlays stack on top of a
// zero-copy base.
//
// Concurrency contract: a Vec is written by at most one goroutine (the
// serialized index updater). Readers of a vector never observe writes
// made through any of its clones, because Set never writes a shared
// page in place — it copies the page first. Cloning an actively-read
// vector is safe: Get touches only the page table and the pages, and
// Clone replaces neither.
package pagevec

import (
	"fmt"
	"math/bits"
	"unsafe"
)

const (
	defaultPageBits = 10
	// PageSize is the default number of elements per page (see New).
	// 1024 list headers keep the page table ~1000× smaller than the
	// element space while a page copy stays small enough (24 KiB for
	// slice headers) that updates with locality touch only a few.
	PageSize = 1 << defaultPageBits
)

// Vec is a paged vector of n elements. The zero Vec is empty; build one
// with New, NewSized or FromPages. Elements of pages never materialized
// read as the zero T.
type Vec[T any] struct {
	n     int
	bits  uint // log2 of the page size
	mask  int  // pageSize - 1
	pages [][]T
	// owned[p] marks that this Vec may write page p in place. Clone
	// clears ownership on both sides, and FromPages starts with no
	// ownership at all, so the first Set through either vector copies
	// the touched page.
	owned []bool

	// copiedPages/copiedBytes account the COW work this Vec performed
	// since it was created (page materializations and copies, plus the
	// page-table copy of its own birth when it was born by Clone); the
	// updater sums them per epoch into the apply metrics.
	copiedPages uint64
	copiedBytes uint64
}

// New returns a zero-filled vector of n elements with the default
// PageSize. Only the page table is allocated; pages materialize on
// first write.
func New[T any](n int) *Vec[T] { return NewSized[T](n, PageSize) }

// NewSized returns a zero-filled vector of n elements chunked into
// pages of pageSize elements, which must be a power of two. Smaller
// pages cut the bytes a mutation copies (sparser structures amortize
// less per touch) at the price of a proportionally longer page table.
func NewSized[T any](n, pageSize int) *Vec[T] {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("pagevec: page size %d is not a positive power of two", pageSize))
	}
	np := (n + pageSize - 1) / pageSize
	return &Vec[T]{
		n:     n,
		bits:  uint(bits.TrailingZeros(uint(pageSize))),
		mask:  pageSize - 1,
		pages: make([][]T, np),
		owned: make([]bool, np),
	}
}

// FromPages returns a vector of n elements whose pages are provided by
// the caller — typically views into a read-only mapping. The vector
// does not own any page: reads go straight to the provided memory, and
// the first Set of each page copies it into owned heap memory first, so
// the provided pages are never written. pages[i] holds elements
// [i*pageSize, (i+1)*pageSize) and may be shorter than pageSize only
// for the final page (missing or short pages read as zero T beyond
// their length is NOT supported — a nil entry stands for an
// all-zero page instead). pageSize must be a power of two.
func FromPages[T any](n int, pages [][]T, pageSize int) *Vec[T] {
	v := NewSized[T](n, pageSize)
	if len(pages) != len(v.pages) {
		panic(fmt.Sprintf("pagevec: %d pages provided, %d needed for %d elements of page size %d",
			len(pages), len(v.pages), n, pageSize))
	}
	copy(v.pages, pages)
	return v
}

// Len returns the number of elements.
func (v *Vec[T]) Len() int { return v.n }

// PageElems returns the vector's page size in elements.
func (v *Vec[T]) PageElems() int { return v.mask + 1 }

// Get returns element i. Indices must be in [0, Len()); the page-table
// bound is the only check performed.
func (v *Vec[T]) Get(i int) T {
	p := v.pages[i>>v.bits]
	if p == nil {
		var zero T
		return zero
	}
	return p[i&v.mask]
}

// Set stores x at index i, materializing the page when absent and
// copying it first when it is still shared with a clone (or borrowed
// from a read-only page source).
func (v *Vec[T]) Set(i int, x T) {
	pi := i >> v.bits
	if !v.owned[pi] {
		v.materialize(pi)
	}
	v.pages[pi][i&v.mask] = x
}

// materialize gives the Vec an owned copy of page pi.
func (v *Vec[T]) materialize(pi int) {
	var elem T
	fresh := make([]T, v.mask+1)
	copy(fresh, v.pages[pi]) // no-op for a never-written page
	v.pages[pi] = fresh
	v.owned[pi] = true
	v.copiedPages++
	v.copiedBytes += uint64(v.mask+1) * uint64(unsafe.Sizeof(elem))
}

// Clone returns a structurally-shared copy: only the page table and the
// ownership bits are duplicated — O(Len()/pageSize) — and every page
// becomes shared by both vectors. Ownership is cleared on the parent
// too, so whichever side mutates a page first pays for its copy; the
// other side keeps reading the original. Clone must be called by the
// (single) writer, but concurrent readers of the parent are safe.
func (v *Vec[T]) Clone() *Vec[T] {
	c := &Vec[T]{
		n:     v.n,
		bits:  v.bits,
		mask:  v.mask,
		pages: append([][]T(nil), v.pages...),
		owned: make([]bool, len(v.pages)),
	}
	clear(v.owned)
	// The page-table copy is the fixed cost of a clone; account it so
	// apply_bytes reflects everything an epoch publication copied.
	c.copiedBytes = uint64(len(v.pages)) * uint64(unsafe.Sizeof([]T(nil)))
	return c
}

// Range calls f for every element of every materialized page, in
// ascending index order, until f returns false. Pages never written
// through this Vec or any ancestor are skipped wholesale, so iterating
// a sparse overlay costs O(touched pages), not O(Len()).
func (v *Vec[T]) Range(f func(i int, x T) bool) {
	for pi, p := range v.pages {
		if p == nil {
			continue
		}
		base := pi << v.bits
		limit := v.n - base
		if limit > len(p) {
			limit = len(p)
		}
		for j := 0; j < limit; j++ {
			if !f(base+j, p[j]) {
				return
			}
		}
	}
}

// CopyStats reports the cumulative COW work performed through this Vec:
// pages materialized or copied, and the bytes those copies (plus this
// Vec's own page-table copy, when it was born by Clone) moved.
func (v *Vec[T]) CopyStats() (pages, bytes uint64) {
	return v.copiedPages, v.copiedBytes
}

// Residency reports the Vec's materialized pages split by ownership:
// shared pages may be aliased by clones on other epochs (one physical
// copy, many readers) or borrowed from a read-only page source, owned
// pages belong to this Vec alone. Never-materialized (all-zero) pages
// count as neither. shared+owned pages of the live epoch versus the
// owned totals of retained older epochs is the memory-amplification
// picture of an epoch chain.
func (v *Vec[T]) Residency() (shared, owned int) {
	for pi, p := range v.pages {
		if p == nil {
			continue
		}
		if v.owned[pi] {
			owned++
		} else {
			shared++
		}
	}
	return shared, owned
}
