// Package pagevec implements a fixed-length, chunked vector with
// copy-on-write structural sharing: the elements live in fixed-size
// pages behind a page table, and Clone copies only the page table —
// O(n/PageSize) — leaving every page shared until a Set touches it.
//
// It is the storage layer under the system's epoch-versioned indexes
// (the per-vertex label-list headers of label.Index, the per-category
// inverted lists of invindex.Index, the edge overlays of graph.Dynamic):
// publishing a new index epoch clones these vectors instead of copying
// O(|V|) header arrays, so a dynamic update costs its delta — the pages
// it touches — not the graph size.
//
// Concurrency contract: a Vec is written by at most one goroutine (the
// serialized index updater). Readers of a vector never observe writes
// made through any of its clones, because Set never writes a shared
// page in place — it copies the page first. Cloning an actively-read
// vector is safe: Get touches only the page table and the pages, and
// Clone replaces neither.
package pagevec

import "unsafe"

const (
	pageBits = 10
	// PageSize is the number of elements per page. 1024 list headers
	// keep the page table ~1000× smaller than the element space while a
	// page copy stays small enough (24 KiB for slice headers) that
	// updates with locality touch only a few.
	PageSize = 1 << pageBits
	pageMask = PageSize - 1
)

// Vec is a paged vector of n elements. The zero Vec is empty; build one
// with New. Elements of pages never materialized read as the zero T.
type Vec[T any] struct {
	n     int
	pages [][]T
	// owned[p] marks that this Vec may write page p in place. Clone
	// clears ownership on both sides, so the first Set through either
	// vector copies the touched page.
	owned []bool

	// copiedPages/copiedBytes account the COW work this Vec performed
	// since it was created (page materializations and copies, plus the
	// page-table copy of its own birth when it was born by Clone); the
	// updater sums them per epoch into the apply metrics.
	copiedPages uint64
	copiedBytes uint64
}

// New returns a zero-filled vector of n elements. Only the page table
// is allocated; pages materialize on first write.
func New[T any](n int) *Vec[T] {
	np := (n + PageSize - 1) / PageSize
	return &Vec[T]{n: n, pages: make([][]T, np), owned: make([]bool, np)}
}

// Len returns the number of elements.
func (v *Vec[T]) Len() int { return v.n }

// Get returns element i. Indices must be in [0, Len()); the page-table
// bound is the only check performed.
func (v *Vec[T]) Get(i int) T {
	p := v.pages[i>>pageBits]
	if p == nil {
		var zero T
		return zero
	}
	return p[i&pageMask]
}

// Set stores x at index i, materializing the page when absent and
// copying it first when it is still shared with a clone.
func (v *Vec[T]) Set(i int, x T) {
	pi := i >> pageBits
	if !v.owned[pi] {
		v.materialize(pi)
	}
	v.pages[pi][i&pageMask] = x
}

// materialize gives the Vec an owned copy of page pi.
func (v *Vec[T]) materialize(pi int) {
	var elem T
	fresh := make([]T, PageSize)
	copy(fresh, v.pages[pi]) // no-op for a never-written page
	v.pages[pi] = fresh
	v.owned[pi] = true
	v.copiedPages++
	v.copiedBytes += PageSize * uint64(unsafe.Sizeof(elem))
}

// Clone returns a structurally-shared copy: only the page table and the
// ownership bits are duplicated — O(Len()/PageSize) — and every page
// becomes shared by both vectors. Ownership is cleared on the parent
// too, so whichever side mutates a page first pays for its copy; the
// other side keeps reading the original. Clone must be called by the
// (single) writer, but concurrent readers of the parent are safe.
func (v *Vec[T]) Clone() *Vec[T] {
	c := &Vec[T]{
		n:     v.n,
		pages: append([][]T(nil), v.pages...),
		owned: make([]bool, len(v.pages)),
	}
	clear(v.owned)
	// The page-table copy is the fixed cost of a clone; account it so
	// apply_bytes reflects everything an epoch publication copied.
	c.copiedBytes = uint64(len(v.pages)) * uint64(unsafe.Sizeof([]T(nil)))
	return c
}

// Range calls f for every element of every materialized page, in
// ascending index order, until f returns false. Pages never written
// through this Vec or any ancestor are skipped wholesale, so iterating
// a sparse overlay costs O(touched pages), not O(Len()).
func (v *Vec[T]) Range(f func(i int, x T) bool) {
	for pi, p := range v.pages {
		if p == nil {
			continue
		}
		base := pi << pageBits
		limit := v.n - base
		if limit > PageSize {
			limit = PageSize
		}
		for j := 0; j < limit; j++ {
			if !f(base+j, p[j]) {
				return
			}
		}
	}
}

// CopyStats reports the cumulative COW work performed through this Vec:
// pages materialized or copied, and the bytes those copies (plus this
// Vec's own page-table copy, when it was born by Clone) moved.
func (v *Vec[T]) CopyStats() (pages, bytes uint64) {
	return v.copiedPages, v.copiedBytes
}

// Residency reports the Vec's materialized pages split by ownership:
// shared pages may be aliased by clones on other epochs (one physical
// copy, many readers), owned pages belong to this Vec alone. Never-
// materialized (all-zero) pages count as neither. shared+owned pages of
// the live epoch versus the owned totals of retained older epochs is
// the memory-amplification picture of an epoch chain.
func (v *Vec[T]) Residency() (shared, owned int) {
	for pi, p := range v.pages {
		if p == nil {
			continue
		}
		if v.owned[pi] {
			owned++
		} else {
			shared++
		}
	}
	return shared, owned
}
