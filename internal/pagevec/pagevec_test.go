package pagevec

import (
	"testing"
	"unsafe"
)

func TestGetSetZeroDefault(t *testing.T) {
	v := New[int](PageSize*2 + 5)
	if v.Len() != PageSize*2+5 {
		t.Fatalf("Len=%d", v.Len())
	}
	for _, i := range []int{0, 1, PageSize - 1, PageSize, 2 * PageSize, v.Len() - 1} {
		if got := v.Get(i); got != 0 {
			t.Fatalf("Get(%d)=%d on fresh vec", i, got)
		}
	}
	v.Set(3, 42)
	v.Set(PageSize+1, 7)
	v.Set(v.Len()-1, 9)
	if v.Get(3) != 42 || v.Get(PageSize+1) != 7 || v.Get(v.Len()-1) != 9 {
		t.Fatalf("reads after writes: %d %d %d", v.Get(3), v.Get(PageSize+1), v.Get(v.Len()-1))
	}
	if v.Get(4) != 0 || v.Get(PageSize) != 0 {
		t.Fatal("untouched slots must stay zero")
	}
}

// TestCloneIsolation is the core COW contract: mutations through a
// clone are invisible to the parent, mutations through the parent after
// a clone are invisible to the clone, and untouched pages stay shared.
func TestCloneIsolation(t *testing.T) {
	v := New[int](PageSize * 3)
	for i := 0; i < v.Len(); i += 97 {
		v.Set(i, i)
	}
	c := v.Clone()
	c.Set(0, -1)            // clone writes a page the parent owns data in
	v.Set(97, -2)           // parent writes a shared page post-clone
	c.Set(2*PageSize+1, -3) // clone writes a page neither touched before
	if v.Get(0) != 0 {
		t.Fatalf("parent sees clone write: %d", v.Get(0))
	}
	if c.Get(97) != 97 {
		t.Fatalf("clone sees parent post-clone write: %d", c.Get(97))
	}
	if v.Get(2*PageSize+1) != 0 {
		t.Fatalf("parent sees clone write on fresh page: %d", v.Get(2*PageSize+1))
	}
	// Unwritten values still flow through the shared pages.
	if c.Get(97*2) != 97*2 || v.Get(97*2) != 97*2 {
		t.Fatal("shared page lost data")
	}
}

// TestCloneChain walks a three-epoch chain, checking every epoch keeps
// its own view — the snapshot-publication usage pattern.
func TestCloneChain(t *testing.T) {
	e1 := New[string](PageSize + 10)
	e1.Set(5, "one")
	e2 := e1.Clone()
	e2.Set(5, "two")
	e2.Set(PageSize+1, "two-tail")
	e3 := e2.Clone()
	e3.Set(5, "three")
	if e1.Get(5) != "one" || e2.Get(5) != "two" || e3.Get(5) != "three" {
		t.Fatalf("views: %q %q %q", e1.Get(5), e2.Get(5), e3.Get(5))
	}
	if e1.Get(PageSize+1) != "" || e2.Get(PageSize+1) != "two-tail" || e3.Get(PageSize+1) != "two-tail" {
		t.Fatal("tail page views wrong")
	}
}

func TestRangeSkipsUnmaterializedPages(t *testing.T) {
	v := New[int](PageSize * 8)
	v.Set(PageSize*3+7, 1)
	v.Set(PageSize*6, 2)
	var visited, nonzero int
	v.Range(func(i, x int) bool {
		visited++
		if x != 0 {
			nonzero++
		}
		return true
	})
	if visited != 2*PageSize {
		t.Fatalf("visited %d elements, want exactly the 2 touched pages (%d)", visited, 2*PageSize)
	}
	if nonzero != 2 {
		t.Fatalf("nonzero=%d", nonzero)
	}
	// Early stop.
	visited = 0
	v.Range(func(i, x int) bool { visited++; return false })
	if visited != 1 {
		t.Fatalf("early stop visited %d", visited)
	}
}

func TestRangeShortLastPage(t *testing.T) {
	v := New[int](PageSize + 3)
	v.Set(PageSize+2, 9)
	last := -1
	v.Range(func(i, x int) bool { last = i; return true })
	if last != PageSize+2 {
		t.Fatalf("last visited index %d, want %d", last, PageSize+2)
	}
}

// TestCloneCostIsPages pins the whole point: cloning copies O(pages)
// page-table bytes, and a post-clone single-element write copies
// exactly one page regardless of Len().
func TestCloneCostIsPages(t *testing.T) {
	v := New[int64](PageSize * 100)
	for i := 0; i < v.Len(); i += PageSize / 2 {
		v.Set(i, 1)
	}
	c := v.Clone()
	_, tableBytes := c.CopyStats()
	wantTable := uint64(100) * uint64(unsafe.Sizeof([]int64(nil)))
	if tableBytes != wantTable {
		t.Fatalf("clone bytes=%d, want page-table copy %d", tableBytes, wantTable)
	}
	c.Set(PageSize*50+3, 2)
	pages, bytes := c.CopyStats()
	if pages != 1 {
		t.Fatalf("one write copied %d pages, want 1", pages)
	}
	if want := wantTable + PageSize*8; bytes != want {
		t.Fatalf("bytes=%d, want %d", bytes, want)
	}
	// A second write to the same page is free.
	c.Set(PageSize*50+4, 3)
	if pages2, _ := c.CopyStats(); pages2 != 1 {
		t.Fatalf("same-page write copied again: %d pages", pages2)
	}
}

func TestEmptyVec(t *testing.T) {
	v := New[int](0)
	if v.Len() != 0 {
		t.Fatal("Len")
	}
	v.Range(func(i, x int) bool { t.Fatal("range on empty"); return false })
	c := v.Clone()
	if c.Len() != 0 {
		t.Fatal("clone Len")
	}
}

func TestNewSizedPageGranularity(t *testing.T) {
	v := NewSized[int32](1000, 256)
	if v.PageElems() != 256 {
		t.Fatalf("PageElems = %d, want 256", v.PageElems())
	}
	for i := 0; i < 1000; i++ {
		v.Set(i, int32(i))
	}
	for i := 0; i < 1000; i++ {
		if v.Get(i) != int32(i) {
			t.Fatalf("Get(%d) = %d", i, v.Get(i))
		}
	}
	pages, bytes := v.CopyStats()
	if pages != 4 {
		t.Fatalf("copied pages = %d, want 4 (1000 elems / 256-page)", pages)
	}
	if want := uint64(4 * 256 * 4); bytes != want {
		t.Fatalf("copied bytes = %d, want %d", bytes, want)
	}
}

func TestNewSizedRejectsNonPowerOfTwo(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSized(_, %d) did not panic", bad)
				}
			}()
			NewSized[int](10, bad)
		}()
	}
}

// TestFromPagesCOW is the mmap-overlay contract: a Vec built over
// borrowed read-only pages must never write them — the first Set of a
// page copies it into owned memory, and the borrowed backing stays
// byte-identical.
func TestFromPagesCOW(t *testing.T) {
	const n, ps = 600, 256
	backing := make([]int32, 3*ps)
	for i := range backing {
		backing[i] = int32(i * 7)
	}
	pages := [][]int32{backing[0:ps], backing[ps : 2*ps], backing[2*ps : 2*ps+(n-2*ps)]}
	v := FromPages(n, pages, ps)
	for i := 0; i < n; i++ {
		if v.Get(i) != int32(i*7) {
			t.Fatalf("Get(%d) = %d, want %d", i, v.Get(i), i*7)
		}
	}
	if sh, ow := v.Residency(); sh != 3 || ow != 0 {
		t.Fatalf("residency = (%d shared, %d owned), want (3, 0)", sh, ow)
	}

	v.Set(300, -1)
	if backing[300] != int32(300*7) {
		t.Fatalf("Set wrote through to the borrowed page: backing[300] = %d", backing[300])
	}
	if v.Get(300) != -1 || v.Get(299) != int32(299*7) {
		t.Fatalf("owned copy wrong around index 300: %d %d", v.Get(299), v.Get(300))
	}
	if sh, ow := v.Residency(); sh != 2 || ow != 1 {
		t.Fatalf("residency after Set = (%d shared, %d owned), want (2, 1)", sh, ow)
	}

	// A clone of the overlay shares the still-borrowed pages and the
	// owned one alike; its own writes stay invisible to the parent.
	c := v.Clone()
	c.Set(0, 42)
	if v.Get(0) != 0*7 || backing[0] != 0 {
		t.Fatalf("clone write leaked: parent Get(0)=%d backing[0]=%d", v.Get(0), backing[0])
	}
	if c.Get(0) != 42 {
		t.Fatalf("clone Get(0) = %d, want 42", c.Get(0))
	}
}

// TestFromPagesShortLastPage: the final borrowed page may be shorter
// than the page size; Range must clamp to it and Set must still be able
// to materialize a full owned page from it.
func TestFromPagesShortLastPage(t *testing.T) {
	const n, ps = 300, 256
	backing := make([]int16, n)
	for i := range backing {
		backing[i] = int16(i)
	}
	v := FromPages(n, [][]int16{backing[:ps], backing[ps:n]}, ps)
	var got int
	v.Range(func(i int, x int16) bool {
		if x != int16(i) {
			t.Fatalf("Range(%d) = %d", i, x)
		}
		got++
		return true
	})
	if got != n {
		t.Fatalf("Range visited %d, want %d", got, n)
	}
	v.Set(n-1, -5)
	if v.Get(n-1) != -5 || backing[n-1] != int16(n-1) {
		t.Fatalf("short-page Set misbehaved: %d %d", v.Get(n-1), backing[n-1])
	}
}
