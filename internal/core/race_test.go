//go:build race

package core

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately drops items at random and the
// instrumentation itself allocates — allocation regression tests are
// meaningless there and skip themselves.
const raceEnabled = true
