package core

import (
	"math/rand"
	"testing"

	"repro/internal/ch"
	"repro/internal/graph"
)

func TestGSPCHFigure1(t *testing.T) {
	g := graph.Figure1()
	hierarchy := ch.Build(g)
	q := fig1Query(t, g, 1)
	r, st, ok, err := GSPCH(g, hierarchy, q)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if r.Cost != 20 {
		t.Fatalf("cost=%v", r.Cost)
	}
	if got := witnessNames(g, r); got != "s,a,b,d,t" {
		t.Fatalf("witness=%s", got)
	}
	if st.Results != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

// GSPCH must agree with plain GSP (and hence the brute-force optimum) on
// random instances, including the feasibility verdict.
func TestGSPCHMatchesGSP(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 60; trial++ {
		g, q := randomInstance(rng)
		q.K = 1
		hierarchy := ch.Build(g)
		rd, _, okD, err := GSP(g, q)
		if err != nil {
			t.Fatal(err)
		}
		rc, _, okC, err := GSPCH(g, hierarchy, q)
		if err != nil {
			t.Fatal(err)
		}
		if okD != okC {
			t.Fatalf("trial %d: feasibility disagrees: GSP=%v GSPCH=%v", trial, okD, okC)
		}
		if okD && rd.Cost != rc.Cost {
			t.Fatalf("trial %d: GSP cost %v, GSPCH cost %v", trial, rd.Cost, rc.Cost)
		}
		if okC {
			oracle, err := BruteForce(g, q)
			if err != nil {
				t.Fatal(err)
			}
			verifyRoutes(t, g, q, []Route{rc}, oracle[:1], "GSPCH")
		}
	}
}

func TestGSPCHUnreachable(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddCategory(1, 0)
	b.EnsureCategories(1)
	g := b.MustBuild()
	hierarchy := ch.Build(g)
	_, _, ok, err := GSPCH(g, hierarchy, Query{Source: 0, Target: 2, Categories: []graph.Category{0}, K: 1})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestGSPCHValidation(t *testing.T) {
	g := graph.Figure1()
	hierarchy := ch.Build(g)
	if _, _, _, err := GSPCH(g, hierarchy, Query{Source: -1, Target: 0, K: 1}); err == nil {
		t.Fatal("want validation error")
	}
}
