package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// variantInstance draws a random variant query on a random graph.
func variantInstance(rng *rand.Rand) (*graph.Graph, VariantQuery) {
	g, base := randomInstance(rng)
	q := VariantQuery{
		Source:     base.Source,
		Target:     base.Target,
		Categories: base.Categories,
		K:          base.K,
	}
	return g, q
}

func solveAndCompare(t *testing.T, g *graph.Graph, q VariantQuery, tag string) {
	t.Helper()
	oracle, err := BruteForceVariant(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for provName, prov := range providers(g) {
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, _, err := SolveVariant(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%s/%s: %v", tag, provName, m, err)
			}
			if len(routes) != len(oracle) {
				t.Fatalf("%s/%s/%s: got %d routes, oracle %d\ngot=%v\nwant=%v",
					tag, provName, m, len(routes), len(oracle), routes, oracle)
			}
			for i := range routes {
				if routes[i].Cost != oracle[i].Cost {
					t.Fatalf("%s/%s/%s: route %d cost %v, oracle %v\ngot=%v\nwant=%v",
						tag, provName, m, i, routes[i].Cost, oracle[i].Cost, routes, oracle)
				}
			}
		}
	}
}

func TestNoSourceVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 50; trial++ {
		g, q := variantInstance(rng)
		q.NoSource = true
		solveAndCompare(t, g, q, "no-source")
	}
}

func TestNoTargetVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(654))
	for trial := 0; trial < 50; trial++ {
		g, q := variantInstance(rng)
		q.NoTarget = true
		solveAndCompare(t, g, q, "no-target")
	}
}

func TestNoSourceNoTargetVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	for trial := 0; trial < 50; trial++ {
		g, q := variantInstance(rng)
		if len(q.Categories) < 2 {
			continue
		}
		q.NoSource = true
		q.NoTarget = true
		solveAndCompare(t, g, q, "no-source-no-target")
	}
}

func TestFilteredVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	for trial := 0; trial < 50; trial++ {
		g, q := variantInstance(rng)
		// Admit only even vertices in the first category.
		q.Filters = Filters{q.Categories[0]: func(v graph.Vertex) bool { return v%2 == 0 }}
		solveAndCompare(t, g, q, "filtered")
	}
}

func TestFilterActuallyFilters(t *testing.T) {
	// On Figure 1, restrict RE to vertex e only: the best route must use
	// e (cost 21) instead of b (cost 20).
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	e, _ := g.VertexByName("e")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	q := VariantQuery{
		Source: s, Target: tv,
		Categories: []graph.Category{ma, re, ci},
		K:          2,
		Filters:    Filters{re: func(v graph.Vertex) bool { return v == e }},
	}
	routes, _, err := SolveVariant(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) == 0 || routes[0].Cost != 21 {
		t.Fatalf("routes=%v, want best cost 21 via e", routes)
	}
	for _, r := range routes {
		if r.Witness[2] != e {
			t.Fatalf("route uses non-admitted restaurant: %v", r)
		}
	}
}

func TestNoSourceFigure1(t *testing.T) {
	// Without a fixed source, the best ⟨MA,RE,CI⟩ route to t starts at
	// whichever mall minimizes the remaining trip: c→b→d→t = 5+3+4 = 12.
	g := graph.Figure1()
	tv, _ := g.VertexByName("t")
	c, _ := g.VertexByName("c")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	q := VariantQuery{
		NoSource: true, Target: tv,
		Categories: []graph.Category{ma, re, ci}, K: 1,
	}
	routes, _, err := SolveVariant(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 1 || routes[0].Cost != 12 || routes[0].Witness[0] != c {
		t.Fatalf("routes=%v, want ⟨c,b,d,t⟩(12)", routes)
	}
}

func TestNoTargetFigure1(t *testing.T) {
	// Without a destination, the best ⟨MA,RE,CI⟩ route from s is
	// s→a→b→d = 8+5+3 = 16.
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	q := VariantQuery{
		Source: s, NoTarget: true,
		Categories: []graph.Category{ma, re, ci}, K: 2,
	}
	// StarKOSR silently degrades to PruningKOSR (Section IV-C).
	routes, st, err := SolveVariant(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	if st.Method != MethodPK {
		t.Fatalf("method=%v, want degradation to PruningKOSR", st.Method)
	}
	if len(routes) != 2 || routes[0].Cost != 16 {
		t.Fatalf("routes=%v, want best ⟨s,a,b,d⟩(16)", routes)
	}
}

func TestVariantValidation(t *testing.T) {
	g := graph.Figure1()
	prov := NewLabelProvider(g, nil)
	bad := []VariantQuery{
		{Source: -1, Target: 0, Categories: []graph.Category{0}, K: 1},
		{Source: 0, Target: -1, Categories: []graph.Category{0}, K: 1},
		{Source: 0, Target: 1, Categories: []graph.Category{0}, K: 0},
		{Source: 0, Target: 1, K: 1},                                            // no categories
		{NoSource: true, NoTarget: true, Categories: []graph.Category{0}, K: 1}, // too short
		{Source: 0, Target: 1, Categories: []graph.Category{99}, K: 1},
	}
	for i, q := range bad {
		if _, _, err := SolveVariant(context.Background(), g, q, prov, Options{}); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestUnweightedGraphVariant(t *testing.T) {
	// "For KOSR on unweighted graphs, we simply set the weights of all
	// edges to 1" (Section IV-C): verify exactness on a unit-weight
	// small-world-like graph.
	rng := rand.New(rand.NewSource(42))
	n := 30
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(3)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), 1)
	}
	for v := 0; v < n; v++ {
		b.AddCategory(graph.Vertex(v), graph.Category(rng.Intn(3)))
	}
	g := b.MustBuild()
	q := Query{Source: 0, Target: graph.Vertex(n - 1), Categories: []graph.Category{0, 1, 2}, K: 5}
	oracle, err := BruteForce(g, q)
	if err != nil {
		t.Fatal(err)
	}
	routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	verifyRoutes(t, g, q, routes, oracle, "unweighted")
}
