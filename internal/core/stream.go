package core

import (
	"context"
	"time"

	"repro/internal/graph"
)

// Searcher streams sequenced routes one at a time in nondecreasing cost
// order, without a fixed k: PNE-family searches are inherently
// progressive, so the (i+1)-th route costs only the additional expansion
// beyond the i-th. Useful for paginated interfaces ("show me more
// alternatives") where the final k is unknown up front.
//
// A Searcher is single-use and not safe for concurrent use. It holds a
// query scratch checked out of the provider's pool for its whole
// lifetime; the scratch is returned when the stream ends (exhaustion or
// budget error) or when Close is called on an abandoned stream.
type Searcher struct {
	e       *engine
	nn      NNFinder
	start   time.Time
	done    bool
	doneErr error
}

// NewSearcher starts a streaming search for the query. q.K is ignored:
// routes are produced on demand until the witness space is exhausted or
// a budget in opt trips. Cancelling ctx ends the stream: the pending
// Next returns ctx.Err() within one pop-loop check interval and the
// scratch goes back to the provider's pool.
func NewSearcher(ctx context.Context, g *graph.Graph, q Query, prov Provider, opt Options) (*Searcher, error) {
	q.K = 1 // satisfy validation; the stream is unbounded
	e, nn, err := newStandardEngine(ctx, g, q, prov, opt)
	if err != nil {
		return nil, err
	}
	// Seeding runs caller-reachable code (the distance oracle, variant
	// predicates); a panic there must not strand the checked-out scratch
	// on the unwind.
	seeded := false
	defer func() {
		if !seeded {
			e.releaseScratch()
		}
	}()
	e.seed()
	seeded = true
	return &Searcher{e: e, nn: nn, start: time.Now()}, nil
}

// NewVariantSearcher starts a streaming search for a Section IV-C
// variant query. q.K is ignored, as with NewSearcher; StarKOSR degrades
// to PruningKOSR when NoTarget disables the estimate.
func NewVariantSearcher(ctx context.Context, g *graph.Graph, q VariantQuery, prov Provider, opt Options) (*Searcher, error) {
	q.K = 1 // satisfy validation; the stream is unbounded
	e, nn, err := newVariantEngine(ctx, g, q, prov, opt)
	if err != nil {
		return nil, err
	}
	// Variant seeding is the riskier path: user-supplied Filters
	// predicates run under it. Same unwind guard as NewSearcher.
	seeded := false
	defer func() {
		if !seeded {
			e.releaseScratch()
		}
	}()
	e.seed()
	seeded = true
	return &Searcher{e: e, nn: nn, start: time.Now()}, nil
}

// Next returns the next cheapest route. ok is false when no further
// feasible route exists. After an ErrBudgetExceeded or a context error
// the stream is exhausted.
func (s *Searcher) Next() (Route, bool, error) {
	if s.done {
		return Route{}, false, s.doneErr
	}
	// A panic out of the search must not strand the checked-out scratch:
	// mark the stream done and release on the unwind, then re-panic.
	// (releaseScratch is idempotent, so the normal exhaustion path below
	// stays as it is.)
	panicking := true
	defer func() {
		if panicking && !s.done {
			s.done = true
			s.e.releaseScratch()
		}
	}()
	// Poll the context at result granularity too: a cancelled stream
	// must not hand out routes that were computed before the
	// cancellation was observed by the pop loop.
	var r Route
	var ok bool
	err := s.e.ctxErr()
	if err == nil {
		r, ok, err = s.e.nextResult()
	}
	s.e.stats.NNQueries = s.nn.Queries()
	s.e.stats.Results = len(s.e.results)
	s.e.stats.Total = time.Since(s.start)
	if !ok || err != nil {
		s.done, s.doneErr = true, err
		s.e.releaseScratch()
	}
	panicking = false
	return r, ok, err
}

// Close releases the search state of a stream abandoned before
// exhaustion. It is safe to call multiple times and after exhaustion;
// Next returns no further routes afterwards.
func (s *Searcher) Close() {
	if !s.done {
		s.done = true
		s.e.releaseScratch()
	}
}

// Stats returns the running search statistics.
func (s *Searcher) Stats() *Stats { return s.e.stats }
