package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
)

func TestSourceEqualsTarget(t *testing.T) {
	// s == t: the route must leave through the categories and return.
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	ma, _ := g.CategoryByName("MA")
	q := Query{Source: s, Target: s, Categories: []graph.Category{ma}, K: 2}
	oracle, err := BruteForce(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for provName, prov := range providers(g) {
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%s: %v", provName, m, err)
			}
			verifyRoutes(t, g, q, routes, oracle, provName+"/"+m.String())
		}
	}
	// Best: s→a (8), a→b→s (10) = 18 via a; or s→c (10), c→b→s (10) = 20.
	if len(oracle) == 0 || oracle[0].Cost != 18 {
		t.Fatalf("oracle=%v, want best 18", oracle)
	}
}

func TestZeroWeightEdgesKOSR(t *testing.T) {
	// Zero-weight edges (free transfers) must not break anything.
	b := graph.NewBuilder(5, true)
	b.AddEdge(0, 1, 0).AddEdge(1, 2, 0).AddEdge(2, 3, 5).AddEdge(3, 4, 0)
	b.AddEdge(0, 3, 100)
	b.AddCategory(2, 0)
	b.AddCategory(3, 1)
	b.EnsureCategories(2)
	g := b.MustBuild()
	q := Query{Source: 0, Target: 4, Categories: []graph.Category{0, 1}, K: 1}
	oracle, err := BruteForce(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for provName, prov := range providers(g) {
		routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodSK})
		if err != nil {
			t.Fatalf("%s: %v", provName, err)
		}
		verifyRoutes(t, g, q, routes, oracle, provName)
		if routes[0].Cost != 5 {
			t.Fatalf("%s: cost %v, want 5 (0+0+5+0)", provName, routes[0].Cost)
		}
	}
}

func TestCategoryContainingSourceAndTarget(t *testing.T) {
	// s and t themselves carry the queried category; witnesses may visit
	// other category vertices or loop back.
	rng := rand.New(rand.NewSource(31))
	b := graph.NewBuilder(12, true)
	b.EnsureCategories(1)
	for i := 0; i < 40; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(12)), graph.Vertex(rng.Intn(12)), float64(1+rng.Intn(9)))
	}
	b.AddCategory(0, 0)  // source in category
	b.AddCategory(11, 0) // target in category
	b.AddCategory(5, 0)
	g := b.MustBuild()
	q := Query{Source: 0, Target: 11, Categories: []graph.Category{0, 0}, K: 6}
	oracle, err := BruteForce(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for provName, prov := range providers(g) {
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%s: %v", provName, m, err)
			}
			verifyRoutes(t, g, q, routes, oracle, provName+"/"+m.String())
		}
	}
}

func TestMaxDurationBudget(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 3)
	// A zero-duration deadline must trip immediately but still return
	// cleanly.
	_, st, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil),
		Options{Method: MethodKPNE, MaxDuration: time.Nanosecond})
	if !errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrExaminedExceeded) {
		t.Fatalf("err=%v, want the wall-clock ErrBudgetExceeded", err)
	}
	if st == nil || st.Results != 0 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestParallelEdgesAndSelfLoops(t *testing.T) {
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 9).AddEdge(0, 1, 3).AddEdge(0, 1, 7) // parallel edges
	b.AddEdge(1, 1, 1)                                   // self loop
	b.AddEdge(1, 2, 2).AddEdge(2, 3, 2)
	b.AddCategory(1, 0)
	b.AddCategory(2, 1)
	b.EnsureCategories(2)
	g := b.MustBuild()
	q := Query{Source: 0, Target: 3, Categories: []graph.Category{0, 1}, K: 1}
	for provName, prov := range providers(g) {
		routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodSK})
		if err != nil {
			t.Fatalf("%s: %v", provName, err)
		}
		if len(routes) != 1 || routes[0].Cost != 7 { // 3 + 2 + 2
			t.Fatalf("%s: routes=%v, want cost 7", provName, routes)
		}
	}
}

func TestLargeKExhaustsAllWitnesses(t *testing.T) {
	// Dominance release chains must eventually surface every witness.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g, q := randomInstance(rng)
		q.K = 1000 // far more than exist
		oracle, err := BruteForce(g, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{MethodPK, MethodSK} {
			routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			if len(routes) != len(oracle) {
				t.Fatalf("trial %d %s: %d routes, oracle %d", trial, m, len(routes), len(oracle))
			}
		}
	}
}

func TestTraceWithCustomNames(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 1)
	trace := &Trace{Names: func(v graph.Vertex) string { return "X" }}
	_, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Steps) == 0 || trace.Steps[0].Queue[0].Witness != "X" {
		t.Fatalf("trace=%v", trace.Steps)
	}
}
