package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// TestDijIterRecyclingAllocs is the allocation regression guard for the
// Dijkstra-backed NN finder (PR10): once a pooled scratch has served one
// query, subsequent queries touching the same number of (vertex,
// category) slots must reuse the recycled KNN iterators — maps, heap, and
// neighbour slice included — instead of rebuilding them. The seed paid a
// dense per-query cat-table plus fresh iterators (two map allocations
// each) per slot.
func TestDijIterRecyclingAllocs(t *testing.T) {
	g := graph.Figure1()
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	n := g.NumVertices()
	s := NewScratch(n)
	query := func() {
		s.begin()
		for v := 0; v < n; v++ {
			for _, cat := range []graph.Category{ma, re} {
				it := s.dijIter(g, graph.Vertex(v), cat)
				it.Get(1)
				it.Get(2)
			}
		}
		s.release()
	}
	query() // cold: builds rows and iterators
	avg := testing.AllocsPerRun(200, query)
	// A warm query's only allocations are occasional slice growths of the
	// shared journals; per-slot iterator state must not be rebuilt.
	if avg > 1.0 {
		t.Fatalf("warm dijIter query allocates %.2f objects/op; want ≤ 1", avg)
	}
}

// TestDijkstraSolveWarmAllocs bounds the end-to-end allocations of a
// Dijkstra-provider query on a warm pool. The bound is deliberately
// loose — Solve allocates stats, results, and engine shells — but it is
// far below what one per-query dense cat-table alone would cost, so a
// regression to per-query iterator state trips it.
func TestDijkstraSolveWarmAllocs(t *testing.T) {
	g := graph.Figure1()
	prov := &DijkstraProvider{Graph: g}
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	q := Query{Source: s, Target: tv, Categories: []graph.Category{ma, re}, K: 2}
	run := func() {
		if _, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodKPNE}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the provider's scratch pool
	avg := testing.AllocsPerRun(100, run)
	if avg > 60 {
		t.Fatalf("warm Dijkstra-provider Solve allocates %.1f objects/op; want ≤ 60", avg)
	}
}

// TestPrewarmCatRows pins the batch-aware prewarming contract
// (Options.PrewarmCatRows): the engine pre-allocates that many NN
// iterator rows — label or Dijkstra, per provider — before the search,
// plus estimated-NN rows for the A*-guided methods.
func TestPrewarmCatRows(t *testing.T) {
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	q := Query{Source: s, Target: tv, Categories: []graph.Category{ma}, K: 1}
	const rows = 3

	countAllocated := func(tbl [][]iterSlot) int {
		n := 0
		for _, r := range tbl {
			if r != nil {
				n++
			}
		}
		return n
	}

	e, _, err := newStandardEngine(context.Background(), g, q, NewLabelProvider(g, nil),
		Options{Method: MethodKPNE, PrewarmCatRows: rows})
	if err != nil {
		t.Fatal(err)
	}
	if got := countAllocated(e.scratch.nnRows); got < rows {
		t.Errorf("label provider: %d NN rows allocated before search, want ≥ %d", got, rows)
	}
	e.releaseScratch()

	dijProv := &DijkstraProvider{Graph: g}
	e, _, err = newStandardEngine(context.Background(), g, q, dijProv,
		Options{Method: MethodKPNE, PrewarmCatRows: rows})
	if err != nil {
		t.Fatal(err)
	}
	djAllocated := 0
	for _, r := range e.scratch.djRows {
		if r != nil {
			djAllocated++
		}
	}
	if djAllocated < rows {
		t.Errorf("dijkstra provider: %d kNN rows allocated before search, want ≥ %d", djAllocated, rows)
	}
	e.releaseScratch()

	e, _, err = newStandardEngine(context.Background(), g, q, NewLabelProvider(g, nil),
		Options{Method: MethodSK, PrewarmCatRows: rows})
	if err != nil {
		t.Fatal(err)
	}
	enAllocated := 0
	for _, r := range e.scratch.enRows {
		if r != nil {
			enAllocated++
		}
	}
	if enAllocated < rows {
		t.Errorf("StarKOSR: %d estimated-NN rows allocated before search, want ≥ %d", enAllocated, rows)
	}
	e.releaseScratch()
}
