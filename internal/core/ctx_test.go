package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestSolveCtxCancelReleasesScratch pins the cancellation contract on
// the blocking path: a Solve whose context is already cancelled must
// abort at the first pop-loop check, report ctx.Err(), and hand its
// scratch back to the provider's pool (asserted by pointer-identical
// pool reuse).
func TestSolveCtxCancelReleasesScratch(t *testing.T) {
	g := scratchTestGraph(16, 16, 4, 7)
	prov := NewLabelProvider(g, nil)
	q := scratchTestQueries(g, 1, 3)[0]

	// Seed the pool with exactly one scratch so we can observe reuse.
	s0 := prov.AcquireScratch()
	prov.ReleaseScratch(s0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	routes, _, err := Solve(ctx, g, q, prov, Options{Method: MethodSK})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if len(routes) != 0 {
		t.Fatalf("cancelled before the first pop, got routes %v", routes)
	}
	if !raceEnabled { // sync.Pool drops items at random under -race
		if s1 := prov.AcquireScratch(); s1 != s0 {
			t.Error("scratch was not returned to the pool after cancellation")
		} else {
			prov.ReleaseScratch(s1)
		}
	}

	// A live context must leave results untouched.
	want, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("control query found no routes")
	}
}

// TestSolveCtxCancelMidSearch cancels a context while an effectively
// unbounded KPNE enumeration is running and requires the engine to
// return promptly — within one pop-loop check interval, far below the
// 30s backstop — rather than draining the witness space.
func TestSolveCtxCancelMidSearch(t *testing.T) {
	g := scratchTestGraph(32, 32, 5, 11)
	prov := NewLabelProvider(g, nil)
	q := scratchTestQueries(g, 1, 5)[0]
	// Exhaustive: KPNE enumerates the whole witness space of a long
	// category sequence (~20 vertices per category, 8 levels), which
	// takes far longer than the cancellation latency under test.
	q.Categories = []graph.Category{0, 1, 2, 3, 0, 1, 2, 3}
	q.K = 1 << 30

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := Solve(ctx, g, q, prov, Options{Method: MethodKPNE, MaxDuration: 30 * time.Second})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v after %v, want context.Canceled", err, elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the pop loop is not polling the context", elapsed)
	}
}

// TestSolveCtxDeadline covers the deadline flavour: a context deadline
// acts as a wall-clock budget, so the search degrades to a truncated
// result (ErrBudgetExceeded, partial routes preserved) rather than
// surfacing DeadlineExceeded — only explicit cancellation does that.
func TestSolveCtxDeadline(t *testing.T) {
	g := scratchTestGraph(32, 32, 5, 9)
	prov := NewLabelProvider(g, nil)
	q := scratchTestQueries(g, 1, 5)[0]
	q.Categories = []graph.Category{0, 1, 2, 3, 0, 1, 2, 3}
	q.K = 1 << 30

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := Solve(ctx, g, q, prov, Options{Method: MethodKPNE})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err=%v, want ErrBudgetExceeded (ctx deadline = wall-clock budget)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
}

// TestSearcherCtxCancelReleasesScratch is the streaming half of the
// cancellation contract: cancelling mid-stream makes the pending Next
// return ctx.Err(), marks the stream exhausted, and releases the
// scratch back to the pool exactly once.
func TestSearcherCtxCancelReleasesScratch(t *testing.T) {
	g := scratchTestGraph(16, 16, 4, 21)
	prov := NewLabelProvider(g, nil)
	q := scratchTestQueries(g, 1, 3)[0]

	s0 := prov.AcquireScratch()
	prov.ReleaseScratch(s0)

	ctx, cancel := context.WithCancel(context.Background())
	sr, err := NewSearcher(ctx, g, q, prov, Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := sr.Next(); err != nil || !ok {
		t.Fatalf("first Next: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, ok, err := sr.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Next: ok=%v err=%v, want context.Canceled", ok, err)
	}
	// The stream must stay exhausted, and Close must stay a no-op.
	if _, ok, _ := sr.Next(); ok {
		t.Fatal("Next yielded a route after cancellation")
	}
	sr.Close()
	if !raceEnabled { // sync.Pool drops items at random under -race
		if s1 := prov.AcquireScratch(); s1 != s0 {
			t.Error("scratch was not returned to the pool after stream cancellation")
		} else {
			prov.ReleaseScratch(s1)
		}
	}
}

// TestVariantSearcherMatchesSolveVariant pins the new streaming variant
// path: a no-source stream must reproduce SolveVariant's routes in
// order, and cancelling it must release the scratch like the standard
// stream.
func TestVariantSearcherMatchesSolveVariant(t *testing.T) {
	g := scratchTestGraph(16, 16, 4, 5)
	prov := NewLabelProvider(g, nil)
	base := scratchTestQueries(g, 1, 3)[0]
	vq := VariantQuery{
		NoSource:   true,
		Target:     base.Target,
		Categories: base.Categories,
		K:          5,
	}
	want, _, err := SolveVariant(context.Background(), g, vq, prov, Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewVariantSearcher(context.Background(), g, vq, prov, Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	var got []Route
	for len(got) < len(want) {
		r, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	sr.Close()
	if !routesEqual(got, want) {
		t.Fatalf("variant stream diverges from SolveVariant:\nstream: %v\nsolve:  %v", got, want)
	}
}
