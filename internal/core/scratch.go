package core

import (
	"math"
	"sync"
	"unsafe"

	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/pq"
)

// Scratch is the reusable per-query search state of one engine run: the
// route-node arena, the global queue, the dense HT≺/HT≻ dominance tables
// (Definition 6), and the nearest-neighbour iterator caches of the
// label-backed finders. All of it is O(|V|)-sized, which is why the seed
// allocated (and zeroed) tens of megabytes per query at country scale.
//
// A Scratch is reused across queries through epoch stamping: every slot
// of the dense tables carries the epoch of the query that last wrote it,
// and begin() bumps the scratch epoch, so stale slots read as empty
// without any O(|V|) zeroing. Objects parked in slots (parked-route
// heaps, NN iterators, estimated-NN states) are journaled on first touch
// and recycled into free lists when the query releases the scratch, so
// steady-state queries perform no O(|V|) allocation at all.
//
// A Scratch serves one query at a time; concurrent queries each check
// one out of the owning provider's pool (see ScratchProvider), giving
// every server worker its own scratch.
type Scratch struct {
	nVerts int
	epoch  uint32

	arena nodeArena
	// The engine's global route queue, in both forms: the 4-ary heap
	// serves the dominance-pruned methods (whose reconsider step
	// re-inserts below the pop frontier) and the monotone bucket queue
	// serves the exhaustive expansions. queueFor picks one per query; the
	// other stays empty. The bucket queue is created on first use so
	// heap-only workloads never pay for it.
	heap   *pq.Heap[qItem]
	bucket *pq.BucketQueue[qItem]

	// Dominance state, one level per witness size.
	dom        []domLevel
	domHeapLog []slotRef
	freeHeaps  []*pq.Heap[qItem]

	// FindNN iterator cache rows, one per distinct query category.
	nnIdx     rowIndex
	nnRows    [][]iterSlot
	nnLog     []slotRef
	freeIters []*invindex.NNIterator

	// FindNEN state rows (StarKOSR), one per distinct query category.
	enIdx   rowIndex
	enRows  [][]enSlot
	enLog   []slotRef
	freeENs []*enState

	// Incremental Dijkstra kNN rows (the -Dij variants), one per distinct
	// query category.
	djIdx    rowIndex
	djRows   [][]knnSlot
	djLog    []slotRef
	freeKNNs []*dijkstra.KNN
}

// rowIndex assigns the distinct categories of the current query to row
// ordinals. Keying rows by the query's categories (at most |C| of them)
// rather than by global category id keeps the scratch footprint
// (|C|+2)·|V|, not |S|·|V|; the linear scan is shorter than one hash
// lookup. Both the FindNN and FindNEN tables share this logic.
type rowIndex struct {
	cats []graph.Category
	used int
}

func (ri *rowIndex) reset() { ri.used = 0 }

// claim returns the ordinal of the row serving cat, assigning the next
// unused row on first sight.
func (ri *rowIndex) claim(cat graph.Category) int {
	for i := 0; i < ri.used; i++ {
		if ri.cats[i] == cat {
			return i
		}
	}
	if ri.used == len(ri.cats) {
		ri.cats = append(ri.cats, cat)
	} else {
		ri.cats[ri.used] = cat
	}
	ri.used++
	return ri.used - 1
}

type domNodeSlot struct {
	node  *routeNode
	epoch uint32
}

type domHeapSlot struct {
	h     *pq.Heap[qItem]
	epoch uint32
}

// domLevel is the dominance state of one witness size: slot v of nodes
// holds the route dominating (v, size) and slot v of heaps the routes it
// dominates (HT≺ and HT≻). Slices are allocated on first touch and kept.
type domLevel struct {
	nodes []domNodeSlot
	heaps []domHeapSlot
}

// slotRef journals one touched slot of a row-indexed table so release()
// can recycle the object parked there without an O(|V|) sweep.
type slotRef struct {
	row int32
	v   graph.Vertex
}

// iterSlot caches the FindNN iterator of (v, row category).
type iterSlot struct {
	it    *invindex.NNIterator
	epoch uint32
}

// enSlot caches the FindNEN state of (v, row category).
type enSlot struct {
	st    *enState
	epoch uint32
}

// knnSlot caches the incremental Dijkstra kNN iterator of (v, row
// category).
type knnSlot struct {
	it    *dijkstra.KNN
	epoch uint32
}

// globalQueueArity is the arity of the engine's global route queue. The
// queue is the KPNE bottleneck (exhaustive expansion grows it to
// millions of entries at FLA scale), and every pop pays one sift-down
// over the full depth: a 4-ary heap halves that depth, trading one
// extra comparison per level for about half the cache misses. lessQItem
// is a total order (ties break on insertion sequence), so the pop
// sequence — and therefore every result — is identical to the binary
// heap's. The pop-cost delta is recorded in BENCH_PR4.json.
const globalQueueArity = 4

// NewScratch returns an empty scratch for graphs of nVerts vertices.
// Engines allocate one internally when the provider does not pool them.
func NewScratch(nVerts int) *Scratch {
	return &Scratch{nVerts: nVerts, heap: pq.NewHeapD[qItem](lessQItem, globalQueueArity)}
}

// ScratchProvider is implemented by providers that own a pool of
// reusable scratches. Engines check one out per query and return it when
// the query completes, so a bounded set of workers converges on one
// warm scratch each.
type ScratchProvider interface {
	Provider
	// AcquireScratch checks a scratch out of the pool, ready for one
	// query (its epoch already advanced).
	AcquireScratch() *Scratch
	// ReleaseScratch cleans the scratch and returns it to the pool. It
	// must be called exactly once per acquire, after which the caller
	// must not touch the scratch again.
	ReleaseScratch(*Scratch)
}

// begin readies the scratch for one query: the epoch advances so every
// dense slot written by earlier queries reads as empty.
func (s *Scratch) begin() {
	if s.epoch == math.MaxUint32 {
		// Epoch wrap (once per 2^32 queries): stale slots from 4 billion
		// queries ago would read as current, so pay one full clear.
		s.hardReset()
	}
	s.epoch++
	s.nnIdx.reset()
	s.enIdx.reset()
	s.djIdx.reset()
}

// queueFor returns the global route queue for one query. QueueAuto maps
// to the bucket queue for the monotone methods (no dominance: KPNE and
// the KPNE+A* ablation pop non-decreasing keys) and to the heap for the
// dominance-pruned ones (reconsider re-inserts parked routes below the
// frontier, which the bucket queue only handles through its slower
// overflow path). Both pop in the identical (key, seq) order.
func (s *Scratch) queueFor(kind QueueKind, useDominance bool) routeQueue {
	if kind == QueueAuto {
		if useDominance {
			kind = QueueHeap
		} else {
			kind = QueueBucket
		}
	}
	if kind == QueueBucket {
		if s.bucket == nil {
			s.bucket = pq.NewBucketQueue[qItem](lessQItem, qItemKey)
		}
		return s.bucket
	}
	return s.heap
}

// release cleans up after a query: parked objects return to their free
// lists, the queue and arena reset. Dense table slots keep their stale
// contents — the next begin()'s epoch bump invalidates them for free.
func (s *Scratch) release() {
	for _, ref := range s.domHeapLog {
		sl := &s.dom[ref.row].heaps[ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		h := sl.h
		h.Clear()
		s.freeHeaps = append(s.freeHeaps, h)
		sl.h = nil
	}
	s.domHeapLog = s.domHeapLog[:0]
	for _, ref := range s.nnLog {
		sl := &s.nnRows[ref.row][ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		s.freeIters = append(s.freeIters, sl.it)
		sl.it = nil
	}
	s.nnLog = s.nnLog[:0]
	for _, ref := range s.enLog {
		sl := &s.enRows[ref.row][ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		st := sl.st
		st.reset()
		s.freeENs = append(s.freeENs, st)
		sl.st = nil
	}
	s.enLog = s.enLog[:0]
	for _, ref := range s.djLog {
		sl := &s.djRows[ref.row][ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		s.freeKNNs = append(s.freeKNNs, sl.it)
		sl.it = nil
	}
	s.djLog = s.djLog[:0]
	s.heap.Clear()
	if s.bucket != nil {
		s.bucket.Clear()
	}
	s.arena.reset()
}

// DefaultMaxScratchBytes is the per-scratch retained-footprint ceiling
// applied by the providers' pools when MaxScratchBytes is zero. A warm
// scratch keeps its high-water footprint — touched dominance levels plus
// per-category iterator rows, each O(|V|) — so without a ceiling a burst
// of wide queries would pin that worst case in every pooled scratch
// forever. 256 MiB comfortably holds country-scale road networks
// (|V| ≈ 10⁷ costs ~40 MiB per dominance level) while bounding
// pool growth at millions of vertices.
const DefaultMaxScratchBytes = 256 << 20

// FootprintBytes estimates the bytes the scratch retains between
// queries: the dense dominance tables, the NN/EN iterator rows, the
// route-node arena, the global queue, and the recycled objects parked on
// the free lists. The estimate intentionally counts capacities, not
// lengths — a released scratch is empty but keeps its backing arrays.
func (s *Scratch) FootprintBytes() int64 {
	var b int64
	for i := range s.dom {
		b += int64(cap(s.dom[i].nodes)) * int64(unsafe.Sizeof(domNodeSlot{}))
		b += int64(cap(s.dom[i].heaps)) * int64(unsafe.Sizeof(domHeapSlot{}))
	}
	for i := range s.nnRows {
		b += int64(cap(s.nnRows[i])) * int64(unsafe.Sizeof(iterSlot{}))
	}
	for i := range s.enRows {
		b += int64(cap(s.enRows[i])) * int64(unsafe.Sizeof(enSlot{}))
	}
	for i := range s.djRows {
		b += int64(cap(s.djRows[i])) * int64(unsafe.Sizeof(knnSlot{}))
	}
	b += int64(len(s.arena.chunks)) * arenaChunkSize * int64(unsafe.Sizeof(routeNode{}))
	b += int64(s.heap.Cap()) * int64(unsafe.Sizeof(qItem{}))
	if s.bucket != nil {
		b += int64(s.bucket.Cap()) * int64(unsafe.Sizeof(qItem{}))
	}
	for _, h := range s.freeHeaps {
		b += int64(h.Cap()) * int64(unsafe.Sizeof(qItem{}))
	}
	for _, it := range s.freeIters {
		b += it.MemFootprint()
	}
	for _, st := range s.freeENs {
		b += int64(cap(st.enl))*int64(unsafe.Sizeof(Neighbor{})) +
			int64(st.enq.Cap())*int64(unsafe.Sizeof(enCand{}))
	}
	for _, it := range s.freeKNNs {
		b += it.MemFootprint()
	}
	return b
}

// poolScratch returns s to pool unless its retained footprint exceeds
// budget (0 = DefaultMaxScratchBytes, negative = unlimited), in which
// case s is dropped for the GC so the pool converges back to lean
// scratches after a burst of wide queries.
func poolScratch(pool *sync.Pool, s *Scratch, budget int64) {
	if budget == 0 {
		budget = DefaultMaxScratchBytes
	}
	if budget > 0 && s.FootprintBytes() > budget {
		return
	}
	pool.Put(s)
}

// prewarmPool stocks pool with n scratches for nVerts-vertex graphs,
// each prewarmed for `levels` dominance levels and `cats` category
// rows (Dijkstra kNN rows too when dij is set). Backs the providers'
// Prewarm methods.
func prewarmPool(pool *sync.Pool, nVerts, n, levels, cats int, dij bool) {
	for i := 0; i < n; i++ {
		s := NewScratch(nVerts)
		s.prewarm(levels, cats, dij)
		pool.Put(s)
	}
}

// inheritScratches moves every scratch parked in src into dst,
// unbinding stale index references on the way, and reports how many
// moved. Scratches sized for a different graph are dropped. Both pools
// are concurrency-safe, so racing releases into src merely escape the
// handoff.
func inheritScratches(dst, src *sync.Pool, nVerts int) int {
	moved := 0
	for {
		s, _ := src.Get().(*Scratch)
		if s == nil {
			return moved
		}
		if s.nVerts != nVerts {
			continue
		}
		s.unbindIndexRefs()
		dst.Put(s)
		moved++
	}
}

// hardReset zeroes every dense slot; only needed at epoch wrap.
func (s *Scratch) hardReset() {
	for i := range s.dom {
		clearSlice(s.dom[i].nodes)
		clearSlice(s.dom[i].heaps)
	}
	for i := range s.nnRows {
		clearSlice(s.nnRows[i])
	}
	for i := range s.enRows {
		clearSlice(s.enRows[i])
	}
	for i := range s.djRows {
		clearSlice(s.djRows[i])
	}
	s.epoch = 0
}

func clearSlice[T any](sl []T) {
	var zero T
	for i := range sl {
		sl[i] = zero
	}
}

// prewarmHeapCap is the global-queue capacity a prewarmed scratch
// starts with — enough for typical top-k searches to never regrow it.
const prewarmHeapCap = 4096

// prewarm pre-sizes the scratch's lazily-grown O(|V|) state so the
// first query served by it skips the cold-path allocations entirely:
// `levels` dominance levels (nodes and heap slots), `cats` FindNN
// iterator rows and FindNEN state rows (plus Dijkstra kNN rows when dij
// is set), one arena chunk, and global queue capacity. The tables start
// zeroed, which the epoch-stamping scheme reads as empty — exactly the
// state a first query expects.
func (s *Scratch) prewarm(levels, cats int, dij bool) {
	s.ensureLevels(levels)
	for i := 0; i < levels; i++ {
		L := &s.dom[i]
		if L.nodes == nil {
			L.nodes = make([]domNodeSlot, s.nVerts)
		}
		if L.heaps == nil {
			L.heaps = make([]domHeapSlot, s.nVerts)
		}
	}
	s.prewarmNNRows(cats)
	s.prewarmENRows(cats)
	if dij {
		s.prewarmDijRows(cats)
	}
	if len(s.arena.chunks) == 0 {
		s.arena.chunks = append(s.arena.chunks, make([]routeNode, arenaChunkSize))
	}
	s.heap.Grow(prewarmHeapCap)
}

// prewarmNNRows ensures the first n FindNN iterator rows are allocated.
// Rows are positional — the rowIndex maps each query's distinct
// categories to ordinals 0..n-1 — so pre-allocating the first n rows
// covers any query (or batch) touching up to n distinct categories.
func (s *Scratch) prewarmNNRows(n int) {
	for len(s.nnRows) < n {
		s.nnRows = append(s.nnRows, nil)
	}
	for i := 0; i < n; i++ {
		if s.nnRows[i] == nil {
			s.nnRows[i] = make([]iterSlot, s.nVerts)
		}
	}
}

// prewarmENRows ensures the first n FindNEN state rows are allocated.
func (s *Scratch) prewarmENRows(n int) {
	for len(s.enRows) < n {
		s.enRows = append(s.enRows, nil)
	}
	for i := 0; i < n; i++ {
		if s.enRows[i] == nil {
			s.enRows[i] = make([]enSlot, s.nVerts)
		}
	}
}

// prewarmDijRows ensures the first n Dijkstra kNN rows are allocated.
func (s *Scratch) prewarmDijRows(n int) {
	for len(s.djRows) < n {
		s.djRows = append(s.djRows, nil)
	}
	for i := 0; i < n; i++ {
		if s.djRows[i] == nil {
			s.djRows[i] = make([]knnSlot, s.nVerts)
		}
	}
}

// ensureLevels grows the dominance table to at least n levels.
func (s *Scratch) ensureLevels(n int) {
	for len(s.dom) < n {
		s.dom = append(s.dom, domLevel{})
	}
}

// dominatingNode returns the route dominating (v, lvl+1) in the current
// query, or nil.
func (s *Scratch) dominatingNode(lvl int, v graph.Vertex) *routeNode {
	L := &s.dom[lvl]
	if L.nodes == nil {
		return nil
	}
	sl := L.nodes[v]
	if sl.epoch != s.epoch {
		return nil
	}
	return sl.node
}

// setDominatingNode stores (or, with nil, clears) the dominator of
// (v, lvl+1).
func (s *Scratch) setDominatingNode(lvl int, v graph.Vertex, n *routeNode) {
	L := &s.dom[lvl]
	if L.nodes == nil {
		L.nodes = make([]domNodeSlot, s.nVerts)
	}
	L.nodes[v] = domNodeSlot{node: n, epoch: s.epoch}
}

// parkHeap returns the HT≻ heap of slot (lvl, v), creating (or
// recycling) one when the slot is empty this query.
func (s *Scratch) parkHeap(lvl int, v graph.Vertex) *pq.Heap[qItem] {
	L := &s.dom[lvl]
	if L.heaps == nil {
		L.heaps = make([]domHeapSlot, s.nVerts)
	}
	sl := &L.heaps[v]
	if sl.epoch != s.epoch || sl.h == nil {
		var h *pq.Heap[qItem]
		if n := len(s.freeHeaps); n > 0 {
			h = s.freeHeaps[n-1]
			s.freeHeaps[n-1] = nil
			s.freeHeaps = s.freeHeaps[:n-1]
		} else {
			h = pq.NewHeap[qItem](lessQItem)
		}
		*sl = domHeapSlot{h: h, epoch: s.epoch}
		s.domHeapLog = append(s.domHeapLog, slotRef{row: int32(lvl), v: v})
	}
	return sl.h
}

// peekParkHeap returns the HT≻ heap of slot (lvl, v) if the current
// query created one, else nil.
func (s *Scratch) peekParkHeap(lvl int, v graph.Vertex) *pq.Heap[qItem] {
	L := &s.dom[lvl]
	if L.heaps == nil {
		return nil
	}
	sl := L.heaps[v]
	if sl.epoch != s.epoch {
		return nil
	}
	return sl.h
}

// nnIter returns the FindNN iterator of (v, cat), reusing the one the
// current query already opened (the paper's NL-sharing semantics: two
// levels visiting the same category share one iterator) or recycling a
// released iterator. Recycled iterators are rebound to ix on reuse
// (invindex.NNIterator.ResetOn), so the free list stays valid across
// index versions — which is what lets a scratch carried over from the
// previous snapshot's pool serve the new epoch without reallocating its
// iterators. cat must be non-negative.
func (s *Scratch) nnIter(ix *invindex.Index, v graph.Vertex, cat graph.Category) *invindex.NNIterator {
	row := s.nnIdx.claim(cat)
	if row == len(s.nnRows) {
		s.nnRows = append(s.nnRows, nil)
	}
	if s.nnRows[row] == nil {
		s.nnRows[row] = make([]iterSlot, s.nVerts)
	}
	sl := &s.nnRows[row][v]
	if sl.epoch == s.epoch && sl.it != nil {
		return sl.it
	}
	var it *invindex.NNIterator
	if n := len(s.freeIters); n > 0 {
		it = s.freeIters[n-1]
		s.freeIters[n-1] = nil
		s.freeIters = s.freeIters[:n-1]
		it.ResetOn(ix, v, cat)
	} else {
		it = ix.NewNNIterator(v, cat)
	}
	*sl = iterSlot{it: it, epoch: s.epoch}
	s.nnLog = append(s.nnLog, slotRef{row: int32(row), v: v})
	return it
}

// dijIter returns the incremental Dijkstra kNN iterator of (v, cat),
// reusing the one the current query already opened (the same NL-sharing
// semantics as nnIter) or recycling a released iterator from the free
// list. Recycled iterators are rebound to g on reuse (dijkstra.KNN.Reset)
// so the free list stays valid across snapshot epochs. cat must be
// non-negative.
func (s *Scratch) dijIter(g *graph.Graph, v graph.Vertex, cat graph.Category) *dijkstra.KNN {
	row := s.djIdx.claim(cat)
	if row == len(s.djRows) {
		s.djRows = append(s.djRows, nil)
	}
	if s.djRows[row] == nil {
		s.djRows[row] = make([]knnSlot, s.nVerts)
	}
	sl := &s.djRows[row][v]
	if sl.epoch == s.epoch && sl.it != nil {
		return sl.it
	}
	var it *dijkstra.KNN
	if n := len(s.freeKNNs); n > 0 {
		it = s.freeKNNs[n-1]
		s.freeKNNs[n-1] = nil
		s.freeKNNs = s.freeKNNs[:n-1]
		it.Reset(g, v, cat)
	} else {
		it = dijkstra.NewKNN(g, v, cat)
	}
	*sl = knnSlot{it: it, epoch: s.epoch}
	s.djLog = append(s.djLog, slotRef{row: int32(row), v: v})
	return it
}

// unbindIndexRefs strips the index references parked in the scratch's
// iterator free lists, so a scratch handed from one snapshot's pool to
// the next does not pin the superseded epoch's inverted index (or graph)
// alive. The buffers stay; nnIter and dijIter rebind on reuse.
func (s *Scratch) unbindIndexRefs() {
	for _, it := range s.freeIters {
		it.Unbind()
	}
	for _, it := range s.freeKNNs {
		it.Unbind()
	}
}

// enStateFor returns the FindNEN state of (v, cat), creating or
// recycling one on first touch. cat must be non-negative.
func (s *Scratch) enStateFor(v graph.Vertex, cat graph.Category) *enState {
	row := s.enIdx.claim(cat)
	if row == len(s.enRows) {
		s.enRows = append(s.enRows, nil)
	}
	if s.enRows[row] == nil {
		s.enRows[row] = make([]enSlot, s.nVerts)
	}
	sl := &s.enRows[row][v]
	if sl.epoch == s.epoch && sl.st != nil {
		return sl.st
	}
	var st *enState
	if n := len(s.freeENs); n > 0 {
		st = s.freeENs[n-1]
		s.freeENs[n-1] = nil
		s.freeENs = s.freeENs[:n-1]
	} else {
		st = &enState{enq: pq.NewHeap[enCand](lessENCand)}
	}
	*sl = enSlot{st: st, epoch: s.epoch}
	s.enLog = append(s.enLog, slotRef{row: int32(row), v: v})
	return st
}

// acquireScratch checks a scratch out of prov's pool when it owns one,
// or builds a throwaway scratch otherwise (per-query providers, e.g. the
// disk-resident store). The returned owner is nil for throwaways.
func acquireScratch(prov Provider, nVerts int) (*Scratch, ScratchProvider) {
	if sp, ok := prov.(ScratchProvider); ok {
		return sp.AcquireScratch(), sp
	}
	s := NewScratch(nVerts)
	s.begin()
	return s, nil
}
