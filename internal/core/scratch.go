package core

import (
	"math"
	"sync"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/pq"
)

// Scratch is the reusable per-query search state of one engine run: the
// route-node arena, the global queue, the dense HT≺/HT≻ dominance tables
// (Definition 6), and the nearest-neighbour iterator caches of the
// label-backed finders. All of it is O(|V|)-sized, which is why the seed
// allocated (and zeroed) tens of megabytes per query at country scale.
//
// A Scratch is reused across queries through epoch stamping: every slot
// of the dense tables carries the epoch of the query that last wrote it,
// and begin() bumps the scratch epoch, so stale slots read as empty
// without any O(|V|) zeroing. Objects parked in slots (parked-route
// heaps, NN iterators, estimated-NN states) are journaled on first touch
// and recycled into free lists when the query releases the scratch, so
// steady-state queries perform no O(|V|) allocation at all.
//
// A Scratch serves one query at a time; concurrent queries each check
// one out of the owning provider's pool (see ScratchProvider), giving
// every server worker its own scratch.
type Scratch struct {
	nVerts int
	epoch  uint32

	arena nodeArena
	heap  *pq.Heap[qItem] // the engine's global route queue

	// Dominance state, one level per witness size.
	dom        []domLevel
	domHeapLog []slotRef
	freeHeaps  []*pq.Heap[qItem]

	// FindNN iterator cache rows, one per distinct query category.
	nnIdx     rowIndex
	nnRows    [][]iterSlot
	nnLog     []slotRef
	freeIters []*invindex.NNIterator

	// FindNEN state rows (StarKOSR), one per distinct query category.
	enIdx   rowIndex
	enRows  [][]enSlot
	enLog   []slotRef
	freeENs []*enState
}

// rowIndex assigns the distinct categories of the current query to row
// ordinals. Keying rows by the query's categories (at most |C| of them)
// rather than by global category id keeps the scratch footprint
// (|C|+2)·|V|, not |S|·|V|; the linear scan is shorter than one hash
// lookup. Both the FindNN and FindNEN tables share this logic.
type rowIndex struct {
	cats []graph.Category
	used int
}

func (ri *rowIndex) reset() { ri.used = 0 }

// claim returns the ordinal of the row serving cat, assigning the next
// unused row on first sight.
func (ri *rowIndex) claim(cat graph.Category) int {
	for i := 0; i < ri.used; i++ {
		if ri.cats[i] == cat {
			return i
		}
	}
	if ri.used == len(ri.cats) {
		ri.cats = append(ri.cats, cat)
	} else {
		ri.cats[ri.used] = cat
	}
	ri.used++
	return ri.used - 1
}

type domNodeSlot struct {
	node  *routeNode
	epoch uint32
}

type domHeapSlot struct {
	h     *pq.Heap[qItem]
	epoch uint32
}

// domLevel is the dominance state of one witness size: slot v of nodes
// holds the route dominating (v, size) and slot v of heaps the routes it
// dominates (HT≺ and HT≻). Slices are allocated on first touch and kept.
type domLevel struct {
	nodes []domNodeSlot
	heaps []domHeapSlot
}

// slotRef journals one touched slot of a row-indexed table so release()
// can recycle the object parked there without an O(|V|) sweep.
type slotRef struct {
	row int32
	v   graph.Vertex
}

// iterSlot caches the FindNN iterator of (v, row category).
type iterSlot struct {
	it    *invindex.NNIterator
	epoch uint32
}

// enSlot caches the FindNEN state of (v, row category).
type enSlot struct {
	st    *enState
	epoch uint32
}

// globalQueueArity is the arity of the engine's global route queue. The
// queue is the KPNE bottleneck (exhaustive expansion grows it to
// millions of entries at FLA scale), and every pop pays one sift-down
// over the full depth: a 4-ary heap halves that depth, trading one
// extra comparison per level for about half the cache misses. lessQItem
// is a total order (ties break on insertion sequence), so the pop
// sequence — and therefore every result — is identical to the binary
// heap's. The pop-cost delta is recorded in BENCH_PR4.json.
const globalQueueArity = 4

// NewScratch returns an empty scratch for graphs of nVerts vertices.
// Engines allocate one internally when the provider does not pool them.
func NewScratch(nVerts int) *Scratch {
	return &Scratch{nVerts: nVerts, heap: pq.NewHeapD[qItem](lessQItem, globalQueueArity)}
}

// ScratchProvider is implemented by providers that own a pool of
// reusable scratches. Engines check one out per query and return it when
// the query completes, so a bounded set of workers converges on one
// warm scratch each.
type ScratchProvider interface {
	Provider
	// AcquireScratch checks a scratch out of the pool, ready for one
	// query (its epoch already advanced).
	AcquireScratch() *Scratch
	// ReleaseScratch cleans the scratch and returns it to the pool. It
	// must be called exactly once per acquire, after which the caller
	// must not touch the scratch again.
	ReleaseScratch(*Scratch)
}

// begin readies the scratch for one query: the epoch advances so every
// dense slot written by earlier queries reads as empty.
func (s *Scratch) begin() {
	if s.epoch == math.MaxUint32 {
		// Epoch wrap (once per 2^32 queries): stale slots from 4 billion
		// queries ago would read as current, so pay one full clear.
		s.hardReset()
	}
	s.epoch++
	s.nnIdx.reset()
	s.enIdx.reset()
}

// release cleans up after a query: parked objects return to their free
// lists, the queue and arena reset. Dense table slots keep their stale
// contents — the next begin()'s epoch bump invalidates them for free.
func (s *Scratch) release() {
	for _, ref := range s.domHeapLog {
		sl := &s.dom[ref.row].heaps[ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		h := sl.h
		h.Clear()
		s.freeHeaps = append(s.freeHeaps, h)
		sl.h = nil
	}
	s.domHeapLog = s.domHeapLog[:0]
	for _, ref := range s.nnLog {
		sl := &s.nnRows[ref.row][ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		s.freeIters = append(s.freeIters, sl.it)
		sl.it = nil
	}
	s.nnLog = s.nnLog[:0]
	for _, ref := range s.enLog {
		sl := &s.enRows[ref.row][ref.v]
		//lint:ignore epochstamp journal entries were recorded this epoch, so the slot is current by construction
		st := sl.st
		st.reset()
		s.freeENs = append(s.freeENs, st)
		sl.st = nil
	}
	s.enLog = s.enLog[:0]
	s.heap.Clear()
	s.arena.reset()
}

// DefaultMaxScratchBytes is the per-scratch retained-footprint ceiling
// applied by the providers' pools when MaxScratchBytes is zero. A warm
// scratch keeps its high-water footprint — touched dominance levels plus
// per-category iterator rows, each O(|V|) — so without a ceiling a burst
// of wide queries would pin that worst case in every pooled scratch
// forever. 256 MiB comfortably holds country-scale road networks
// (|V| ≈ 10⁷ costs ~40 MiB per dominance level) while bounding
// pool growth at millions of vertices.
const DefaultMaxScratchBytes = 256 << 20

// FootprintBytes estimates the bytes the scratch retains between
// queries: the dense dominance tables, the NN/EN iterator rows, the
// route-node arena, the global queue, and the recycled objects parked on
// the free lists. The estimate intentionally counts capacities, not
// lengths — a released scratch is empty but keeps its backing arrays.
func (s *Scratch) FootprintBytes() int64 {
	var b int64
	for i := range s.dom {
		b += int64(cap(s.dom[i].nodes)) * int64(unsafe.Sizeof(domNodeSlot{}))
		b += int64(cap(s.dom[i].heaps)) * int64(unsafe.Sizeof(domHeapSlot{}))
	}
	for i := range s.nnRows {
		b += int64(cap(s.nnRows[i])) * int64(unsafe.Sizeof(iterSlot{}))
	}
	for i := range s.enRows {
		b += int64(cap(s.enRows[i])) * int64(unsafe.Sizeof(enSlot{}))
	}
	b += int64(len(s.arena.chunks)) * arenaChunkSize * int64(unsafe.Sizeof(routeNode{}))
	b += int64(s.heap.Cap()) * int64(unsafe.Sizeof(qItem{}))
	for _, h := range s.freeHeaps {
		b += int64(h.Cap()) * int64(unsafe.Sizeof(qItem{}))
	}
	for _, it := range s.freeIters {
		b += it.MemFootprint()
	}
	for _, st := range s.freeENs {
		b += int64(cap(st.enl))*int64(unsafe.Sizeof(Neighbor{})) +
			int64(st.enq.Cap())*int64(unsafe.Sizeof(enCand{}))
	}
	return b
}

// poolScratch returns s to pool unless its retained footprint exceeds
// budget (0 = DefaultMaxScratchBytes, negative = unlimited), in which
// case s is dropped for the GC so the pool converges back to lean
// scratches after a burst of wide queries.
func poolScratch(pool *sync.Pool, s *Scratch, budget int64) {
	if budget == 0 {
		budget = DefaultMaxScratchBytes
	}
	if budget > 0 && s.FootprintBytes() > budget {
		return
	}
	pool.Put(s)
}

// prewarmPool stocks pool with n scratches for nVerts-vertex graphs,
// each prewarmed for `levels` dominance levels and `cats` category
// rows. Backs the providers' Prewarm methods.
func prewarmPool(pool *sync.Pool, nVerts, n, levels, cats int) {
	for i := 0; i < n; i++ {
		s := NewScratch(nVerts)
		s.prewarm(levels, cats)
		pool.Put(s)
	}
}

// inheritScratches moves every scratch parked in src into dst,
// unbinding stale index references on the way, and reports how many
// moved. Scratches sized for a different graph are dropped. Both pools
// are concurrency-safe, so racing releases into src merely escape the
// handoff.
func inheritScratches(dst, src *sync.Pool, nVerts int) int {
	moved := 0
	for {
		s, _ := src.Get().(*Scratch)
		if s == nil {
			return moved
		}
		if s.nVerts != nVerts {
			continue
		}
		s.unbindIndexRefs()
		dst.Put(s)
		moved++
	}
}

// hardReset zeroes every dense slot; only needed at epoch wrap.
func (s *Scratch) hardReset() {
	for i := range s.dom {
		clearSlice(s.dom[i].nodes)
		clearSlice(s.dom[i].heaps)
	}
	for i := range s.nnRows {
		clearSlice(s.nnRows[i])
	}
	for i := range s.enRows {
		clearSlice(s.enRows[i])
	}
	s.epoch = 0
}

func clearSlice[T any](sl []T) {
	var zero T
	for i := range sl {
		sl[i] = zero
	}
}

// prewarmHeapCap is the global-queue capacity a prewarmed scratch
// starts with — enough for typical top-k searches to never regrow it.
const prewarmHeapCap = 4096

// prewarm pre-sizes the scratch's lazily-grown O(|V|) state so the
// first query served by it skips the cold-path allocations entirely:
// `levels` dominance levels (nodes and heap slots), `cats` FindNN
// iterator rows and FindNEN state rows, one arena chunk, and global
// queue capacity. The tables start zeroed, which the epoch-stamping
// scheme reads as empty — exactly the state a first query expects.
func (s *Scratch) prewarm(levels, cats int) {
	s.ensureLevels(levels)
	for i := 0; i < levels; i++ {
		L := &s.dom[i]
		if L.nodes == nil {
			L.nodes = make([]domNodeSlot, s.nVerts)
		}
		if L.heaps == nil {
			L.heaps = make([]domHeapSlot, s.nVerts)
		}
	}
	for len(s.nnRows) < cats {
		s.nnRows = append(s.nnRows, make([]iterSlot, s.nVerts))
	}
	for i := range s.nnRows {
		if s.nnRows[i] == nil {
			s.nnRows[i] = make([]iterSlot, s.nVerts)
		}
	}
	for len(s.enRows) < cats {
		s.enRows = append(s.enRows, make([]enSlot, s.nVerts))
	}
	for i := range s.enRows {
		if s.enRows[i] == nil {
			s.enRows[i] = make([]enSlot, s.nVerts)
		}
	}
	if len(s.arena.chunks) == 0 {
		s.arena.chunks = append(s.arena.chunks, make([]routeNode, arenaChunkSize))
	}
	s.heap.Grow(prewarmHeapCap)
}

// ensureLevels grows the dominance table to at least n levels.
func (s *Scratch) ensureLevels(n int) {
	for len(s.dom) < n {
		s.dom = append(s.dom, domLevel{})
	}
}

// dominatingNode returns the route dominating (v, lvl+1) in the current
// query, or nil.
func (s *Scratch) dominatingNode(lvl int, v graph.Vertex) *routeNode {
	L := &s.dom[lvl]
	if L.nodes == nil {
		return nil
	}
	sl := L.nodes[v]
	if sl.epoch != s.epoch {
		return nil
	}
	return sl.node
}

// setDominatingNode stores (or, with nil, clears) the dominator of
// (v, lvl+1).
func (s *Scratch) setDominatingNode(lvl int, v graph.Vertex, n *routeNode) {
	L := &s.dom[lvl]
	if L.nodes == nil {
		L.nodes = make([]domNodeSlot, s.nVerts)
	}
	L.nodes[v] = domNodeSlot{node: n, epoch: s.epoch}
}

// parkHeap returns the HT≻ heap of slot (lvl, v), creating (or
// recycling) one when the slot is empty this query.
func (s *Scratch) parkHeap(lvl int, v graph.Vertex) *pq.Heap[qItem] {
	L := &s.dom[lvl]
	if L.heaps == nil {
		L.heaps = make([]domHeapSlot, s.nVerts)
	}
	sl := &L.heaps[v]
	if sl.epoch != s.epoch || sl.h == nil {
		var h *pq.Heap[qItem]
		if n := len(s.freeHeaps); n > 0 {
			h = s.freeHeaps[n-1]
			s.freeHeaps[n-1] = nil
			s.freeHeaps = s.freeHeaps[:n-1]
		} else {
			h = pq.NewHeap[qItem](lessQItem)
		}
		*sl = domHeapSlot{h: h, epoch: s.epoch}
		s.domHeapLog = append(s.domHeapLog, slotRef{row: int32(lvl), v: v})
	}
	return sl.h
}

// peekParkHeap returns the HT≻ heap of slot (lvl, v) if the current
// query created one, else nil.
func (s *Scratch) peekParkHeap(lvl int, v graph.Vertex) *pq.Heap[qItem] {
	L := &s.dom[lvl]
	if L.heaps == nil {
		return nil
	}
	sl := L.heaps[v]
	if sl.epoch != s.epoch {
		return nil
	}
	return sl.h
}

// nnIter returns the FindNN iterator of (v, cat), reusing the one the
// current query already opened (the paper's NL-sharing semantics: two
// levels visiting the same category share one iterator) or recycling a
// released iterator. Recycled iterators are rebound to ix on reuse
// (invindex.NNIterator.ResetOn), so the free list stays valid across
// index versions — which is what lets a scratch carried over from the
// previous snapshot's pool serve the new epoch without reallocating its
// iterators. cat must be non-negative.
func (s *Scratch) nnIter(ix *invindex.Index, v graph.Vertex, cat graph.Category) *invindex.NNIterator {
	row := s.nnIdx.claim(cat)
	if row == len(s.nnRows) {
		s.nnRows = append(s.nnRows, nil)
	}
	if s.nnRows[row] == nil {
		s.nnRows[row] = make([]iterSlot, s.nVerts)
	}
	sl := &s.nnRows[row][v]
	if sl.epoch == s.epoch && sl.it != nil {
		return sl.it
	}
	var it *invindex.NNIterator
	if n := len(s.freeIters); n > 0 {
		it = s.freeIters[n-1]
		s.freeIters[n-1] = nil
		s.freeIters = s.freeIters[:n-1]
		it.ResetOn(ix, v, cat)
	} else {
		it = ix.NewNNIterator(v, cat)
	}
	*sl = iterSlot{it: it, epoch: s.epoch}
	s.nnLog = append(s.nnLog, slotRef{row: int32(row), v: v})
	return it
}

// unbindIndexRefs strips the index references parked in the scratch's
// iterator free list, so a scratch handed from one snapshot's pool to
// the next does not pin the superseded epoch's inverted index alive.
// The buffers stay; nnIter rebinds each iterator on reuse.
func (s *Scratch) unbindIndexRefs() {
	for _, it := range s.freeIters {
		it.Unbind()
	}
}

// enStateFor returns the FindNEN state of (v, cat), creating or
// recycling one on first touch. cat must be non-negative.
func (s *Scratch) enStateFor(v graph.Vertex, cat graph.Category) *enState {
	row := s.enIdx.claim(cat)
	if row == len(s.enRows) {
		s.enRows = append(s.enRows, nil)
	}
	if s.enRows[row] == nil {
		s.enRows[row] = make([]enSlot, s.nVerts)
	}
	sl := &s.enRows[row][v]
	if sl.epoch == s.epoch && sl.st != nil {
		return sl.st
	}
	var st *enState
	if n := len(s.freeENs); n > 0 {
		st = s.freeENs[n-1]
		s.freeENs[n-1] = nil
		s.freeENs = s.freeENs[:n-1]
	} else {
		st = &enState{enq: pq.NewHeap[enCand](lessENCand)}
	}
	*sl = enSlot{st: st, epoch: s.epoch}
	s.enLog = append(s.enLog, slotRef{row: int32(row), v: v})
	return st
}

// acquireScratch checks a scratch out of prov's pool when it owns one,
// or builds a throwaway scratch otherwise (per-query providers, e.g. the
// disk-resident store). The returned owner is nil for throwaways.
func acquireScratch(prov Provider, nVerts int) (*Scratch, ScratchProvider) {
	if sp, ok := prov.(ScratchProvider); ok {
		return sp.AcquireScratch(), sp
	}
	s := NewScratch(nVerts)
	s.begin()
	return s, nil
}
