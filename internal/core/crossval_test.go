package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

// randomInstance builds a random categorized graph and a random query on
// it.
func randomInstance(rng *rand.Rand) (*graph.Graph, Query) {
	n := 6 + rng.Intn(20)
	ncats := 2 + rng.Intn(3)
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(ncats)
	m := 3 * n
	for i := 0; i < m; i++ {
		b.AddEdge(graph.Vertex(rng.Intn(n)), graph.Vertex(rng.Intn(n)), float64(1+rng.Intn(15)))
	}
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 0 {
			b.AddCategory(graph.Vertex(v), graph.Category(rng.Intn(ncats)))
		}
	}
	g := b.MustBuild()
	j := 1 + rng.Intn(3)
	cats := make([]graph.Category, j)
	for i := range cats {
		cats[i] = graph.Category(rng.Intn(ncats))
	}
	q := Query{
		Source:     graph.Vertex(rng.Intn(n)),
		Target:     graph.Vertex(rng.Intn(n)),
		Categories: cats,
		K:          1 + rng.Intn(5),
	}
	return g, q
}

// verifyRoutes checks that every returned route is feasible with a
// correctly computed cost, that witnesses are pairwise distinct, and that
// the cost sequence matches the brute-force oracle.
func verifyRoutes(t *testing.T, g *graph.Graph, q Query, routes []Route, oracle []Route, tag string) {
	t.Helper()
	if len(routes) != len(oracle) {
		t.Fatalf("%s: got %d routes, oracle has %d\n got=%v\nwant=%v",
			tag, len(routes), len(oracle), routes, oracle)
	}
	seen := map[string]bool{}
	s := dijkstra.New(g)
	for i, r := range routes {
		if r.Cost != oracle[i].Cost {
			t.Fatalf("%s: route %d cost %v, oracle %v\n got=%v\nwant=%v",
				tag, i, r.Cost, oracle[i].Cost, routes, oracle)
		}
		key := r.String()
		if seen[key] {
			t.Fatalf("%s: duplicate witness %s", tag, key)
		}
		seen[key] = true
		// Witness structure: s, C1..Cj members, t.
		if r.Witness[0] != q.Source || r.Witness[len(r.Witness)-1] != q.Target {
			t.Fatalf("%s: witness endpoints wrong: %v", tag, r.Witness)
		}
		if len(r.Witness) != len(q.Categories)+2 {
			t.Fatalf("%s: witness length %d", tag, len(r.Witness))
		}
		for ci, c := range q.Categories {
			if !g.HasCategory(r.Witness[ci+1], c) {
				t.Fatalf("%s: witness vertex %d not in category %d", tag, r.Witness[ci+1], c)
			}
		}
		// Recompute the cost independently.
		var cost float64
		for i := 0; i+1 < len(r.Witness); i++ {
			d := s.ToTarget(r.Witness[i], r.Witness[i+1])
			if math.IsInf(d, 1) {
				t.Fatalf("%s: witness leg unreachable", tag)
			}
			cost += d
		}
		if cost != r.Cost {
			t.Fatalf("%s: recomputed cost %v != reported %v", tag, cost, r.Cost)
		}
	}
}

// TestAllMethodsMatchBruteForce is the central correctness test: on many
// random instances, every method × every NN provider returns exactly the
// brute-force top-k cost sequence, and all witnesses are feasible.
func TestAllMethodsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		g, q := randomInstance(rng)
		oracle, err := BruteForce(g, q)
		if err != nil {
			t.Fatal(err)
		}
		provs := providers(g)
		for provName, prov := range provs {
			for _, m := range []Method{MethodKPNE, MethodPK, MethodSK, MethodKStar} {
				routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, provName, m, err)
				}
				tag := provName + "/" + m.String()
				verifyRoutes(t, g, q, routes, oracle, tag)
			}
		}
	}
}

// Property-style: the same, driven by testing/quick seeds.
func TestMethodsAgreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, q := randomInstance(rng)
		prov := NewLabelProvider(g, nil)
		var ref []Route
		for i, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				return false
			}
			if i == 0 {
				ref = routes
				continue
			}
			if len(routes) != len(ref) {
				return false
			}
			for k := range routes {
				if routes[k].Cost != ref[k].Cost {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The A* estimate is admissible, so every method must emit complete
// routes in nondecreasing cost order, and the generation counters must be
// self-consistent. (Examined counts are not strictly ordered across
// methods on tiny instances because park-and-release re-examines routes.)
func TestStatsOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g, q := randomInstance(rng)
		prov := NewLabelProvider(g, nil)
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, st, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k < len(routes); k++ {
				if routes[k].Cost < routes[k-1].Cost {
					t.Fatalf("%s: results out of order", m)
				}
			}
			if st.Generated < st.Examined-st.Released {
				t.Fatalf("%s: generated %d < examined %d - released %d",
					m, st.Generated, st.Examined, st.Released)
			}
		}
	}
}

// Dominance bookkeeping: every parked route is either released or still
// parked at the end; released ≤ dominated.
func TestDominanceCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		g, q := randomInstance(rng)
		_, st, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodPK})
		if err != nil {
			t.Fatal(err)
		}
		if st.Released > st.Dominated {
			t.Fatalf("released %d > dominated %d", st.Released, st.Dominated)
		}
	}
}
