package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
)

// This file implements the query variants of Section IV-C ("Variants of
// KOSR"):
//
//   - no required source: the search starts from every vertex of the
//     first category instead of a fixed source;
//   - no required destination: routes are complete once the last
//     category is reached (only the dominance-based search applies — the
//     A* estimate needs a destination);
//   - per-category preferences: a filter restricts which vertices of a
//     category qualify (the paper's "Italian restaurants in RE" example,
//     applied at line 15 of Algorithm 3).

// Filters restricts categories to preferred vertices. A nil function (or
// a missing key) admits every vertex of the category.
type Filters map[graph.Category]func(graph.Vertex) bool

// filteredNN adapts any NNFinder so that Find(v, cat, x) returns the
// x-th nearest *admitted* neighbour. The mapping from filtered rank to
// underlying rank is cached per (vertex, category), so repeated calls
// resume rather than rescan.
type filteredNN struct {
	inner   NNFinder
	filters Filters
	state   map[nnKey]*filterState
}

type filterState struct {
	kept   []Neighbor
	innerX int
	done   bool
}

func newFilteredNN(inner NNFinder, filters Filters) *filteredNN {
	return &filteredNN{inner: inner, filters: filters, state: make(map[nnKey]*filterState)}
}

func (f *filteredNN) Queries() int64 { return f.inner.Queries() }

func (f *filteredNN) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	pred := f.filters[cat]
	if pred == nil {
		return f.inner.Find(v, cat, x)
	}
	key := nnKey{v, cat}
	st := f.state[key]
	if st == nil {
		st = &filterState{}
		f.state[key] = st
	}
	for len(st.kept) < x && !st.done {
		nb, ok := f.inner.Find(v, cat, st.innerX+1)
		st.innerX++
		if !ok {
			st.done = true
			break
		}
		if pred(nb.V) {
			st.kept = append(st.kept, nb)
		}
	}
	if len(st.kept) < x {
		return Neighbor{}, false
	}
	return st.kept[x-1], true
}

// VariantQuery generalizes Query for the Section IV-C variants.
type VariantQuery struct {
	// Source is the start vertex; ignored when NoSource is set (the
	// route may start at any vertex of the first category).
	Source   graph.Vertex
	NoSource bool
	// Target is the destination; ignored when NoTarget is set (the
	// route ends at the last category).
	Target   graph.Vertex
	NoTarget bool

	Categories []graph.Category
	K          int

	// Filters restricts categories to preferred vertices.
	Filters Filters
}

// Validate checks the variant query against a graph.
func (q VariantQuery) Validate(g *graph.Graph) error {
	return q.ValidateN(g, g.NumCategories())
}

// ValidateN checks the variant query against a graph whose effective
// category space has numCats ids (see Query.ValidateN).
func (q VariantQuery) ValidateN(g *graph.Graph, numCats int) error {
	n := graph.Vertex(g.NumVertices())
	if !q.NoSource && (q.Source < 0 || q.Source >= n) {
		return fmt.Errorf("core: source %d out of range", q.Source)
	}
	if !q.NoTarget && (q.Target < 0 || q.Target >= n) {
		return fmt.Errorf("core: target %d out of range", q.Target)
	}
	if q.K <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", q.K)
	}
	if len(q.Categories) == 0 {
		return fmt.Errorf("core: variant queries need at least one category")
	}
	if q.NoSource && q.NoTarget && len(q.Categories) < 2 {
		return fmt.Errorf("core: no-source no-target queries need at least two categories")
	}
	for _, c := range q.Categories {
		if int(c) < 0 || int(c) >= numCats {
			return fmt.Errorf("core: category %d out of range", c)
		}
	}
	return nil
}

// SolveVariant answers a VariantQuery. Witnesses omit the source when
// NoSource is set (they begin at a vertex of C1) and omit the
// destination when NoTarget is set (they end at a vertex of Cj).
// StarKOSR degrades to PruningKOSR when NoTarget disables the estimate,
// per Section IV-C. Cancelling ctx aborts the search like Solve.
func SolveVariant(ctx context.Context, g *graph.Graph, q VariantQuery, prov Provider, opt Options) ([]Route, *Stats, error) {
	e, nn, err := newVariantEngine(ctx, g, q, prov, opt)
	if err != nil {
		return nil, nil, err
	}
	defer e.releaseScratch()
	start := time.Now()
	runErr := e.run()
	e.stats.NNQueries = nn.Queries()
	e.stats.Results = len(e.results)
	e.stats.Total = time.Since(start)
	return e.results, e.stats, runErr
}

// newVariantEngine builds the engine shared by SolveVariant and
// NewVariantSearcher. On success the engine holds a checked-out scratch;
// the caller must arrange for releaseScratch once the search is over.
func newVariantEngine(ctx context.Context, g *graph.Graph, q VariantQuery, prov Provider, opt Options) (*engine, NNFinder, error) {
	if err := q.ValidateN(g, opt.numCategories(g)); err != nil {
		return nil, nil, err
	}
	if q.NoTarget && opt.Method == MethodSK {
		// "In the case that destination is not required ... the
		// StarKOSR method will not work, but PruningKOSR still works."
		opt.Method = MethodPK
	}

	cats := q.Categories
	var roots []graph.Vertex
	if q.NoSource {
		// Seed the queue with every (admitted) vertex of C1; the
		// remaining category sequence excludes C1, whose members are
		// now the route heads. The membership listing comes from
		// Options.VerticesOf when set (the snapshot layer's effective
		// view, dynamic category changes included).
		verticesOf := opt.VerticesOf
		if verticesOf == nil {
			verticesOf = g.VerticesOf
		}
		pred := q.Filters[cats[0]]
		for _, v := range verticesOf(cats[0]) {
			if pred == nil || pred(v) {
				roots = append(roots, v)
			}
		}
		cats = cats[1:]
	} else {
		roots = []graph.Vertex{q.Source}
	}

	st := &Stats{
		Method:           opt.Method,
		ExaminedPerLevel: make([]int64, len(cats)+2),
	}
	scratch, owner := acquireScratch(prov, g.NumVertices())
	nn := prov.NN()
	if su, ok := nn.(scratchUser); ok {
		su.bindScratch(scratch)
	}
	var finder NNFinder = nn
	if len(q.Filters) > 0 {
		finder = newFilteredNN(nn, q.Filters)
	}
	var distTo func(graph.Vertex) graph.Weight
	if q.NoTarget {
		distTo = func(graph.Vertex) graph.Weight { return 0 }
	} else {
		distTo = prov.DistTo(q.Target)
	}
	e := &engine{
		g:            g,
		q:            Query{Source: q.Source, Target: q.Target, Categories: cats, K: q.K},
		opt:          opt,
		ctx:          ctx,
		distTo:       distTo,
		stats:        st,
		scratch:      scratch,
		scratchOwner: owner,
		useDominance: opt.Method == MethodPK || opt.Method == MethodSK,
		useEstimate:  (opt.Method == MethodSK || opt.Method == MethodKStar) && !q.NoTarget,
		roots:        roots,
		rootsSet:     true,
		noTarget:     q.NoTarget,
	}
	if opt.TimeBreakdown {
		e.pqTime = &st.PQTime
	}
	if e.useEstimate {
		e.finder = newENFinder(finder, distTo, scratch)
	} else {
		e.finder = finder
	}
	e.initSearchState()
	return e, nn, nil
}

// BruteForceVariant is the exhaustive oracle for variant queries.
func BruteForceVariant(g *graph.Graph, q VariantQuery) ([]Route, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	admitted := func(c graph.Category) []graph.Vertex {
		pred := q.Filters[c]
		if pred == nil {
			return g.VerticesOf(c)
		}
		var out []graph.Vertex
		for _, v := range g.VerticesOf(c) {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out
	}

	heads := []graph.Vertex{q.Source}
	cats := q.Categories
	if q.NoSource {
		heads = admitted(cats[0])
		cats = cats[1:]
	}
	var all []Route
	for _, head := range heads {
		var target *graph.Vertex
		if !q.NoTarget {
			t := q.Target
			target = &t
		}
		// bruteEnumerate's leading witness entry is the head itself,
		// which for the no-source variant is exactly the C1 vertex —
		// the same witness shape SolveVariant produces.
		all = append(all, bruteEnumerate(g, head, cats, admitted, target)...)
	}
	sortRoutes(all)
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all, nil
}

func sortRoutes(rs []Route) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j].Cost < rs[j-1].Cost ||
				(rs[j].Cost == rs[j-1].Cost && lessWitness(rs[j].Witness, rs[j-1].Witness)) {
				rs[j], rs[j-1] = rs[j-1], rs[j]
			} else {
				break
			}
		}
	}
}

// bruteEnumerate lists every (filtered) witness; target nil means the
// route ends at the last category.
func bruteEnumerate(g *graph.Graph, src graph.Vertex, cats []graph.Category,
	admitted func(graph.Category) []graph.Vertex, target *graph.Vertex) []Route {

	dist := make(map[graph.Vertex][]float64)
	ensure := func(v graph.Vertex) []float64 {
		if d, ok := dist[v]; ok {
			return d
		}
		d := allDistances(g, v)
		dist[v] = d
		return d
	}
	var all []Route
	witness := make([]graph.Vertex, 0, len(cats)+2)
	var rec func(cur graph.Vertex, level int, cost graph.Weight)
	rec = func(cur graph.Vertex, level int, cost graph.Weight) {
		if level == len(cats) {
			if target == nil {
				all = append(all, Route{Witness: append([]graph.Vertex{src}, witness...), Cost: cost})
				return
			}
			d := ensure(cur)[*target]
			if !math.IsInf(d, 1) {
				w := append([]graph.Vertex{src}, witness...)
				w = append(w, *target)
				all = append(all, Route{Witness: w, Cost: cost + d})
			}
			return
		}
		dcur := ensure(cur)
		for _, v := range admitted(cats[level]) {
			if math.IsInf(dcur[v], 1) {
				continue
			}
			witness = append(witness, v)
			rec(v, level+1, cost+dcur[v])
			witness = witness[:len(witness)-1]
		}
	}
	rec(src, 0, 0)
	return all
}
