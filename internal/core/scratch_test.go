package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// scratchTestGraph builds a deterministic grid road network with
// categories, big enough that O(|V|) per-query state would dominate the
// allocation profile (|V| = rows*cols).
func scratchTestGraph(rows, cols, ncats int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(ncats)
	idx := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(idx(r, c), idx(r, c+1), float64(1+rng.Intn(10)))
				b.AddEdge(idx(r, c+1), idx(r, c), float64(1+rng.Intn(10)))
			}
			if r+1 < rows {
				b.AddEdge(idx(r, c), idx(r+1, c), float64(1+rng.Intn(10)))
				b.AddEdge(idx(r+1, c), idx(r, c), float64(1+rng.Intn(10)))
			}
		}
	}
	for i := 0; i < n/10; i++ {
		b.AddCategory(graph.Vertex(rng.Intn(n)), graph.Category(rng.Intn(ncats)))
	}
	return b.MustBuild()
}

func scratchTestQueries(g *graph.Graph, num int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	nc := g.NumCategories()
	qs := make([]Query, num)
	for i := range qs {
		cats := make([]graph.Category, 2+rng.Intn(3))
		for j := range cats {
			cats[j] = graph.Category(rng.Intn(nc))
		}
		qs[i] = Query{
			Source:     graph.Vertex(rng.Intn(n)),
			Target:     graph.Vertex(rng.Intn(n)),
			Categories: cats,
			K:          1 + rng.Intn(4),
		}
	}
	return qs
}

func routesEqual(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || len(a[i].Witness) != len(b[i].Witness) {
			return false
		}
		for j := range a[i].Witness {
			if a[i].Witness[j] != b[i].Witness[j] {
				return false
			}
		}
	}
	return true
}

// TestScratchReuseByteIdentical is the semantic guard of the scratch
// subsystem: a warm provider whose scratch has served many earlier
// queries must produce exactly the routes — and exactly the search
// trajectory (examined / generated / dominated / released counters) — of
// a cold provider that allocates everything fresh.
func TestScratchReuseByteIdentical(t *testing.T) {
	g := scratchTestGraph(24, 24, 5, 7)
	warm := NewLabelProvider(g, nil)
	queries := scratchTestQueries(g, 40, 11)
	methods := []Method{MethodSK, MethodPK, MethodKPNE, MethodKStar}
	for qi, q := range queries {
		for _, m := range methods {
			opt := Options{Method: m}
			if qi%5 == 0 {
				opt.MaxExamined = 50 // exercise budget-truncated queries too
			}
			gotRoutes, gotStats, gotErr := Solve(context.Background(), g, q, warm, opt)
			cold := &LabelProvider{Graph: g, Labels: warm.Labels, Inv: warm.Inv}
			wantRoutes, wantStats, wantErr := Solve(context.Background(), g, q, cold, opt)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("q%d %v: err=%v, want %v", qi, m, gotErr, wantErr)
			}
			if !routesEqual(gotRoutes, wantRoutes) {
				t.Fatalf("q%d %v: routes diverge\nwarm: %v\ncold: %v", qi, m, gotRoutes, wantRoutes)
			}
			if gotStats.Examined != wantStats.Examined ||
				gotStats.Generated != wantStats.Generated ||
				gotStats.Dominated != wantStats.Dominated ||
				gotStats.Released != wantStats.Released ||
				gotStats.NNQueries != wantStats.NNQueries {
				t.Fatalf("q%d %v: trajectory diverges\nwarm: %+v\ncold: %+v", qi, m, gotStats, wantStats)
			}
		}
	}
}

// TestSolveSteadyStateNoPerVertexAllocs is the PR's allocation
// regression guard: once the provider's scratch is warm, a Solve call
// must not allocate any O(|V|) state. The seed built (and zeroed)
// (|C|+2)·|V| dominance slots plus per-category |V|-sized iterator rows
// per query — hundreds of kilobytes on this 4096-vertex grid; with the
// scratch pool the steady-state footprint is a few kilobytes of
// per-query bookkeeping (stats, finders, result routes), independent of
// |V|.
func TestSolveSteadyStateNoPerVertexAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under the race detector (sync.Pool drops items)")
	}
	g := scratchTestGraph(32, 32, 6, 3) // |V| = 1024
	prov := NewLabelProvider(g, nil)
	queries := scratchTestQueries(g, 6, 5)
	methods := []Method{MethodSK, MethodPK, MethodKPNE}
	solveAll := func() {
		for _, q := range queries {
			for _, m := range methods {
				// Budget-capped so the exhaustive KPNE baseline stays
				// cheap; truncated queries exercise the same scratch
				// setup/teardown path.
				opt := Options{Method: m, MaxExamined: 20000}
				if _, _, err := Solve(context.Background(), g, q, prov, opt); err != nil && !errors.Is(err, ErrBudgetExceeded) {
					t.Fatal(err)
				}
			}
		}
	}
	solveAll() // warm the scratch pool
	solveAll() // and the retained buffer capacities

	const rounds = 4
	perRound := float64(len(queries) * len(methods))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		solveAll()
	}
	runtime.ReadMemStats(&after)

	bytesPerQuery := float64(after.TotalAlloc-before.TotalAlloc) / (rounds * perRound)
	allocsPerQuery := float64(after.Mallocs-before.Mallocs) / (rounds * perRound)
	t.Logf("steady state: %.0f bytes/query, %.1f objects/query", bytesPerQuery, allocsPerQuery)

	// One dominance level alone is |V|·16 B = 16 KiB on this graph and a
	// single iterator row |V|·12 B = 12 KiB; a query that rebuilt any
	// per-vertex table would blow past this.
	if bytesPerQuery > 6*1024 {
		t.Fatalf("steady-state Solve allocates %.0f bytes/query; want < 6KiB (O(|V|) state is being rebuilt)", bytesPerQuery)
	}
	if allocsPerQuery > 64 {
		t.Fatalf("steady-state Solve allocates %.1f objects/query; want ≤ 64", allocsPerQuery)
	}
}

// TestScratchEpochWrap drives a scratch across the uint32 epoch
// boundary: the wrap must trigger a hard reset rather than letting
// 4-billion-query-old slots read as current.
func TestScratchEpochWrap(t *testing.T) {
	g := scratchTestGraph(12, 12, 4, 9)
	prov := NewLabelProvider(g, nil)
	queries := scratchTestQueries(g, 6, 13)

	want := make([][]Route, len(queries))
	for i, q := range queries {
		r, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodSK})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	// Fast-forward the pooled scratch to the edge of the epoch space.
	s := prov.AcquireScratch()
	s.epoch = math.MaxUint32 - 3
	prov.ReleaseScratch(s)

	for round := 0; round < 8; round++ { // crosses the wrap mid-loop
		for i, q := range queries {
			r, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodSK})
			if err != nil {
				t.Fatal(err)
			}
			if !routesEqual(r, want[i]) {
				t.Fatalf("round %d q%d: routes diverge after epoch wrap: %v want %v", round, i, r, want[i])
			}
		}
	}
}

// TestScratchPoolByteBudget pins the pool's release policy: a scratch
// whose retained footprint exceeds the provider's byte budget must be
// dropped on release (the next acquire builds a fresh, lean scratch)
// while a generous budget keeps recycling the warm scratch.
func TestScratchPoolByteBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("pool-identity assertions are unreliable under the race detector (sync.Pool drops items)")
	}
	g := scratchTestGraph(24, 24, 5, 7) // |V| = 576
	prov := NewLabelProvider(g, nil)
	q := scratchTestQueries(g, 1, 11)[0]

	// Warm path: run a dominance-pruned query (twice, so the retained
	// capacities converge) and verify the accounting sees the dense
	// per-vertex tables the scratch grew.
	for i := 0; i < 2; i++ {
		if _, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodPK}); err != nil {
			t.Fatal(err)
		}
	}
	warm := prov.AcquireScratch()
	foot := warm.FootprintBytes()
	// One touched dominance-node level alone is |V|·16 bytes.
	if min := int64(g.NumVertices()) * 16; foot < min {
		t.Fatalf("footprint %d bytes does not cover the dominance tables (want ≥ %d)", foot, min)
	}
	prov.ReleaseScratch(warm)

	// Within budget: the same scratch keeps coming back.
	prov.MaxScratchBytes = foot + 4096
	if _, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodPK}); err != nil {
		t.Fatal(err)
	}
	if s := prov.AcquireScratch(); s != warm {
		t.Error("scratch within budget was not recycled")
	} else {
		prov.ReleaseScratch(s)
	}

	// Over budget: release drops the warm scratch, so the next acquire
	// starts lean again.
	prov.MaxScratchBytes = 1
	if _, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodPK}); err != nil {
		t.Fatal(err)
	}
	fresh := prov.AcquireScratch()
	if fresh == warm {
		t.Fatal("scratch over the byte budget was pooled instead of dropped")
	}
	if f := fresh.FootprintBytes(); f >= foot {
		t.Fatalf("replacement scratch retained %d bytes; want a lean scratch (< %d)", f, foot)
	}
	prov.MaxScratchBytes = -1 // unlimited: even the huge scratch pools
	prov.ReleaseScratch(fresh)
	if s := prov.AcquireScratch(); s != fresh {
		t.Error("negative budget must disable the cap")
	}
}

// TestSearcherReleasesScratch covers the streaming API: a stream closed
// early and a stream run to exhaustion must both hand their scratch back
// to the pool, and a recycled scratch must reproduce the same stream.
func TestSearcherReleasesScratch(t *testing.T) {
	g := scratchTestGraph(12, 12, 4, 21)
	prov := NewLabelProvider(g, nil)
	q := scratchTestQueries(g, 1, 3)[0]

	collect := func() []Route {
		s, err := NewSearcher(context.Background(), g, q, prov, Options{Method: MethodSK})
		if err != nil {
			t.Fatal(err)
		}
		var out []Route
		for len(out) < 5 {
			r, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, r)
		}
		s.Close()
		// After Close the stream must stay exhausted.
		if _, ok, _ := s.Next(); ok {
			t.Fatal("Next returned a route after Close")
		}
		return out
	}
	first := collect()
	for i := 0; i < 3; i++ {
		if again := collect(); !routesEqual(first, again) {
			t.Fatalf("stream %d diverges: %v want %v", i, again, first)
		}
	}
}

// TestPrewarmPresizesColdPath pins the -prewarm contract: a prewarmed
// provider's pooled scratch already carries every dense per-vertex table
// the first query would otherwise grow lazily, and that first query
// consequently allocates a small fraction of what a cold provider's
// does.
func TestPrewarmPresizesColdPath(t *testing.T) {
	if raceEnabled {
		t.Skip("pool retention and allocation accounting are unreliable under the race detector")
	}
	g := scratchTestGraph(32, 32, 6, 3) // |V| = 1024
	prov := NewLabelProvider(g, nil)
	const levels, cats = 4, 3
	prov.Prewarm(1, levels, cats)

	s := prov.AcquireScratch()
	if len(s.dom) < levels {
		t.Fatalf("prewarmed scratch has %d dominance levels, want ≥ %d", len(s.dom), levels)
	}
	for i := 0; i < levels; i++ {
		if len(s.dom[i].nodes) != s.nVerts || len(s.dom[i].heaps) != s.nVerts {
			t.Fatalf("dominance level %d tables not pre-sized: nodes=%d heaps=%d want %d",
				i, len(s.dom[i].nodes), len(s.dom[i].heaps), s.nVerts)
		}
	}
	if len(s.nnRows) < cats || len(s.enRows) < cats {
		t.Fatalf("iterator rows not pre-sized: nn=%d en=%d want ≥ %d", len(s.nnRows), len(s.enRows), cats)
	}
	for i := 0; i < cats; i++ {
		if len(s.nnRows[i]) != s.nVerts || len(s.enRows[i]) != s.nVerts {
			t.Fatalf("row %d not pre-sized: nn=%d en=%d want %d", i, len(s.nnRows[i]), len(s.enRows[i]), s.nVerts)
		}
	}
	if len(s.arena.chunks) == 0 {
		t.Fatal("arena has no pre-allocated chunk")
	}
	if s.heap.Cap() < prewarmHeapCap {
		t.Fatalf("global queue capacity %d, want ≥ %d", s.heap.Cap(), prewarmHeapCap)
	}
	prov.ReleaseScratch(s)

	// Behavioral half: the prewarmed provider's very first query must
	// allocate far less than a cold provider's, whose lazy growth builds
	// the same tables inline.
	// Budget-capped so route production (arena chunks, parked heaps) stays
	// small and identical on both sides; the cold side's remaining cost is
	// the lazy O(|V|) table growth prewarm exists to eliminate.
	q := scratchTestQueries(g, 1, 17)[0]
	firstQueryBytes := func(p *LabelProvider) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, _, err := Solve(context.Background(), g, q, p, Options{Method: MethodPK, MaxExamined: 500}); err != nil && !errors.Is(err, ErrBudgetExceeded) {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}
	warm := firstQueryBytes(prov)
	cold := firstQueryBytes(&LabelProvider{Graph: g, Labels: prov.Labels, Inv: prov.Inv})
	t.Logf("first query: prewarmed %d bytes, cold %d bytes", warm, cold)
	// Both sides pay the same route-production cost (parked heaps, NN
	// iterators); the cold side additionally grows the dense per-vertex
	// tables inline. Require the prewarmed side to save at least the
	// dominance tables' worth of allocation (levels · |V| · 16 B per
	// table kind; assert half that as margin).
	saved := int64(cold) - int64(warm)
	if min := int64(levels) * int64(g.NumVertices()) * 16; saved < min {
		t.Fatalf("prewarmed first query saved only %d bytes over cold (%d vs %d); want ≥ %d — prewarm is not absorbing the O(|V|) growth",
			saved, warm, cold, min)
	}
}
