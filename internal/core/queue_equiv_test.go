package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/pq"
)

// Concrete queue types, for asserting the QueueAuto selection policy.
type (
	bucketQueueType = pq.BucketQueue[qItem]
	heapQueueType   = pq.Heap[qItem]
)

// The CI-gated equivalence property of PR10: the monotone bucket queue
// and the 4-ary heap must produce byte-identical results — same
// witnesses, same costs, same order — and identical Examined/Generated
// counts, for every method, on several graph families. The two
// implementations share the (key, seq) total order, so any divergence is
// a queue bug, not a modeling choice.

// gridInstance builds a directed grid with uniform edge weights — the
// worst case for tie-breaking, since almost every frontier expansion
// produces equal keys — plus a random query.
func gridInstance(rng *rand.Rand) (*graph.Graph, Query) {
	rows, cols := 3+rng.Intn(3), 3+rng.Intn(4)
	n := rows * cols
	ncats := 2 + rng.Intn(3)
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(ncats)
	at := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1), 1)
				b.AddEdge(at(r, c+1), at(r, c), 1)
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c), 1)
				b.AddEdge(at(r+1, c), at(r, c), 1)
			}
		}
	}
	for v := 0; v < n; v++ {
		b.AddCategory(graph.Vertex(v), graph.Category(v%ncats))
	}
	g := b.MustBuild()
	j := 1 + rng.Intn(3)
	cats := make([]graph.Category, j)
	for i := range cats {
		cats[i] = graph.Category(rng.Intn(ncats))
	}
	return g, Query{
		Source:     graph.Vertex(rng.Intn(n)),
		Target:     graph.Vertex(rng.Intn(n)),
		Categories: cats,
		K:          1 + rng.Intn(5),
	}
}

// clusterInstance builds a few dense clusters joined by sparse heavy
// bridges, giving a bimodal key distribution: the bucket queue sees long
// runs in low buckets punctuated by far-bucket redistributions.
func clusterInstance(rng *rand.Rand) (*graph.Graph, Query) {
	k := 2 + rng.Intn(3)  // clusters
	sz := 4 + rng.Intn(4) // vertices per cluster
	n := k * sz
	ncats := 2 + rng.Intn(3)
	b := graph.NewBuilder(n, true)
	b.EnsureCategories(ncats)
	for ci := 0; ci < k; ci++ {
		base := ci * sz
		for e := 0; e < 3*sz; e++ {
			u := graph.Vertex(base + rng.Intn(sz))
			v := graph.Vertex(base + rng.Intn(sz))
			b.AddEdge(u, v, float64(1+rng.Intn(3)))
		}
	}
	for e := 0; e < 2*k; e++ {
		cu, cv := rng.Intn(k), rng.Intn(k)
		u := graph.Vertex(cu*sz + rng.Intn(sz))
		v := graph.Vertex(cv*sz + rng.Intn(sz))
		b.AddEdge(u, v, float64(50+rng.Intn(100)))
	}
	for v := 0; v < n; v++ {
		if rng.Intn(3) != 0 {
			b.AddCategory(graph.Vertex(v), graph.Category(rng.Intn(ncats)))
		}
	}
	g := b.MustBuild()
	j := 1 + rng.Intn(3)
	cats := make([]graph.Category, j)
	for i := range cats {
		cats[i] = graph.Category(rng.Intn(ncats))
	}
	return g, Query{
		Source:     graph.Vertex(rng.Intn(n)),
		Target:     graph.Vertex(rng.Intn(n)),
		Categories: cats,
		K:          1 + rng.Intn(5),
	}
}

// TestQueueImplementationsEquivalent runs every method on three graph
// families with the queue forced each way and demands byte-identical
// routes and identical examined/generated counters. It also covers the
// truncated case: a MaxExamined budget must trip at the same pop for
// both queues.
func TestQueueImplementationsEquivalent(t *testing.T) {
	families := []struct {
		name string
		gen  func(*rand.Rand) (*graph.Graph, Query)
	}{
		{"sparse", randomInstance},
		{"grid", gridInstance},
		{"cluster", clusterInstance},
	}
	methods := []Method{MethodKPNE, MethodPK, MethodSK, MethodKStar}
	for _, fam := range families {
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1010))
			for trial := 0; trial < 40; trial++ {
				g, q := fam.gen(rng)
				for provName, prov := range providers(g) {
					for _, m := range methods {
						tag := fmt.Sprintf("trial %d %s/%s", trial, provName, m)
						opts := Options{Method: m}
						if trial%5 == 4 {
							opts.MaxExamined = 1 + int64(rng.Intn(30))
						}
						opts.Queue = QueueHeap
						hr, hs, herr := Solve(context.Background(), g, q, prov, opts)
						opts.Queue = QueueBucket
						br, bs, berr := Solve(context.Background(), g, q, prov, opts)
						if (herr == nil) != (berr == nil) || (herr != nil && herr.Error() != berr.Error()) {
							t.Fatalf("%s: error mismatch: heap=%v bucket=%v", tag, herr, berr)
						}
						if !reflect.DeepEqual(hr, br) {
							t.Fatalf("%s: routes differ\n heap=%v\n bucket=%v", tag, hr, br)
						}
						if hs.Examined != bs.Examined || hs.Generated != bs.Generated {
							t.Fatalf("%s: counters differ: heap examined=%d generated=%d, bucket examined=%d generated=%d",
								tag, hs.Examined, hs.Generated, bs.Examined, bs.Generated)
						}
					}
				}
			}
		})
	}
}

// TestQueueAutoSelection pins the QueueAuto policy: monotone methods get
// the bucket queue, dominance-pruned methods the heap, and both forced
// kinds are honoured.
func TestQueueAutoSelection(t *testing.T) {
	s := NewScratch(8)
	if _, ok := s.queueFor(QueueAuto, false).(*bucketQueueType); !ok {
		t.Error("QueueAuto without dominance should select the bucket queue")
	}
	if _, ok := s.queueFor(QueueAuto, true).(*heapQueueType); !ok {
		t.Error("QueueAuto with dominance should select the heap")
	}
	if _, ok := s.queueFor(QueueBucket, true).(*bucketQueueType); !ok {
		t.Error("QueueBucket should be honoured regardless of dominance")
	}
	if _, ok := s.queueFor(QueueHeap, false).(*heapQueueType); !ok {
		t.Error("QueueHeap should be honoured regardless of dominance")
	}
}
