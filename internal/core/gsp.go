package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

// GSP answers an OSR query (k = 1) with the dynamic program of Rice &
// Tsotras (Section III-B2 of the paper):
//
//	X[i][v] = min over u ∈ V_C(i-1) of X[i-1][u] + dis(u, v)
//
// Each transition is evaluated with one multi-source Dijkstra seeded by
// the previous layer, which computes the recurrence exactly. (The paper
// engineers the transitions with contraction hierarchies; GSPCH in this
// repository does the same — see internal/core/gspch.go.)
//
// GSP returns the optimal sequenced route and its witness. ok is false
// when no feasible route exists.
func GSP(g *graph.Graph, q Query) (Route, *Stats, bool, error) {
	q.K = 1
	if err := q.Validate(g); err != nil {
		return Route{}, nil, false, err
	}
	st := &Stats{Method: -1}
	start := time.Now()

	j := len(q.Categories)
	ms := dijkstra.New(g)
	seeds := []dijkstra.Seed{{V: q.Source, D: 0}}
	// preds[i][v] is the layer-(i-1) vertex realizing X[i][v].
	preds := make([]map[graph.Vertex]graph.Vertex, j+1)
	for i := 0; i < j; i++ {
		ms.MultiSource(seeds, false)
		layer := g.VerticesOf(q.Categories[i])
		next := seeds[:0:0]
		preds[i] = make(map[graph.Vertex]graph.Vertex, len(layer))
		for _, v := range layer {
			d := ms.Dist(v)
			if math.IsInf(d, 1) {
				continue
			}
			next = append(next, dijkstra.Seed{V: v, D: d})
			preds[i][v] = ms.Origin(v)
		}
		if len(next) == 0 {
			st.Total = time.Since(start)
			return Route{}, st, false, nil
		}
		seeds = next
	}
	ms.MultiSource(seeds, false)
	cost := ms.Dist(q.Target)
	if math.IsInf(cost, 1) {
		st.Total = time.Since(start)
		return Route{}, st, false, nil
	}
	preds[j] = map[graph.Vertex]graph.Vertex{q.Target: ms.Origin(q.Target)}

	// Reconstruct the witness back from the destination.
	witness := make([]graph.Vertex, j+2)
	witness[j+1] = q.Target
	cur := q.Target
	for i := j; i >= 1; i-- {
		prev, ok := preds[i][cur]
		if !ok {
			return Route{}, nil, false, fmt.Errorf("core: GSP predecessor chain broken at layer %d", i)
		}
		witness[i] = prev
		cur = prev
	}
	witness[0] = q.Source
	st.Total = time.Since(start)
	st.Results = 1
	return Route{Witness: witness, Cost: cost}, st, true, nil
}
