// Package core implements the paper's contribution: answering top-k
// optimal sequenced route (KOSR) queries on general graphs. It provides
// the baseline KPNE (Algorithm 1 extended to top-k), the dominance-based
// PruningKOSR (Algorithm 2), the A*-style StarKOSR (Section IV-B), and
// the GSP dynamic-programming baseline for OSR queries (Section III-B2).
//
// All route algorithms operate on witnesses (Definition 4): sequences
// ⟨s, v1, …, vj, t⟩ with vi ∈ V_Ci whose cost is the sum of shortest-path
// distances between consecutive vertices. Nearest-neighbour discovery is
// abstracted behind NNFinder so every algorithm runs both with the
// inverted-label FindNN (Algorithm 3) and with incremental Dijkstra
// searches (the paper's -Dij variants).
package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
)

// Query is a KOSR query (s, t, C, k) — Definition 5.
type Query struct {
	Source, Target graph.Vertex
	// Categories is the category sequence C = ⟨C1, …, Cj⟩ that feasible
	// routes must visit in order between Source and Target.
	Categories []graph.Category
	// K is the number of routes to return.
	K int
}

// Validate checks the query against a graph.
func (q Query) Validate(g *graph.Graph) error {
	return q.ValidateN(g, g.NumCategories())
}

// ValidateN checks the query against a graph whose effective category
// space has numCats ids — larger than g.NumCategories() when categories
// were added dynamically (the snapshot layer passes its own bound via
// Options.NumCategories).
func (q Query) ValidateN(g *graph.Graph, numCats int) error {
	n := graph.Vertex(g.NumVertices())
	if q.Source < 0 || q.Source >= n {
		return fmt.Errorf("core: source %d out of range", q.Source)
	}
	if q.Target < 0 || q.Target >= n {
		return fmt.Errorf("core: target %d out of range", q.Target)
	}
	if q.K <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", q.K)
	}
	for _, c := range q.Categories {
		if int(c) < 0 || int(c) >= numCats {
			return fmt.Errorf("core: category %d out of range", c)
		}
	}
	return nil
}

// Route is one result: a witness and its cost.
type Route struct {
	// Witness is ⟨s, v1, …, vj, t⟩.
	Witness []graph.Vertex
	// Cost is the witness cost: the sum of shortest-path distances
	// between consecutive witness vertices.
	Cost graph.Weight
}

// String renders the witness with its cost, e.g. "⟨0 3 7⟩(20)".
func (r Route) String() string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, v := range r.Witness {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, "⟩(%g)", r.Cost)
	return b.String()
}

// Neighbor is a category vertex at a shortest-path distance from some
// query vertex.
type Neighbor struct {
	V graph.Vertex
	D graph.Weight
}

// NNFinder finds the x-th nearest neighbour of a vertex within a
// category, 1-based, resuming prior work where possible. Implementations
// are per-query and not safe for concurrent use.
type NNFinder interface {
	// Find returns the x-th nearest neighbour of v in cat by plain
	// shortest-path distance. ok is false when fewer than x vertices of
	// cat are reachable from v.
	Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool)
	// Queries returns the number of NN searches that did real work
	// (cache hits on already-materialized neighbours are not counted,
	// matching the paper's evaluation criterion).
	Queries() int64
}

// Provider supplies the per-query machinery an algorithm needs: an
// NNFinder and a distance-to-target oracle (the A* heuristic of
// StarKOSR, also used to close routes into the destination).
type Provider interface {
	// NN returns a fresh NNFinder for one query.
	NN() NNFinder
	// DistTo returns an oracle for dis(·, t).
	DistTo(t graph.Vertex) func(graph.Vertex) graph.Weight
}

// Method selects the route search algorithm.
type Method int

// The route search algorithms of the paper. StarKOSR — the paper's
// fastest method — is the zero value, so it is the default everywhere.
const (
	// MethodSK is StarKOSR (Section IV-B).
	MethodSK Method = iota
	// MethodPK is PruningKOSR (Algorithm 2).
	MethodPK
	// MethodKPNE is the baseline: PNE (Algorithm 1) extended to top-k.
	MethodKPNE
	// MethodKStar is an ablation not in the paper: KPNE's exhaustive
	// expansion ordered by the A* estimate of StarKOSR, isolating the
	// contribution of the estimate from that of the dominance pruning.
	MethodKStar
)

func (m Method) String() string {
	switch m {
	case MethodKPNE:
		return "KPNE"
	case MethodPK:
		return "PruningKOSR"
	case MethodSK:
		return "StarKOSR"
	case MethodKStar:
		return "KPNE+A*"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// QueueKind selects the implementation of the engine's global route
// queue. The two implementations pop in byte-identical order (the bucket
// queue reproduces the heap's (key, seq) total order exactly, falling
// back to an internal overflow heap for below-frontier re-insertions), so
// the choice affects only constant factors.
type QueueKind int

const (
	// QueueAuto picks per method: the monotone bucket queue for the
	// exhaustive expansions (KPNE, KPNE+A*), whose pop keys never
	// decrease, and the 4-ary heap for the dominance-pruned methods
	// (PruningKOSR, StarKOSR), whose reconsider step re-inserts parked
	// routes below the pop frontier.
	QueueAuto QueueKind = iota
	// QueueHeap forces the 4-ary comparison heap.
	QueueHeap
	// QueueBucket forces the monotone bucket (radix) queue.
	QueueBucket
)

// Options tunes a Solve call.
type Options struct {
	Method Method
	// Queue selects the global route queue implementation (default
	// QueueAuto). Results are identical for every setting; this is a
	// performance knob and an equivalence-testing hook.
	Queue QueueKind
	// PrewarmCatRows asks the engine to pre-claim this many NN iterator
	// rows (and estimated-NN rows for the A*-guided methods) before the
	// search starts. Batch callers set it to the number of distinct
	// categories across the batch so row allocation happens once per
	// pooled scratch rather than once per query (0 = no prewarming).
	PrewarmCatRows int
	// NumCategories overrides the category-id validation bound
	// (0 = g.NumCategories()). Systems serving epoch-versioned
	// snapshots pass the snapshot's effective category count, so
	// categories added dynamically beyond the graph's static set are
	// queryable; the engine itself treats an id with no members as an
	// empty category (no feasible routes).
	NumCategories int
	// VerticesOf overrides the category membership listing used to seed
	// the roots of no-source variant queries (nil = g.VerticesOf).
	// Systems serving epoch-versioned snapshots pass their effective
	// per-category vertex lists, so vertices recategorized at run time
	// widen (or narrow) the variant root set exactly like native
	// members. The list must be duplicate-free; ascending order keeps
	// results deterministic.
	VerticesOf func(graph.Category) []graph.Vertex
	// TimeBreakdown enables the Table X wall-clock attribution (NN time,
	// queue time, estimation time); it adds timer overhead.
	TimeBreakdown bool
	// MaxExamined aborts the search after this many examined routes
	// (0 = unlimited). The harness uses it to report INF entries.
	MaxExamined int64
	// MaxDuration aborts the search after this much wall-clock time
	// (0 = unlimited).
	MaxDuration time.Duration
	// Trace records the global queue contents at every step (the
	// paper's Tables III and VI). Expensive; for tests and demos only.
	Trace *Trace
}

// numCategories resolves the category validation bound for g.
func (o Options) numCategories(g *graph.Graph) int {
	if o.NumCategories > 0 {
		return o.NumCategories
	}
	return g.NumCategories()
}

// ErrBudgetExceeded is returned when MaxExamined or MaxDuration was hit
// before k routes were found. The harness renders it as the paper's INF.
var ErrBudgetExceeded = errors.New("core: search budget exceeded")

// ErrExaminedExceeded is the specific ErrBudgetExceeded returned when
// MaxExamined tripped (it matches ErrBudgetExceeded under errors.Is, so
// generic budget handling is unaffected). Unlike a wall-clock budget,
// the examined-routes budget is deterministic: two runs of the same
// query with the same limit truncate identically, which is what lets
// the server's result cache admit such partial answers keyed on the
// budget.
var ErrExaminedExceeded = fmt.Errorf("%w (examined-routes limit)", ErrBudgetExceeded)

// Stats reports the evaluation criteria of Section V-A: run-time, number
// of examined routes, number of NN queries — plus the Table X wall-clock
// breakdown and the Figure 5 per-category search-space profile.
type Stats struct {
	Method    Method
	Examined  int64 // routes popped from the global priority queue
	Generated int64 // routes pushed into the global priority queue
	Dominated int64 // routes parked in HT≻ (PruningKOSR/StarKOSR)
	Released  int64 // parked routes re-inserted after a result
	NNQueries int64 // non-cached FindNN invocations
	PeakQueue int   // maximum size of the global priority queue
	Results   int

	// ExaminedPerLevel[i] counts examined routes whose witness size is
	// i+1, i.e. routes whose last vertex sits at category i (0 = source,
	// |C|+1 = destination) — Figure 5.
	ExaminedPerLevel []int64

	Total time.Duration
	// Breakdown (only populated with Options.TimeBreakdown):
	NNTime  time.Duration // nearest-neighbour queries
	PQTime  time.Duration // global priority queue maintenance
	EstTime time.Duration // cost-to-destination estimation (StarKOSR)
}

// TraceRoute is one queue entry in a Trace snapshot.
type TraceRoute struct {
	Witness string // e.g. "s,a,b"
	Cost    graph.Weight
	X       int // NN index of the last vertex; -1 renders as the paper's '-'
}

// TraceStep is the global queue at the start of one iteration, sorted by
// priority.
type TraceStep struct {
	Queue []TraceRoute
}

// Trace captures the per-step queue snapshots of Tables III and VI.
type Trace struct {
	// Names maps vertices to symbolic names for rendering.
	Names func(graph.Vertex) string
	Steps []TraceStep
}
