package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// TestInheritScratchesMovesPool pins the epoch handoff: a scratch
// pooled on the superseded provider moves to the successor and comes
// back warm (same object, same graph size) on the next acquire. Under
// the race detector sync.Pool drops items at random by design, so the
// strict counts only hold in a normal build.
func TestInheritScratchesMovesPool(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race")
	}
	g := graph.Figure1()
	old := NewLabelProvider(g, nil)
	s := old.AcquireScratch()
	old.ReleaseScratch(s)

	next := &LabelProvider{Graph: g, Labels: old.Labels, Inv: old.Inv}
	if moved := next.InheritScratches(old); moved != 1 {
		t.Fatalf("moved %d scratches, want 1", moved)
	}
	got := next.AcquireScratch()
	if got != s {
		t.Fatalf("successor pool handed out a different scratch (cold acquire)")
	}
	next.ReleaseScratch(got)
}

// TestReleaseForwardsAcrossEpochHandoff pins the redirect chain: a
// scratch checked out before the handoff — an in-flight query's — must
// land in the live successor's pool when released through the
// superseded provider, even across several epochs.
func TestReleaseForwardsAcrossEpochHandoff(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race")
	}
	g := graph.Figure1()
	p1 := NewLabelProvider(g, nil)
	inFlight := p1.AcquireScratch() // a query holds this across two publications

	p2 := &LabelProvider{Graph: g, Labels: p1.Labels, Inv: p1.Inv}
	p2.InheritScratches(p1)
	p3 := &LabelProvider{Graph: g, Labels: p1.Labels, Inv: p1.Inv}
	p3.InheritScratches(p2)

	p1.ReleaseScratch(inFlight) // the old query finally finishes
	got := p3.AcquireScratch()
	if got != inFlight {
		t.Fatal("release through a superseded provider did not reach the live pool")
	}
	p3.ReleaseScratch(got)
}

// TestScratchServesNewIndexAfterHandoff runs a real query on a carried
// scratch against a different index instance, pinning the NN-iterator
// rebind: recycled iterators must answer from the index of the query
// that reuses them, not the one they were created on.
func TestScratchServesNewIndexAfterHandoff(t *testing.T) {
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	q := Query{Source: s, Target: tv, Categories: []graph.Category{ma, re, ci}, K: 3}

	p1 := NewLabelProvider(g, nil)
	if _, _, err := Solve(context.Background(), g, q, p1, Options{}); err != nil {
		t.Fatal(err)
	}

	// A second provider over independently built indexes of the same
	// graph — the handoff hands it p1's warm scratch. (Under -race
	// sync.Pool may drop it; the correctness assertions below hold
	// either way.)
	p2 := NewLabelProvider(g, nil)
	if moved := p2.InheritScratches(p1); !raceEnabled && moved != 1 {
		t.Fatalf("moved %d scratches, want 1", moved)
	}
	routes, _, err := Solve(context.Background(), g, q, p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Weight{20, 21, 22}
	if len(routes) != len(want) {
		t.Fatalf("got %d routes, want %d", len(routes), len(want))
	}
	for i, r := range routes {
		if r.Cost != want[i] {
			t.Fatalf("route %d cost %v, want %v", i, r.Cost, want[i])
		}
	}
}
