package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// fig1Query returns the paper's running query (s, t, ⟨MA,RE,CI⟩, k).
func fig1Query(t *testing.T, g *graph.Graph, k int) Query {
	t.Helper()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	return Query{Source: s, Target: tv, Categories: []graph.Category{ma, re, ci}, K: k}
}

func witnessNames(g *graph.Graph, r Route) string {
	s := ""
	for i, v := range r.Witness {
		if i > 0 {
			s += ","
		}
		s += g.VertexName(v)
	}
	return s
}

func providers(g *graph.Graph) map[string]Provider {
	return map[string]Provider{
		"label":    NewLabelProvider(g, nil),
		"dijkstra": &DijkstraProvider{Graph: g},
	}
}

// Example 1 of the paper: the KOSR query (s, t, ⟨MA,RE,CI⟩, 3) returns
// routes with costs 20, 21 and 22.
func TestPaperExample1(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 3)
	wantW := []string{"s,a,b,d,t", "s,a,e,d,t", "s,c,b,d,t"}
	wantC := []float64{20, 21, 22}
	for provName, prov := range providers(g) {
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, st, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%s: %v", provName, m, err)
			}
			if len(routes) != 3 {
				t.Fatalf("%s/%s: got %d routes", provName, m, len(routes))
			}
			for i := range routes {
				if routes[i].Cost != wantC[i] {
					t.Errorf("%s/%s: route %d cost %v, want %v", provName, m, i, routes[i].Cost, wantC[i])
				}
				if got := witnessNames(g, routes[i]); got != wantW[i] {
					t.Errorf("%s/%s: route %d witness %s, want %s", provName, m, i, got, wantW[i])
				}
			}
			if st.Results != 3 || st.Examined == 0 {
				t.Errorf("%s/%s: stats=%+v", provName, m, st)
			}
		}
	}
}

// The running example reproduces the paper's step counts: 13 steps for
// PruningKOSR (Table III) and 9 for StarKOSR (Table VI). (On an instance
// this tiny KPNE needs only 11 pops — park-and-release makes PK
// re-examine two routes — the asymptotic advantage of Lemma 3 shows up
// on the large instances of the benchmark harness instead.)
func TestSearchSpaceShrinks(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 2)
	prov := NewLabelProvider(g, nil)
	examined := map[Method]int64{}
	for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
		_, st, err := Solve(context.Background(), g, q, prov, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		examined[m] = st.Examined
	}
	if examined[MethodPK] != 13 {
		t.Errorf("PruningKOSR examined %d routes, paper's Table III shows 13 steps", examined[MethodPK])
	}
	if examined[MethodSK] != 9 {
		t.Errorf("StarKOSR examined %d routes, paper's Table VI shows 9 steps", examined[MethodSK])
	}
	if examined[MethodSK] > examined[MethodPK] {
		t.Errorf("expected SK ≤ PK on the running example, got %v", examined)
	}
}

func assertTrace(t *testing.T, got []TraceStep, want [][]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace has %d steps, want %d\n%v", len(got), len(want), got)
	}
	for i, step := range want {
		if len(got[i].Queue) != len(step) {
			t.Fatalf("step %d has %d entries, want %d: got %v want %v",
				i+1, len(got[i].Queue), len(step), got[i].Queue, step)
		}
		for k, wantEntry := range step {
			e := got[i].Queue[k]
			x := fmt.Sprintf("%d", e.X)
			if e.X < 0 {
				x = "-"
			}
			gotEntry := fmt.Sprintf("%s(%g)%s", e.Witness, e.Cost, x)
			// A '*' x in the expectation means "do not check x" (the
			// paper's x for complete routes is inconsistent; see the
			// comments at the call sites).
			if wantEntry[len(wantEntry)-1] == '*' {
				gotEntry = gotEntry[:len(gotEntry)-len(x)] + "*"
			}
			if gotEntry != wantEntry {
				t.Errorf("step %d entry %d = %s, want %s", i+1, k, gotEntry, wantEntry)
			}
		}
	}
}

// TestPaperTableIII replays PruningKOSR on the query (s,t,⟨MA,RE,CI⟩,2)
// and asserts the priority-queue contents of Table III step by step.
//
// Steps 1–12 match the paper exactly. At step 13 the paper's queue
// additionally lists ⟨s,c,b,d,t⟩(22): the paper's own hash-table trace
// (Table III(b), step 10) shows that routes released from HT≻ re-register
// in HT≺ when examined, which makes ⟨s,c,b,d⟩ dominated by the
// re-registered ⟨s,a,e,d⟩ at step 12 — so faithfully following
// Algorithm 2, ⟨s,c,b,d⟩ is parked (not extended) at step 12 and
// ⟨s,c,b,d,t⟩ cannot be in the queue at step 13. The two resolutions of
// this ambiguity return identical result sets for every k (the parked
// route is released exactly when ⟨s,a,e,d,t⟩ completes); we implement
// the pseudocode-faithful one.
func TestPaperTableIII(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 2)
	trace := &Trace{}
	routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodPK, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"s(0)1"},
		{"s,a(8)1"},
		{"s,c(10)2", "s,a,b(13)1"},
		{"s,a,b(13)1", "s,c,b(15)1"},
		{"s,a,e(14)2", "s,c,b(15)1", "s,a,b,d(16)1"},
		{"s,c,b(15)1", "s,a,b,d(16)1", "s,a,e,d(17)1"},
		{"s,a,b,d(16)1", "s,a,e,d(17)1", "s,c,e(27)2"},
		{"s,a,e,d(17)1", "s,a,b,d,t(20)1", "s,c,e(27)2", "s,a,b,f(40)2"},
		{"s,a,b,d,t(20)1", "s,a,e,f(24)2", "s,c,e(27)2", "s,a,b,f(40)2"},
		{"s,c,b(15)-", "s,a,e,d(17)-", "s,a,e,f(24)2", "s,c,e(27)2", "s,a,b,f(40)2"},
		{"s,a,e,d(17)-", "s,c,b,d(18)1", "s,a,e,f(24)2", "s,c,e(27)2", "s,a,b,f(40)2"},
		{"s,c,b,d(18)1", "s,a,e,d,t(21)1", "s,a,e,f(24)2", "s,c,e(27)2", "s,a,b,f(40)2"},
		// Paper step 13 additionally lists s,c,b,d,t(22); see doc comment.
		{"s,a,e,d,t(21)1", "s,a,e,f(24)2", "s,c,e(27)2", "s,a,b,f(40)2", "s,c,b,f(42)2"},
	}
	assertTrace(t, trace.Steps, want)
	if len(routes) != 2 || routes[0].Cost != 20 || routes[1].Cost != 21 {
		t.Fatalf("routes=%v", routes)
	}
}

// TestPaperTableVI replays StarKOSR on the same query and asserts the
// estimated-cost queue of Table VI. The x of complete routes is not
// asserted (marked '*'): Table VI step 9 lists ⟨s,a,e,d,t⟩ with x=2 while
// the same construction at step 6 lists ⟨s,a,b,d,t⟩ with x=1; extensions
// into the destination always use the 1st (and only) neighbour.
func TestPaperTableVI(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 2)
	trace := &Trace{}
	routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"s(0)1"},
		{"s,c(17)1"},
		{"s,a(20)2", "s,c,b(22)1"},
		{"s,a,b(20)1", "s,c,b(22)1"},
		{"s,a,b,d(20)1", "s,a,e(21)2", "s,c,b(22)1"},
		{"s,a,b,d,t(20)*", "s,a,e(21)2", "s,c,b(22)1", "s,a,b,f(43)2"},
		{"s,a,e(21)2", "s,c,b(22)1", "s,a,b,f(43)2"},
		{"s,a,e,d(21)1", "s,c,b(22)1", "s,a,b,f(43)2"},
		{"s,a,e,d,t(21)*", "s,c,b(22)1", "s,a,e,f(27)2", "s,a,b,f(43)2"},
	}
	assertTrace(t, trace.Steps, want)
	if len(routes) != 2 || routes[0].Cost != 20 || routes[1].Cost != 21 {
		t.Fatalf("routes=%v", routes)
	}
}

func TestQueryValidation(t *testing.T) {
	g := graph.Figure1()
	prov := NewLabelProvider(g, nil)
	bad := []Query{
		{Source: -1, Target: 0, K: 1},
		{Source: 0, Target: 99, K: 1},
		{Source: 0, Target: 1, K: 0},
		{Source: 0, Target: 1, K: 1, Categories: []graph.Category{99}},
	}
	for i, q := range bad {
		if _, _, err := Solve(context.Background(), g, q, prov, Options{}); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestEmptyCategorySequence(t *testing.T) {
	// |C| = 0: the only witness is ⟨s, t⟩ with cost dis(s,t) = 17.
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	q := Query{Source: s, Target: tv, K: 3}
	for provName, prov := range providers(g) {
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%s: %v", provName, m, err)
			}
			if len(routes) != 1 || routes[0].Cost != 17 {
				t.Fatalf("%s/%s: routes=%v", provName, m, routes)
			}
		}
	}
}

func TestFewerThanKRoutes(t *testing.T) {
	// Only 2×2×2 = 8 witnesses exist; asking for 100 returns all 8.
	g := graph.Figure1()
	q := fig1Query(t, g, 100)
	for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
		routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(routes) != 8 {
			t.Fatalf("%s: got %d routes, want 8", m, len(routes))
		}
		for i := 1; i < len(routes); i++ {
			if routes[i].Cost < routes[i-1].Cost {
				t.Fatalf("%s: costs not sorted: %v", m, routes)
			}
		}
	}
}

func TestUnreachableTarget(t *testing.T) {
	// t has no incoming edges reachable from s's side.
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(3, 2, 1) // 2 unreachable from 0
	b.AddCategory(1, 0)
	b.EnsureCategories(1)
	g := b.MustBuild()
	q := Query{Source: 0, Target: 2, Categories: []graph.Category{0}, K: 1}
	for provName, prov := range providers(g) {
		for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
			routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%s: %v", provName, m, err)
			}
			if len(routes) != 0 {
				t.Fatalf("%s/%s: got routes to unreachable target: %v", provName, m, routes)
			}
		}
	}
}

func TestEmptyCategory(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1)
	b.EnsureCategories(1) // category 0 has no vertices
	g := b.MustBuild()
	q := Query{Source: 0, Target: 2, Categories: []graph.Category{0}, K: 1}
	routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil || len(routes) != 0 {
		t.Fatalf("routes=%v err=%v", routes, err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 3)
	_, st, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodKPNE, MaxExamined: 2})
	if !errors.Is(err, ErrExaminedExceeded) || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err=%v, want ErrExaminedExceeded matching ErrBudgetExceeded", err)
	}
	if st.Examined != 2 {
		t.Fatalf("examined=%d", st.Examined)
	}
}

func TestTimeBreakdown(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 2)
	_, st, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK, TimeBreakdown: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total <= 0 {
		t.Fatalf("total=%v", st.Total)
	}
	// The breakdown accumulators must have been touched (they can be
	// tiny, but the monotonic clock makes successive time.Now calls
	// distinct on this platform).
	if st.NNTime < 0 || st.PQTime < 0 || st.EstTime < 0 {
		t.Fatalf("negative breakdown: %+v", st)
	}
}

func TestExaminedPerLevel(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 2)
	_, st, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.ExaminedPerLevel) != 5 {
		t.Fatalf("levels=%v", st.ExaminedPerLevel)
	}
	var sum int64
	for _, c := range st.ExaminedPerLevel {
		sum += c
	}
	if sum != st.Examined {
		t.Fatalf("per-level sum %d != examined %d", sum, st.Examined)
	}
	if st.ExaminedPerLevel[0] != 1 {
		t.Fatalf("source examined %d times", st.ExaminedPerLevel[0])
	}
}

func TestRepeatedCategory(t *testing.T) {
	// ⟨MA, MA⟩: the same vertex may serve both (zero-cost self hop).
	g := graph.Figure1()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	q := Query{Source: s, Target: tv, Categories: []graph.Category{ma, ma}, K: 2}
	var costs [][]float64
	for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
		routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		var cs []float64
		for _, r := range routes {
			cs = append(cs, r.Cost)
		}
		costs = append(costs, cs)
	}
	for i := 1; i < len(costs); i++ {
		if fmt.Sprint(costs[i]) != fmt.Sprint(costs[0]) {
			t.Fatalf("methods disagree: %v", costs)
		}
	}
	// Cheapest: s→c (10), c serves MA twice (0), c→t (7) = 17.
	if costs[0][0] != 17 {
		t.Fatalf("top-1 cost %v, want 17", costs[0][0])
	}
}

func TestExpandWitness(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 1)
	routes, _, err := Solve(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	route := ExpandWitness(g, routes[0].Witness)
	if route == nil {
		t.Fatal("expand failed")
	}
	// Each consecutive pair must be an edge, and the total cost must
	// equal the witness cost.
	var cost float64
	for i := 0; i+1 < len(route); i++ {
		best := graph.Inf
		for _, a := range g.Out(route[i]) {
			if a.To == route[i+1] && a.W < best {
				best = a.W
			}
		}
		if best == graph.Inf {
			t.Fatalf("non-edge %d->%d in expanded route", route[i], route[i+1])
		}
		cost += best
	}
	if cost != routes[0].Cost {
		t.Fatalf("expanded cost %v != witness cost %v", cost, routes[0].Cost)
	}
}

func TestRouteString(t *testing.T) {
	r := Route{Witness: []graph.Vertex{0, 3, 7}, Cost: 20}
	if got := r.String(); got != "⟨0 3 7⟩(20)" {
		t.Fatalf("String()=%q", got)
	}
}

func TestMethodString(t *testing.T) {
	if MethodKPNE.String() != "KPNE" || MethodPK.String() != "PruningKOSR" ||
		MethodSK.String() != "StarKOSR" || Method(9).String() == "" {
		t.Fatal("method names wrong")
	}
}
