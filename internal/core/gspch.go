package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ch"
	"repro/internal/graph"
)

// GSPCH answers an OSR query with the same dynamic program as GSP, but
// evaluates each layer transition with the contraction-hierarchy bucket
// many-to-many technique, matching the engineering of the original GSP
// system (Rice & Tsotras, ICDE 2013) that the paper compares against.
func GSPCH(g *graph.Graph, hierarchy *ch.Index, q Query) (Route, *Stats, bool, error) {
	q.K = 1
	if err := q.Validate(g); err != nil {
		return Route{}, nil, false, err
	}
	st := &Stats{Method: -1}
	start := time.Now()

	j := len(q.Categories)
	seeds := []ch.Seed{{V: q.Source, D: 0}}
	preds := make([]map[graph.Vertex]graph.Vertex, j+1)
	for i := 0; i < j; i++ {
		layer := g.VerticesOf(q.Categories[i])
		dist, origin := hierarchy.Table(seeds, layer)
		next := seeds[:0:0]
		preds[i] = make(map[graph.Vertex]graph.Vertex, len(layer))
		for li, v := range layer {
			if math.IsInf(dist[li], 1) {
				continue
			}
			next = append(next, ch.Seed{V: v, D: dist[li]})
			preds[i][v] = origin[li]
		}
		if len(next) == 0 {
			st.Total = time.Since(start)
			return Route{}, st, false, nil
		}
		seeds = next
	}
	dist, origin := hierarchy.Table(seeds, []graph.Vertex{q.Target})
	if math.IsInf(dist[0], 1) {
		st.Total = time.Since(start)
		return Route{}, st, false, nil
	}
	preds[j] = map[graph.Vertex]graph.Vertex{q.Target: origin[0]}

	witness := make([]graph.Vertex, j+2)
	witness[j+1] = q.Target
	cur := q.Target
	for i := j; i >= 1; i-- {
		prev, ok := preds[i][cur]
		if !ok {
			return Route{}, nil, false, fmt.Errorf("core: GSPCH predecessor chain broken at layer %d", i)
		}
		witness[i] = prev
		cur = prev
	}
	witness[0] = q.Source
	st.Total = time.Since(start)
	st.Results = 1
	return Route{Witness: witness, Cost: dist[0]}, st, true, nil
}
