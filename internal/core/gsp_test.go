package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestGSPFigure1(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 1)
	r, st, ok, err := GSP(g, q)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if r.Cost != 20 {
		t.Fatalf("cost=%v, want 20", r.Cost)
	}
	if got := witnessNames(g, r); got != "s,a,b,d,t" {
		t.Fatalf("witness=%s", got)
	}
	if st.Total <= 0 || st.Results != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

// GSP must agree with the brute-force optimum (and hence with all KOSR
// methods at k=1) on random instances.
func TestGSPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 80; trial++ {
		g, q := randomInstance(rng)
		q.K = 1
		oracle, err := BruteForce(g, q)
		if err != nil {
			t.Fatal(err)
		}
		r, _, ok, err := GSP(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(oracle) == 0 {
			if ok {
				t.Fatalf("trial %d: GSP found %v but no feasible route exists", trial, r)
			}
			continue
		}
		if !ok {
			t.Fatalf("trial %d: GSP found nothing, oracle has %v", trial, oracle[0])
		}
		if r.Cost != oracle[0].Cost {
			t.Fatalf("trial %d: GSP cost %v, oracle %v", trial, r.Cost, oracle[0].Cost)
		}
		// The witness must be feasible with the reported cost.
		verifyRoutes(t, g, q, []Route{r}, oracle[:1], "GSP")
	}
}

func TestGSPUnreachable(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddCategory(1, 0)
	b.EnsureCategories(1)
	g := b.MustBuild()
	_, _, ok, err := GSP(g, Query{Source: 0, Target: 2, Categories: []graph.Category{0}, K: 1})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestGSPEmptyCategory(t *testing.T) {
	b := graph.NewBuilder(2, true)
	b.AddEdge(0, 1, 1)
	b.EnsureCategories(1)
	g := b.MustBuild()
	_, _, ok, err := GSP(g, Query{Source: 0, Target: 1, Categories: []graph.Category{0}, K: 1})
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestGSPValidation(t *testing.T) {
	g := graph.Figure1()
	if _, _, _, err := GSP(g, Query{Source: -1, Target: 0, K: 1}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestBruteForceValidation(t *testing.T) {
	g := graph.Figure1()
	if _, err := BruteForce(g, Query{Source: -1, Target: 0, K: 1}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestBruteForceFigure1(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 3)
	routes, err := BruteForce(g, q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{20, 21, 22}
	if len(routes) != 3 {
		t.Fatalf("routes=%v", routes)
	}
	for i := range want {
		if routes[i].Cost != want[i] {
			t.Fatalf("routes=%v", routes)
		}
	}
}
