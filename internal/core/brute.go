package core

import (
	"math"
	"sort"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

// BruteForce enumerates every witness of the category sequence and
// returns the q.K cheapest (Definition 5, literally). It is exponential
// in |C| and exists as the correctness oracle for tests and for the
// harness's self-check mode; use it only on small graphs.
func BruteForce(g *graph.Graph, q Query) ([]Route, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	j := len(q.Categories)

	// Distance tables from the source and from every category vertex.
	dist := make(map[graph.Vertex][]float64)
	ensure := func(v graph.Vertex) []float64 {
		if d, ok := dist[v]; ok {
			return d
		}
		d := dijkstra.AllDistances(g, v, false)
		dist[v] = d
		return d
	}
	ensure(q.Source)
	for _, c := range q.Categories {
		for _, v := range g.VerticesOf(c) {
			ensure(v)
		}
	}

	var all []Route
	witness := make([]graph.Vertex, j+2)
	witness[0] = q.Source
	witness[j+1] = q.Target
	var rec func(level int, cost graph.Weight)
	rec = func(level int, cost graph.Weight) {
		if math.IsInf(cost, 1) {
			return
		}
		if level == j+1 {
			d := dist[witness[level-1]][q.Target]
			if !math.IsInf(d, 1) {
				all = append(all, Route{
					Witness: append([]graph.Vertex(nil), witness...),
					Cost:    cost + d,
				})
			}
			return
		}
		prev := witness[level-1]
		for _, v := range g.VerticesOf(q.Categories[level-1]) {
			d := dist[prev][v]
			if math.IsInf(d, 1) {
				continue
			}
			witness[level] = v
			rec(level+1, cost+d)
		}
	}
	rec(1, 0)

	sort.Slice(all, func(i, j int) bool {
		if all[i].Cost != all[j].Cost {
			return all[i].Cost < all[j].Cost
		}
		return lessWitness(all[i].Witness, all[j].Witness)
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all, nil
}

// allDistances runs one forward SSSP; shared by the brute-force oracles.
func allDistances(g *graph.Graph, src graph.Vertex) []float64 {
	return dijkstra.AllDistances(g, src, false)
}

func lessWitness(a, b []graph.Vertex) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ExpandWitness expands a witness into an actual route (a vertex walk
// where consecutive vertices are connected by edges) by concatenating
// shortest paths between consecutive witness vertices. It returns nil
// when some leg is unreachable (impossible for witnesses produced by
// Solve).
func ExpandWitness(g *graph.Graph, witness []graph.Vertex) []graph.Vertex {
	if len(witness) == 0 {
		return nil
	}
	s := dijkstra.New(g)
	route := []graph.Vertex{witness[0]}
	for i := 0; i+1 < len(witness); i++ {
		u, v := witness[i], witness[i+1]
		if u == v {
			continue // zero-cost self hop: the vertex serves two categories
		}
		s.FromSource(u, false)
		leg := s.Path(v)
		if leg == nil {
			return nil
		}
		route = append(route, leg[1:]...)
	}
	return route
}
