package core

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// TestSteadyStatePopPushAllocs is the allocation regression guard for the
// query hot path: one pop + one arena-backed child push must not allocate
// beyond the amortized arena chunk (1 chunk make per 512 nodes) and the
// occasional heap-slice growth. The seed implementation paid one heap
// object per push (routeNode) plus map-bucket churn; the arena and dense
// tables bring the steady-state cycle to effectively zero allocations.
func TestSteadyStatePopPushAllocs(t *testing.T) {
	g := graph.Figure1()
	prov := NewLabelProvider(g, nil)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	q := Query{Source: s, Target: tv, Categories: []graph.Category{ma}, K: 1}
	e, _, err := newStandardEngine(context.Background(), g, q, prov, Options{Method: MethodSK})
	if err != nil {
		t.Fatal(err)
	}
	e.seed()
	// Warm the queue so pops never drain it.
	root := e.heap.Min().node
	for i := 0; i < 64; i++ {
		child := e.scratch.arena.alloc()
		*child = routeNode{v: root.v, parent: root, size: root.size + 1, cost: graph.Weight(i)}
		e.push(qItem{node: child, key: graph.Weight(i), x: 1})
	}
	avg := testing.AllocsPerRun(4096, func() {
		it := e.pop()
		child := e.scratch.arena.alloc()
		*child = routeNode{v: it.node.v, parent: it.node, size: it.node.size, cost: it.node.cost}
		e.push(qItem{node: child, key: it.key + 1, x: 1})
	})
	// 4096 cycles allocate at most 8 arena chunks plus a few heap-slice
	// doublings: « 0.1 allocs per cycle.
	if avg > 0.1 {
		t.Fatalf("pop/push cycle allocates %.3f objects/op; want ≤ 0.1", avg)
	}
}

// TestSolveMatchesAfterHotPathRewrite pins the end-to-end behavior of
// every method on the paper's running example, guarding the dense
// dominance tables and the arena against semantic drift.
func TestSolveMatchesAfterHotPathRewrite(t *testing.T) {
	g := graph.Figure1()
	prov := NewLabelProvider(g, nil)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	q := Query{Source: s, Target: tv, Categories: []graph.Category{ma, re, ci}, K: 3}
	want := []graph.Weight{20, 21, 22} // Table II of the paper
	for _, m := range []Method{MethodKPNE, MethodPK, MethodSK, MethodKStar} {
		routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(routes) != len(want) {
			t.Fatalf("%v: got %d routes, want %d", m, len(routes), len(want))
		}
		for i, r := range routes {
			if r.Cost != want[i] {
				t.Fatalf("%v: route %d cost %v, want %v", m, i, r.Cost, want[i])
			}
		}
	}
}
