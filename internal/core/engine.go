package core

import (
	"context"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/graph"
)

// routeNode is one vertex of a partially explored witness. Nodes form a
// tree rooted at the source, so all partial routes share prefixes. Nodes
// are allocated from the engine's arena, never individually.
type routeNode struct {
	v      graph.Vertex
	parent *routeNode
	size   int32        // number of witness vertices including the source
	cost   graph.Weight // real witness cost w(p)
}

// nodeArena hands out routeNodes from fixed-size chunks, so the query
// loop stops paying one heap allocation (and later one GC scan object)
// per queue push — the dominant allocation of the engine's hot path.
// Nodes live as long as the owning scratch; none are freed individually,
// and reset() rewinds the arena so the next query reuses the chunks.
type nodeArena struct {
	chunks [][]routeNode
	cur    int // index of the active chunk
	used   int // occupied slots of the active chunk
}

const arenaChunkSize = 512

func (a *nodeArena) alloc() *routeNode {
	if len(a.chunks) == 0 {
		a.chunks = append(a.chunks, make([]routeNode, arenaChunkSize))
	}
	if a.used == arenaChunkSize {
		a.cur++
		if a.cur == len(a.chunks) {
			a.chunks = append(a.chunks, make([]routeNode, arenaChunkSize))
		}
		a.used = 0
	}
	n := &a.chunks[a.cur][a.used]
	a.used++
	return n
}

// reset rewinds the arena; every node handed out so far is reused.
func (a *nodeArena) reset() { a.cur, a.used = 0, 0 }

// qItem is a queue entry: a route, its priority key (real cost for
// KPNE/PruningKOSR, estimated total cost for StarKOSR), and the paper's x
// attribute — the NN index that produced the last vertex (-1 is the
// paper's '-': no sibling candidate must be generated).
type qItem struct {
	node *routeNode
	key  graph.Weight
	x    int32
	seq  int64 // insertion sequence; makes tie-breaking deterministic
}

// lessQItem orders queue entries by priority key, breaking ties by
// insertion sequence for determinism. The global queue, the parked-route
// heaps of HT≻, and trace snapshots all share it.
func lessQItem(a, b qItem) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

// routeQueue is the engine's view of the global route queue. Both
// implementations — pq.Heap (4-ary, decrease-free comparison heap) and
// pq.BucketQueue (monotone bucket/radix queue) — satisfy it and pop in
// the exact same (key, seq) order, so the engine's results are
// independent of the selection (see Options.Queue).
type routeQueue interface {
	Push(qItem)
	Pop() qItem
	Min() qItem
	Len() int
	Items() []qItem
	Clear()
}

// qItemKey extracts the bucket-queue radix key. Route keys are sums of
// non-negative shortest-path distances, so they are always >= 0 and
// NaN-free — the preconditions for O(1) bucket placement.
func qItemKey(it qItem) float64 { return it.key }

// ctxCheckInterval is how many pop-loop iterations may pass between two
// polls of the request context. Cancellation is therefore observed
// within one check interval of engine work — small enough to abort an
// abandoned FLA-scale search promptly, large enough that ctx.Err()'s
// atomic load stays invisible on the hot path.
const ctxCheckInterval = 64

type engine struct {
	g      *graph.Graph
	q      Query
	opt    Options
	ctx    context.Context
	finder NNFinder // plain NN (KPNE/PK) or FindNEN (SK)
	distTo func(graph.Vertex) graph.Weight

	heap    routeQueue
	seq     int64
	nVerts  int
	results []Route
	stats   *Stats

	// scratch holds the arena, the queue, the dense dominance tables
	// (Definition 6) and the NN caches. It is checked out of the
	// provider's pool for the duration of the query (scratchOwner nil
	// means a throwaway scratch that the GC reclaims).
	scratch      *Scratch
	scratchOwner ScratchProvider

	useDominance bool
	useEstimate  bool

	// roots are the initial route heads for the no-source variant
	// (Section IV-C): all first-category vertices, possibly none when
	// the category is empty. Only honoured when rootsSet is true;
	// otherwise the single query source seeds the search.
	roots    []graph.Vertex
	rootsSet bool
	// noTarget completes routes at the last category instead of closing
	// them into a destination (Section IV-C).
	noTarget bool

	deadline time.Time
	seeded   bool
	ctxCheck int // pops until the next ctx poll

	pqTime *time.Duration
}

// initSearchState points the engine at its scratch's queue (selected per
// method, see Options.Queue) and, when dominance pruning is on, sizes the
// dense HT≺/HT≻ tables. It must run after q, opt, useDominance, and
// scratch are final.
func (e *engine) initSearchState() {
	e.nVerts = e.g.NumVertices()
	e.heap = e.scratch.queueFor(e.opt.Queue, e.useDominance)
	if e.useDominance {
		e.scratch.ensureLevels(len(e.q.Categories) + 2)
	}
	if n := e.opt.PrewarmCatRows; n > 0 {
		e.prewarmRows(n)
	}
}

// prewarmRows pre-claims n NN iterator rows (and estimated-NN rows when
// the method uses the A* estimate) so a batch of queries sharing
// categories allocates each row once per pooled scratch, not once per
// query. Rows are positional — the rowIndex maps a query's distinct
// categories to ordinals — so warming means ensuring n rows exist.
func (e *engine) prewarmRows(n int) {
	if rp, ok := e.finder.(rowPrewarmer); ok {
		rp.prewarmRows(n)
	}
	if e.useEstimate {
		e.scratch.prewarmENRows(n)
	}
}

// rowPrewarmer is implemented by NN finders whose per-category state
// lives in positional scratch rows and can be allocated ahead of use.
type rowPrewarmer interface {
	prewarmRows(n int)
}

// releaseScratch returns the scratch to its owning pool (or abandons a
// throwaway one). Safe to call more than once; the engine must not
// search again afterwards.
func (e *engine) releaseScratch() {
	if e.scratch == nil {
		return
	}
	if e.scratchOwner != nil {
		e.scratchOwner.ReleaseScratch(e.scratch)
	}
	e.scratch = nil
	e.scratchOwner = nil
	e.heap = nil
}

// Solve answers the KOSR query q on g with the selected method, using
// prov for nearest-neighbour discovery and distance estimation. It
// returns up to q.K routes in nondecreasing cost order; fewer routes mean
// fewer than k feasible routes exist. ErrBudgetExceeded is returned
// (along with any routes found so far) when Options limits were hit.
//
// Cancelling ctx aborts the search within one pop-loop check interval;
// the routes found so far are returned together with ctx.Err(), and the
// query scratch goes back to the provider's pool. A ctx *deadline* is
// treated as a wall-clock budget like MaxDuration: expiry produces
// ErrBudgetExceeded with the partial routes rather than an error. A nil
// ctx behaves like context.Background().
func Solve(ctx context.Context, g *graph.Graph, q Query, prov Provider, opt Options) ([]Route, *Stats, error) {
	e, nn, err := newStandardEngine(ctx, g, q, prov, opt)
	if err != nil {
		return nil, nil, err
	}
	defer e.releaseScratch()
	start := time.Now()
	runErr := e.run()
	e.stats.NNQueries = nn.Queries()
	e.stats.Results = len(e.results)
	e.stats.Total = time.Since(start)
	return e.results, e.stats, runErr
}

// newStandardEngine builds the engine shared by Solve and Searcher. On
// success the engine holds a checked-out scratch; the caller must
// arrange for releaseScratch once the search is over.
func newStandardEngine(ctx context.Context, g *graph.Graph, q Query, prov Provider, opt Options) (*engine, NNFinder, error) {
	if err := q.ValidateN(g, opt.numCategories(g)); err != nil {
		return nil, nil, err
	}
	st := &Stats{
		Method:           opt.Method,
		ExaminedPerLevel: make([]int64, len(q.Categories)+2),
	}
	scratch, owner := acquireScratch(prov, g.NumVertices())
	nn := prov.NN()
	if su, ok := nn.(scratchUser); ok {
		su.bindScratch(scratch)
	}
	distTo := prov.DistTo(q.Target)
	if opt.TimeBreakdown {
		nn = &timedNN{inner: nn, acc: &st.NNTime}
		inner := distTo
		distTo = func(v graph.Vertex) graph.Weight {
			t0 := time.Now()
			d := inner(v)
			st.EstTime += time.Since(t0)
			return d
		}
	}
	e := &engine{
		g:            g,
		q:            q,
		opt:          opt,
		ctx:          ctx,
		distTo:       distTo,
		stats:        st,
		scratch:      scratch,
		scratchOwner: owner,
		useDominance: opt.Method == MethodPK || opt.Method == MethodSK,
		useEstimate:  opt.Method == MethodSK || opt.Method == MethodKStar,
	}
	if opt.TimeBreakdown {
		e.pqTime = &st.PQTime
	}
	if e.useEstimate {
		e.finder = newENFinder(nn, distTo, scratch)
	} else {
		e.finder = nn
	}
	e.initSearchState()
	return e, nn, nil
}

func (e *engine) push(it qItem) {
	it.seq = e.seq
	e.seq++
	if e.pqTime != nil {
		t0 := time.Now()
		e.heap.Push(it)
		*e.pqTime += time.Since(t0)
	} else {
		e.heap.Push(it)
	}
	e.stats.Generated++
	if e.heap.Len() > e.stats.PeakQueue {
		e.stats.PeakQueue = e.heap.Len()
	}
}

func (e *engine) pop() qItem {
	if e.pqTime != nil {
		t0 := time.Now()
		it := e.heap.Pop()
		*e.pqTime += time.Since(t0)
		return it
	}
	return e.heap.Pop()
}

// key computes the queue priority of a route ending at v with real cost
// w: the real cost for KPNE/PruningKOSR, w + dis(v, t) for StarKOSR
// (Section IV-B).
func (e *engine) key(v graph.Vertex, cost graph.Weight) graph.Weight {
	if !e.useEstimate {
		return cost
	}
	return cost + e.distTo(v)
}

// seed pushes the initial route heads and arms the deadline. It must be
// called once before nextResult.
func (e *engine) seed() {
	roots := e.roots
	if !e.rootsSet {
		roots = []graph.Vertex{e.q.Source}
	}
	for _, r := range roots {
		// A single initial route is keyed 0 (not its estimate),
		// matching Table VI step 1 of the paper; multiple roots
		// (no-source variant) are keyed by their estimates so the
		// most promising head is examined first.
		key := graph.Weight(0)
		if len(roots) > 1 {
			key = e.key(r, 0)
			if math.IsInf(key, 1) {
				continue
			}
		}
		node := e.scratch.arena.alloc()
		*node = routeNode{v: r, size: 1, cost: 0}
		e.push(qItem{node: node, key: key, x: 1})
	}
	if e.opt.MaxDuration > 0 {
		e.deadline = time.Now().Add(e.opt.MaxDuration)
	}
	// A context deadline is a wall-clock budget too: arming it here
	// makes the per-pop deadline check (which returns ErrBudgetExceeded
	// and keeps the partial routes) fire at or before the ctx poll
	// would observe DeadlineExceeded — so a timed-out query degrades to
	// a truncated result instead of an error. Explicit cancellation
	// still surfaces as ctx.Err().
	if e.ctx != nil {
		if d, ok := e.ctx.Deadline(); ok && (e.deadline.IsZero() || d.Before(e.deadline)) {
			e.deadline = d
		}
	}
	e.seeded = true
}

func (e *engine) run() error {
	e.seed()
	for len(e.results) < e.q.K {
		_, ok, err := e.nextResult()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return nil
}

// ctxErr reports the engine context's error, tolerating a nil context.
func (e *engine) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// nextResult resumes the search until the next complete route is found
// (appending it to results), the queue drains (ok=false), or a budget
// trips.
func (e *engine) nextResult() (Route, bool, error) {
	j := len(e.q.Categories)
	completeLevel := j + 1
	if e.noTarget {
		completeLevel = j
	}
	for e.heap.Len() > 0 {
		if e.opt.MaxExamined > 0 && e.stats.Examined >= e.opt.MaxExamined {
			return Route{}, false, ErrExaminedExceeded
		}
		if !e.deadline.IsZero() && time.Now().After(e.deadline) {
			return Route{}, false, ErrBudgetExceeded
		}
		if e.ctx != nil {
			e.ctxCheck--
			if e.ctxCheck <= 0 {
				e.ctxCheck = ctxCheckInterval
				if err := e.ctx.Err(); err != nil {
					return Route{}, false, err
				}
			}
		}
		if e.opt.Trace != nil {
			e.snapshot()
		}

		it := e.pop()
		e.stats.Examined++
		lvl := int(it.node.size) - 1 // 0 = source, j+1 = destination
		e.stats.ExaminedPerLevel[lvl]++
		v := it.node.v

		complete := lvl == completeLevel
		if complete {
			e.results = append(e.results, materialize(it.node))
			if e.useDominance {
				e.reconsider(it.node)
			}
			// In the no-target variant a complete route still generates
			// its sibling below: its last vertex is a category vertex,
			// and the (x+1)-th neighbour yields the next candidate
			// ending at this category.
		}

		extend := !complete
		if extend && e.useDominance {
			if e.scratch.dominatingNode(lvl, v) != nil {
				// Dominated (Definition 6): park in HT≻ until the
				// dominating route completes (Algorithm 2 line 19).
				e.scratch.parkHeap(lvl, v).Push(it)
				e.stats.Dominated++
				extend = false
			} else {
				e.scratch.setDominatingNode(lvl, v, it.node)
			}
		}

		if extend {
			if lvl < j {
				// Extend via the 1st (estimated) nearest neighbour in
				// the next category (Algorithm 2 lines 16–17).
				if nb, ok := e.finder.Find(v, e.q.Categories[lvl], 1); ok {
					e.pushChild(it.node, nb, 1)
				}
			} else {
				// lvl == j: close the route into the destination.
				if d := e.distTo(v); !math.IsInf(d, 1) {
					e.pushChild(it.node, Neighbor{V: e.q.Target, D: d}, 1)
				}
			}
		}

		// Generate the sibling candidate: replace the last vertex with
		// the predecessor's (x+1)-th nearest neighbour in the same
		// category (Algorithm 2 lines 20–22). Routes released from HT≻
		// carry x = -1 and generate no sibling; routes whose last vertex
		// is the destination have no sibling either ({t} is a singleton).
		if lvl >= 1 && lvl <= j && it.x >= 0 {
			prev := it.node.parent
			if nb, ok := e.finder.Find(prev.v, e.q.Categories[lvl-1], int(it.x)+1); ok {
				e.pushChild(prev, nb, it.x+1)
			}
		}
		if complete {
			return e.results[len(e.results)-1], true, nil
		}
	}
	return Route{}, false, nil
}

func (e *engine) pushChild(parent *routeNode, nb Neighbor, x int32) {
	cost := parent.cost + nb.D
	key := e.key(nb.V, cost)
	if math.IsInf(key, 1) {
		// StarKOSR: the destination is unreachable from nb.V, so no
		// feasible route extends through it.
		return
	}
	child := e.scratch.arena.alloc()
	*child = routeNode{v: nb.V, parent: parent, size: parent.size + 1, cost: cost}
	e.push(qItem{node: child, key: key, x: x})
}

// reconsider releases parked routes after a complete route was emitted
// (Algorithm 2 lines 8–12): for each proper prefix of the result that is
// the stored dominator at its slot, the cheapest parked route of the
// same size is re-inserted with x='-' and the dominator slot is cleared.
func (e *engine) reconsider(result *routeNode) {
	chain := nodesOf(result)
	// chain[0] is the source, chain[len-1] the destination; prefixes
	// ending at category vertices are chain[1..j].
	for i := 1; i < len(chain)-1; i++ {
		pn := chain[i]
		lvl := int(pn.size) - 1
		if e.scratch.dominatingNode(lvl, pn.v) != pn {
			continue
		}
		e.scratch.setDominatingNode(lvl, pn.v, nil)
		if h := e.scratch.peekParkHeap(lvl, pn.v); h != nil && h.Len() > 0 {
			rit := h.Pop()
			rit.x = -1
			e.push(rit)
			e.stats.Released++
		}
	}
}

func nodesOf(n *routeNode) []*routeNode {
	chain := make([]*routeNode, n.size)
	for cur := n; cur != nil; cur = cur.parent {
		chain[cur.size-1] = cur
	}
	return chain
}

func materialize(n *routeNode) Route {
	chain := nodesOf(n)
	w := make([]graph.Vertex, len(chain))
	for i, c := range chain {
		w[i] = c.v
	}
	return Route{Witness: w, Cost: n.cost}
}

// snapshot records the queue contents sorted by priority (Tables III/VI).
func (e *engine) snapshot() {
	items := append([]qItem(nil), e.heap.Items()...)
	sort.Slice(items, func(i, j int) bool { return lessQItem(items[i], items[j]) })
	step := TraceStep{Queue: make([]TraceRoute, len(items))}
	names := e.opt.Trace.Names
	if names == nil {
		g := e.g
		names = func(v graph.Vertex) string { return g.VertexName(v) }
	}
	for i, it := range items {
		chain := nodesOf(it.node)
		parts := make([]string, len(chain))
		for k, c := range chain {
			parts[k] = names(c.v)
		}
		step.Queue[i] = TraceRoute{
			Witness: strings.Join(parts, ","),
			Cost:    it.key,
			X:       int(it.x),
		}
	}
	e.opt.Trace.Steps = append(e.opt.Trace.Steps, step)
}

type timedNN struct {
	inner NNFinder
	acc   *time.Duration
}

func (t *timedNN) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	t0 := time.Now()
	nb, ok := t.inner.Find(v, cat, x)
	*t.acc += time.Since(t0)
	return nb, ok
}

func (t *timedNN) Queries() int64 { return t.inner.Queries() }

func (t *timedNN) prewarmRows(n int) {
	if rp, ok := t.inner.(rowPrewarmer); ok {
		rp.prewarmRows(n)
	}
}
