package core

import (
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/pq"
)

// nnKey keys the (vertex, category) caches of the variant adapters (the
// hot-path finders below use dense per-category tables instead).
type nnKey struct {
	v   graph.Vertex
	cat graph.Category
}

// catTable is a dense per-(category, vertex) cache: slot [cat][v] holds
// the iterator state of Find(v, cat, ·). Keying by category (not by
// route level) preserves the paper's NL-sharing semantics — two levels
// visiting the same category share one iterator — while replacing the
// seed's map lookup with two array indexes on the query hot path.
// Per-category rows are allocated on first touch; rows grow on demand so
// categories added dynamically (Section IV-C) stay addressable.
type catTable[T any] struct {
	n    int
	rows [][]*T
}

func newCatTable[T any](nVerts, nCats int) catTable[T] {
	return catTable[T]{n: nVerts, rows: make([][]*T, nCats)}
}

// slot returns the address of entry (cat, v), or nil when cat is
// negative.
func (t *catTable[T]) slot(v graph.Vertex, cat graph.Category) **T {
	if cat < 0 {
		return nil
	}
	if int(cat) >= len(t.rows) {
		grown := make([][]*T, int(cat)+1)
		copy(grown, t.rows)
		t.rows = grown
	}
	row := t.rows[cat]
	if row == nil {
		row = make([]*T, t.n)
		t.rows[cat] = row
	}
	return &row[v]
}

// LabelProvider backs queries with the 2-hop label index and the inverted
// label index: FindNN is Algorithm 3, the distance oracle is a label
// merge join. This is the configuration of the paper's PK / SK methods.
type LabelProvider struct {
	Graph  *graph.Graph
	Labels *label.Index
	Inv    *invindex.Index
}

// NewLabelProvider builds the inverted index for g and returns a
// provider. When lab is nil the label index is built too.
func NewLabelProvider(g *graph.Graph, lab *label.Index) *LabelProvider {
	if lab == nil {
		lab = label.Build(g)
	}
	return &LabelProvider{Graph: g, Labels: lab, Inv: invindex.Build(g, lab)}
}

// NN returns a fresh label-based NNFinder.
func (p *LabelProvider) NN() NNFinder {
	return &labelNN{
		inv:   p.Inv,
		iters: newCatTable[invindex.NNIterator](p.Graph.NumVertices(), p.Graph.NumCategories()),
	}
}

// DistTo returns the label-based dis(·, t) oracle.
func (p *LabelProvider) DistTo(t graph.Vertex) func(graph.Vertex) graph.Weight {
	lab := p.Labels
	return func(v graph.Vertex) graph.Weight { return lab.Dist(v, t) }
}

type labelNN struct {
	inv     *invindex.Index
	iters   catTable[invindex.NNIterator]
	queries int64
}

func (l *labelNN) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	slot := l.iters.slot(v, cat)
	if slot == nil {
		return Neighbor{}, false
	}
	it := *slot
	if it == nil {
		it = l.inv.NewNNIterator(v, cat)
		*slot = it
	}
	if x > it.Found() {
		l.queries++ // a real FindNN, not an NL hit
	}
	nb, ok := it.Get(x)
	if !ok {
		return Neighbor{}, false
	}
	return Neighbor{V: nb.V, D: nb.D}, true
}

func (l *labelNN) Queries() int64 { return l.queries }

// DijkstraProvider backs queries with plain graph searches: FindNN is an
// incremental Dijkstra kNN and the distance-to-target oracle is one full
// reverse Dijkstra from t. This is the configuration of the paper's
// KPNE-Dij / PK-Dij / SK-Dij variants.
type DijkstraProvider struct {
	Graph *graph.Graph
}

// NN returns a fresh Dijkstra-based NNFinder.
func (p *DijkstraProvider) NN() NNFinder {
	return &dijNN{
		g:     p.Graph,
		iters: newCatTable[dijkstra.KNN](p.Graph.NumVertices(), p.Graph.NumCategories()),
	}
}

// DistTo runs one reverse SSSP from t and serves dis(·, t) lookups from
// the resulting table.
func (p *DijkstraProvider) DistTo(t graph.Vertex) func(graph.Vertex) graph.Weight {
	dist := dijkstra.AllDistances(p.Graph, t, true)
	return func(v graph.Vertex) graph.Weight { return dist[v] }
}

type dijNN struct {
	g       *graph.Graph
	iters   catTable[dijkstra.KNN]
	queries int64
}

func (d *dijNN) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	slot := d.iters.slot(v, cat)
	if slot == nil {
		return Neighbor{}, false
	}
	it := *slot
	if it == nil {
		it = dijkstra.NewKNN(d.g, v, cat)
		*slot = it
	}
	if x > it.Found() {
		d.queries++
	}
	nb, ok := it.Get(x)
	if !ok {
		return Neighbor{}, false
	}
	return Neighbor{V: nb.V, D: nb.D}, true
}

func (d *dijNN) Queries() int64 { return d.queries }

// enFinder implements FindNEN (Algorithm 4) generically on top of any
// NNFinder: Find(v, cat, x) returns the category vertex u whose estimated
// cost dis(v,u) + dis(u,t) is the x-th least. The returned Neighbor.D is
// the plain distance dis(v,u) (needed to accumulate real route costs);
// the estimate is recovered by the caller as D + distTo(V).
type enFinder struct {
	nn     NNFinder
	distTo func(graph.Vertex) graph.Weight
	states catTable[enState]
	// estTicks accumulates the number of dis(·,t) estimations performed,
	// letting the engine attribute estimation time (Table X).
	estCalls int64
}

type enState struct {
	enl       []Neighbor // found estimated neighbours; D = plain distance
	enq       *pq.Heap[enCand]
	ln        *Neighbor // fetched from FindNN but not yet enqueued
	fetched   int
	exhausted bool
}

type enCand struct {
	v   graph.Vertex
	d   graph.Weight // plain dis(v_query, v)
	est graph.Weight // d + dis(v, t)
}

func lessENCand(a, b enCand) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.v < b.v
}

func newENFinder(nn NNFinder, distTo func(graph.Vertex) graph.Weight, nVerts, nCats int) *enFinder {
	return &enFinder{nn: nn, distTo: distTo, states: newCatTable[enState](nVerts, nCats)}
}

func (e *enFinder) Queries() int64 { return e.nn.Queries() }

func (e *enFinder) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	slot := e.states.slot(v, cat)
	if slot == nil {
		return Neighbor{}, false
	}
	st := *slot
	if st == nil {
		st = &enState{enq: pq.NewHeap[enCand](lessENCand)}
		*slot = st
	}
	for len(st.enl) < x {
		nb, ok := e.next(v, cat, st)
		if !ok {
			return Neighbor{}, false
		}
		st.enl = append(st.enl, nb)
	}
	return st.enl[x-1], true
}

// next produces the next nearest estimated neighbour, per Algorithm 4:
// keep fetching plain nearest neighbours while the next one's plain
// distance could still beat the best enqueued estimate (a plain distance
// is a lower bound of an estimate); then pop the best candidate.
func (e *enFinder) next(v graph.Vertex, cat graph.Category, st *enState) (Neighbor, bool) {
	for {
		if st.ln == nil && !st.exhausted {
			nb, ok := e.nn.Find(v, cat, st.fetched+1)
			st.fetched++
			if ok {
				st.ln = &nb
			} else {
				st.exhausted = true
			}
		}
		if st.enq.Len() > 0 {
			top := st.enq.Min()
			if st.exhausted || st.ln.D >= top.est {
				c := st.enq.Pop()
				return Neighbor{V: c.v, D: c.d}, true
			}
		} else if st.exhausted {
			return Neighbor{}, false
		}
		// Enqueue the pending nearest neighbour with its estimate and
		// fetch the next one on the following iteration.
		if st.ln != nil {
			e.estCalls++
			est := st.ln.D + e.distTo(st.ln.V)
			st.enq.Push(enCand{v: st.ln.V, d: st.ln.D, est: est})
			st.ln = nil
		}
	}
}
