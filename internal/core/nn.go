package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/pq"
)

// nnKey keys the (vertex, category) caches of the variant adapters (the
// hot-path finders below use dense per-category tables instead).
type nnKey struct {
	v   graph.Vertex
	cat graph.Category
}

// scratchUser is implemented by finders whose per-query caches live in
// the engine's scratch. The engine binds the scratch right after
// checking it out, before the first Find call.
type scratchUser interface {
	bindScratch(*Scratch)
}

// LabelProvider backs queries with the 2-hop label index and the inverted
// label index: FindNN is Algorithm 3, the distance oracle is a label
// merge join. This is the configuration of the paper's PK / SK methods.
//
// The provider owns a pool of query scratches: a long-lived provider
// serving many queries (the server's workers, the bench harness) hands
// each query a warm scratch, so steady-state queries allocate no O(|V|)
// state. The zero pool is valid — construct LabelProvider as a literal
// and share one instance across queries to benefit.
type LabelProvider struct {
	Graph  *graph.Graph
	Labels *label.Index
	Inv    *invindex.Index

	// MaxScratchBytes caps the retained footprint of each pooled scratch:
	// a query that grew its scratch beyond the cap gets it dropped on
	// release instead of pooled, so a burst of wide queries cannot pin
	// worst-case O(|V|) tables in every pool slot forever. Zero applies
	// DefaultMaxScratchBytes; negative disables the cap.
	MaxScratchBytes int64

	// Forwarded, when non-nil, counts releases that arrived after this
	// provider was superseded and were redirected to the live epoch's
	// pool. The owner (kosr.System) shares one counter across every
	// epoch's providers; it is what makes scratch accounting add up
	// under saturation, when most scratches are checked out at
	// publication time and carry over through releases, not inheritance.
	Forwarded *atomic.Uint64
	// Outstanding, when non-nil, tracks scratches currently checked out
	// (acquired and not yet released). Shared like Forwarded.
	Outstanding *atomic.Int64

	pool sync.Pool // *Scratch
	// redirect points at this provider's successor once a newer epoch
	// inherited its pool: queries that were in flight when the handoff
	// happened release their scratches here afterwards, and the release
	// path forwards them to the live pool instead of stranding them on
	// this superseded one.
	redirect atomic.Pointer[LabelProvider]
}

// latest follows the epoch-handoff chain to the live provider. Each
// superseded provider points only forward, so the chain neither cycles
// nor pins old indexes.
func (p *LabelProvider) latest() *LabelProvider {
	for {
		next := p.redirect.Load()
		if next == nil {
			return p
		}
		p = next
	}
}

// NewLabelProvider builds the inverted index for g and returns a
// provider. When lab is nil the label index is built too.
func NewLabelProvider(g *graph.Graph, lab *label.Index) *LabelProvider {
	if lab == nil {
		lab = label.Build(g)
	}
	return &LabelProvider{Graph: g, Labels: lab, Inv: invindex.Build(g, lab)}
}

// NN returns a fresh label-based NNFinder.
func (p *LabelProvider) NN() NNFinder {
	return &labelNN{inv: p.Inv}
}

// DistTo returns the label-based dis(·, t) oracle.
func (p *LabelProvider) DistTo(t graph.Vertex) func(graph.Vertex) graph.Weight {
	lab := p.Labels
	return func(v graph.Vertex) graph.Weight { return lab.Dist(v, t) }
}

// AcquireScratch implements ScratchProvider.
func (p *LabelProvider) AcquireScratch() *Scratch {
	s, _ := p.pool.Get().(*Scratch)
	if s == nil || s.nVerts != p.Graph.NumVertices() {
		s = NewScratch(p.Graph.NumVertices())
	}
	s.begin()
	if p.Outstanding != nil {
		p.Outstanding.Add(1)
	}
	return s
}

// ReleaseScratch implements ScratchProvider. Scratches whose retained
// footprint exceeds MaxScratchBytes are dropped instead of pooled.
// When this provider has been superseded by a later epoch the scratch
// is forwarded to the live successor's pool, so queries that were in
// flight across a publication still hand their warm scratches to the
// new epoch instead of stranding them.
func (p *LabelProvider) ReleaseScratch(s *Scratch) {
	if s == nil {
		return
	}
	s.release()
	if p.Outstanding != nil {
		p.Outstanding.Add(-1)
	}
	if live := p.latest(); live != p {
		if p.Forwarded != nil {
			p.Forwarded.Add(1)
		}
		s.unbindIndexRefs()
		poolScratch(&live.pool, s, live.MaxScratchBytes)
		return
	}
	poolScratch(&p.pool, s, p.MaxScratchBytes)
}

// InheritScratches drains prev's pooled scratches into p's pool and
// returns how many moved. The dense tables of a scratch are graph-sized
// and epoch-stamped — they carry over to any index of the same graph —
// and the NN-iterator free lists are unbound here and rebound on reuse,
// so nothing retains the superseded index. Called by the snapshot
// updater when it publishes a new epoch, so the first queries on the
// new snapshot run on warm scratches instead of paying cold growth.
// prev is additionally redirected at p, so scratches held by queries
// still in flight on the old snapshot reach p's pool when they release.
func (p *LabelProvider) InheritScratches(prev *LabelProvider) int {
	if prev == nil {
		return 0
	}
	prev.redirect.Store(p)
	return inheritScratches(&p.pool, &prev.pool, p.Graph.NumVertices())
}

// Prewarm stocks the pool with n scratches whose dense tables are
// pre-sized for queries touching up to `levels` witness sizes and
// `cats` distinct categories, so a cold-booted server's first queries
// skip the lazy O(|V|) growth allocations (NewScratch itself is just a
// shell — the tables grow on first touch without this).
func (p *LabelProvider) Prewarm(n, levels, cats int) {
	prewarmPool(&p.pool, p.Graph.NumVertices(), n, levels, cats, false)
}

type labelNN struct {
	inv     *invindex.Index
	scr     *Scratch
	queries int64
}

func (l *labelNN) bindScratch(s *Scratch) { l.scr = s }

// prewarmRows pre-allocates the first n FindNN iterator rows; see
// Options.PrewarmCatRows.
func (l *labelNN) prewarmRows(n int) {
	if l.scr != nil {
		l.scr.prewarmNNRows(n)
	}
}

//kosr:hotpath
func (l *labelNN) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	if cat < 0 {
		return Neighbor{}, false
	}
	if l.scr == nil {
		// Used outside an engine (tests, ad-hoc callers): fall back to a
		// private throwaway scratch.
		l.scr = NewScratch(l.inv.Labels().NumVertices())
		l.scr.begin()
	}
	it := l.scr.nnIter(l.inv, v, cat)
	if x > it.Found() {
		l.queries++ // a real FindNN, not an NL hit
	}
	nb, ok := it.Get(x)
	if !ok {
		return Neighbor{}, false
	}
	return Neighbor{V: nb.V, D: nb.D}, true
}

func (l *labelNN) Queries() int64 { return l.queries }

// DijkstraProvider backs queries with plain graph searches: FindNN is an
// incremental Dijkstra kNN and the distance-to-target oracle is one full
// reverse Dijkstra from t. This is the configuration of the paper's
// KPNE-Dij / PK-Dij / SK-Dij variants.
//
// Like LabelProvider it pools query scratches, so the engine-side state
// (dominance tables, arena, queue) is reused across queries; the
// Dijkstra iterators themselves remain per-query.
type DijkstraProvider struct {
	Graph *graph.Graph

	// MaxScratchBytes caps the retained footprint of pooled scratches;
	// see LabelProvider.MaxScratchBytes.
	MaxScratchBytes int64

	// Forwarded / Outstanding mirror LabelProvider's shared scratch
	// accounting counters.
	Forwarded   *atomic.Uint64
	Outstanding *atomic.Int64

	pool sync.Pool // *Scratch
	// redirect forwards post-handoff releases to the live successor;
	// see LabelProvider.redirect.
	redirect atomic.Pointer[DijkstraProvider]
}

// latest follows the epoch-handoff chain to the live provider.
func (p *DijkstraProvider) latest() *DijkstraProvider {
	for {
		next := p.redirect.Load()
		if next == nil {
			return p
		}
		p = next
	}
}

// AcquireScratch implements ScratchProvider.
func (p *DijkstraProvider) AcquireScratch() *Scratch {
	s, _ := p.pool.Get().(*Scratch)
	if s == nil || s.nVerts != p.Graph.NumVertices() {
		s = NewScratch(p.Graph.NumVertices())
	}
	s.begin()
	if p.Outstanding != nil {
		p.Outstanding.Add(1)
	}
	return s
}

// ReleaseScratch implements ScratchProvider. Scratches whose retained
// footprint exceeds MaxScratchBytes are dropped instead of pooled; a
// superseded provider forwards the scratch to its live successor.
func (p *DijkstraProvider) ReleaseScratch(s *Scratch) {
	if s == nil {
		return
	}
	s.release()
	if p.Outstanding != nil {
		p.Outstanding.Add(-1)
	}
	if live := p.latest(); live != p {
		if p.Forwarded != nil {
			p.Forwarded.Add(1)
		}
		s.unbindIndexRefs()
		poolScratch(&live.pool, s, live.MaxScratchBytes)
		return
	}
	poolScratch(&p.pool, s, p.MaxScratchBytes)
}

// InheritScratches drains prev's pooled scratches into p's pool; see
// LabelProvider.InheritScratches.
func (p *DijkstraProvider) InheritScratches(prev *DijkstraProvider) int {
	if prev == nil {
		return 0
	}
	prev.redirect.Store(p)
	return inheritScratches(&p.pool, &prev.pool, p.Graph.NumVertices())
}

// Prewarm stocks the pool with n pre-sized scratches (including the
// Dijkstra kNN iterator rows); see LabelProvider.Prewarm.
func (p *DijkstraProvider) Prewarm(n, levels, cats int) {
	prewarmPool(&p.pool, p.Graph.NumVertices(), n, levels, cats, true)
}

// NN returns a fresh Dijkstra-based NNFinder.
func (p *DijkstraProvider) NN() NNFinder {
	return &dijNN{g: p.Graph}
}

// DistTo runs one reverse SSSP from t and serves dis(·, t) lookups from
// the resulting table.
func (p *DijkstraProvider) DistTo(t graph.Vertex) func(graph.Vertex) graph.Weight {
	dist := dijkstra.AllDistances(p.Graph, t, true)
	return func(v graph.Vertex) graph.Weight { return dist[v] }
}

// dijNN keeps its per-(vertex, category) kNN iterators in the engine's
// scratch (pooled rows, recycled free list — see Scratch.dijIter), so a
// steady-state query on a warm scratch reuses earlier queries' iterator
// buffers instead of building a dense cat-table per query.
type dijNN struct {
	g       *graph.Graph
	scr     *Scratch
	queries int64
}

func (d *dijNN) bindScratch(s *Scratch) { d.scr = s }

// prewarmRows pre-allocates the first n Dijkstra kNN iterator rows; see
// Options.PrewarmCatRows.
func (d *dijNN) prewarmRows(n int) {
	if d.scr != nil {
		d.scr.prewarmDijRows(n)
	}
}

//kosr:hotpath
func (d *dijNN) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	if cat < 0 {
		return Neighbor{}, false
	}
	if d.scr == nil {
		// Used outside an engine (tests, ad-hoc callers): fall back to a
		// private throwaway scratch.
		d.scr = NewScratch(d.g.NumVertices())
		d.scr.begin()
	}
	it := d.scr.dijIter(d.g, v, cat)
	if x > it.Found() {
		d.queries++
	}
	nb, ok := it.Get(x)
	if !ok {
		return Neighbor{}, false
	}
	return Neighbor{V: nb.V, D: nb.D}, true
}

func (d *dijNN) Queries() int64 { return d.queries }

// enFinder implements FindNEN (Algorithm 4) generically on top of any
// NNFinder: Find(v, cat, x) returns the category vertex u whose estimated
// cost dis(v,u) + dis(u,t) is the x-th least. The returned Neighbor.D is
// the plain distance dis(v,u) (needed to accumulate real route costs);
// the estimate is recovered by the caller as D + distTo(V). Per-(vertex,
// category) states live in the engine's scratch and are recycled across
// queries.
type enFinder struct {
	nn     NNFinder
	distTo func(graph.Vertex) graph.Weight
	scr    *Scratch
	// estCalls accumulates the number of dis(·,t) estimations performed,
	// letting the engine attribute estimation time (Table X).
	estCalls int64
}

type enState struct {
	enl       []Neighbor // found estimated neighbours; D = plain distance
	enq       *pq.Heap[enCand]
	ln        Neighbor // fetched from FindNN but not yet enqueued
	hasLN     bool
	fetched   int
	exhausted bool
}

// reset readies a state for recycling, keeping the backing buffers.
func (st *enState) reset() {
	st.enl = st.enl[:0]
	st.enq.Clear()
	st.hasLN = false
	st.fetched = 0
	st.exhausted = false
}

type enCand struct {
	v   graph.Vertex
	d   graph.Weight // plain dis(v_query, v)
	est graph.Weight // d + dis(v, t)
}

func lessENCand(a, b enCand) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.v < b.v
}

func newENFinder(nn NNFinder, distTo func(graph.Vertex) graph.Weight, scr *Scratch) *enFinder {
	return &enFinder{nn: nn, distTo: distTo, scr: scr}
}

func (e *enFinder) Queries() int64 { return e.nn.Queries() }

// prewarmRows forwards row prewarming to the wrapped plain-NN finder
// (the enFinder's own state rows are warmed separately by the engine).
func (e *enFinder) prewarmRows(n int) {
	if rp, ok := e.nn.(rowPrewarmer); ok {
		rp.prewarmRows(n)
	}
}

//kosr:hotpath
func (e *enFinder) Find(v graph.Vertex, cat graph.Category, x int) (Neighbor, bool) {
	if cat < 0 {
		return Neighbor{}, false
	}
	st := e.scr.enStateFor(v, cat)
	for len(st.enl) < x {
		nb, ok := e.next(v, cat, st)
		if !ok {
			return Neighbor{}, false
		}
		st.enl = append(st.enl, nb)
	}
	return st.enl[x-1], true
}

// next produces the next nearest estimated neighbour, per Algorithm 4:
// keep fetching plain nearest neighbours while the next one's plain
// distance could still beat the best enqueued estimate (a plain distance
// is a lower bound of an estimate); then pop the best candidate.
func (e *enFinder) next(v graph.Vertex, cat graph.Category, st *enState) (Neighbor, bool) {
	for {
		if !st.hasLN && !st.exhausted {
			nb, ok := e.nn.Find(v, cat, st.fetched+1)
			st.fetched++
			if ok {
				st.ln, st.hasLN = nb, true
			} else {
				st.exhausted = true
			}
		}
		if st.enq.Len() > 0 {
			top := st.enq.Min()
			if st.exhausted || st.ln.D >= top.est {
				c := st.enq.Pop()
				return Neighbor{V: c.v, D: c.d}, true
			}
		} else if st.exhausted {
			return Neighbor{}, false
		}
		// Enqueue the pending nearest neighbour with its estimate and
		// fetch the next one on the following iteration.
		if st.hasLN {
			e.estCalls++
			est := st.ln.D + e.distTo(st.ln.V)
			st.enq.Push(enCand{v: st.ln.V, d: st.ln.D, est: est})
			st.hasLN = false
		}
	}
}
