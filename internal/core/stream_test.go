package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSearcherStreamsAllWitnesses(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 1)
	prov := NewLabelProvider(g, nil)
	for _, m := range []Method{MethodKPNE, MethodPK, MethodSK} {
		s, err := NewSearcher(context.Background(), g, q, prov, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		var costs []float64
		for {
			r, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			costs = append(costs, r.Cost)
		}
		// All 2×2×2 = 8 witnesses, in nondecreasing cost order,
		// starting 20, 21, 22 (Example 1).
		if len(costs) != 8 {
			t.Fatalf("%s: streamed %d routes: %v", m, len(costs), costs)
		}
		if costs[0] != 20 || costs[1] != 21 || costs[2] != 22 {
			t.Fatalf("%s: costs=%v", m, costs)
		}
		for i := 1; i < len(costs); i++ {
			if costs[i] < costs[i-1] {
				t.Fatalf("%s: out of order: %v", m, costs)
			}
		}
		if s.Stats().Results != 8 {
			t.Fatalf("%s: stats=%+v", m, s.Stats())
		}
	}
}

func TestSearcherMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 30; trial++ {
		g, q := randomInstance(rng)
		prov := NewLabelProvider(g, nil)
		q.K = 6
		routes, _, err := Solve(context.Background(), g, q, prov, Options{Method: MethodSK})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSearcher(context.Background(), g, q, prov, Options{Method: MethodSK})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range routes {
			r, ok, err := s.Next()
			if err != nil || !ok {
				t.Fatalf("trial %d: stream ended at %d, want %d routes", trial, i, len(routes))
			}
			if r.Cost != want.Cost {
				t.Fatalf("trial %d route %d: %v vs %v", trial, i, r.Cost, want.Cost)
			}
		}
	}
}

func TestSearcherBudget(t *testing.T) {
	g := graph.Figure1()
	q := fig1Query(t, g, 1)
	s, err := NewSearcher(context.Background(), g, q, NewLabelProvider(g, nil), Options{Method: MethodKPNE, MaxExamined: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Next()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err=%v", err)
	}
}

func TestSearcherValidation(t *testing.T) {
	g := graph.Figure1()
	if _, err := NewSearcher(context.Background(), g, Query{Source: -1}, NewLabelProvider(g, nil), Options{}); err == nil {
		t.Fatal("want validation error")
	}
}

// seedPanicProvider delegates to a LabelProvider but returns a distance
// oracle that panics, modelling a corrupted label store surfacing
// mid-seed. It counts scratch checkouts to prove none leak.
type seedPanicProvider struct {
	*LabelProvider
	acquired int
	released int
}

func (p *seedPanicProvider) AcquireScratch() *Scratch {
	p.acquired++
	return p.LabelProvider.AcquireScratch()
}

func (p *seedPanicProvider) ReleaseScratch(s *Scratch) {
	p.released++
	p.LabelProvider.ReleaseScratch(s)
}

func (p *seedPanicProvider) DistTo(graph.Vertex) func(graph.Vertex) graph.Weight {
	return func(graph.Vertex) graph.Weight { panic("oracle exploded") }
}

// TestVariantSearcherSeedPanicReleasesScratch pins the construction-time
// unwind guard: multi-root variant seeding keys every root through the
// distance oracle, and a panic there must hand the checked-out scratch
// back to the provider's pool on the unwind instead of stranding it.
func TestVariantSearcherSeedPanicReleasesScratch(t *testing.T) {
	g := graph.Figure1()
	base := fig1Query(t, g, 1)
	q := VariantQuery{NoSource: true, Target: base.Target, Categories: base.Categories, K: 1}
	prov := &seedPanicProvider{LabelProvider: NewLabelProvider(g, nil)}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the oracle panic to propagate")
			}
		}()
		_, _ = NewVariantSearcher(context.Background(), g, q, prov, Options{Method: MethodSK})
	}()
	if prov.acquired == 0 {
		t.Fatal("no scratch was acquired; the test exercised nothing")
	}
	if prov.released != prov.acquired {
		t.Fatalf("scratch leak on seed panic: acquired %d, released %d", prov.acquired, prov.released)
	}
}
