package kosr

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/gen"
)

// carryoverFixture builds a grid system large enough that a cold query
// scratch's dense tables are clearly measurable against steady state.
func carryoverFixture(t *testing.T, rows, cols int) (*System, Request) {
	t.Helper()
	b := gen.GridBuilder(gen.GridOptions{Rows: rows, Cols: cols, Directed: true, Seed: 5})
	gen.AssignUniformCategories(b, rows*cols, 3, 40, 11)
	g := b.MustBuild()
	sys := NewSystem(g)
	n := g.NumVertices()
	req := Request{
		Source:     Vertex(n / 7),
		Target:     Vertex(n - 1 - n/5),
		Categories: []Category{0, 1},
		K:          2,
	}
	return sys, req
}

// measureQuery runs one Do and returns its allocation count and bytes.
// The caller must be the only goroutine doing work.
func measureQuery(t *testing.T, sys *System, req Request) (allocs, bytes uint64) {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := sys.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// TestScratchCarryoverKeepsPostUpdateQueriesWarm pins the
// allocation-neutral read path of epoch publication: the first query
// after an Apply must run on a scratch inherited from the previous
// snapshot's pool — its dense dominance tables, iterator free lists and
// arena intact — so its allocations match warm steady state instead of
// the cold first-query growth (which is O(|V|) and two orders of
// magnitude larger on this fixture).
func TestScratchCarryoverKeepsPostUpdateQueriesWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly and instrumentation allocates under -race")
	}
	sys, req := carryoverFixture(t, 30, 30)

	// Cold reference: the very first query grows the scratch.
	coldAllocs, coldBytes := measureQuery(t, sys, req)

	// Warm up, then take the steady-state baseline.
	for i := 0; i < 5; i++ {
		if _, err := sys.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	steadyAllocs, steadyBytes := measureQuery(t, sys, req)

	// Publish a new epoch: one cheaper parallel arc.
	if _, err := sys.Apply(Update{Op: OpInsertEdge, From: 0, To: 1, Weight: 0.5}); err != nil {
		t.Fatal(err)
	}
	if st := sys.ApplyStats(); st.ScratchCarryover < 1 {
		t.Fatalf("ApplyStats.ScratchCarryover=%d, want ≥1 (pool not handed off)", st.ScratchCarryover)
	}

	postAllocs, postBytes := measureQuery(t, sys, req)
	t.Logf("cold: %d allocs / %d B; steady: %d allocs / %d B; post-update first: %d allocs / %d B",
		coldAllocs, coldBytes, steadyAllocs, steadyBytes, postAllocs, postBytes)

	// The fixture must actually separate cold from warm, or the
	// assertions below would be vacuous.
	if coldBytes < 4*steadyBytes+4096 {
		t.Fatalf("fixture too small: cold %d B vs steady %d B", coldBytes, steadyBytes)
	}
	// Post-update first query ≈ steady state (small slack for runtime
	// noise), and nowhere near the cold growth.
	if postBytes > 2*steadyBytes+2048 {
		t.Fatalf("post-update first query allocated %d B, steady state is %d B — scratch not carried", postBytes, steadyBytes)
	}
	if postAllocs > 2*steadyAllocs+16 {
		t.Fatalf("post-update first query made %d allocs, steady state is %d", postAllocs, steadyAllocs)
	}
}

// applyBytesPerUpdate applies one cheaper parallel arc per listed
// position on a rows×cols grid system and returns the mean ApplyBytes
// per update as accounted by the paged index layer.
func applyBytesPerUpdate(t *testing.T, rows, cols int) uint64 {
	t.Helper()
	b := gen.GridBuilder(gen.GridOptions{Rows: rows, Cols: cols, Directed: true, Seed: 5})
	gen.AssignUniformCategories(b, rows*cols, 3, 40, 11)
	g := b.MustBuild()
	sys := NewSystem(g)
	// The same relative grid positions on both sizes: structural
	// locality of the update is held constant while |V| varies.
	positions := [][2]int{{2, 2}, {rows / 2, cols / 2}, {rows / 2, 2}, {2, cols / 2}, {rows - 3, cols - 3}}
	for _, p := range positions {
		u := Vertex(p[0]*cols + p[1])
		v := u + 1 // right neighbour on the grid
		if _, err := sys.Apply(Update{Op: OpInsertEdge, From: u, To: v, Weight: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.ApplyStats()
	if st.Updates == 0 {
		t.Fatal("no updates applied")
	}
	return st.ApplyBytes / st.Updates
}

// TestApplyBytesDoNotScaleWithGraphSize pins the tentpole's complexity
// claim at the unit level: the copy-on-write bytes of a single-edge
// Apply are O(pages touched), so the same structural update on a 9×
// larger graph must not cost anywhere near 9× the bytes — the flat
// header-array clone it replaces scaled exactly linearly.
func TestApplyBytesDoNotScaleWithGraphSize(t *testing.T) {
	small := applyBytesPerUpdate(t, 16, 16) //  256 vertices
	large := applyBytesPerUpdate(t, 48, 48) // 2304 vertices: 9× the headers
	t.Logf("apply bytes/update: small(256v)=%d large(2304v)=%d ratio=%.2f",
		small, large, float64(large)/float64(small))
	if small == 0 {
		t.Fatal("no copy work recorded on the small graph")
	}
	if ratio := float64(large) / float64(small); ratio > 2.5 {
		t.Fatalf("apply bytes scale with |V|: 9× vertices cost %.2f× bytes (want ≤ 2.5×)", ratio)
	}
}
