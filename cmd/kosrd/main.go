// Command kosrd serves KOSR queries over HTTP.
//
//	kosrd -graph city.graph [-index city.flat] [-addr :8080] [-budget 5000000]
//	      [-workers 8] [-queue-depth 64] [-query-timeout 10s] [-cache 4096]
//	      [-max-batch 64] [-stream-write-timeout 30s] [-serve-stale] [-prewarm 8]
//
// -index accepts either format and sniffs which one it got: a flat
// index file (produced by `kosr pack`) is mmap'd and served zero-copy —
// cold start is the map plus one checksum pass — while a legacy label
// index is parsed into the heap and its inverted index rebuilt.
// -prewarm pre-sizes that many pooled query scratches at startup
// (default: one per worker), so a cold boot's first queries skip the
// lazy O(|V|) table growth.
//
// Endpoints:
//
//	GET  /health
//	POST /v1/query         {"queries":[{"source":"s","target":"t","categories":["MA","RE","CI"],"k":3}, …]}
//	POST /v1/stream        {"source":"s","target":"t","categories":["MA","RE","CI"]}  (NDJSON)
//	POST /v1/admin/update  {"updates":[{"op":"insert-edge","from":"a","to":"b","weight":3}, …]}
//	POST /expand           {"witness":[0,1,2,4,7]}
//	POST /query            deprecated single-query endpoint
//
// Queries run on a bounded worker pool fronted by a deadline-aware
// admission queue: work the node cannot finish in time is shed up front
// with structured 429/503 JSON and a Retry-After hint instead of
// queueing unboundedly (see the README's error taxonomy). Clients may
// pass their remaining budget in an X-Deadline-Millis header; the
// engine stops searching when an answer could no longer arrive in time
// and returns what it has, marked truncated. Each worker reuses a warm
// per-query scratch, and every request's context is threaded into the
// engine, so disconnected clients abort their in-flight searches (a
// stalled /v1/stream reader additionally trips the per-line write
// deadline). /v1/query batches fan out across
// the pool and pass through an LRU result cache with single-flight
// deduplication (-cache entries; 0 disables) keyed by index epoch.
// /v1/admin/update applies dynamic map updates (edge insertions,
// category changes) at full query throughput: each batch publishes a
// new immutable snapshot, reported in every X-Index-Epoch response
// header. The endpoint is unauthenticated — front it with your own
// admin trust boundary. SIGINT/SIGTERM trigger a graceful shutdown:
// listeners close, in-flight queries finish, the pool drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	kosr "repro"
	"repro/internal/server"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (required)")
	indexPath := flag.String("index", "", "index file: flat (kosr pack; mmap'd zero-copy) or legacy label index (optional; built at startup otherwise)")
	prewarm := flag.Int("prewarm", -1, "query scratches to pre-size at startup so first queries skip the cold allocation path (-1 = one per worker, 0 = none)")
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 5_000_000, "max examined routes per query (0 = unlimited)")
	workers := flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth; requests beyond it are shed with 429 (0 = 4×workers, min 64)")
	cacheSize := flag.Int("cache", 4096, "result cache entries for /v1/query (0 = disabled)")
	serveStale := flag.Bool("serve-stale", false, "answer shed /v1/query entries from recent superseded-epoch cache entries, marked stale in X-Cache")
	staleEpochs := flag.Int("serve-stale-epochs", 1, "how many epochs behind a -serve-stale answer may be")
	maxBatch := flag.Int("max-batch", 64, "max queries per /v1/query batch")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-query wall-clock budget, queueing included (0 = none)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", server.DefaultStreamWriteTimeout,
		"per-line write deadline on /v1/stream so stalled readers release their worker (negative = none)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "how long to wait for in-flight requests on shutdown")
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "kosrd: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := kosr.ReadGraph(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var sys *kosr.System
	switch {
	case *indexPath != "" && kosr.IsFlatIndex(*indexPath):
		start := time.Now()
		sys, err = kosr.OpenFlatSystem(g, *indexPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mapped flat index from %s in %v (zero-copy)", *indexPath, time.Since(start).Round(time.Millisecond))
	case *indexPath != "":
		start := time.Now()
		idx, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err = kosr.LoadSystem(g, idx)
		idx.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded legacy label index from %s in %v (consider `kosr pack`)", *indexPath, time.Since(start).Round(time.Millisecond))
	default:
		log.Printf("building label index for %d vertices ...", g.NumVertices())
		sys = kosr.NewSystem(g)
	}
	defer sys.Close()
	n := *prewarm
	if n < 0 {
		n = *workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
	}
	if n > 0 {
		sys.Prewarm(n)
		log.Printf("prewarmed %d query scratches", n)
	}
	srv := server.NewWithConfig(sys, server.Config{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		MaxExamined:        *budget,
		QueryTimeout:       *queryTimeout,
		CacheSize:          *cacheSize,
		MaxBatch:           *maxBatch,
		StreamWriteTimeout: *streamWriteTimeout,
		ServeStale:         *serveStale,
		StaleEpochs:        *staleEpochs,
	})

	// With -query-timeout 0 (no per-query limit) the write timeout must
	// stay unset too, or it would silently cut off legitimately long
	// responses.
	writeTimeout := time.Duration(0)
	if *queryTimeout > 0 {
		writeTimeout = *queryTimeout + 30*time.Second
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("kosrd listening on %s (|V|=%d |E|=%d |S|=%d)",
		*addr, g.NumVertices(), g.NumEdges(), g.NumCategories())

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down (grace %v) ...", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	// Drain the query worker pool after HTTP handlers return — but not
	// forever: with -query-timeout 0 a stuck query would otherwise pin
	// the process past any supervisor's patience.
	drained := make(chan struct{})
	go func() { srv.Close(); close(drained) }()
	select {
	case <-drained:
		log.Printf("kosrd stopped")
	case <-time.After(*shutdownGrace):
		log.Printf("kosrd stopped with queries still in flight (worker pool did not drain in %v)", *shutdownGrace)
	}
}
