// Command kosrd serves KOSR queries over HTTP.
//
//	kosrd -graph city.graph [-index city.idx] [-addr :8080] [-budget 5000000]
//
// Endpoints:
//
//	GET  /health
//	POST /query   {"source":"s","target":"t","categories":["MA","RE","CI"],"k":3}
//	POST /expand  {"witness":[0,1,2,4,7]}
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	kosr "repro"
	"repro/internal/server"
)

func main() {
	graphPath := flag.String("graph", "", "graph file (required)")
	indexPath := flag.String("index", "", "label index file (optional; built at startup otherwise)")
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int64("budget", 5_000_000, "max examined routes per query (0 = unlimited)")
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "kosrd: -graph is required")
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := kosr.ReadGraph(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var sys *kosr.System
	if *indexPath != "" {
		idx, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		sys, err = kosr.LoadSystem(g, idx)
		idx.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded label index from %s", *indexPath)
	} else {
		log.Printf("building label index for %d vertices ...", g.NumVertices())
		sys = kosr.NewSystem(g)
	}
	srv := server.New(sys)
	srv.MaxExamined = *budget
	log.Printf("kosrd listening on %s (|V|=%d |E|=%d |S|=%d)",
		*addr, g.NumVertices(), g.NumEdges(), g.NumCategories())
	log.Fatal(http.ListenAndServe(*addr, srv))
}
