// Command kosrlint runs the project's custom static analyzers
// (internal/lint) over the module. It supports three modes:
//
//	kosrlint [packages...]        standalone multichecker (default ./...)
//	go vet -vettool=$(which kosrlint) ./...
//	                              vet driver mode: go builds the package
//	                              graph, kosrlint analyzes each unit
//	kosrlint escapes [-update]    heap-escape gate for //kosr:hotpath
//	                              functions vs internal/lint/escapes.baseline
//
// Other verbs: `kosrlint -list` prints the analyzer suite.
//
// Findings are silenced with `//lint:ignore <analyzer> <reason>` on or
// directly above the offending line; the reason is mandatory.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/lint"
)

// escapesBaseline is the checked-in escape baseline, relative to the
// module root.
const escapesBaseline = "internal/lint/escapes.baseline"

func main() {
	args := os.Args[1:]

	// Vet driver handshake, in the order cmd/go performs it.
	for _, a := range args {
		switch {
		case a == "-V=full":
			// cmd/go parses "<name> version <id>"; the id feeds the
			// build cache key, so bump it when analyzers change
			// behavior without changing the binary path.
			fmt.Println("kosrlint version kosr-lint-1")
			return
		case a == "-flags":
			// We define no analyzer flags; cmd/go wants valid JSON.
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && isVetConfig(args[0]) {
		os.Exit(vetMode(args[0]))
	}

	if len(args) > 0 {
		switch args[0] {
		case "escapes":
			os.Exit(escapesMode(args[1:]))
		case "-list", "list":
			for _, a := range lint.All() {
				fmt.Printf("%-12s %s\n", a.Name, a.Doc)
			}
			return
		}
	}

	os.Exit(standaloneMode(args))
}

// standaloneMode loads patterns (default ./...) with the go command and
// runs the whole suite.
func standaloneMode(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrlint:", err)
		return 2
	}
	res, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrlint:", err)
		return 2
	}
	for i, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", res.Positions[i], d.Message, d.Analyzer)
	}
	if n := len(res.Diagnostics); n > 0 {
		fmt.Fprintf(os.Stderr, "kosrlint: %d finding(s), %d suppressed\n", n, res.Suppressed)
		return 1
	}
	return 0
}

// isVetConfig reports whether arg looks like the vet.cfg path cmd/go
// passes as the sole operand in driver mode.
func isVetConfig(arg string) bool {
	if len(arg) < 5 || arg[len(arg)-4:] != ".cfg" {
		return false
	}
	_, err := os.Stat(arg)
	return err == nil
}

// vetConfig is the subset of cmd/go's vet config kosrlint consumes.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string
}

// vetMode analyzes one compilation unit described by a vet config.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "kosrlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Facts first: cmd/go caches this file for downstream units even
	// when we find nothing; kosrlint's analyzers exchange no facts, so
	// an empty file is correct.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "kosrlint:", err)
			return 2
		}
	}
	// Dependency units are fact-gathering passes (VetxOnly), and the
	// standard library is not ours to lint: the rules encode this
	// module's conventions, so diagnostics apply to module code only.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return 0
	}
	pkg, err := lint.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrlint:", err)
		return 2
	}
	res, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrlint:", err)
		return 2
	}
	for i, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", res.Positions[i], d.Message, d.Analyzer)
	}
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}

// escapesMode runs the heap-escape gate.
func escapesMode(args []string) int {
	update := false
	var patterns []string
	for _, a := range args {
		if a == "-update" || a == "--update" {
			update = true
			continue
		}
		patterns = append(patterns, a)
	}
	ok, err := lint.EscapeGate(".", escapesBaseline, update, os.Stdout, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrlint escapes:", err)
		return 2
	}
	if !ok {
		return 1
	}
	return 0
}
