package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// TestRegisteredAnalyzers pins the suite: the five analyzers the README
// and CI reference must all be registered, by these names.
func TestRegisteredAnalyzers(t *testing.T) {
	want := []string{"scratchpair", "epochstamp", "unsafegate", "hotpath", "ctxfirst"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("registered %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestEscapeGateEndToEnd exercises the heap-escape gate against a
// throwaway module: a clean hotpath function baselines empty, a change
// that introduces a heap escape fails the gate, and regenerating the
// baseline accepts it.
func TestEscapeGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module escapetest\n\ngo 1.24\n")
	write("hot.go", `package hot

//kosr:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
`)

	baseline := filepath.Join(dir, "escapes.baseline")
	var out bytes.Buffer

	ok, err := lint.EscapeGate(dir, baseline, true, &out, "./...")
	if err != nil {
		t.Fatalf("baseline generation: %v\n%s", err, out.String())
	}
	if !ok {
		t.Fatalf("baseline generation not ok:\n%s", out.String())
	}
	ok, err = lint.EscapeGate(dir, baseline, false, &out, "./...")
	if err != nil || !ok {
		t.Fatalf("clean gate should pass: ok=%v err=%v\n%s", ok, err, out.String())
	}

	// Introduce a heap escape inside the hotpath function: the local's
	// address outlives the frame via the package-level sink.
	write("hot.go", `package hot

var sink *int

//kosr:hotpath
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	sink = &total
	return total
}
`)
	out.Reset()
	ok, err = lint.EscapeGate(dir, baseline, false, &out, "./...")
	if err != nil {
		t.Fatalf("gate after escape: %v\n%s", err, out.String())
	}
	if ok {
		t.Fatalf("gate must fail on a new hotpath escape:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "NEW heap escape") || !strings.Contains(out.String(), "escapetest.Sum") {
		t.Fatalf("gate output should name the escape and the function:\n%s", out.String())
	}

	// Accept the escape deliberately; the gate passes again.
	out.Reset()
	if ok, err = lint.EscapeGate(dir, baseline, true, &out, "./..."); err != nil || !ok {
		t.Fatalf("baseline regen: ok=%v err=%v\n%s", ok, err, out.String())
	}
	out.Reset()
	if ok, err = lint.EscapeGate(dir, baseline, false, &out, "./..."); err != nil || !ok {
		t.Fatalf("gate after regen should pass: ok=%v err=%v\n%s", ok, err, out.String())
	}
}
