// Command kosr is the command-line front end of the KOSR reproduction:
//
//	kosr gen    -analogue FLA -out fla.graph        generate a dataset
//	kosr index  -graph fla.graph -out fla.idx       build the label index
//	kosr pack   -graph fla.graph -out fla.flat      pack a flat mmap-able index
//	kosr query  -graph fla.graph [-index fla.idx] -source 0 -target 99 \
//	            -cats 1,2,3 -k 5 [-method SK|PK|KPNE] [-dij]
//	kosr bench  -exp f3a [-scale 1] [-queries 10]   regenerate a paper artifact
//	kosr demo                                        replay the paper's example
//
// Run any subcommand with -h for its flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	kosr "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "index":
		err = cmdIndex(os.Args[2:])
	case "pack":
		err = cmdPack(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "kosr: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: kosr <gen|index|pack|query|bench|demo> [flags]

  gen    generate a synthetic dataset analogue (CAL NYC COL FLA G+)
  index  build and save the 2-hop label index for a graph
  pack   write the flat index file kosrd mmaps and serves zero-copy
  query  answer a KOSR query
  bench  regenerate a table or figure of the paper (see -exp list)
  demo   replay the paper's running example with a step-by-step trace
  verify cross-check every method against brute force on random queries`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	analogue := fs.String("analogue", "CAL", "dataset analogue: CAL NYC COL FLA G+")
	scale := fs.Int("scale", 1, "size multiplier")
	numCats := fs.Int("cats", 24, "number of categories")
	catSize := fs.Int("catsize", 0, "vertices per category (0 = 5% of |V|)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "", "output file (default stdout)")
	fs.Parse(args)

	g, err := gen.BuildAnalogue(gen.Analogue(*analogue), gen.AnalogueOptions{
		Scale: *scale, NumCats: *numCats, CatSize: *catSize, Seed: *seed,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := g.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: |V|=%d |E|=%d |S|=%d\n",
		*analogue, g.NumVertices(), g.NumEdges(), g.NumCategories())
	return nil
}

func loadGraph(path string) (*kosr.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kosr.ReadGraph(f)
}

func cmdIndex(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (required)")
	out := fs.String("out", "", "label index output file (required)")
	diskDir := fs.String("disk", "", "optionally also write a disk store to this directory")
	fs.Parse(args)
	if *graphPath == "" || *out == "" {
		return fmt.Errorf("index: -graph and -out are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	sys := kosr.NewSystem(g)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := sys.SaveIndex(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := sys.Labels().Stats()
	fmt.Fprintf(os.Stderr, "label index: avg|Lin|=%.1f avg|Lout|=%.1f size=%.1fMB\n",
		st.AvgIn, st.AvgOut, float64(st.SizeBytes)/(1<<20))
	if *diskDir != "" {
		if err := sys.SaveDiskStore(*diskDir); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "disk store written to %s\n", *diskDir)
	}
	return nil
}

// cmdPack writes the flat, mmap-able index format: both indexes (label
// + inverted) packed into one checksummed file that kosrd maps and
// serves with no parse step. The source is a legacy label index when
// -index is given (the inverted index is rebuilt once, here, instead of
// at every boot), or a fresh build otherwise.
func cmdPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (required)")
	indexPath := fs.String("index", "", "legacy label index to convert (optional; the index is built otherwise)")
	out := fs.String("out", "", "flat index output file (required)")
	fs.Parse(args)
	if *graphPath == "" || *out == "" {
		return fmt.Errorf("pack: -graph and -out are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	var sys *kosr.System
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			return err
		}
		sys, err = kosr.LoadSystem(g, f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		fmt.Fprintf(os.Stderr, "building label index for %d vertices ...\n", g.NumVertices())
		sys = kosr.NewSystem(g)
	}
	if err := sys.SaveFlatIndex(*out); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flat index written to %s (%.1fMB); serve it with kosrd -index %s\n",
		*out, float64(st.Size())/(1<<20), *out)
	return nil
}

func parseCats(g *kosr.Graph, spec string) ([]kosr.Category, error) {
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	cats := make([]kosr.Category, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if c, ok := g.CategoryByName(p); ok {
			cats = append(cats, c)
			continue
		}
		id, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("unknown category %q", p)
		}
		cats = append(cats, kosr.Category(id))
	}
	return cats, nil
}

func parseVertex(g *kosr.Graph, spec string) (kosr.Vertex, error) {
	if v, ok := g.VertexByName(spec); ok {
		return v, nil
	}
	id, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("unknown vertex %q", spec)
	}
	return kosr.Vertex(id), nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (required)")
	indexPath := fs.String("index", "", "label index file (optional; built on the fly otherwise)")
	source := fs.String("source", "", "source vertex id or name")
	target := fs.String("target", "", "target vertex id or name")
	catsSpec := fs.String("cats", "", "comma-separated category ids or names, in visiting order")
	k := fs.Int("k", 1, "number of routes")
	method := fs.String("method", "SK", "SK | PK | KPNE")
	dij := fs.Bool("dij", false, "use Dijkstra nearest neighbours instead of the label index")
	expand := fs.Bool("expand", false, "expand witnesses into full routes")
	stream := fs.Bool("stream", false, "stream routes as they are found (progressive search)")
	fs.Parse(args)
	if *graphPath == "" || *source == "" || *target == "" {
		return fmt.Errorf("query: -graph, -source, -target are required")
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	var sys *kosr.System
	switch {
	case *indexPath != "" && kosr.IsFlatIndex(*indexPath):
		if sys, err = kosr.OpenFlatSystem(g, *indexPath); err != nil {
			return err
		}
		defer sys.Close()
	case *indexPath != "":
		f, err := os.Open(*indexPath)
		if err != nil {
			return err
		}
		sys, err = kosr.LoadSystem(g, f)
		f.Close()
		if err != nil {
			return err
		}
	case *dij:
		sys = kosr.NewSystemWithoutIndex(g)
	default:
		sys = kosr.NewSystem(g)
	}
	src, err := parseVertex(g, *source)
	if err != nil {
		return err
	}
	dst, err := parseVertex(g, *target)
	if err != nil {
		return err
	}
	cats, err := parseCats(g, *catsSpec)
	if err != nil {
		return err
	}
	var m kosr.Method
	switch strings.ToUpper(*method) {
	case "SK":
		m = kosr.StarKOSR
	case "PK":
		m = kosr.PruningKOSR
	case "KPNE":
		m = kosr.KPNE
	default:
		return fmt.Errorf("unknown method %q", *method)
	}

	// Ctrl-C cancels the request context, which aborts an in-flight
	// search within one engine check interval instead of leaving a
	// runaway FLA-scale query behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	req := kosr.Request{
		Source: src, Target: dst, Categories: cats, K: *k,
		Method: m, UseDijkstraNN: *dij,
	}

	printRoute := func(i int, r kosr.Route) {
		fmt.Printf("%2d. cost=%-8g witness:", i+1, r.Cost)
		for _, v := range r.Witness {
			fmt.Printf(" %s", g.VertexName(v))
		}
		fmt.Println()
		if *expand {
			route := sys.ExpandWitness(r.Witness)
			fmt.Printf("    route:")
			for _, v := range route {
				fmt.Printf(" %s", g.VertexName(v))
			}
			fmt.Println()
		}
	}

	if *stream {
		n := 0
		for r, err := range sys.DoStream(ctx, req) {
			if err != nil {
				return err
			}
			printRoute(n, r)
			n++
		}
		fmt.Printf("%s: %d routes (streamed)\n", m, n)
		return nil
	}

	res, err := sys.Do(ctx, req)
	if err != nil {
		return err
	}
	for i, r := range res.Routes {
		printRoute(i, r)
	}
	fmt.Printf("%s: %d routes, %v, %d examined routes, %d NN queries\n",
		m, len(res.Routes), res.Stats.Total.Round(1000), res.Stats.Examined, res.Stats.NNQueries)
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	exp := fs.String("exp", "", "experiment id (see -list)")
	list := fs.Bool("list", false, "list experiment ids")
	scale := fs.Int("scale", 1, "dataset scale")
	queries := fs.Int("queries", 10, "random query instances per data point")
	seed := fs.Int64("seed", 1, "random seed")
	catSize := fs.Int("catsize", 0, "|Ci| (0 = 5% of |V|)")
	fs.Parse(args)
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range workload.IDs() {
			e, _ := workload.Get(id)
			fmt.Printf("  %-9s %s\n", id, e.Title)
		}
		return nil
	}
	e, ok := workload.Get(*exp)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	cfg := workload.Config{
		Scale: *scale, NumQueries: *queries, Seed: *seed, CatSize: *catSize,
	}
	return e.Run(context.Background(), cfg, os.Stdout)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (default: a random grid)")
	trials := fs.Int("trials", 25, "random query instances")
	lenC := fs.Int("lenc", 3, "category sequence length")
	k := fs.Int("k", 5, "routes per query")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	var g *kosr.Graph
	if *graphPath != "" {
		var err error
		if g, err = loadGraph(*graphPath); err != nil {
			return err
		}
	} else {
		b := gen.GridBuilder(gen.GridOptions{Rows: 15, Cols: 15, Diagonals: true, Seed: *seed})
		gen.AssignUniformCategories(b, 225, 5, 25, *seed+1)
		var err error
		if g, err = b.Build(); err != nil {
			return err
		}
	}
	if g.NumVertices() > 2000 {
		return fmt.Errorf("verify: graph too large for the brute-force oracle (%d vertices)", g.NumVertices())
	}
	prov := core.NewLabelProvider(g, nil)
	dij := &core.DijkstraProvider{Graph: g}
	queries := workload.RandomQueries(g, *trials, *lenC, *k, *seed+2)
	methods := []core.Method{core.MethodKPNE, core.MethodPK, core.MethodSK, core.MethodKStar}
	checked := 0
	for qi, q := range queries {
		oracle, err := core.BruteForce(g, q)
		if err != nil {
			return err
		}
		for _, m := range methods {
			for pi, p := range []core.Provider{prov, dij} {
				routes, _, err := core.Solve(context.Background(), g, q, p, core.Options{Method: m})
				if err != nil {
					return err
				}
				if len(routes) != len(oracle) {
					return fmt.Errorf("verify: query %d %v provider %d: %d routes, oracle %d",
						qi, m, pi, len(routes), len(oracle))
				}
				for i := range routes {
					if routes[i].Cost != oracle[i].Cost {
						return fmt.Errorf("verify: query %d %v provider %d route %d: cost %g, oracle %g",
							qi, m, pi, i, routes[i].Cost, oracle[i].Cost)
					}
				}
				checked++
			}
		}
	}
	fmt.Printf("verify: OK — %d method runs across %d random queries match the brute-force oracle\n",
		checked, len(queries))
	return nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	method := fs.String("method", "PK", "PK (Table III) or SK (Table VI)")
	fs.Parse(args)

	g := kosr.Figure1()
	sys := kosr.NewSystem(g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	q := core.Query{Source: s, Target: tv, Categories: []graph.Category{ma, re, ci}, K: 2}

	var m core.Method
	var table string
	switch strings.ToUpper(*method) {
	case "PK":
		m, table = core.MethodPK, "Table III"
	case "SK":
		m, table = core.MethodSK, "Table VI"
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	trace := &core.Trace{}
	prov := &core.LabelProvider{Graph: g, Labels: sys.Labels(), Inv: sys.Inverted()}
	routes, st, err := core.Solve(context.Background(), g, q, prov, core.Options{Method: m, Trace: trace})
	if err != nil {
		return err
	}
	fmt.Printf("Replaying the paper's %s: %s on (s, t, ⟨MA,RE,CI⟩, 2)\n\n", table, m)
	for i, step := range trace.Steps {
		fmt.Printf("step %2d:", i+1)
		for _, e := range step.Queue {
			x := strconv.Itoa(e.X)
			if e.X < 0 {
				x = "-"
			}
			fmt.Printf("  ⟨%s⟩(%g),%s", e.Witness, e.Cost, x)
		}
		fmt.Println()
	}
	fmt.Println()
	for i, r := range routes {
		fmt.Printf("result %d: cost=%g witness:", i+1, r.Cost)
		for _, v := range r.Witness {
			fmt.Printf(" %s", g.VertexName(v))
		}
		fmt.Println()
	}
	fmt.Printf("\n%d examined routes, %d NN queries\n", st.Examined, st.NNQueries)
	return nil
}
