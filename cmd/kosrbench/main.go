// Command kosrbench establishes the performance trajectory of the
// reproduction: it builds the synthetic dataset analogues, measures
// sequential vs. parallel index construction, runs a fixed KOSR query
// mix through the label-backed methods, and writes a machine-readable
// JSON report (BENCH_PR<n>.json at the repo root, one per PR) so that
// successive PRs can be compared number-for-number.
//
//	go run ./cmd/kosrbench                      # all analogues, default mix
//	go run ./cmd/kosrbench -quick               # FLA only, 3 queries (CI smoke)
//	go run ./cmd/kosrbench -scale 2 -queries 10 # bigger graphs, more samples
//	go run ./cmd/kosrbench -out BENCH_PR1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/workload"
)

// MethodResult is one (dataset, method) cell of the report.
type MethodResult struct {
	Method         string  `json:"method"`
	AvgMS          float64 `json:"avg_ms"`
	QPS            float64 `json:"queries_per_sec"`
	AvgExamined    float64 `json:"avg_examined_routes"`
	AvgNNQueries   float64 `json:"avg_nn_queries"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	INF            bool    `json:"inf,omitempty"`
}

// DatasetResult reports preprocessing and query numbers for one graph.
type DatasetResult struct {
	Name         string  `json:"name"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	SeqBuildMS   float64 `json:"label_build_sequential_ms"`
	ParBuildMS   float64 `json:"label_build_parallel_ms"`
	BuildSpeedup float64 `json:"label_build_speedup"`
	Identical    bool    `json:"parallel_identical_to_sequential"`
	LabelEntries int64   `json:"label_entries"`
	LabelMB      float64 `json:"label_mb"`
	InvBuildMS   float64 `json:"invindex_build_ms"`

	Methods []MethodResult `json:"methods"`
}

// Report is the top-level JSON document.
type Report struct {
	PR         string          `json:"pr"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Scale      int             `json:"scale"`
	NumQueries int             `json:"num_queries"`
	Notes      string          `json:"notes"`
	Datasets   []DatasetResult `json:"datasets"`
}

func main() {
	out := flag.String("out", "BENCH_PR1.json", "output JSON path")
	pr := flag.String("pr", "PR1", "PR tag recorded in the report")
	scale := flag.Int("scale", 1, "dataset scale factor")
	queries := flag.Int("queries", 5, "query instances per (dataset, method) cell")
	quick := flag.Bool("quick", false, "smoke mode: FLA analogue only, 3 queries")
	analogues := flag.String("analogues", "", "comma-separated analogue subset (default: all)")
	flag.Parse()

	sel := gen.AllAnalogues
	if *quick {
		sel = []gen.Analogue{gen.FLA}
		if *queries > 3 {
			*queries = 3
		}
	}
	if *analogues != "" {
		sel = nil
		for _, name := range strings.Split(*analogues, ",") {
			sel = append(sel, gen.Analogue(strings.TrimSpace(name)))
		}
	}

	cfg := workload.Config{Scale: *scale, NumQueries: *queries, Seed: 42}
	cfg.Fill()

	rep := Report{
		PR:         *pr,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      cfg.Scale,
		NumQueries: cfg.NumQueries, // the effective count (Fill defaults non-positive values)
		Notes: "label_build_speedup compares the Workers=1 reference build against " +
			"the concurrent per-root forward/reverse build; the two searches of each " +
			"root run in parallel, so the expected ceiling is 2x on >=2 cores " +
			"(1x on a single-core runner). allocs_per_query counts heap objects " +
			"for one full Solve, measured with runtime.ReadMemStats.",
	}

	for _, a := range sel {
		ds, err := benchDataset(a, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kosrbench: %s: %v\n", a, err)
			os.Exit(1)
		}
		rep.Datasets = append(rep.Datasets, ds)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d datasets, %d queries each)\n", *out, len(rep.Datasets), cfg.NumQueries)
}

func benchDataset(a gen.Analogue, cfg workload.Config) (DatasetResult, error) {
	g, err := gen.BuildAnalogue(a, gen.AnalogueOptions{
		Scale: cfg.Scale, NumCats: cfg.NumCats, CatSize: cfg.CatSize, Seed: cfg.Seed,
	})
	if err != nil {
		return DatasetResult{}, err
	}
	ds := DatasetResult{Name: string(a), Vertices: g.NumVertices(), Edges: g.NumEdges()}

	t0 := time.Now()
	seq := label.BuildWithOptions(g, label.BuildOptions{Workers: 1})
	ds.SeqBuildMS = msSince(t0)

	t0 = time.Now()
	par := label.BuildWithOptions(g, label.BuildOptions{})
	ds.ParBuildMS = msSince(t0)
	if ds.ParBuildMS > 0 {
		ds.BuildSpeedup = ds.SeqBuildMS / ds.ParBuildMS
	}
	ds.Identical = sameIndex(g, seq, par)
	seq = nil //nolint:ineffassign // release the reference build before timing downstream phases
	runtime.GC()

	st := par.Stats()
	ds.LabelEntries = st.Entries
	ds.LabelMB = float64(st.SizeBytes) / (1 << 20)

	t0 = time.Now()
	inv := invindex.Build(g, par)
	ds.InvBuildMS = msSince(t0)

	data := &workload.Dataset{Name: string(a), G: g, Lab: par, Inv: inv}
	qs := workload.RandomQueries(g, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+1)
	for _, m := range []workload.MethodID{workload.MKPNE, workload.MPK, workload.MSK} {
		mr, err := runMethod(data, m, qs, cfg)
		if err != nil {
			return ds, err
		}
		ds.Methods = append(ds.Methods, mr)
	}
	fmt.Printf("%-4s |V|=%d seq=%.0fms par=%.0fms (%.2fx, identical=%v) inv=%.0fms\n",
		a, ds.Vertices, ds.SeqBuildMS, ds.ParBuildMS, ds.BuildSpeedup, ds.Identical, ds.InvBuildMS)
	return ds, nil
}

func runMethod(d *workload.Dataset, m workload.MethodID, qs []core.Query, cfg workload.Config) (MethodResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := d.RunMethod(m, qs, cfg, false)
	runtime.ReadMemStats(&after)
	if err != nil {
		return MethodResult{}, err
	}
	mr := MethodResult{
		Method:         string(m),
		AvgMS:          r.AvgTimeMS,
		AvgExamined:    r.AvgExamined,
		AvgNNQueries:   r.AvgNN,
		AllocsPerQuery: float64(after.Mallocs-before.Mallocs) / float64(len(qs)),
		INF:            r.INF,
	}
	if r.AvgTimeMS > 0 {
		mr.QPS = 1000 / r.AvgTimeMS
	}
	return mr, nil
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// sameIndex verifies the determinism claim on the live build (the unit
// test asserts it on small graphs; this checks it on every benchmarked
// graph too).
func sameIndex(g *graph.Graph, a, b *label.Index) bool {
	for v := 0; v < g.NumVertices(); v++ {
		if !sameEntries(a.In(graph.Vertex(v)), b.In(graph.Vertex(v))) ||
			!sameEntries(a.Out(graph.Vertex(v)), b.Out(graph.Vertex(v))) {
			return false
		}
	}
	return true
}

func sameEntries(a, b []label.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
