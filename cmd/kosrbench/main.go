// Command kosrbench establishes the performance trajectory of the
// reproduction: it builds the synthetic dataset analogues, measures
// sequential vs. parallel index construction, runs a fixed KOSR query
// mix through the label-backed methods, and writes a machine-readable
// JSON report (BENCH_PR<n>.json at the repo root, one per PR) so that
// successive PRs can be compared number-for-number.
//
//	go run ./cmd/kosrbench                      # all analogues, default mix
//	go run ./cmd/kosrbench -quick               # FLA only, 3 queries (CI smoke)
//	go run ./cmd/kosrbench -scale 2 -queries 10 # bigger graphs, more samples
//	go run ./cmd/kosrbench -out BENCH_PR1.json
//
// The diff subcommand compares two reports and fails on gross
// regressions, so CI can guard the trajectory; the plot subcommand
// renders the whole BENCH_PR*.json trajectory as a markdown trend
// table:
//
//	go run ./cmd/kosrbench diff BENCH_PR1.json BENCH_PR2.json
//	go run ./cmd/kosrbench plot BENCH_PR*.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	kosr "repro"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
	"repro/internal/pq"
	"repro/internal/server"
	"repro/internal/workload"
)

// MethodResult is one (dataset, method) cell of the report.
type MethodResult struct {
	Method         string  `json:"method"`
	AvgMS          float64 `json:"avg_ms"`
	QPS            float64 `json:"queries_per_sec"`
	AvgExamined    float64 `json:"avg_examined_routes"`
	AvgNNQueries   float64 `json:"avg_nn_queries"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	INF            bool    `json:"inf,omitempty"`
}

// ConcurrencyResult is one point of the concurrent-throughput scan: a
// fixed query mix answered by W workers sharing one read-only index and
// one scratch pool.
type ConcurrencyResult struct {
	Workers      int     `json:"workers"`
	TotalQueries int     `json:"total_queries"`
	QPS          float64 `json:"qps"`
	// SpeedupVs1 is QPS relative to the 1-worker run of the same scan
	// (≈1.0 on a single-core runner by construction).
	SpeedupVs1 float64 `json:"speedup_vs_1_worker"`
}

// ServerScanResult is the HTTP serving cell: the query mix pushed
// through /v1/query in batches against a live server (worker pool +
// result cache), once cold and once over identical repeated traffic.
type ServerScanResult struct {
	// BatchSize is how many queries each /v1/query request carried.
	BatchSize int `json:"batch_size"`
	// ColdQueries/ColdQPS cover the first pass: every query misses the
	// result cache, so this is end-to-end batch throughput (HTTP + JSON
	// + engine) with cache bookkeeping overhead included.
	ColdQueries int     `json:"cold_queries"`
	ColdQPS     float64 `json:"batch_qps"`
	// CachedQueries/CachedQPS cover the repeat passes over the same
	// mix: skewed-traffic throughput where the cache answers.
	CachedQueries int     `json:"cached_queries"`
	CachedQPS     float64 `json:"cached_qps"`
	// CacheHitRate is hits/(hits+misses) across the whole scan.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ColdStartResult is the zero-copy persistence cell (PR 7): wall-clock
// from an index artifact on disk to the first query answered, legacy
// parsed format (label read + inverted-index rebuild) vs flat format
// (mmap + one checksum pass + O(n) page-directory slice headers).
type ColdStartResult struct {
	LegacyFileMB float64 `json:"legacy_file_mb"`
	FlatFileMB   float64 `json:"flat_file_mb"`
	// LegacyLoadMS is open + parse + invindex rebuild; FlatOpenMS is
	// mmap + checksum verification + page-directory construction.
	LegacyLoadMS float64 `json:"legacy_load_ms"`
	FlatOpenMS   float64 `json:"flat_open_ms"`
	// *FirstQueryMS measure the full cold start: load/open through the
	// first query's answer on the fresh System.
	LegacyFirstQueryMS float64 `json:"legacy_first_query_ms"`
	FlatFirstQueryMS   float64 `json:"flat_first_query_ms"`
	// Speedup is legacy_first_query_ms / flat_first_query_ms.
	Speedup float64 `json:"cold_start_speedup"`
}

// UpdateScanResult is the live-update cell: a stream of dynamic edge
// updates applied through System.Apply (each publishing a new index
// epoch) while query workers keep hammering the same System — the
// workload the epoch-versioned snapshot design exists for.
type UpdateScanResult struct {
	// Updates is how many single-mutation batches were applied; each
	// inserts a cheaper parallel arc for a sampled existing edge (the
	// paper's weight-decrease model).
	Updates       int     `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	AvgUpdateMS   float64 `json:"avg_update_ms"`
	// QPSDuringUpdates is the concurrent query throughput sustained
	// while the updater was publishing epochs.
	QPSDuringUpdates float64 `json:"qps_during_updates"`
	FinalEpoch       uint64  `json:"final_epoch"`
	// HubRepairs / RepairSeeds / SeedsSkipped: deduplicated (hub,
	// direction) label repair searches the scan's inserts ran, the raw
	// seed count before dedup and filtering, and the seeds dropped
	// because the pre-batch labels already covered them. RepairReruns
	// counts parallel speculations re-run after a cross-hub conflict (0
	// when repair ran serially).
	HubRepairs   uint64 `json:"hub_repairs"`
	RepairSeeds  uint64 `json:"repair_seeds"`
	SeedsSkipped uint64 `json:"seeds_skipped"`
	RepairReruns uint64 `json:"repair_reruns"`
	// ScratchCarryover counts pooled query scratches the new epochs
	// inherited from their predecessors during the concurrent scan
	// (warm publication: post-update queries skip cold scratch growth).
	ScratchCarryover uint64 `json:"scratch_carryover"`
	// FlatCloneBytes is the O(|V|) structural cost every Apply paid
	// before the paged copy-on-write layer: 2 × |V| slice headers
	// (24 B) for the label in/out arrays alone. Its measured
	// counterpart is cow_bytes_per_update in the batches cells — the
	// pagevec-accounted structural copy work — NOT
	// apply_bytes_per_update, which measures the whole Apply path
	// (dominated by the resumed-search transients that exist under
	// either layout).
	FlatCloneBytes int64 `json:"flat_clone_bytes"`
	// Batches is the quiesced batch-size scan: apply cost per mutation
	// at batch sizes 1/16/256, measured with runtime.MemStats (total
	// allocation of the Apply path, page copies included).
	Batches []UpdateBatchCell `json:"batches,omitempty"`
}

// UpdateBatchCell is one quiesced apply-cost measurement: nBatches
// batches of BatchSize cheaper-parallel-arc insertions each, no
// concurrent queries, allocation counters divided by the total number
// of mutations.
type UpdateBatchCell struct {
	BatchSize     int     `json:"batch_size"`
	Updates       int     `json:"updates"`
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// ApplyAllocsPerUpdate/ApplyBytesPerUpdate measure the whole Apply
	// path with runtime.MemStats: COW page work plus the resumed-search
	// transients, which dominate. Gate-worthy because the total must
	// not scale with |V| either.
	ApplyAllocsPerUpdate float64 `json:"apply_allocs_per_update"`
	ApplyBytesPerUpdate  float64 `json:"apply_bytes_per_update"`
	// CowBytesPerUpdate/PagesCopiedPerUpdate isolate the structural
	// copy-on-write work (ApplyStats accounting: page copies + page
	// tables) — the direct measured counterpart of flat_clone_bytes,
	// i.e. what the O(|V|) header clone was replaced with.
	CowBytesPerUpdate    float64 `json:"cow_bytes_per_update"`
	PagesCopiedPerUpdate float64 `json:"pages_copied_per_update"`
	// HubRepairsPerUpdate: deduplicated (hub, direction) label repairs
	// per mutation — the per-update search count the dense scratch is
	// amortized over; batch sizes > 1 drive it down via cross-arc dedup.
	HubRepairsPerUpdate float64 `json:"hub_repairs_per_update"`
}

// OverloadScanResult is the overload cell: the query mix offered at 2×
// the server's admission capacity (clients = 2 × (workers + queue
// depth), each posting back-to-back), measuring what the deadline-aware
// admission queue does under saturation — how much it sheds and what
// latency the accepted requests still see. Without admission control
// this workload queues unboundedly and every request's latency grows
// with the backlog; with it, shed_rate absorbs the excess and
// accepted_p99_ms stays near the unloaded service time.
type OverloadScanResult struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	Clients    int `json:"clients"`
	// GOMAXPROCS is the value in force during this scan. The scan raises
	// it to at least 8: with a single P, Go's channel-wakeup scheduling
	// runs each request depth-first (enqueue → worker → response before
	// the next accept), so offered load can never outrun service and the
	// queue never fills. Multiple Ps let arrivals and service genuinely
	// interleave, which is the regime admission control exists for.
	GOMAXPROCS int `json:"gomaxprocs"`
	Offered    int `json:"offered_queries"`
	Accepted   int `json:"accepted"`
	// Shed counts structured 429/503 rejections (Retry-After included);
	// anything else (transport error, 5xx) would fail the run and is
	// not part of the taxonomy under pure overload.
	Shed          int     `json:"shed"`
	ShedRate      float64 `json:"shed_rate"`
	AcceptedAvgMS float64 `json:"accepted_avg_ms"`
	AcceptedP99MS float64 `json:"accepted_p99_ms"`
}

// PQPopCost is the queue microbench cell: steady-state pop cost of the
// engine's global route queue at KPNE-like sizes — binary heap vs the
// 4-ary layout (PR 4) vs the monotone bucket queue the engine now uses
// for the exhaustive methods (PR 10, ROADMAP "KPNE queue growth").
type PQPopCost struct {
	QueueSize          int     `json:"queue_size"`
	BinaryNsPerPop     float64 `json:"binary_ns_per_pop"`
	QuaternaryNsPerPop float64 `json:"quaternary_ns_per_pop"`
	Speedup4aryVs2ary  float64 `json:"speedup_4ary_vs_binary"`
	BucketNsPerPop     float64 `json:"bucket_ns_per_pop,omitempty"`
	SpeedupBucketVs4   float64 `json:"speedup_bucket_vs_4ary,omitempty"`
}

// KPNERateResult is the PR10 acceptance cell: KPNE examined-route
// throughput on the same dataset and queries under the two global-queue
// implementations, measured through core.Solve with the queue forced
// each way and a fixed deterministic MaxExamined budget. The heap side
// is the PR9 kernel unchanged, so the speedup is directly the bucket
// queue's contribution. (The workload harness marks budget-tripped runs
// INF and discards their stats, which is why this cell measures the rate
// itself rather than reusing the methods table.)
type KPNERateResult struct {
	MaxExamined          int64   `json:"max_examined"`
	HeapExaminedPerSec   float64 `json:"heap_examined_per_sec"`
	BucketExaminedPerSec float64 `json:"bucket_examined_per_sec"`
	SpeedupBucketVsHeap  float64 `json:"speedup_bucket_vs_heap"`
	HeapAllocsPerQuery   float64 `json:"heap_allocs_per_query"`
	BucketAllocsPerQuery float64 `json:"bucket_allocs_per_query"`
	ResultsIdentical     bool    `json:"results_identical"`
}

// DatasetResult reports preprocessing and query numbers for one graph.
type DatasetResult struct {
	Name         string  `json:"name"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	SeqBuildMS   float64 `json:"label_build_sequential_ms"`
	ParBuildMS   float64 `json:"label_build_parallel_ms"`
	BuildSpeedup float64 `json:"label_build_speedup"`
	Identical    bool    `json:"parallel_identical_to_sequential"`
	LabelEntries int64   `json:"label_entries"`
	LabelMB      float64 `json:"label_mb"`
	InvBuildMS   float64 `json:"invindex_build_ms"`

	Methods []MethodResult `json:"methods"`
	// KPNERate is the PR10 queue-comparison cell; see KPNERateResult.
	KPNERate *KPNERateResult `json:"kpne_rate,omitempty"`
	// Concurrency is the StarKOSR throughput scan at 1/2/4/8 workers.
	Concurrency []ConcurrencyResult `json:"concurrency,omitempty"`
	// Server is the /v1/query batch + cache scan.
	Server *ServerScanResult `json:"server,omitempty"`
	// Overload is the 2×-saturation admission-control scan.
	Overload *OverloadScanResult `json:"overload,omitempty"`
	// Updates is the live-update scan (dynamic edge updates under
	// concurrent query traffic).
	Updates *UpdateScanResult `json:"updates,omitempty"`
	// ColdStart is the disk-to-first-query scan: legacy parsed index
	// vs mmap'd flat index.
	ColdStart *ColdStartResult `json:"coldstart,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	PR         string          `json:"pr"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Scale      int             `json:"scale"`
	NumQueries int             `json:"num_queries"`
	Notes      string          `json:"notes"`
	PQ         *PQPopCost      `json:"pq_pop_cost,omitempty"`
	Datasets   []DatasetResult `json:"datasets"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "plot" {
		os.Exit(runPlot(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "applygate" {
		os.Exit(runApplyGate(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "updategate" {
		os.Exit(runUpdateGate(os.Args[2:]))
	}
	out := flag.String("out", "BENCH_PR1.json", "output JSON path")
	pr := flag.String("pr", "PR1", "PR tag recorded in the report")
	scale := flag.Int("scale", 1, "dataset scale factor")
	queries := flag.Int("queries", 5, "query instances per (dataset, method) cell")
	quick := flag.Bool("quick", false, "smoke mode: FLA analogue only, 3 queries")
	analogues := flag.String("analogues", "", "comma-separated analogue subset (default: all)")
	flag.Parse()

	sel := gen.AllAnalogues
	if *quick {
		sel = []gen.Analogue{gen.FLA}
		if *queries > 3 {
			*queries = 3
		}
	}
	if *analogues != "" {
		sel = nil
		for _, name := range strings.Split(*analogues, ",") {
			sel = append(sel, gen.Analogue(strings.TrimSpace(name)))
		}
	}

	cfg := workload.Config{Scale: *scale, NumQueries: *queries, Seed: 42}
	cfg.Fill()

	rep := Report{
		PR:         *pr,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      cfg.Scale,
		NumQueries: cfg.NumQueries, // the effective count (Fill defaults non-positive values)
		Notes: "label_build_speedup compares the Workers=1 reference build against " +
			"the concurrent per-root forward/reverse build; the two searches of each " +
			"root run in parallel, so the expected ceiling is 2x on >=2 cores " +
			"(1x on a single-core runner). allocs_per_query counts heap objects " +
			"for one full Solve, measured with runtime.ReadMemStats. " +
			"concurrency scans StarKOSR throughput with N workers sharing one " +
			"read-only index and one scratch pool; speedup_vs_1_worker is pinned " +
			"near 1.0 on a single-core runner by construction and is expected to " +
			"scale near-linearly with cores on a multi-core runner (queries are " +
			"share-nothing once the scratch pool is warm). pq_pop_cost is the " +
			"engine global-queue microbench behind the 4-ary switch (PR 4); " +
			"updates is the live-update scan: single-edge Apply batches " +
			"publishing snapshot epochs under concurrent query traffic. " +
			"updates.batches is the quiesced apply-cost scan (PR 5): " +
			"apply_bytes_per_update is total allocation of the Apply path " +
			"per mutation at batch sizes 1/16/256 — with chunked " +
			"copy-on-write index pages it tracks the pages an update " +
			"touches, not |V| (flat_clone_bytes is the O(|V|) header copy " +
			"every apply paid before); scratch_carryover counts warm query " +
			"scratches handed across epochs, making publication " +
			"allocation-neutral on the read path. overload is the " +
			"2x-saturation admission-control scan (PR 6): clients = " +
			"2 x (workers + queue depth) posting back-to-back through " +
			"/query with the result cache off; shed_rate is the fraction " +
			"answered with structured 429/503 instead of queueing, and " +
			"accepted_p99_ms shows the latency the bounded queue holds " +
			"for the requests it does accept. coldstart is the " +
			"persistence scan (PR 7): disk-to-first-query wall-clock for " +
			"the legacy parsed index (full label parse + inverted-index " +
			"rebuild) vs the flat format mmap'd and served zero-copy " +
			"(checksum pass + O(n) page-directory headers); " +
			"cold_start_speedup is the ratio of the two first-query " +
			"times. The update path (PR 9) runs batched label repairs on a " +
			"dense epoch-stamped updater scratch: hub_repairs counts the " +
			"deduplicated (hub, direction) searches, repair_seeds the raw " +
			"seeds before cross-arc dedup, seeds_skipped the seeds the " +
			"pre-batch labels already covered (dropped without a search), " +
			"and repair_reruns the parallel speculations redone after " +
			"cross-hub conflicts (0 on a single-core runner, where repair " +
			"runs serially). pq_pop_cost (PR 10) additionally measures the " +
			"monotone bucket/radix queue the engine now selects for the " +
			"exhaustive methods: bucket_ns_per_pop is the same pop/push " +
			"workload on the bucket queue (O(1) amortized vs O(log n) " +
			"sift-down). kpne_rate is the PR 10 acceptance cell: KPNE " +
			"examined-routes/sec through core.Solve on the dataset's query " +
			"mix with the queue forced to heap (the PR 9 kernel, unchanged) " +
			"vs bucket, under a fixed deterministic MaxExamined budget so " +
			"the comparison is identical work on both sides; " +
			"results_identical cross-checks the byte-identical-results " +
			"equivalence property on the full benchmark graphs.",
	}

	rep.PQ = benchPQPopCost()
	fmt.Printf("pq   pop@%d: binary=%.1fns 4ary=%.1fns (%.2fx) bucket=%.1fns (%.2fx vs 4ary)\n",
		rep.PQ.QueueSize, rep.PQ.BinaryNsPerPop, rep.PQ.QuaternaryNsPerPop, rep.PQ.Speedup4aryVs2ary,
		rep.PQ.BucketNsPerPop, rep.PQ.SpeedupBucketVs4)

	for _, a := range sel {
		ds, err := benchDataset(a, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kosrbench: %s: %v\n", a, err)
			os.Exit(1)
		}
		rep.Datasets = append(rep.Datasets, ds)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d datasets, %d queries each)\n", *out, len(rep.Datasets), cfg.NumQueries)
}

func benchDataset(a gen.Analogue, cfg workload.Config) (DatasetResult, error) {
	g, err := gen.BuildAnalogue(a, gen.AnalogueOptions{
		Scale: cfg.Scale, NumCats: cfg.NumCats, CatSize: cfg.CatSize, Seed: cfg.Seed,
	})
	if err != nil {
		return DatasetResult{}, err
	}
	ds := DatasetResult{Name: string(a), Vertices: g.NumVertices(), Edges: g.NumEdges()}

	var par *label.Index
	{
		// The sequential reference build lives only in this block, so it
		// is collectable before the downstream phases are timed.
		t0 := time.Now()
		seq := label.BuildWithOptions(g, label.BuildOptions{Workers: 1})
		ds.SeqBuildMS = msSince(t0)

		t0 = time.Now()
		par = label.BuildWithOptions(g, label.BuildOptions{})
		ds.ParBuildMS = msSince(t0)
		ds.Identical = sameIndex(g, seq, par)
	}
	if ds.ParBuildMS > 0 {
		ds.BuildSpeedup = ds.SeqBuildMS / ds.ParBuildMS
	}
	runtime.GC()

	st := par.Stats()
	ds.LabelEntries = st.Entries
	ds.LabelMB = float64(st.SizeBytes) / (1 << 20)

	t0 := time.Now()
	inv := invindex.Build(g, par)
	ds.InvBuildMS = msSince(t0)

	data := &workload.Dataset{Name: string(a), G: g, Lab: par, Inv: inv}
	qs := workload.RandomQueries(g, cfg.NumQueries, cfg.LenC, cfg.K, cfg.Seed+1)
	for _, m := range []workload.MethodID{workload.MKPNE, workload.MPK, workload.MSK} {
		mr, err := runMethod(data, m, qs, cfg)
		if err != nil {
			return ds, err
		}
		ds.Methods = append(ds.Methods, mr)
	}
	ds.KPNERate = benchKPNERate(data, qs, cfg)
	ds.Concurrency = benchConcurrency(data, qs, cfg)
	ds.Server = benchServer(data, qs, cfg)
	ds.Overload = benchOverload(data, qs, cfg)
	ds.Updates = benchUpdates(data, qs, cfg)
	ds.ColdStart = benchColdStart(data, qs, cfg)
	fmt.Printf("%-4s |V|=%d seq=%.0fms par=%.0fms (%.2fx, identical=%v) inv=%.0fms",
		a, ds.Vertices, ds.SeqBuildMS, ds.ParBuildMS, ds.BuildSpeedup, ds.Identical, ds.InvBuildMS)
	for _, cr := range ds.Concurrency {
		fmt.Printf(" w%d=%.0fqps", cr.Workers, cr.QPS)
	}
	if ds.Server != nil {
		fmt.Printf(" batch=%.0fqps cached=%.0fqps hit=%.0f%%",
			ds.Server.ColdQPS, ds.Server.CachedQPS, 100*ds.Server.CacheHitRate)
	}
	if ds.Overload != nil {
		fmt.Printf(" shed=%.0f%% p99=%.1fms", 100*ds.Overload.ShedRate, ds.Overload.AcceptedP99MS)
	}
	if ds.Updates != nil {
		fmt.Printf(" upd=%.0f/s(q=%.0fqps)", ds.Updates.UpdatesPerSec, ds.Updates.QPSDuringUpdates)
	}
	if ds.ColdStart != nil {
		fmt.Printf(" cold=%.0fms/flat=%.1fms (%.0fx)",
			ds.ColdStart.LegacyFirstQueryMS, ds.ColdStart.FlatFirstQueryMS, ds.ColdStart.Speedup)
	}
	if ds.KPNERate != nil {
		fmt.Printf(" kpne=%.0f/s->%.0f/s (%.2fx, identical=%v)",
			ds.KPNERate.HeapExaminedPerSec, ds.KPNERate.BucketExaminedPerSec,
			ds.KPNERate.SpeedupBucketVsHeap, ds.KPNERate.ResultsIdentical)
	}
	fmt.Println()
	return ds, nil
}

// benchPQPopCost measures the steady-state pop cost of the engine's
// global route queue shape at KPNE-like sizes: fill to size, then
// alternate pop/push so every iteration pays one full-depth sift-down.
func benchPQPopCost() *PQPopCost {
	const size = 1 << 16
	const iters = 1 << 18
	type routeLike struct {
		key float64
		seq int64
		pad [2]int64 // approximate the engine's qItem width
	}
	less := func(a, b routeLike) bool {
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	}
	measure := func(arity int) float64 {
		h := pq.NewHeapD[routeLike](less, arity)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < size; i++ {
			h.Push(routeLike{key: rng.Float64() * 1000, seq: int64(i)})
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			h.Pop()
			h.Push(routeLike{key: rng.Float64() * 1000, seq: int64(size + i)})
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	// The bucket queue runs the same workload: pops remove the minimum,
	// so the random refills are (almost) always at-or-above the frontier,
	// matching the engine's monotone methods.
	measureBucket := func() float64 {
		q := pq.NewBucketQueue[routeLike](less, func(it routeLike) float64 { return it.key })
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < size; i++ {
			q.Push(routeLike{key: rng.Float64() * 1000, seq: int64(i)})
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			q.Pop()
			q.Push(routeLike{key: rng.Float64() * 1000, seq: int64(size + i)})
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	res := &PQPopCost{QueueSize: size}
	res.BinaryNsPerPop = measure(2)
	res.QuaternaryNsPerPop = measure(4)
	if res.QuaternaryNsPerPop > 0 {
		res.Speedup4aryVs2ary = res.BinaryNsPerPop / res.QuaternaryNsPerPop
	}
	res.BucketNsPerPop = measureBucket()
	if res.BucketNsPerPop > 0 {
		res.SpeedupBucketVs4 = res.QuaternaryNsPerPop / res.BucketNsPerPop
	}
	return res
}

// benchKPNERate measures KPNE examined-route throughput with the global
// queue forced to each implementation, on the dataset's query mix under
// a fixed deterministic examined budget. Both runs share the provider
// (and therefore the scratch pool), so the only variable is the queue.
// It also cross-checks that the two runs return identical routes and
// examined counts — the equivalence property, asserted here on the full
// benchmark graphs.
func benchKPNERate(d *workload.Dataset, qs []core.Query, cfg workload.Config) *KPNERateResult {
	if len(qs) == 0 {
		return nil
	}
	budget := cfg.MaxExamined
	const rateBudget = 300_000
	if budget <= 0 || budget > rateBudget {
		budget = rateBudget
	}
	prov := &core.LabelProvider{Graph: d.G, Labels: d.Lab, Inv: d.Inv}
	res := &KPNERateResult{MaxExamined: budget, ResultsIdentical: true}
	type runOut struct {
		examined int64
		elapsed  time.Duration
		allocs   float64
		routes   [][]core.Route
	}
	run := func(kind core.QueueKind) runOut {
		var out runOut
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		for _, q := range qs {
			opts := core.Options{Method: core.MethodKPNE, MaxExamined: budget, Queue: kind}
			t0 := time.Now()
			routes, st, err := core.Solve(context.Background(), d.G, q, prov, opts)
			out.elapsed += time.Since(t0)
			if err != nil && !errorsIsBudget(err) {
				return runOut{}
			}
			out.examined += st.Examined
			out.routes = append(out.routes, routes)
		}
		runtime.ReadMemStats(&ms1)
		out.allocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(len(qs))
		return out
	}
	run(core.QueueHeap) // warm the scratch pool so neither side pays cold growth
	heap := run(core.QueueHeap)
	bucket := run(core.QueueBucket)
	if heap.elapsed > 0 {
		res.HeapExaminedPerSec = float64(heap.examined) / heap.elapsed.Seconds()
	}
	if bucket.elapsed > 0 {
		res.BucketExaminedPerSec = float64(bucket.examined) / bucket.elapsed.Seconds()
	}
	if res.HeapExaminedPerSec > 0 {
		res.SpeedupBucketVsHeap = res.BucketExaminedPerSec / res.HeapExaminedPerSec
	}
	res.HeapAllocsPerQuery = heap.allocs
	res.BucketAllocsPerQuery = bucket.allocs
	if heap.examined != bucket.examined || len(heap.routes) != len(bucket.routes) {
		res.ResultsIdentical = false
	} else {
	outer:
		for i := range heap.routes {
			hr, br := heap.routes[i], bucket.routes[i]
			if len(hr) != len(br) {
				res.ResultsIdentical = false
				break
			}
			for j := range hr {
				if hr[j].Cost != br[j].Cost || len(hr[j].Witness) != len(br[j].Witness) {
					res.ResultsIdentical = false
					break outer
				}
				for k := range hr[j].Witness {
					if hr[j].Witness[k] != br[j].Witness[k] {
						res.ResultsIdentical = false
						break outer
					}
				}
			}
		}
	}
	return res
}

func errorsIsBudget(err error) bool {
	return errors.Is(err, core.ErrBudgetExceeded)
}

// benchUpdates measures the live-update workload the snapshot design
// opens: one updater publishing single-edge epochs through System.Apply
// while two query workers keep answering from whatever snapshot they
// pin. Sampled existing edges get cheaper parallel arcs (the paper's
// weight-decrease model), so each update stays incremental.
func benchUpdates(d *workload.Dataset, qs []core.Query, cfg workload.Config) *UpdateScanResult {
	if len(qs) == 0 {
		return nil
	}
	const updates = 32
	sys := kosr.NewSystemFromParts(d.G, d.Lab, d.Inv)

	var edges []graph.Edge
	d.G.Edges(func(e graph.Edge) bool {
		edges = append(edges, e)
		return true
	})
	if len(edges) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(13))

	stop := make(chan struct{})
	var served int64
	var qwg sync.WaitGroup
	for w := 0; w < 2; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := qs[i%len(qs)]
				_, _ = sys.Do(context.Background(), kosr.Request{
					Source: q.Source, Target: q.Target, Categories: q.Categories,
					K: q.K, MaxExamined: cfg.MaxExamined,
				})
				atomic.AddInt64(&served, 1)
			}
		}()
	}

	start := time.Now()
	for i := 0; i < updates; i++ {
		e := edges[rng.Intn(len(edges))]
		if _, err := sys.Apply(kosr.Update{
			Op: kosr.OpInsertEdge, From: e.From, To: e.To, Weight: e.W * 0.9,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "kosrbench: update scan:", err)
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	close(stop)
	qwg.Wait()

	ast := sys.ApplyStats()
	res := &UpdateScanResult{
		Updates:          updates,
		FinalEpoch:       sys.Epoch(),
		HubRepairs:       ast.HubRepairs,
		RepairSeeds:      ast.RepairSeeds,
		SeedsSkipped:     ast.SeedsSkipped,
		RepairReruns:     ast.RepairReruns,
		ScratchCarryover: ast.ScratchCarryover,
		FlatCloneBytes:   int64(d.G.NumVertices()) * 2 * 24,
	}
	if elapsed > 0 {
		res.UpdatesPerSec = float64(updates) / elapsed
		res.AvgUpdateMS = elapsed * 1000 / updates
		res.QPSDuringUpdates = float64(atomic.LoadInt64(&served)) / elapsed
	}
	res.Batches = benchApplyBatches(d, edges)
	return res
}

// benchApplyBatches is the quiesced apply-cost scan: for each batch
// size, a fresh System absorbs rounds of cheaper-parallel-arc batches
// with no concurrent traffic, and the runtime allocation counters are
// divided by the mutation count. With the paged copy-on-write index
// layer this cost is O(pages touched) per mutation — compare the cells
// across datasets (or against flat_clone_bytes) to see that it no
// longer scales with |V|.
func benchApplyBatches(d *workload.Dataset, edges []graph.Edge) []UpdateBatchCell {
	var cells []UpdateBatchCell
	for _, bs := range []int{1, 16, 256} {
		// Mutation budget per cell: enough batches to average out the
		// sampled edges without dominating the bench wall-clock (a
		// single-edge apply costs tens of ms on the road analogues).
		nBatches := 32
		if bs >= 16 {
			nBatches = 4
		}
		if bs >= 256 {
			nBatches = 2
		}
		sys := kosr.NewSystemFromParts(d.G, d.Lab, d.Inv)
		rng := rand.New(rand.NewSource(17))
		total := 0
		batches := make([][]kosr.Update, nBatches)
		for i := range batches {
			batch := make([]kosr.Update, bs)
			for j := range batch {
				e := edges[rng.Intn(len(edges))]
				batch[j] = kosr.Update{Op: kosr.OpInsertEdge, From: e.From, To: e.To, Weight: e.W * 0.9}
			}
			batches[i] = batch
			total += bs
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, batch := range batches {
			if _, err := sys.Apply(batch...); err != nil {
				fmt.Fprintln(os.Stderr, "kosrbench: apply batch scan:", err)
				return cells
			}
		}
		elapsed := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		st := sys.ApplyStats()
		cell := UpdateBatchCell{
			BatchSize:            bs,
			Updates:              total,
			ApplyAllocsPerUpdate: float64(after.Mallocs-before.Mallocs) / float64(total),
			ApplyBytesPerUpdate:  float64(after.TotalAlloc-before.TotalAlloc) / float64(total),
			CowBytesPerUpdate:    float64(st.ApplyBytes) / float64(total),
			PagesCopiedPerUpdate: float64(st.PagesCopied) / float64(total),
			HubRepairsPerUpdate:  float64(st.HubRepairs) / float64(total),
		}
		if elapsed > 0 {
			cell.UpdatesPerSec = float64(total) / elapsed
		}
		cells = append(cells, cell)
	}
	return cells
}

// benchColdStart measures the disk-to-first-query path both persistence
// formats give a restarting node: the legacy format pays a full parse
// of the label index plus an inverted-index rebuild before the first
// query can run; the flat format is mmap'd and served zero-copy, so its
// cold start is one checksum pass plus O(n) page-directory headers.
// Both artifacts are written to a scratch directory first, then each
// side is timed from open to the first answered query.
func benchColdStart(d *workload.Dataset, qs []core.Query, cfg workload.Config) *ColdStartResult {
	if len(qs) == 0 {
		return nil
	}
	dir, err := os.MkdirTemp("", "kosrbench-coldstart")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench: coldstart scan:", err)
		return nil
	}
	defer os.RemoveAll(dir)

	sys := kosr.NewSystemFromParts(d.G, d.Lab, d.Inv)
	legacyPath := filepath.Join(dir, "index.legacy")
	f, err := os.Create(legacyPath)
	if err == nil {
		err = sys.SaveIndex(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench: coldstart scan:", err)
		return nil
	}
	flatPath := filepath.Join(dir, "index.flat")
	if err := sys.SaveFlatIndex(flatPath); err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench: coldstart scan:", err)
		return nil
	}

	res := &ColdStartResult{}
	if fi, err := os.Stat(legacyPath); err == nil {
		res.LegacyFileMB = float64(fi.Size()) / (1 << 20)
	}
	if fi, err := os.Stat(flatPath); err == nil {
		res.FlatFileMB = float64(fi.Size()) / (1 << 20)
	}
	q := qs[0]
	req := kosr.Request{
		Source: q.Source, Target: q.Target, Categories: q.Categories,
		K: q.K, MaxExamined: cfg.MaxExamined,
	}

	runtime.GC()
	t0 := time.Now()
	lf, err := os.Open(legacyPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench: coldstart scan:", err)
		return nil
	}
	lsys, err := kosr.LoadSystem(d.G, lf)
	lf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench: coldstart scan:", err)
		return nil
	}
	res.LegacyLoadMS = msSince(t0)
	_, _ = lsys.Do(context.Background(), req)
	res.LegacyFirstQueryMS = msSince(t0)

	runtime.GC()
	t0 = time.Now()
	fsys, err := kosr.OpenFlatSystem(d.G, flatPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench: coldstart scan:", err)
		return nil
	}
	res.FlatOpenMS = msSince(t0)
	_, _ = fsys.Do(context.Background(), req)
	res.FlatFirstQueryMS = msSince(t0)
	fsys.Close()

	if res.FlatFirstQueryMS > 0 {
		res.Speedup = res.LegacyFirstQueryMS / res.FlatFirstQueryMS
	}
	return res
}

// benchServer pushes the query mix through a live HTTP server's
// /v1/query endpoint in batches: one cold pass (every query misses the
// result cache — end-to-end batch throughput) and repeat passes over
// the identical mix (skewed-traffic throughput where the single-flight
// LRU answers). This measures the full serving stack: JSON decode,
// worker-pool dispatch, engine, cache, JSON encode.
func benchServer(d *workload.Dataset, qs []core.Query, cfg workload.Config) *ServerScanResult {
	if len(qs) == 0 {
		return nil
	}
	sys := kosr.NewSystemFromParts(d.G, d.Lab, d.Inv)
	srv := server.NewWithConfig(sys, server.Config{
		MaxExamined: cfg.MaxExamined,
		CacheSize:   4096,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	wire := make([]server.QueryRequest, len(qs))
	for i, q := range qs {
		cats := make([]string, len(q.Categories))
		for j, c := range q.Categories {
			cats[j] = strconv.Itoa(int(c))
		}
		wire[i] = server.QueryRequest{
			Source:     strconv.Itoa(int(q.Source)),
			Target:     strconv.Itoa(int(q.Target)),
			Categories: cats,
			K:          q.K,
		}
	}

	const batchSize = 8
	postAll := func(rounds int) (int, float64) {
		total := 0
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for off := 0; off < len(wire); off += batchSize {
				end := off + batchSize
				if end > len(wire) {
					end = len(wire)
				}
				body, err := json.Marshal(server.BatchRequest{Queries: wire[off:end]})
				if err != nil {
					return total, time.Since(start).Seconds()
				}
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					fmt.Fprintln(os.Stderr, "kosrbench: server scan:", err)
					return total, time.Since(start).Seconds()
				}
				var br server.BatchResponse
				json.NewDecoder(resp.Body).Decode(&br)
				resp.Body.Close()
				total += len(br.Results)
			}
		}
		return total, time.Since(start).Seconds()
	}

	// Warm the engine (the System's scratch pool, NN caches) outside
	// the timed passes so the cold pass measures the serving stack, not
	// first-touch scratch growth. Direct Do calls bypass the server's
	// result cache, so the cold pass below still misses every query.
	for _, q := range qs {
		_, _ = sys.Do(context.Background(), kosr.Request{
			Source: q.Source, Target: q.Target, Categories: q.Categories,
			K: q.K, MaxExamined: cfg.MaxExamined,
		})
	}

	res := &ServerScanResult{BatchSize: batchSize}
	var elapsed float64
	res.ColdQueries, elapsed = postAll(1) // every query misses the cache
	if elapsed > 0 {
		res.ColdQPS = float64(res.ColdQueries) / elapsed
	}
	res.CachedQueries, elapsed = postAll(8) // identical traffic: all hits
	if elapsed > 0 {
		res.CachedQPS = float64(res.CachedQueries) / elapsed
	}
	hits, misses, _, _ := srv.CacheStats()
	if hits+misses > 0 {
		res.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return res
}

// benchOverload offers the query mix at 2× the server's admission
// capacity and measures the degradation contract: a small worker pool
// behind a bounded queue, hammered by twice as many back-to-back
// clients as it has total slots. Every response must be either a 200
// (whose latency is recorded) or a structured 429/503 shed; the cell
// reports the shed rate and the accepted avg/p99 latency. The result
// cache is disabled so every accepted request really computes.
func benchOverload(d *workload.Dataset, qs []core.Query, cfg workload.Config) *OverloadScanResult {
	if len(qs) == 0 {
		return nil
	}
	const workers, queueDepth = 2, 4
	maxprocs := runtime.GOMAXPROCS(0)
	if maxprocs < 8 {
		maxprocs = 8
	}
	prev := runtime.GOMAXPROCS(maxprocs)
	defer runtime.GOMAXPROCS(prev)
	sys := kosr.NewSystemFromParts(d.G, d.Lab, d.Inv)
	srv := server.NewWithConfig(sys, server.Config{
		Workers:     workers,
		QueueDepth:  queueDepth,
		MaxExamined: cfg.MaxExamined,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	wire := make([]server.QueryRequest, len(qs))
	for i, q := range qs {
		cats := make([]string, len(q.Categories))
		for j, c := range q.Categories {
			cats[j] = strconv.Itoa(int(c))
		}
		wire[i] = server.QueryRequest{
			Source:     strconv.Itoa(int(q.Source)),
			Target:     strconv.Itoa(int(q.Target)),
			Categories: cats,
			K:          q.K,
		}
	}
	// Warm the scratch pool outside the measured window.
	for _, q := range qs {
		_, _ = sys.Do(context.Background(), kosr.Request{
			Source: q.Source, Target: q.Target, Categories: q.Categories,
			K: q.K, MaxExamined: cfg.MaxExamined,
		})
	}

	clients := 2 * (workers + queueDepth)
	perClient := 2 * len(qs)
	res := &OverloadScanResult{
		Workers: workers, QueueDepth: queueDepth,
		Clients: clients, GOMAXPROCS: maxprocs,
		Offered: clients * perClient,
	}
	var mu sync.Mutex
	var latencies []float64
	var shed, accepted, other int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// One transport per client: a shared transport's connection
			// management would serialize what must be concurrent arrival.
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < perClient; i++ {
				body, err := json.Marshal(wire[(c+i)%len(wire)])
				if err != nil {
					atomic.AddInt64(&other, 1)
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					atomic.AddInt64(&other, 1)
					continue
				}
				lat := msSince(t0)
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					atomic.AddInt64(&accepted, 1)
					mu.Lock()
					latencies = append(latencies, lat)
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					atomic.AddInt64(&shed, 1)
				default:
					atomic.AddInt64(&other, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := atomic.LoadInt64(&other); n > 0 {
		fmt.Fprintf(os.Stderr, "kosrbench: overload scan: %d responses outside the 200/429/503 taxonomy\n", n)
	}
	res.Accepted = int(accepted)
	res.Shed = int(shed)
	if res.Offered > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Offered)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.AcceptedAvgMS = sum / float64(len(latencies))
		res.AcceptedP99MS = latencies[(99*len(latencies)+99)/100-1]
	}
	return res
}

// benchConcurrency measures StarKOSR throughput with 1/2/4/8 workers
// pulling queries from a shared counter against one read-only index.
// One LabelProvider (hence one scratch pool) serves every worker, so
// after the warm-up pass the steady state allocates no per-vertex
// search state regardless of worker count.
func benchConcurrency(d *workload.Dataset, qs []core.Query, cfg workload.Config) []ConcurrencyResult {
	if len(qs) == 0 {
		return nil
	}
	prov := &core.LabelProvider{Graph: d.G, Labels: d.Lab, Inv: d.Inv}
	opts := core.Options{
		Method:      core.MethodSK,
		MaxExamined: cfg.MaxExamined,
		MaxDuration: cfg.MaxDuration,
	}
	solve := func(q core.Query) {
		// Budget errors count as served requests (the server returns
		// truncated results for them), so they stay in the mix.
		_, _, _ = core.Solve(context.Background(), d.G, q, prov, opts)
	}
	for _, q := range qs { // warm the scratch pool and the NN caches
		solve(q)
	}
	total := 16 * len(qs)
	var out []ConcurrencyResult
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		var next int64 = -1
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= total {
						return
					}
					solve(qs[i%len(qs)])
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		cr := ConcurrencyResult{Workers: workers, TotalQueries: total}
		if elapsed > 0 {
			cr.QPS = float64(total) / elapsed
		}
		if workers == 1 {
			base = cr.QPS
		}
		if base > 0 {
			cr.SpeedupVs1 = cr.QPS / base
		}
		out = append(out, cr)
	}
	return out
}

// runDiff implements `kosrbench diff OLD.json NEW.json`: it compares
// the per-(dataset, method) query times and allocation counts of two
// reports and fails when the new report regresses by more than the
// threshold factor. Build times are printed for context but do not
// fail the diff (they are too machine-sensitive for a hard gate).
func runDiff(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 2.0, "fail when a new value exceeds the old by this factor")
	allowMissing := fs.Bool("allow-missing", false, "do not fail when the new report lacks datasets/methods the old one has (e.g. diffing a -quick run)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: kosrbench diff [-threshold 2.0] OLD.json NEW.json")
		return 2
	}
	oldRep, err := readReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench diff:", err)
		return 2
	}
	newRep, err := readReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench diff:", err)
		return 2
	}
	fmt.Printf("%s (%s) -> %s (%s), threshold %.2fx\n",
		oldRep.PR, oldRep.Date, newRep.PR, newRep.Date, *threshold)
	if oldRep.NumCPU != newRep.NumCPU || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("note: reports come from different machines (%d/%d vs %d/%d cpus); timings are indicative only\n",
			oldRep.NumCPU, oldRep.GOMAXPROCS, newRep.NumCPU, newRep.GOMAXPROCS)
	}

	var regressions []string
	fmt.Printf("%-6s %-8s %12s %12s %8s %14s %14s %8s\n",
		"graph", "method", "old_ms", "new_ms", "ratio", "old_allocs", "new_allocs", "ratio")
	for _, nds := range newRep.Datasets {
		ods, ok := findDataset(oldRep, nds.Name)
		if !ok {
			fmt.Printf("%-6s (new dataset, no baseline)\n", nds.Name)
			continue
		}
		for _, nm := range nds.Methods {
			om, ok := findMethod(ods, nm.Method)
			if !ok {
				fmt.Printf("%-6s %-8s (new method, no baseline)\n", nds.Name, nm.Method)
				continue
			}
			cell := fmt.Sprintf("%s/%s", nds.Name, nm.Method)
			switch {
			case om.INF && nm.INF:
				fmt.Printf("%-6s %-8s %12s %12s\n", nds.Name, nm.Method, "INF", "INF")
				continue
			case !om.INF && nm.INF:
				regressions = append(regressions, cell+": was finite, now INF")
				fmt.Printf("%-6s %-8s %12.3f %12s\n", nds.Name, nm.Method, om.AvgMS, "INF")
				continue
			case om.INF && !nm.INF:
				fmt.Printf("%-6s %-8s %12s %12.3f   (fixed INF)\n", nds.Name, nm.Method, "INF", nm.AvgMS)
				continue
			}
			msRatio := ratio(nm.AvgMS, om.AvgMS)
			allocRatio := ratio(nm.AllocsPerQuery, om.AllocsPerQuery)
			fmt.Printf("%-6s %-8s %12.3f %12.3f %7.2fx %14.1f %14.1f %7.2fx\n",
				nds.Name, nm.Method, om.AvgMS, nm.AvgMS, msRatio,
				om.AllocsPerQuery, nm.AllocsPerQuery, allocRatio)
			if msRatio > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: avg_ms %.3f -> %.3f (%.2fx)", cell, om.AvgMS, nm.AvgMS, msRatio))
			}
			if allocRatio > *threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: allocs/query %.1f -> %.1f (%.2fx)", cell, om.AllocsPerQuery, nm.AllocsPerQuery, allocRatio))
			}
		}
		fmt.Printf("%-6s build: par %.0fms -> %.0fms, label %.1fMB -> %.1fMB (informational)\n",
			nds.Name, ods.ParBuildMS, nds.ParBuildMS, ods.LabelMB, nds.LabelMB)
	}
	// Coverage check: a cell that silently vanishes from the new report
	// would otherwise dodge the gate entirely.
	for _, ods := range oldRep.Datasets {
		nds, ok := findDataset(newRep, ods.Name)
		if !ok {
			msg := fmt.Sprintf("%s: dataset missing from new report", ods.Name)
			fmt.Println(msg)
			if !*allowMissing {
				regressions = append(regressions, msg)
			}
			continue
		}
		for _, om := range ods.Methods {
			if _, ok := findMethod(nds, om.Method); !ok {
				msg := fmt.Sprintf("%s/%s: method missing from new report", ods.Name, om.Method)
				fmt.Println(msg)
				if !*allowMissing {
					regressions = append(regressions, msg)
				}
			}
		}
	}
	if len(regressions) > 0 {
		fmt.Printf("\n%d regression(s) beyond %.2fx:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		return 1
	}
	fmt.Println("\nno regressions beyond threshold")
	return 0
}

// findBatchCell returns the apply-cost cell of the given batch size.
func findBatchCell(ds DatasetResult, batchSize int) (UpdateBatchCell, bool) {
	if ds.Updates == nil {
		return UpdateBatchCell{}, false
	}
	for _, c := range ds.Updates.Batches {
		if c.BatchSize == batchSize {
			return c, true
		}
	}
	return UpdateBatchCell{}, false
}

// runApplyGate implements `kosrbench applygate [-small CAL] [-large FLA]
// [-batch 1] [-factor 2.0] REPORT.json`: the CI assertion that
// apply_bytes_per_update does not scale with the graph size. It
// compares the per-mutation apply bytes of the two named datasets —
// the small and large committed road analogues, a 3.5× vertex-count
// spread — and fails when the large graph pays more than factor× the
// small one's bytes. Under the pre-PR5 flat header-array clones this
// ratio tracked |V| (≈3.5×); under chunked copy-on-write pages it
// tracks the touched pages and stays near 1.
func runApplyGate(args []string) int {
	fs := flag.NewFlagSet("applygate", flag.ExitOnError)
	small := fs.String("small", "CAL", "small dataset name")
	large := fs.String("large", "FLA", "large dataset name")
	batch := fs.Int("batch", 1, "batch size cell to compare")
	factor := fs.Float64("factor", 2.0, "fail when large exceeds small by this factor")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kosrbench applygate [-small CAL] [-large FLA] [-batch 1] [-factor 2.0] REPORT.json")
		return 2
	}
	rep, err := readReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench applygate:", err)
		return 2
	}
	cell := func(name string) (UpdateBatchCell, DatasetResult, bool) {
		ds, ok := findDataset(rep, name)
		if !ok {
			fmt.Fprintf(os.Stderr, "kosrbench applygate: dataset %q missing from %s\n", name, fs.Arg(0))
			return UpdateBatchCell{}, ds, false
		}
		c, ok := findBatchCell(ds, *batch)
		if !ok {
			fmt.Fprintf(os.Stderr, "kosrbench applygate: %s has no batch_size=%d apply cell\n", name, *batch)
		}
		return c, ds, ok
	}
	sc, sds, ok := cell(*small)
	if !ok {
		return 2
	}
	lc, lds, ok := cell(*large)
	if !ok {
		return 2
	}
	vRatio := float64(lds.Vertices) / float64(sds.Vertices)
	bRatio := lc.ApplyBytesPerUpdate / sc.ApplyBytesPerUpdate
	fmt.Printf("applygate: |V| %d -> %d (%.2fx); apply_bytes_per_update %.0f -> %.0f (%.2fx), threshold %.2fx\n",
		sds.Vertices, lds.Vertices, vRatio, sc.ApplyBytesPerUpdate, lc.ApplyBytesPerUpdate, bRatio, *factor)
	if sc.ApplyBytesPerUpdate <= 0 || lc.ApplyBytesPerUpdate <= 0 {
		fmt.Fprintln(os.Stderr, "kosrbench applygate: zero apply bytes recorded")
		return 1
	}
	if bRatio > *factor {
		fmt.Printf("FAIL: apply bytes scale with |V| (%.2fx > %.2fx)\n", bRatio, *factor)
		return 1
	}
	fmt.Println("OK: apply cost tracks the update's pages, not the graph size")
	return 0
}

// runUpdateGate implements `kosrbench updategate [-dataset FLA]
// [-factor 2.0] OLD.json NEW.json`: the CI assertion that the live-scan
// update throughput holds its recorded level. It fails when the new
// report's updates_per_sec on the named dataset falls below the old
// report's value divided by factor — once the PR 9 throughput is the
// committed baseline, any later report regressing >2× against it fails
// the gate. Improvements are reported but never fail.
func runUpdateGate(args []string) int {
	fs := flag.NewFlagSet("updategate", flag.ExitOnError)
	dataset := fs.String("dataset", "FLA", "dataset whose live-update scan is compared")
	factor := fs.Float64("factor", 2.0, "fail when updates_per_sec drops by more than this factor")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: kosrbench updategate [-dataset FLA] [-factor 2.0] OLD.json NEW.json")
		return 2
	}
	oldRep, err := readReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench updategate:", err)
		return 2
	}
	newRep, err := readReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kosrbench updategate:", err)
		return 2
	}
	if oldRep.NumCPU != newRep.NumCPU || oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		fmt.Printf("note: reports come from different machines (%d/%d vs %d/%d cpus); timings are indicative only\n",
			oldRep.NumCPU, oldRep.GOMAXPROCS, newRep.NumCPU, newRep.GOMAXPROCS)
	}
	scan := func(rep Report, path string) (*UpdateScanResult, bool) {
		ds, ok := findDataset(rep, *dataset)
		if !ok || ds.Updates == nil {
			fmt.Fprintf(os.Stderr, "kosrbench updategate: %s has no live-update scan for dataset %q\n", path, *dataset)
			return nil, false
		}
		return ds.Updates, true
	}
	ou, ok := scan(oldRep, fs.Arg(0))
	if !ok {
		return 2
	}
	nu, ok := scan(newRep, fs.Arg(1))
	if !ok {
		return 2
	}
	if ou.UpdatesPerSec <= 0 || nu.UpdatesPerSec <= 0 {
		fmt.Fprintln(os.Stderr, "kosrbench updategate: zero updates_per_sec recorded")
		return 1
	}
	r := nu.UpdatesPerSec / ou.UpdatesPerSec
	fmt.Printf("updategate: %s updates_per_sec %.1f (%s) -> %.1f (%s): %.2fx, floor %.2fx of baseline\n",
		*dataset, ou.UpdatesPerSec, oldRep.PR, nu.UpdatesPerSec, newRep.PR, r, 1 / *factor)
	if nu.UpdatesPerSec < ou.UpdatesPerSec / *factor {
		fmt.Printf("FAIL: update throughput regressed more than %.2fx\n", *factor)
		return 1
	}
	fmt.Println("OK: update throughput holds its recorded level")
	return 0
}

// runPlot implements `kosrbench plot REPORT.json...`: it renders the
// per-(dataset, method) query-time and allocation trajectory across the
// given reports as a markdown trend table, one column per report. INF
// cells render as INF; cells absent from a report render as a dash.
func runPlot(args []string) int {
	fs := flag.NewFlagSet("plot", flag.ExitOnError)
	metrics := fs.String("metrics", "avg_ms,allocs", "comma-separated metrics: avg_ms, allocs, qps, examined")
	fs.Parse(args)
	if fs.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kosrbench plot [-metrics avg_ms,allocs] REPORT.json...")
		return 2
	}
	var reps []Report
	for _, path := range fs.Args() {
		rep, err := readReport(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kosrbench plot:", err)
			return 2
		}
		reps = append(reps, rep)
	}

	metric := func(m MethodResult, name string) string {
		if m.INF && (name == "avg_ms" || name == "qps") {
			return "INF"
		}
		switch name {
		case "avg_ms":
			return fmt.Sprintf("%.3f", m.AvgMS)
		case "allocs":
			return fmt.Sprintf("%.0f", m.AllocsPerQuery)
		case "qps":
			return fmt.Sprintf("%.1f", m.QPS)
		case "examined":
			return fmt.Sprintf("%.0f", m.AvgExamined)
		default:
			return "?"
		}
	}

	// Row universe: every (dataset, method) seen in any report, in
	// first-seen order, so new datasets/methods append cleanly.
	type rowKey struct{ ds, method string }
	var rows []rowKey
	seen := map[rowKey]bool{}
	for _, rep := range reps {
		for _, ds := range rep.Datasets {
			for _, m := range ds.Methods {
				k := rowKey{ds.Name, m.Method}
				if !seen[k] {
					seen[k] = true
					rows = append(rows, k)
				}
			}
		}
	}

	header := "| dataset | method | metric |"
	rule := "|---|---|---|"
	for _, rep := range reps {
		header += fmt.Sprintf(" %s |", rep.PR)
		rule += "---|"
	}
	fmt.Println(header)
	fmt.Println(rule)
	for _, k := range rows {
		for _, name := range strings.Split(*metrics, ",") {
			name = strings.TrimSpace(name)
			line := fmt.Sprintf("| %s | %s | %s |", k.ds, k.method, name)
			for _, rep := range reps {
				cell := "–"
				if ds, ok := findDataset(rep, k.ds); ok {
					if m, ok := findMethod(ds, k.method); ok {
						cell = metric(m, name)
					}
				}
				line += fmt.Sprintf(" %s |", cell)
			}
			fmt.Println(line)
		}
	}

	// Build times and the serving cells ride along as context rows.
	var dsNames []string
	seenDS := map[string]bool{}
	for _, rep := range reps {
		for _, ds := range rep.Datasets {
			if !seenDS[ds.Name] {
				seenDS[ds.Name] = true
				dsNames = append(dsNames, ds.Name)
			}
		}
	}
	for _, name := range dsNames {
		for _, row := range []struct {
			label string
			cell  func(DatasetResult) string
		}{
			{"build_par_ms", func(d DatasetResult) string { return fmt.Sprintf("%.0f", d.ParBuildMS) }},
			{"label_mb", func(d DatasetResult) string { return fmt.Sprintf("%.1f", d.LabelMB) }},
			{"batch_qps", func(d DatasetResult) string {
				if d.Server == nil {
					return "–"
				}
				return fmt.Sprintf("%.0f", d.Server.ColdQPS)
			}},
			{"cached_qps", func(d DatasetResult) string {
				if d.Server == nil {
					return "–"
				}
				return fmt.Sprintf("%.0f", d.Server.CachedQPS)
			}},
			{"cache_hit_rate", func(d DatasetResult) string {
				if d.Server == nil {
					return "–"
				}
				return fmt.Sprintf("%.2f", d.Server.CacheHitRate)
			}},
			{"overload_shed_rate", func(d DatasetResult) string {
				if d.Overload == nil {
					return "–"
				}
				return fmt.Sprintf("%.2f", d.Overload.ShedRate)
			}},
			{"overload_accepted_p99_ms", func(d DatasetResult) string {
				if d.Overload == nil {
					return "–"
				}
				return fmt.Sprintf("%.1f", d.Overload.AcceptedP99MS)
			}},
			{"updates_per_sec", func(d DatasetResult) string {
				if d.Updates == nil {
					return "–"
				}
				return fmt.Sprintf("%.0f", d.Updates.UpdatesPerSec)
			}},
			{"qps_during_updates", func(d DatasetResult) string {
				if d.Updates == nil {
					return "–"
				}
				return fmt.Sprintf("%.0f", d.Updates.QPSDuringUpdates)
			}},
			{"apply_bytes_per_update(b=1)", func(d DatasetResult) string {
				c, ok := findBatchCell(d, 1)
				if !ok {
					return "–"
				}
				return fmt.Sprintf("%.0f", c.ApplyBytesPerUpdate)
			}},
			{"apply_allocs_per_update(b=1)", func(d DatasetResult) string {
				c, ok := findBatchCell(d, 1)
				if !ok {
					return "–"
				}
				return fmt.Sprintf("%.0f", c.ApplyAllocsPerUpdate)
			}},
			{"apply_bytes_per_update(b=256)", func(d DatasetResult) string {
				c, ok := findBatchCell(d, 256)
				if !ok {
					return "–"
				}
				return fmt.Sprintf("%.0f", c.ApplyBytesPerUpdate)
			}},
			// Repair dedup: searches per mutation at batch 1 vs 256 — the
			// cross-arc (hub, direction) dedup of the batched update path
			// shows as the b=256 row sitting well under the b=1 row.
			{"hub_repairs_per_update(b=1)", func(d DatasetResult) string {
				c, ok := findBatchCell(d, 1)
				if !ok || c.HubRepairsPerUpdate == 0 {
					return "–"
				}
				return fmt.Sprintf("%.1f", c.HubRepairsPerUpdate)
			}},
			{"hub_repairs_per_update(b=256)", func(d DatasetResult) string {
				c, ok := findBatchCell(d, 256)
				if !ok || c.HubRepairsPerUpdate == 0 {
					return "–"
				}
				return fmt.Sprintf("%.1f", c.HubRepairsPerUpdate)
			}},
			// The structural-copy pair: the paged layer's measured COW
			// bytes per mutation vs the O(|V|) header clone it replaced.
			{"cow_bytes_per_update(b=1)", func(d DatasetResult) string {
				c, ok := findBatchCell(d, 1)
				if !ok {
					return "–"
				}
				return fmt.Sprintf("%.0f", c.CowBytesPerUpdate)
			}},
			{"flat_clone_bytes(pre-PR5, replaced by cow_bytes)", func(d DatasetResult) string {
				if d.Updates == nil || d.Updates.FlatCloneBytes == 0 {
					return "–"
				}
				return fmt.Sprintf("%d", d.Updates.FlatCloneBytes)
			}},
			{"coldstart_legacy_first_query_ms", func(d DatasetResult) string {
				if d.ColdStart == nil {
					return "–"
				}
				return fmt.Sprintf("%.1f", d.ColdStart.LegacyFirstQueryMS)
			}},
			{"coldstart_flat_first_query_ms", func(d DatasetResult) string {
				if d.ColdStart == nil {
					return "–"
				}
				return fmt.Sprintf("%.1f", d.ColdStart.FlatFirstQueryMS)
			}},
			{"cold_start_speedup", func(d DatasetResult) string {
				if d.ColdStart == nil {
					return "–"
				}
				return fmt.Sprintf("%.0fx", d.ColdStart.Speedup)
			}},
			// PR10: KPNE examined-rate under the two queue implementations.
			{"kpne_heap_examined_per_sec", func(d DatasetResult) string {
				if d.KPNERate == nil {
					return "–"
				}
				return fmt.Sprintf("%.0f", d.KPNERate.HeapExaminedPerSec)
			}},
			{"kpne_bucket_examined_per_sec", func(d DatasetResult) string {
				if d.KPNERate == nil {
					return "–"
				}
				return fmt.Sprintf("%.0f", d.KPNERate.BucketExaminedPerSec)
			}},
			{"kpne_queue_speedup", func(d DatasetResult) string {
				if d.KPNERate == nil {
					return "–"
				}
				return fmt.Sprintf("%.2fx", d.KPNERate.SpeedupBucketVsHeap)
			}},
		} {
			line := fmt.Sprintf("| %s | – | %s |", name, row.label)
			for _, rep := range reps {
				cell := "–"
				if ds, ok := findDataset(rep, name); ok {
					cell = row.cell(ds)
				}
				line += fmt.Sprintf(" %s |", cell)
			}
			fmt.Println(line)
		}
	}
	return 0
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func findDataset(rep Report, name string) (DatasetResult, bool) {
	for _, ds := range rep.Datasets {
		if ds.Name == name {
			return ds, true
		}
	}
	return DatasetResult{}, false
}

func findMethod(ds DatasetResult, method string) (MethodResult, bool) {
	for _, m := range ds.Methods {
		if m.Method == method {
			return m, true
		}
	}
	return MethodResult{}, false
}

// ratio compares a new metric against its baseline. A zero baseline
// with a now-positive value is an unbounded regression (the trajectory
// drives allocations toward zero, so 0 -> anything must not pass
// silently); both-zero compares equal.
func ratio(newV, oldV float64) float64 {
	if oldV <= 0 {
		if newV <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return newV / oldV
}

func runMethod(d *workload.Dataset, m workload.MethodID, qs []core.Query, cfg workload.Config) (MethodResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	r, err := d.RunMethod(context.Background(), m, qs, cfg, false)
	runtime.ReadMemStats(&after)
	if err != nil {
		return MethodResult{}, err
	}
	mr := MethodResult{
		Method:         string(m),
		AvgMS:          r.AvgTimeMS,
		AvgExamined:    r.AvgExamined,
		AvgNNQueries:   r.AvgNN,
		AllocsPerQuery: float64(after.Mallocs-before.Mallocs) / float64(len(qs)),
		INF:            r.INF,
	}
	if r.AvgTimeMS > 0 {
		mr.QPS = 1000 / r.AvgTimeMS
	}
	return mr, nil
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Microseconds()) / 1000
}

// sameIndex verifies the determinism claim on the live build (the unit
// test asserts it on small graphs; this checks it on every benchmarked
// graph too).
func sameIndex(g *graph.Graph, a, b *label.Index) bool {
	for v := 0; v < g.NumVertices(); v++ {
		if !sameEntries(a.In(graph.Vertex(v)), b.In(graph.Vertex(v))) ||
			!sameEntries(a.Out(graph.Vertex(v)), b.Out(graph.Vertex(v))) {
			return false
		}
	}
	return true
}

func sameEntries(a, b []label.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
