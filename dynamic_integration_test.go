package kosr

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// After incremental edge insertions, label-based KOSR answers must match
// the brute-force oracle computed on the rebuilt graph — the end-to-end
// check of the Section IV-C graph-structure updates.
func TestInsertEdgeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(15)
		b := NewBuilder(n, true)
		b.EnsureCategories(3)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(Vertex(rng.Intn(n)), Vertex(rng.Intn(n)), float64(1+rng.Intn(12)))
		}
		for v := 0; v < n; v++ {
			b.AddCategory(Vertex(v), Category(rng.Intn(3)))
		}
		g := b.MustBuild()
		sys := NewSystem(g)
		dyn := sys.NewDynamic()

		for i := 0; i < 4; i++ {
			u := Vertex(rng.Intn(n))
			v := Vertex(rng.Intn(n))
			w := float64(1 + rng.Intn(6))
			if err := sys.InsertEdge(dyn, u, v, w); err != nil {
				t.Fatal(err)
			}
		}

		full, err := dyn.Rebuild()
		if err != nil {
			t.Fatal(err)
		}
		q := Query{
			Source:     Vertex(rng.Intn(n)),
			Target:     Vertex(rng.Intn(n)),
			Categories: []Category{0, 1, 2},
			K:          4,
		}
		oracle, err := core.BruteForce(full, q)
		if err != nil {
			t.Fatal(err)
		}
		routes, _, err := sys.Solve(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(routes) != len(oracle) {
			t.Fatalf("trial %d: got %d routes, oracle %d\ngot=%v\nwant=%v",
				trial, len(routes), len(oracle), routes, oracle)
		}
		for i := range routes {
			if routes[i].Cost != oracle[i].Cost {
				t.Fatalf("trial %d route %d: cost %v, oracle %v",
					trial, i, routes[i].Cost, oracle[i].Cost)
			}
		}
	}
}

func TestInsertEdgeImprovesRoute(t *testing.T) {
	// Figure 1: a new expressway d→t with cost 1 improves every route's
	// final leg from 4 to 1.
	g := Figure1()
	sys := NewSystem(g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	d, _ := g.VertexByName("d")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	cats := []Category{ma, re, ci}

	before, err := sys.TopK(s, tv, cats, 1)
	if err != nil || before[0].Cost != 20 {
		t.Fatalf("before=%v err=%v", before, err)
	}
	dyn := sys.NewDynamic()
	if err := sys.InsertEdge(dyn, d, tv, 1); err != nil {
		t.Fatal(err)
	}
	after, err := sys.TopK(s, tv, cats, 1)
	if err != nil || after[0].Cost != 17 {
		t.Fatalf("after=%v err=%v (want 17 = 20 - 3)", after, err)
	}
}

func TestInsertEdgeWithoutIndexFails(t *testing.T) {
	g := Figure1()
	sys := NewSystemWithoutIndex(g)
	dyn := graph.NewDynamic(g)
	if err := sys.InsertEdge(dyn, 0, 1, 1); err == nil {
		t.Fatal("want error without label index")
	}
}
