//go:build race

package kosr

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately drops items at random and the
// instrumentation itself allocates — pool-count and allocation
// assertions are meaningless there and skip themselves.
const raceEnabled = true
