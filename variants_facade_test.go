package kosr

import "testing"

func TestStreamFacade(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	it, err := sys.Stream(Query{Source: s, Target: tv, Categories: []Category{ma, re, ci}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Weight{20, 21, 22}
	for _, w := range want {
		r, ok, err := it.Next()
		if err != nil || !ok || r.Cost != w {
			t.Fatalf("next=%v ok=%v err=%v, want cost %v", r, ok, err, w)
		}
	}
	count := 3
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != 8 {
		t.Fatalf("streamed %d routes, want all 8", count)
	}
}

func TestSolveVariantFacade(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	tv, _ := g.VertexByName("t")
	s, _ := g.VertexByName("s")
	e, _ := g.VertexByName("e")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	// No-source: best mall-to-t chain is c→b→d→t = 12.
	routes, _, err := sys.SolveVariant(VariantQuery{
		NoSource: true, Target: tv,
		Categories: []Category{ma, re, ci}, K: 1,
	}, Options{})
	if err != nil || len(routes) != 1 || routes[0].Cost != 12 {
		t.Fatalf("no-source: %v err=%v", routes, err)
	}

	// Preference filter: only restaurant e is acceptable.
	routes, _, err = sys.SolveVariant(VariantQuery{
		Source: s, Target: tv,
		Categories: []Category{ma, re, ci}, K: 1,
		Filters: Filters{re: func(v Vertex) bool { return v == e }},
	}, Options{})
	if err != nil || len(routes) != 1 || routes[0].Cost != 21 {
		t.Fatalf("filtered: %v err=%v", routes, err)
	}

	// No-target through the Dijkstra provider.
	routes, st, err := sys.SolveVariant(VariantQuery{
		Source: s, NoTarget: true,
		Categories: []Category{ma, re, ci}, K: 1,
	}, Options{UseDijkstraNN: true})
	if err != nil || len(routes) != 1 || routes[0].Cost != 16 {
		t.Fatalf("no-target: %v err=%v", routes, err)
	}
	if st.Method != PruningKOSR {
		t.Fatalf("method=%v, want PruningKOSR degradation", st.Method)
	}
}
