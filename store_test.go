package kosr

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
)

// storeFixture builds a grid graph with categories plus a memory-backed
// System, and writes its flat index and disk store next to each other.
func storeFixture(t *testing.T) (g *Graph, mem *System, flatPath, diskDir string) {
	t.Helper()
	// Directed, because the rebuild oracle below re-materializes the
	// effective graph through a directed builder.
	b := gen.GridBuilder(gen.GridOptions{Rows: 11, Cols: 13, Directed: true, Diagonals: true, MaxWeight: 9, Seed: 3})
	gen.AssignUniformCategories(b, 11*13, 5, 9, 4)
	g = b.MustBuild()
	mem = NewSystem(g)
	dir := t.TempDir()
	flatPath = filepath.Join(dir, "index.flat")
	if err := mem.SaveFlatIndex(flatPath); err != nil {
		t.Fatalf("SaveFlatIndex: %v", err)
	}
	diskDir = filepath.Join(dir, "skdb")
	if err := mem.SaveDiskStore(diskDir); err != nil {
		t.Fatalf("SaveDiskStore: %v", err)
	}
	return g, mem, flatPath, diskDir
}

// storeMixRequests is the request mix the equivalence tests replay on
// every backing: all three methods, several k values, repeated
// categories. Variants are excluded — the disk store rejects them.
func storeMixRequests(g *Graph, rng *rand.Rand) []Request {
	n := g.NumVertices()
	nCats := g.NumCategories()
	var reqs []Request
	for i := 0; i < 12; i++ {
		nc := 1 + rng.Intn(3)
		cats := make([]Category, nc)
		for j := range cats {
			cats[j] = Category(rng.Intn(nCats))
		}
		reqs = append(reqs, Request{
			Source:     Vertex(rng.Intn(n)),
			Target:     Vertex(rng.Intn(n)),
			Categories: cats,
			K:          1 + rng.Intn(4),
			Method:     []Method{StarKOSR, PruningKOSR, KPNE}[i%3],
		})
	}
	return reqs
}

// routesBytes serializes an answer canonically so backings can be
// compared byte for byte.
func routesBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res.Routes)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestThreeStoreEquivalence is the store-seam gate: the same request
// mix answered on the memory-resident index, the mmap'd flat file, and
// the per-query disk store must serialize to byte-identical routes.
// CI runs it as a dedicated step.
func TestThreeStoreEquivalence(t *testing.T) {
	g, mem, flatPath, diskDir := storeFixture(t)

	mm, err := OpenFlatSystem(g, flatPath)
	if err != nil {
		t.Fatalf("OpenFlatSystem: %v", err)
	}
	defer mm.Close()
	if mm.StoreKind() != StoreMmap {
		t.Fatalf("StoreKind=%q, want %q", mm.StoreKind(), StoreMmap)
	}
	if mem.StoreKind() != StoreMemory {
		t.Fatalf("memory StoreKind=%q, want %q", mem.StoreKind(), StoreMemory)
	}
	ds, err := OpenDiskSystem(g, diskDir)
	if err != nil {
		t.Fatalf("OpenDiskSystem: %v", err)
	}
	defer ds.Close()
	if ds.StoreKind() != StoreDisk {
		t.Fatalf("disk StoreKind=%q, want %q", ds.StoreKind(), StoreDisk)
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	for i, req := range storeMixRequests(g, rng) {
		resMem, err := mem.Do(ctx, req)
		if err != nil {
			t.Fatalf("request %d memory: %v", i, err)
		}
		resMmap, err := mm.Do(ctx, req)
		if err != nil {
			t.Fatalf("request %d mmap: %v", i, err)
		}
		resDisk, err := ds.Do(ctx, req)
		if err != nil {
			t.Fatalf("request %d disk: %v", i, err)
		}
		want := routesBytes(t, resMem)
		if got := routesBytes(t, resMmap); !bytes.Equal(got, want) {
			t.Fatalf("request %d (%+v): mmap answer diverges\n got %s\nwant %s", i, req, got, want)
		}
		if got := routesBytes(t, resDisk); !bytes.Equal(got, want) {
			t.Fatalf("request %d (%+v): disk answer diverges\n got %s\nwant %s", i, req, got, want)
		}
	}
}

// TestMmapApplyMatchesRebuildOracle runs the dynamic-update oracle
// property on an mmap-backed snapshot chain: random Apply batches land
// on a System opened from the flat file, every epoch's answers are
// checked against a from-scratch rebuild on the materialized effective
// graph, and the mapped file itself must stay byte-identical throughout
// — mutations may only ever land in copied pages, never the mapping.
func TestMmapApplyMatchesRebuildOracle(t *testing.T) {
	g, _, flatPath, _ := storeFixture(t)
	before, err := os.ReadFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := OpenFlatSystem(g, flatPath)
	if err != nil {
		t.Fatalf("OpenFlatSystem: %v", err)
	}
	defer sys.Close()

	const epochs = 25
	rng := rand.New(rand.NewSource(23))
	n := g.NumVertices()
	nCats := g.NumCategories()
	reqs := applyOracleQueries(n, nCats, rng)
	var insertedEdges [][3]float64
	for epoch := 0; epoch < epochs; epoch++ {
		batch := make([]Update, 0, 3)
		for i := 0; i < 1+rng.Intn(3); i++ {
			switch rng.Intn(4) {
			case 0, 1:
				u := Update{
					Op:     OpInsertEdge,
					From:   Vertex(rng.Intn(n)),
					To:     Vertex(rng.Intn(n)),
					Weight: float64(1 + rng.Intn(9)),
				}
				batch = append(batch, u)
				insertedEdges = append(insertedEdges, [3]float64{float64(u.From), float64(u.To), u.Weight})
			case 2:
				batch = append(batch, Update{
					Op: OpAddCategory, Vertex: Vertex(rng.Intn(n)), Category: Category(rng.Intn(nCats)),
				})
			default:
				batch = append(batch, Update{
					Op: OpRemoveCategory, Vertex: Vertex(rng.Intn(n)), Category: Category(rng.Intn(nCats)),
				})
			}
		}
		if _, err := sys.Apply(batch...); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		sn := sys.Snapshot()
		if sn.Backing != StoreMmap {
			t.Fatalf("epoch %d: cloned snapshot Backing=%q, want %q", epoch, sn.Backing, StoreMmap)
		}
		oracle := oracleSystem(t, g, insertedEdges, sn)
		got := answersOf(t, sn, reqs)
		want := answersOf(t, oracle.Snapshot(), reqs)
		for i := range reqs {
			if !sameRoutes(got[i], want[i]) {
				t.Fatalf("epoch %d request %d (%+v):\n got %v\nwant %v",
					epoch, i, reqs[i], got[i], want[i])
			}
		}
	}

	after, err := os.ReadFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("dynamic updates wrote through to the mapped flat index file")
	}
}

// TestFlatRoundTripThroughSystem: saving the index flat and reopening
// it must reproduce the exact routes of the in-memory build, including
// after the flat-backed system absorbs its own updates and saves again.
func TestFlatRoundTripThroughSystem(t *testing.T) {
	g, mem, flatPath, _ := storeFixture(t)
	sys, err := OpenFlatSystem(g, flatPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	req := Request{Source: 0, Target: Vertex(g.NumVertices() - 1), Categories: []Category{1, 3}, K: 3}
	ctx := context.Background()
	want, err := mem.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRoutes(want.Routes, got.Routes) {
		t.Fatalf("flat-backed answer %v, want %v", got.Routes, want.Routes)
	}

	// Mutate the mapped system, then pack its current snapshot: the new
	// file must load and preserve the post-update answers.
	if _, err := sys.Apply(Update{Op: OpAddCategory, Vertex: 5, Category: 2}); err != nil {
		t.Fatal(err)
	}
	repacked := filepath.Join(t.TempDir(), "repacked.flat")
	if err := sys.SaveFlatIndex(repacked); err != nil {
		t.Fatal(err)
	}
	sys2, err := OpenFlatSystem(g, repacked)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	req2 := Request{Source: 0, Target: Vertex(g.NumVertices() - 1), Categories: []Category{2}, K: 2}
	want2, err := sys.Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := sys2.Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRoutes(want2.Routes, got2.Routes) {
		t.Fatalf("repacked answer %v, want %v", got2.Routes, want2.Routes)
	}
}

// TestSystemPrewarm: prewarming must be invisible to correctness — the
// first queries on a prewarmed system answer exactly like a cold one —
// and the prewarmed scratches must actually be pooled (the first query
// acquires one instead of allocating).
func TestSystemPrewarm(t *testing.T) {
	g, mem, flatPath, _ := storeFixture(t)
	sys, err := OpenFlatSystem(g, flatPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Prewarm(2)
	sys.Prewarm(0)  // no-ops
	sys.Prewarm(-1) // no-ops

	ctx := context.Background()
	rng := rand.New(rand.NewSource(29))
	for i, req := range storeMixRequests(g, rng) {
		want, err := mem.Do(ctx, req)
		if err != nil {
			t.Fatalf("request %d memory: %v", i, err)
		}
		got, err := sys.Do(ctx, req)
		if err != nil {
			t.Fatalf("request %d prewarmed: %v", i, err)
		}
		if !sameRoutes(want.Routes, got.Routes) {
			t.Fatalf("request %d: prewarmed answer %v, want %v", i, got.Routes, want.Routes)
		}
	}
	if n := sys.ScratchesInFlight(); n != 0 {
		t.Fatalf("ScratchesInFlight=%d after queries drained, want 0", n)
	}
}

// TestNewSystemFromStoreRejectsPerQueryStores: disk stores have no
// resident index pair; the resident-system constructor must say so
// instead of serving nil indexes.
func TestNewSystemFromStoreRejectsPerQueryStores(t *testing.T) {
	g, _, _, diskDir := storeFixture(t)
	st, err := store.OpenDisk(diskDir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := NewSystemFromStore(g, st); err == nil {
		t.Fatal("NewSystemFromStore accepted a per-query disk store")
	}
}
