package kosr

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// applyOracleQueries builds the fixed request mix the property test
// replays at every epoch: standard top-k requests across all three
// methods plus the Section IV-C no-source and no-target variants, so
// the label index, the inverted index, the category overlay and the
// variant root seeding are all exercised against the oracle.
func applyOracleQueries(n int, nCats int, rng *rand.Rand) []Request {
	var reqs []Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, Request{
			Source: Vertex(rng.Intn(n)),
			Target: Vertex(rng.Intn(n)),
			Categories: []Category{
				Category(rng.Intn(nCats)),
				Category(rng.Intn(nCats)),
			},
			K:      3,
			Method: []Method{StarKOSR, PruningKOSR, KPNE, StarKOSR}[i],
		})
	}
	for c := 0; c < nCats; c++ {
		reqs = append(reqs, Request{
			NoSource: true,
			Target:   Vertex(rng.Intn(n)),
			Categories: []Category{
				Category(c),
				Category(rng.Intn(nCats)),
			},
			K: 3,
		})
	}
	reqs = append(reqs, Request{
		Source:     Vertex(rng.Intn(n)),
		NoTarget:   true,
		Categories: []Category{Category(rng.Intn(nCats)), Category(rng.Intn(nCats))},
		K:          3,
	})
	return reqs
}

// oracleSystem materializes the snapshot's effective graph — base
// edges, every dynamically inserted edge, and each vertex's effective
// category memberships — into a native graph and builds a from-scratch
// System on it.
func oracleSystem(t *testing.T, base *Graph, edges [][3]float64, sn *Snapshot) *System {
	t.Helper()
	n := base.NumVertices()
	b := NewBuilder(n, true)
	b.EnsureCategories(sn.NumCategories())
	base.Edges(func(e graph.Edge) bool {
		b.AddEdge(e.From, e.To, e.W)
		return true
	})
	for _, e := range edges {
		b.AddEdge(Vertex(e[0]), Vertex(e[1]), e[2])
	}
	for v := 0; v < n; v++ {
		for _, c := range sn.CategoriesOf(Vertex(v)) {
			b.AddCategory(Vertex(v), c)
		}
	}
	return NewSystem(b.MustBuild())
}

func answersOf(t *testing.T, sn *Snapshot, reqs []Request) [][]Route {
	t.Helper()
	out := make([][]Route, len(reqs))
	for i, req := range reqs {
		res, err := sn.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		out[i] = res.Routes
	}
	return out
}

func sameRoutes(a, b []Route) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cost != b[i].Cost || len(a[i].Witness) != len(b[i].Witness) {
			return false
		}
		for j := range a[i].Witness {
			if a[i].Witness[j] != b[i].Witness[j] {
				return false
			}
		}
	}
	return true
}

// TestApplyRandomBatchesMatchRebuildOracle is the structural-sharing
// property test of the paged copy-on-write index layer: 200 random
// Apply batches (edge insertions, category adds/removals) are applied
// one epoch at a time, and after every epoch the full query mix is
// checked byte-identical (costs and witnesses) against a from-scratch
// System built on the epoch's materialized effective graph. Pinned
// older snapshots are re-verified against their recorded answers, so a
// page aliased between epochs — a mutation leaking into a parent, or a
// clone reading a torn page — cannot survive unnoticed.
//
// Repair parallelism alternates between the serial schedule and 4
// workers from epoch to epoch, so the parallel speculation/commit path
// is exercised against label state produced by serial repairs and vice
// versa — the two schedules are required to be byte-identical.
func TestApplyRandomBatchesMatchRebuildOracle(t *testing.T) {
	const (
		n       = 60
		nCats   = 4
		epochs  = 200
		nEdges  = 3 * n
		maxOps  = 3
		recheck = 8 // pinned snapshots re-verified per epoch window
	)
	if testing.Short() {
		t.Skip("property test is long")
	}
	rng := rand.New(rand.NewSource(7))

	b := NewBuilder(n, true)
	b.EnsureCategories(nCats)
	for i := 0; i < nEdges; i++ {
		b.AddEdge(Vertex(rng.Intn(n)), Vertex(rng.Intn(n)), float64(1+rng.Intn(9)))
	}
	for v := 0; v < n; v++ {
		b.AddCategory(Vertex(v), Category(rng.Intn(nCats)))
	}
	base := b.MustBuild()
	sys := NewSystem(base)
	reqs := applyOracleQueries(n, nCats, rng)

	type pinned struct {
		sn      *Snapshot
		answers [][]Route
	}
	var (
		insertedEdges [][3]float64
		pins          []pinned
	)
	for epoch := 0; epoch < epochs; epoch++ {
		if epoch%2 == 0 {
			sys.SetRepairWorkers(1)
		} else {
			sys.SetRepairWorkers(4)
		}
		nOps := 1 + rng.Intn(maxOps)
		batch := make([]Update, 0, nOps)
		for i := 0; i < nOps; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				u := Update{
					Op:     OpInsertEdge,
					From:   Vertex(rng.Intn(n)),
					To:     Vertex(rng.Intn(n)),
					Weight: float64(1 + rng.Intn(9)),
				}
				batch = append(batch, u)
				insertedEdges = append(insertedEdges, [3]float64{float64(u.From), float64(u.To), u.Weight})
			case 2:
				batch = append(batch, Update{
					Op: OpAddCategory, Vertex: Vertex(rng.Intn(n)), Category: Category(rng.Intn(nCats)),
				})
			default:
				batch = append(batch, Update{
					Op: OpRemoveCategory, Vertex: Vertex(rng.Intn(n)), Category: Category(rng.Intn(nCats)),
				})
			}
		}
		if _, err := sys.Apply(batch...); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}

		sn := sys.Snapshot()
		oracle := oracleSystem(t, base, insertedEdges, sn)
		got := answersOf(t, sn, reqs)
		want := answersOf(t, oracle.Snapshot(), reqs)
		for i := range reqs {
			if !sameRoutes(got[i], want[i]) {
				t.Fatalf("epoch %d request %d (%+v):\n got %v\nwant %v",
					epoch, i, reqs[i], got[i], want[i])
			}
		}

		// Keep a few epochs pinned and re-verify one per iteration: a
		// later epoch's mutation must never bleed into a page an older
		// snapshot still reads.
		if epoch%(epochs/recheck) == 0 {
			pins = append(pins, pinned{sn: sn, answers: got})
		}
		if len(pins) > 0 {
			p := pins[rng.Intn(len(pins))]
			re := answersOf(t, p.sn, reqs)
			for i := range reqs {
				if !sameRoutes(re[i], p.answers[i]) {
					t.Fatalf("epoch %d: pinned snapshot (epoch %d) changed its answer for request %d",
						epoch, p.sn.Epoch, i)
				}
			}
		}
	}

	st := sys.ApplyStats()
	if st.Batches != epochs {
		t.Fatalf("ApplyStats.Batches=%d, want %d", st.Batches, epochs)
	}
	if st.PagesCopied == 0 || st.ApplyBytes == 0 {
		t.Fatalf("ApplyStats records no page work: %+v", st)
	}
	if st.HubRepairs == 0 || st.RepairSeeds < st.HubRepairs {
		t.Fatalf("ApplyStats repair counters inconsistent: %+v", st)
	}
}

// TestNoSourceVariantSeesDynamicCategories pins the closed ROADMAP gap
// directly: a vertex granted a category at run time must become a root
// of no-source variant queries over that category — including a
// category id that did not exist in the base graph — and removing the
// membership must narrow the roots again.
func TestNoSourceVariantSeesDynamicCategories(t *testing.T) {
	// 0 → 1 → 2 → 3 chain; category 0 = {1}, category 1 = {3}.
	b := NewBuilder(4, true)
	b.EnsureCategories(2)
	b.AddEdge(0, 1, 1).AddEdge(1, 2, 1).AddEdge(2, 3, 1)
	b.AddCategory(1, 0)
	b.AddCategory(3, 1)
	g := b.MustBuild()
	sys := NewSystem(g)

	req := Request{NoSource: true, Target: 3, Categories: []Category{0, 1}, K: 2}
	res, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 1 || res.Routes[0].Witness[0] != 1 {
		t.Fatalf("base routes=%v, want one route rooted at 1", res.Routes)
	}

	// Granting category 0 to vertex 2 adds a second, cheaper root.
	if _, err := sys.Apply(Update{Op: OpAddCategory, Vertex: 2, Category: 0}); err != nil {
		t.Fatal(err)
	}
	res, err = sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 2 || res.Routes[0].Witness[0] != 2 {
		t.Fatalf("post-add routes=%v, want the new root 2 first (cost 2)", res.Routes)
	}

	// A brand-new category id becomes usable as the variant's C1.
	newCat := Category(g.NumCategories())
	if _, err := sys.Apply(Update{Op: OpAddCategory, Vertex: 0, Category: newCat}); err != nil {
		t.Fatal(err)
	}
	res, err = sys.Do(context.Background(), Request{
		NoSource: true, Target: 3, Categories: []Category{newCat, 1}, K: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 1 || res.Routes[0].Witness[0] != 0 {
		t.Fatalf("grown-id variant routes=%v, want a route rooted at 0", res.Routes)
	}

	// Removing the membership narrows the roots back down.
	if _, err := sys.Apply(Update{Op: OpRemoveCategory, Vertex: 2, Category: 0}); err != nil {
		t.Fatal(err)
	}
	res, err = sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != 1 || res.Routes[0].Witness[0] != 1 {
		t.Fatalf("post-remove routes=%v, want only the native root 1", res.Routes)
	}
}
