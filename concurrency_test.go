package kosr

import (
	"sync"
	"testing"
)

// A System's indexes are immutable after construction, so concurrent
// queries (each with its own per-query NN state) must be safe. Run with
// -race to validate.
func TestConcurrentQueries(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	cats := []Category{ma, re, ci}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m := []Method{KPNE, PruningKOSR, StarKOSR}[(worker+i)%3]
				routes, _, err := sys.Solve(
					Query{Source: s, Target: tv, Categories: cats, K: 3},
					Options{Method: m})
				if err != nil {
					errs <- err
					return
				}
				if len(routes) != 3 || routes[0].Cost != 20 {
					t.Errorf("worker %d: routes=%v", worker, routes)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentDiskQueries(t *testing.T) {
	g := Figure1()
	sys := NewSystem(g)
	dir := t.TempDir() + "/store"
	if err := sys.SaveDiskStore(dir); err != nil {
		t.Fatal(err)
	}
	// The Store mutates its Seeks counter and page cache, so each
	// goroutine opens its own handle (the documented usage: one
	// DiskSystem per worker).
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds, err := OpenDiskSystem(g, dir)
			if err != nil {
				t.Error(err)
				return
			}
			defer ds.Close()
			for i := 0; i < 10; i++ {
				routes, err := ds.TopK(s, tv, []Category{ma, re, ci}, 2)
				if err != nil || len(routes) != 2 {
					t.Errorf("routes=%v err=%v", routes, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
