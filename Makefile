# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync when adding gates.

GO ?= go

.PHONY: build test lint vet escapes fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the project's own analyzer suite (internal/lint) three ways:
# standalone, through the `go vet -vettool` driver protocol, and the
# hotpath heap-escape gate against internal/lint/escapes.baseline.
# Suppress a finding with `//lint:ignore <analyzer> <reason>` on or
# directly above the line; the reason is mandatory.
lint: vet escapes
	$(GO) run ./cmd/kosrlint ./...

vet:
	$(GO) vet ./...
	$(GO) build -o /tmp/kosrlint ./cmd/kosrlint
	$(GO) vet -vettool=/tmp/kosrlint ./...

escapes:
	$(GO) run ./cmd/kosrlint escapes

fmt:
	gofmt -w .

bench:
	$(GO) run ./cmd/kosrbench -quick -analogues CAL -queries 2 -out /tmp/bench-smoke.json
