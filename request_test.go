package kosr

import (
	"context"
	"errors"
	"testing"
)

// TestDoMatchesDeprecatedSolve pins the migration contract: Do must
// reproduce exactly what the deprecated Solve surface returned, for
// every method, with truncation folded into Result.Truncated.
func TestDoMatchesDeprecatedSolve(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	for _, m := range []Method{StarKOSR, PruningKOSR, KPNE} {
		req := Request{Source: s, Target: tv, Categories: cats, K: 3, Method: m}
		res, err := sys.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		routes, _, err := sys.Solve(
			Query{Source: s, Target: tv, Categories: cats, K: 3}, Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Routes) != len(routes) {
			t.Fatalf("%v: Do %d routes, Solve %d", m, len(res.Routes), len(routes))
		}
		for i := range routes {
			if res.Routes[i].Cost != routes[i].Cost {
				t.Fatalf("%v route %d: Do cost %g, Solve %g", m, i, res.Routes[i].Cost, routes[i].Cost)
			}
		}
		if res.Truncated || res.Stats == nil || res.Stats.Examined == 0 {
			t.Fatalf("%v: res=%+v", m, res)
		}
	}
}

func TestDoTruncation(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	res, err := sys.Do(context.Background(), Request{
		Source: s, Target: tv, Categories: cats, K: 30, MaxExamined: 12,
	})
	if err != nil {
		t.Fatalf("budget trips must not be errors under Do: %v", err)
	}
	if !res.Truncated {
		t.Fatalf("res=%+v, want Truncated", res)
	}
	if len(res.Routes) == 0 {
		t.Fatal("partial routes discarded")
	}
	// The deprecated wrapper must keep the historical error contract.
	_, _, err = sys.Solve(Query{Source: s, Target: tv, Categories: cats, K: 30},
		Options{MaxExamined: 12})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Solve err=%v, want ErrBudgetExceeded", err)
	}
}

func TestDoVariantRequest(t *testing.T) {
	g, _, tv, cats := fig1(t)
	sys := NewSystem(g)
	req := Request{NoSource: true, Target: tv, Categories: cats, K: 2}
	res, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sys.SolveVariant(VariantQuery{
		NoSource: true, Target: tv, Categories: cats, K: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != len(want) {
		t.Fatalf("Do %d routes, SolveVariant %d", len(res.Routes), len(want))
	}
	for i := range want {
		if res.Routes[i].Cost != want[i].Cost {
			t.Fatalf("route %d: %g vs %g", i, res.Routes[i].Cost, want[i].Cost)
		}
	}
}

func TestDoCancelled(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.Do(ctx, Request{Source: s, Target: tv, Categories: cats, K: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestDoStream(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)

	// A capped stream matches Do's routes in order.
	var got []Route
	for r, err := range sys.DoStream(context.Background(), Request{
		Source: s, Target: tv, Categories: cats, K: 3,
	}) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	want := []Weight{20, 21, 22}
	if len(got) != 3 {
		t.Fatalf("streamed %d routes, want 3", len(got))
	}
	for i, w := range want {
		if got[i].Cost != w {
			t.Fatalf("route %d cost %g, want %g", i, got[i].Cost, w)
		}
	}

	// Breaking out of the loop early must be safe (the searcher is
	// closed by the iterator) and repeatable.
	for i := 0; i < 3; i++ {
		for r, err := range sys.DoStream(context.Background(), Request{
			Source: s, Target: tv, Categories: cats,
		}) {
			if err != nil {
				t.Fatal(err)
			}
			if r.Cost != 20 {
				t.Fatalf("first route cost %g", r.Cost)
			}
			break
		}
	}

	// An unbounded stream (K=0) drains the witness space.
	n := 0
	for _, err := range sys.DoStream(context.Background(), Request{
		Source: s, Target: tv, Categories: cats,
	}) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n < 3 {
		t.Fatalf("unbounded stream yielded %d routes", n)
	}
}

func TestDoStreamCancelled(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := 0
	var lastErr error
	for _, err := range sys.DoStream(ctx, Request{Source: s, Target: tv, Categories: cats}) {
		if err != nil {
			lastErr = err
			break
		}
		got++
		cancel() // abandon after the first route
	}
	if got != 1 || !errors.Is(lastErr, context.Canceled) {
		t.Fatalf("got=%d lastErr=%v, want 1 route then context.Canceled", got, lastErr)
	}
}

func TestDoStreamVariant(t *testing.T) {
	g, _, tv, cats := fig1(t)
	sys := NewSystem(g)
	want, _, err := sys.SolveVariant(VariantQuery{
		NoSource: true, Target: tv, Categories: cats, K: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Route
	for r, err := range sys.DoStream(context.Background(), Request{
		NoSource: true, Target: tv, Categories: cats, K: 2,
	}) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Cost != want[i].Cost {
			t.Fatalf("route %d: %g vs %g", i, got[i].Cost, want[i].Cost)
		}
	}
}

func TestCanonicalKey(t *testing.T) {
	base := Request{Source: 1, Target: 2, Categories: []Category{3, 4}, K: 5}
	k1, ok := base.CanonicalKey()
	if !ok || k1 == "" {
		t.Fatalf("key=%q ok=%v", k1, ok)
	}
	same := Request{Source: 1, Target: 2, Categories: []Category{3, 4}, K: 5,
		MaxDuration: 1000, TimeBreakdown: true}
	if k2, ok := same.CanonicalKey(); !ok || k2 != k1 {
		t.Fatalf("wall-clock fields must not change the key: %q vs %q", k2, k1)
	}
	for name, r := range map[string]Request{
		"method":   {Source: 1, Target: 2, Categories: []Category{3, 4}, K: 5, Method: PruningKOSR},
		"dij":      {Source: 1, Target: 2, Categories: []Category{3, 4}, K: 5, UseDijkstraNN: true},
		"source":   {Source: 9, Target: 2, Categories: []Category{3, 4}, K: 5},
		"target":   {Source: 1, Target: 9, Categories: []Category{3, 4}, K: 5},
		"k":        {Source: 1, Target: 2, Categories: []Category{3, 4}, K: 6},
		"cats":     {Source: 1, Target: 2, Categories: []Category{4, 3}, K: 5},
		"noSource": {NoSource: true, Target: 2, Categories: []Category{3, 4}, K: 5},
		"noTarget": {Source: 1, NoTarget: true, Categories: []Category{3, 4}, K: 5},
		"budget":   {Source: 1, Target: 2, Categories: []Category{3, 4}, K: 5, MaxExamined: 7},
	} {
		if k, ok := r.CanonicalKey(); !ok {
			t.Errorf("%s: not cacheable", name)
		} else if k == k1 {
			t.Errorf("%s: key collision with base: %q", name, k)
		}
	}
	filtered := Request{Source: 1, Target: 2, Categories: []Category{3}, K: 1,
		Filters: Filters{3: func(Vertex) bool { return true }}}
	if _, ok := filtered.CanonicalKey(); ok {
		t.Error("filtered requests must not be cacheable")
	}
}
