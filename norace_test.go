//go:build !race

package kosr

const raceEnabled = false
