// Logistics: sequenced routing on a directed travel-time network.
//
// A freight operator must leave the depot, pick up goods at a warehouse,
// refuel, clear customs, and reach the port — in that order. Travel
// times are asymmetric (one-way streets, rush-hour directions), so the
// graph is directed and the triangle inequality does not hold: exactly
// the "general graph" setting the paper targets.
//
//	go run ./examples/logistics
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	kosr "repro"
	"repro/internal/gen"
)

func main() {
	const rows, cols = 36, 36
	b := gen.GridBuilder(gen.GridOptions{
		Rows: rows, Cols: cols, Directed: true, MaxWeight: 15, Diagonals: true, Seed: 21,
	})
	warehouse := b.NameCategory("warehouse")
	fuel := b.NameCategory("fuel")
	customs := b.NameCategory("customs")

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), warehouse)
	}
	for i := 0; i < 30; i++ {
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), fuel)
	}
	for i := 0; i < 8; i++ {
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), customs)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys := kosr.NewSystem(g)

	depot := kosr.Vertex(3)
	port := kosr.Vertex(rows*cols - 5)
	chain := []kosr.Category{warehouse, fuel, customs}
	ctx := context.Background()

	// A dispatch service answers with an SLA: the request carries both
	// a wall-clock budget and an examined-routes budget, and a tripped
	// budget returns the partial plan marked truncated instead of
	// failing the dispatch.
	fmt.Println("Dispatch plan: depot → warehouse → fuel → customs → port")
	res, err := sys.Do(ctx, kosr.Request{
		Source: depot, Target: port, Categories: chain, K: 4,
		MaxExamined: 500_000, MaxDuration: 2 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Truncated {
		fmt.Println("(budget tripped — partial plan)")
	}
	for i, r := range res.Routes {
		fmt.Printf("%d. travel time %-5g via warehouse %d, fuel %d, customs %d\n",
			i+1, r.Cost, r.Witness[1], r.Witness[2], r.Witness[3])
	}

	// Asymmetry check: the reverse trip differs.
	fwd := sys.ShortestPath(depot, port)
	rev := sys.ShortestPath(port, depot)
	fmt.Printf("\nAsymmetric network: dis(depot,port)=%g, dis(port,depot)=%g\n", fwd, rev)

	// Compare the three algorithms' search effort on this query.
	fmt.Println("\nSearch effort (k=4):")
	req := kosr.Request{Source: depot, Target: port, Categories: chain, K: 4}
	for _, m := range []kosr.Method{kosr.KPNE, kosr.PruningKOSR, kosr.StarKOSR} {
		req.Method = m
		mres, err := sys.Do(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v %6d examined, %6d NN queries, %v\n",
			m, mres.Stats.Examined, mres.Stats.NNQueries, mres.Stats.Total.Round(1000))
	}

	// Dijkstra-based nearest neighbours (no index) give the same routes,
	// slower — the paper's -Dij variants.
	req.Method = kosr.StarKOSR
	req.UseDijkstraNN = true
	noIdx, err := sys.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIndex-free cross-check: top-1 cost %g (matches: %v)\n",
		noIdx.Routes[0].Cost, noIdx.Routes[0].Cost == res.Routes[0].Cost)
}
