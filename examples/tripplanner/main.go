// Tripplanner: top-k sequenced trips across a synthetic city.
//
// A 40×40 downtown grid carries five kinds of points of interest. A user
// plans an evening — shopping mall, then restaurant, then cinema — and
// wants alternatives, not just the single optimum, because the best
// restaurant might be full (the paper's motivating scenario).
//
//	go run ./examples/tripplanner
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	kosr "repro"
	"repro/internal/gen"
)

func main() {
	const rows, cols = 40, 40
	b := gen.GridBuilder(gen.GridOptions{Rows: rows, Cols: cols, Seed: 7, Diagonals: true})

	mall := b.NameCategory("mall")
	restaurant := b.NameCategory("restaurant")
	cinema := b.NameCategory("cinema")
	fuel := b.NameCategory("fuel")
	park := b.NameCategory("park")

	// Sprinkle POIs deterministically across the city.
	rng := rand.New(rand.NewSource(99))
	sprinkle := func(c kosr.Category, count int) {
		for i := 0; i < count; i++ {
			b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), c)
		}
	}
	sprinkle(mall, 15)
	sprinkle(restaurant, 60)
	sprinkle(cinema, 10)
	sprinkle(fuel, 25)
	sprinkle(park, 30)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys := kosr.NewSystem(g)

	home := kosr.Vertex(0)              // north-west corner
	hotel := kosr.Vertex(rows*cols - 1) // south-east corner
	ctx := context.Background()

	// "Show more alternatives" is exactly what DoStream models: the
	// search is progressive, so each further route costs only the extra
	// expansion beyond the previous one. Stream until the detour grows
	// past 10% of the optimum — the final k is never chosen up front.
	fmt.Println("Evening plan: mall → restaurant → cinema, alternatives within 10%")
	var best kosr.Weight
	n := 0
	for r, err := range sys.DoStream(ctx, kosr.Request{
		Source: home, Target: hotel,
		Categories: []kosr.Category{mall, restaurant, cinema},
	}) {
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			best = r.Cost
		} else if r.Cost > best*1.10 {
			break
		}
		n++
		fmt.Printf("%d. cost %-5g stops: mall@%d restaurant@%d cinema@%d\n",
			n, r.Cost, r.Witness[1], r.Witness[2], r.Witness[3])
	}

	// A longer errand chain exercises the A* search harder: fuel first,
	// a park stroll, then dinner.
	fmt.Println("\nErrand chain: fuel → park → restaurant, top-3")
	req := kosr.Request{
		Source:        home,
		Target:        hotel,
		Categories:    []kosr.Category{fuel, park, restaurant},
		K:             3,
		TimeBreakdown: true,
	}
	res, err := sys.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Routes {
		fmt.Printf("%d. cost %-5g witness %v\n", i+1, r.Cost, r.Witness)
	}
	fmt.Printf("StarKOSR examined %d routes with %d NN queries in %v\n",
		res.Stats.Examined, res.Stats.NNQueries, res.Stats.Total.Round(1000))

	// The single optimum agrees with the GSP dynamic-programming
	// baseline — a useful online sanity check.
	opt, ok, err := sys.GSP(home, hotel, req.Categories)
	if err != nil || !ok {
		log.Fatal("GSP failed")
	}
	fmt.Printf("GSP cross-check: optimal cost %g (matches: %v)\n",
		opt.Cost, opt.Cost == res.Routes[0].Cost)
}
