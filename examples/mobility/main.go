// Mobility: disk-resident indexes and live category updates.
//
// A mobility-as-a-service backend keeps its label indexes on disk
// (Section IV-C of the paper): each query loads only the |C| category
// sections it touches plus two vertex records. The example also shows a
// dynamic category update — a new charging station comes online and
// immediately participates in route answers, without rebuilding labels.
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	kosr "repro"
	"repro/internal/gen"
)

//lint:file-ignore SA1019 this example deliberately keeps one call on the deprecated single-mutation wrapper (AddVertexCategory) so the compatibility surface stays exercised end to end; new code should batch mutations through Apply.

func main() {
	const rows, cols = 32, 32
	b := gen.GridBuilder(gen.GridOptions{Rows: rows, Cols: cols, Seed: 13, Diagonals: true})
	charger := b.NameCategory("charger")
	cafe := b.NameCategory("cafe")

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 12; i++ {
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), charger)
	}
	for i := 0; i < 40; i++ {
		b.AddCategory(kosr.Vertex(rng.Intn(rows*cols)), cafe)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sys := kosr.NewSystem(g)

	// Persist the index as a disk store and reopen it the way a server
	// fleet would (build once, query from disk everywhere).
	dir, err := os.MkdirTemp("", "kosr-mobility-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "store")
	if err := sys.SaveDiskStore(store); err != nil {
		log.Fatal(err)
	}
	ds, err := kosr.OpenDiskSystem(g, store)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()

	rider := kosr.Vertex(17)
	office := kosr.Vertex(rows*cols - 2)
	ctx := context.Background()
	fmt.Println("EV trip: charge, grab a coffee, get to the office (top-3, from disk)")
	req := kosr.Request{
		Source: rider, Target: office, Categories: []kosr.Category{charger, cafe}, K: 3,
	}
	res, err := ds.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Routes {
		fmt.Printf("%d. cost %-5g charger@%d cafe@%d\n", i+1, r.Cost, r.Witness[1], r.Witness[2])
	}
	fmt.Printf("disk records loaded so far: %d (≈|C|+2 per query)\n", ds.Store.Seeks)

	// A new charging station comes online next to the rider. The
	// in-memory system applies the Section IV-C dynamic update to its
	// inverted index — no label rebuild — and answers change. (A result
	// cache in front, like the server's, must be purged on such
	// updates.)
	newStation := kosr.Vertex(18)
	if err := sys.AddVertexCategory(newStation, charger); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnew charging station online at vertex %d\n", newStation)
	updated, err := sys.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range updated.Routes {
		fmt.Printf("%d. cost %-5g charger@%d cafe@%d\n", i+1, r.Cost, r.Witness[1], r.Witness[2])
	}
	if updated.Routes[0].Cost <= res.Routes[0].Cost {
		fmt.Println("the new station improved (or matched) the best trip")
	}
}
