// Quickstart: answer the paper's running example (Figure 1).
//
// Alice starts at s, wants to visit a shopping mall (MA), then a
// restaurant (RE), then a cinema (CI), and end at t. The top-3 optimal
// sequenced routes have costs 20, 21 and 22 (Example 1 of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kosr "repro"
)

func main() {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g) // builds the 2-hop label + inverted indexes

	s, _ := g.VertexByName("s")
	t, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	routes, err := sys.TopK(s, t, []kosr.Category{ma, re, ci}, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top-3 optimal sequenced routes for ⟨MA, RE, CI⟩ from s to t:")
	for i, r := range routes {
		fmt.Printf("%d. cost %-3g witness:", i+1, r.Cost)
		for _, v := range r.Witness {
			fmt.Printf(" %s", g.VertexName(v))
		}
		// A witness lists only the category stops; expand it into the
		// actual turn-by-turn route.
		full := sys.ExpandWitness(r.Witness)
		fmt.Printf("   (drive:")
		for _, v := range full {
			fmt.Printf(" %s", g.VertexName(v))
		}
		fmt.Println(")")
	}

	// Compare the three algorithms on the same query.
	fmt.Println("\nAlgorithm comparison (same query, k=2):")
	q := kosr.Query{Source: s, Target: t, Categories: []kosr.Category{ma, re, ci}, K: 2}
	for _, m := range []kosr.Method{kosr.KPNE, kosr.PruningKOSR, kosr.StarKOSR} {
		_, st, err := sys.Solve(q, kosr.Options{Method: m})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v examined %2d routes, %2d NN queries\n", m, st.Examined, st.NNQueries)
	}
}
