// Quickstart: answer the paper's running example (Figure 1) through
// the context-first Request API.
//
// Alice starts at s, wants to visit a shopping mall (MA), then a
// restaurant (RE), then a cinema (CI), and end at t. The top-3 optimal
// sequenced routes have costs 20, 21 and 22 (Example 1 of the paper).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	kosr "repro"
)

func main() {
	g := kosr.Figure1()
	sys := kosr.NewSystem(g) // builds the 2-hop label + inverted indexes
	ctx := context.Background()

	s, _ := g.VertexByName("s")
	t, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")

	// Every query is a Request answered by Do; cancelling ctx would
	// abort the search mid-flight.
	res, err := sys.Do(ctx, kosr.Request{
		Source: s, Target: t, Categories: []kosr.Category{ma, re, ci}, K: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top-3 optimal sequenced routes for ⟨MA, RE, CI⟩ from s to t:")
	for i, r := range res.Routes {
		fmt.Printf("%d. cost %-3g witness:", i+1, r.Cost)
		for _, v := range r.Witness {
			fmt.Printf(" %s", g.VertexName(v))
		}
		// A witness lists only the category stops; expand it into the
		// actual turn-by-turn route.
		full := sys.ExpandWitness(r.Witness)
		fmt.Printf("   (drive:")
		for _, v := range full {
			fmt.Printf(" %s", g.VertexName(v))
		}
		fmt.Println(")")
	}

	// DoStream produces the same routes lazily — the second route is
	// only computed if the loop asks for it. Breaking out releases the
	// search state immediately.
	fmt.Println("\nStreaming until the cost exceeds 21:")
	for r, err := range sys.DoStream(ctx, kosr.Request{
		Source: s, Target: t, Categories: []kosr.Category{ma, re, ci},
	}) {
		if err != nil {
			log.Fatal(err)
		}
		if r.Cost > 21 {
			break
		}
		fmt.Printf("  cost %g via %d stops\n", r.Cost, len(r.Witness)-2)
	}

	// Compare the three algorithms on the same query.
	fmt.Println("\nAlgorithm comparison (same query, k=2):")
	req := kosr.Request{Source: s, Target: t, Categories: []kosr.Category{ma, re, ci}, K: 2}
	for _, m := range []kosr.Method{kosr.KPNE, kosr.PruningKOSR, kosr.StarKOSR} {
		req.Method = m
		res, err := sys.Do(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v examined %2d routes, %2d NN queries\n",
			m, res.Stats.Examined, res.Stats.NNQueries)
	}
}
