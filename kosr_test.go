package kosr

import (
	"bytes"
	"path/filepath"
	"testing"
)

func fig1(t *testing.T) (*Graph, Vertex, Vertex, []Category) {
	t.Helper()
	g := Figure1()
	s, _ := g.VertexByName("s")
	tv, _ := g.VertexByName("t")
	ma, _ := g.CategoryByName("MA")
	re, _ := g.CategoryByName("RE")
	ci, _ := g.CategoryByName("CI")
	return g, s, tv, []Category{ma, re, ci}
}

func TestQuickStart(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	routes, err := sys.TopK(s, tv, cats, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []Weight{20, 21, 22}
	if len(routes) != 3 {
		t.Fatalf("routes=%v", routes)
	}
	for i, w := range want {
		if routes[i].Cost != w {
			t.Fatalf("route %d cost %v, want %v", i, routes[i].Cost, w)
		}
	}
}

func TestAllMethodsViaFacade(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	for _, m := range []Method{KPNE, PruningKOSR, StarKOSR} {
		for _, dij := range []bool{false, true} {
			routes, st, err := sys.Solve(
				Query{Source: s, Target: tv, Categories: cats, K: 2},
				Options{Method: m, UseDijkstraNN: dij})
			if err != nil {
				t.Fatal(err)
			}
			if len(routes) != 2 || routes[0].Cost != 20 || routes[1].Cost != 21 {
				t.Fatalf("%v dij=%v: %v", m, dij, routes)
			}
			if st.Examined == 0 {
				t.Fatal("no stats")
			}
		}
	}
}

func TestSystemWithoutIndex(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystemWithoutIndex(g)
	routes, err := sys.TopK(s, tv, cats, 1)
	if err != nil || len(routes) != 1 || routes[0].Cost != 20 {
		t.Fatalf("routes=%v err=%v", routes, err)
	}
	if err := sys.AddVertexCategory(0, 0); err == nil {
		t.Fatal("dynamic update must fail without index")
	}
	if err := sys.SaveIndex(&bytes.Buffer{}); err == nil {
		t.Fatal("save must fail without index")
	}
	if d := sys.ShortestPath(s, tv); d != 17 {
		t.Fatalf("dis(s,t)=%v", d)
	}
}

func TestOptimalRouteAndGSP(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	r, ok, err := sys.OptimalRoute(s, tv, cats)
	if err != nil || !ok || r.Cost != 20 {
		t.Fatalf("r=%v ok=%v err=%v", r, ok, err)
	}
	r2, ok, err := sys.GSP(s, tv, cats)
	if err != nil || !ok || r2.Cost != 20 {
		t.Fatalf("r2=%v ok=%v err=%v", r2, ok, err)
	}
}

func TestExpandWitness(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	r, _, err := sys.OptimalRoute(s, tv, cats)
	if err != nil {
		t.Fatal(err)
	}
	route := sys.ExpandWitness(r.Witness)
	if len(route) < len(r.Witness) {
		t.Fatalf("route=%v", route)
	}
}

func TestSaveLoadIndex(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, err := LoadSystem(g, &buf)
	if err != nil {
		t.Fatal(err)
	}
	routes, err := sys2.TopK(s, tv, cats, 3)
	if err != nil || len(routes) != 3 || routes[2].Cost != 22 {
		t.Fatalf("routes=%v err=%v", routes, err)
	}
	// Mismatched graph size must be rejected.
	var buf2 bytes.Buffer
	sys.SaveIndex(&buf2)
	small := NewBuilder(2, true).AddEdge(0, 1, 1).MustBuild()
	if _, err := LoadSystem(small, &buf2); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestDiskSystem(t *testing.T) {
	g, s, tv, cats := fig1(t)
	sys := NewSystem(g)
	dir := filepath.Join(t.TempDir(), "store")
	if err := sys.SaveDiskStore(dir); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskSystem(g, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	routes, err := ds.TopK(s, tv, cats, 3)
	if err != nil || len(routes) != 3 || routes[0].Cost != 20 {
		t.Fatalf("routes=%v err=%v", routes, err)
	}
	// Wrong graph must be rejected.
	small := NewBuilder(2, true).AddEdge(0, 1, 1).MustBuild()
	if _, err := OpenDiskSystem(small, dir); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestDynamicCategoryUpdateViaFacade(t *testing.T) {
	g, s, tv, _ := fig1(t)
	sys := NewSystem(g)
	// Create a brand-new category "EV" on vertex b and query through it.
	b, _ := g.VertexByName("b")
	ev := Category(7)
	if err := sys.AddVertexCategory(b, ev); err != nil {
		t.Fatal(err)
	}
	// The engine validates categories against the graph, so query the
	// inverted index directly through ShortestPath-style plumbing: use a
	// category the graph knows, retargeted to b.
	ma, _ := g.CategoryByName("MA")
	if err := sys.AddVertexCategory(b, ma); err != nil {
		t.Fatal(err)
	}
	routes, err := sys.TopK(s, tv, []Category{ma}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With b in MA, the cheapest MA-route is s→b→t = 13 + 7 = 20; the
	// previous best (s→a→t = 8+12 = 20 / s→c→t = 10+7 = 17) still wins
	// overall but b adds a third distinct witness with cost 20.
	if len(routes) != 3 {
		t.Fatalf("routes=%v", routes)
	}
	if err := sys.RemoveVertexCategory(b, ma); err != nil {
		t.Fatal(err)
	}
	routes2, _ := sys.TopK(s, tv, []Category{ma}, 3)
	if len(routes2) != 2 {
		t.Fatalf("after removal routes=%v", routes2)
	}
}
