// Package kosr answers top-k optimal sequenced route (KOSR) queries on
// general directed weighted graphs, reproducing "Finding Top-k Optimal
// Sequenced Routes" (Liu, Jin, Yang, Zhou — ICDE 2018, arXiv:1802.08014).
//
// A KOSR query (s, t, C, k) asks for the k cheapest routes from s to t
// that pass through the vertex categories C = ⟨C1, …, Cj⟩ in order (e.g.
// a shopping mall, then a restaurant, then a cinema). Edge weights are
// arbitrary non-negative costs; the triangle inequality is not assumed.
//
// # Quick start
//
//	g := kosr.Figure1()                     // the paper's example graph
//	sys := kosr.NewSystem(g)                // builds the 2-hop label indexes
//	s, _ := g.VertexByName("s")
//	t, _ := g.VertexByName("t")
//	ma, _ := g.CategoryByName("MA")
//	re, _ := g.CategoryByName("RE")
//	ci, _ := g.CategoryByName("CI")
//	routes, _ := sys.TopK(s, t, []kosr.Category{ma, re, ci}, 3)
//	// routes[0].Cost == 20, routes[1].Cost == 21, routes[2].Cost == 22
//
// The default solver is StarKOSR (the paper's fastest method); Options
// selects PruningKOSR, the KPNE baseline, or Dijkstra-based
// nearest-neighbour discovery instead of the label indexes.
package kosr

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/graph"
	"repro/internal/invindex"
	"repro/internal/label"
)

// Re-exported graph types: the full graph API (builders, IO, categories)
// lives on these types.
type (
	// Graph is a directed weighted graph with vertex categories.
	Graph = graph.Graph
	// Builder accumulates vertices, edges, and categories.
	Builder = graph.Builder
	// Vertex identifies a vertex (dense integers in [0, N)).
	Vertex = graph.Vertex
	// Category identifies a vertex category.
	Category = graph.Category
	// Weight is a non-negative edge or path cost.
	Weight = graph.Weight

	// Query is a KOSR query (s, t, C, k).
	Query = core.Query
	// Route is a witness with its cost.
	Route = core.Route
	// Stats reports search statistics (examined routes, NN queries,
	// time breakdown).
	Stats = core.Stats
	// Method selects the route search algorithm.
	Method = core.Method
	// VariantQuery is a KOSR query with the Section IV-C variants:
	// optional source, optional destination, per-category filters.
	VariantQuery = core.VariantQuery
	// Filters restricts categories to preferred vertices.
	Filters = core.Filters
)

// The route search algorithms.
const (
	// KPNE is the baseline (Algorithm 1 extended to top-k).
	KPNE = core.MethodKPNE
	// PruningKOSR is the dominance-based algorithm (Algorithm 2).
	PruningKOSR = core.MethodPK
	// StarKOSR is the A*-style algorithm (Section IV-B); the default.
	StarKOSR = core.MethodSK
)

// NewBuilder returns a graph builder for n vertices.
func NewBuilder(n int, directed bool) *Builder { return graph.NewBuilder(n, directed) }

// ReadGraph parses a graph in the text format produced by Graph.WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// ReadDIMACS parses a road network in the 9th DIMACS Challenge
// shortest-path format (the distribution format of the paper's COL and
// FLA datasets). Categories must be assigned separately.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// Figure1 returns the running-example graph of the paper.
func Figure1() *Graph { return graph.Figure1() }

// Options tunes a query.
type Options struct {
	// Method selects the algorithm; the zero value selects StarKOSR.
	Method Method
	// UseDijkstraNN replaces the inverted-label FindNN with incremental
	// Dijkstra searches (the paper's -Dij variants). Works even on a
	// System built with NewSystemWithoutIndex.
	UseDijkstraNN bool
	// MaxExamined, MaxDuration and TimeBreakdown are forwarded to the
	// engine; see the core package documentation.
	MaxExamined   int64
	MaxDuration   time.Duration
	TimeBreakdown bool
}

// System bundles a graph with the indexes needed to answer queries.
// Concurrent queries are safe: the indexes are read-only during query
// answering and every query checks its mutable search state out of a
// per-provider scratch pool. Share one System across workers —
// per-query Systems defeat the pool. The Section IV-C dynamic updates
// (AddVertexCategory, InsertEdge, …) mutate the indexes and need
// external synchronization against in-flight queries, as before.
type System struct {
	Graph *Graph
	// Labels is the 2-hop label index (nil when the system was created
	// with NewSystemWithoutIndex).
	Labels *label.Index
	// Inverted is the per-category inverted label index.
	Inverted *invindex.Index

	// Long-lived providers: each owns the sync.Pool of query scratches,
	// so they must be shared across queries rather than rebuilt.
	provMu    sync.Mutex
	labelProv *core.LabelProvider
	dijProv   *core.DijkstraProvider
}

// NewSystem builds the 2-hop label index and the inverted label index
// for g. Preprocessing is O(|V|) pruned Dijkstra searches; see
// Labels.Stats for the resulting sizes.
func NewSystem(g *Graph) *System {
	lab := label.Build(g)
	return &System{Graph: g, Labels: lab, Inverted: invindex.Build(g, lab)}
}

// NewSystemWithoutIndex returns a System that answers every query with
// Dijkstra-based nearest-neighbour discovery (no preprocessing).
func NewSystemWithoutIndex(g *Graph) *System { return &System{Graph: g} }

func (s *System) provider(opt Options) (core.Provider, error) {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	if opt.UseDijkstraNN || s.Labels == nil {
		if s.dijProv == nil || s.dijProv.Graph != s.Graph {
			s.dijProv = &core.DijkstraProvider{Graph: s.Graph}
		}
		return s.dijProv, nil
	}
	if s.labelProv == nil || s.labelProv.Graph != s.Graph ||
		s.labelProv.Labels != s.Labels || s.labelProv.Inv != s.Inverted {
		s.labelProv = &core.LabelProvider{Graph: s.Graph, Labels: s.Labels, Inv: s.Inverted}
	}
	return s.labelProv, nil
}

// TopK answers the KOSR query (src, dst, cats, k) with StarKOSR. Fewer
// than k routes are returned when fewer feasible routes exist.
func (s *System) TopK(src, dst Vertex, cats []Category, k int) ([]Route, error) {
	routes, _, err := s.Solve(Query{Source: src, Target: dst, Categories: cats, K: k}, Options{})
	return routes, err
}

// Solve answers a query with full control over the algorithm and limits.
func (s *System) Solve(q Query, opt Options) ([]Route, *Stats, error) {
	prov, err := s.provider(opt)
	if err != nil {
		return nil, nil, err
	}
	return core.Solve(s.Graph, q, prov, core.Options{
		Method:        opt.Method,
		MaxExamined:   opt.MaxExamined,
		MaxDuration:   opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// SolveVariant answers a query variant of Section IV-C: no required
// source (routes start at any vertex of the first category), no required
// destination (routes end at the last category; StarKOSR degrades to
// PruningKOSR), and per-category preference filters.
func (s *System) SolveVariant(q VariantQuery, opt Options) ([]Route, *Stats, error) {
	prov, err := s.provider(opt)
	if err != nil {
		return nil, nil, err
	}
	return core.SolveVariant(s.Graph, q, prov, core.Options{
		Method:        opt.Method,
		MaxExamined:   opt.MaxExamined,
		MaxDuration:   opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// Stream starts a progressive search that yields routes one at a time in
// nondecreasing cost order (q.K is ignored): call Next on the returned
// Searcher until ok is false. Useful when the final k is unknown, e.g.
// "show more alternatives" interfaces.
func (s *System) Stream(q Query, opt Options) (*core.Searcher, error) {
	prov, err := s.provider(opt)
	if err != nil {
		return nil, err
	}
	return core.NewSearcher(s.Graph, q, prov, core.Options{
		Method:        opt.Method,
		MaxExamined:   opt.MaxExamined,
		MaxDuration:   opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// OptimalRoute answers an OSR query (k = 1). ok is false when no
// feasible route exists.
func (s *System) OptimalRoute(src, dst Vertex, cats []Category) (Route, bool, error) {
	routes, _, err := s.Solve(Query{Source: src, Target: dst, Categories: cats, K: 1}, Options{})
	if err != nil || len(routes) == 0 {
		return Route{}, false, err
	}
	return routes[0], true, nil
}

// GSP answers an OSR query with the dynamic-programming baseline of Rice
// & Tsotras (the paper's state-of-the-art OSR comparator).
func (s *System) GSP(src, dst Vertex, cats []Category) (Route, bool, error) {
	r, _, ok, err := core.GSP(s.Graph, Query{Source: src, Target: dst, Categories: cats, K: 1})
	return r, ok, err
}

// ExpandWitness expands a witness into an actual route: a vertex walk in
// which consecutive vertices are joined by edges.
func (s *System) ExpandWitness(witness []Vertex) []Vertex {
	return core.ExpandWitness(s.Graph, witness)
}

// ShortestPath returns the exact shortest-path distance dis(u, v),
// answered from the label index when available.
func (s *System) ShortestPath(u, v Vertex) Weight {
	if s.Labels != nil {
		return s.Labels.Dist(u, v)
	}
	prov := &core.DijkstraProvider{Graph: s.Graph}
	return prov.DistTo(v)(u)
}

// AddVertexCategory registers category c on vertex v in the inverted
// label index (the dynamic category update of Section IV-C). Queries
// issued after the call see the new membership; the underlying Graph is
// immutable and unaffected.
func (s *System) AddVertexCategory(v Vertex, c Category) error {
	if s.Inverted == nil {
		return fmt.Errorf("kosr: dynamic updates require a label index")
	}
	s.Inverted.AddVertexCategory(v, c)
	return nil
}

// RemoveVertexCategory undoes AddVertexCategory.
func (s *System) RemoveVertexCategory(v Vertex, c Category) error {
	if s.Inverted == nil {
		return fmt.Errorf("kosr: dynamic updates require a label index")
	}
	s.Inverted.RemoveVertexCategory(v, c)
	return nil
}

// InsertEdge applies a graph-structure update (Section IV-C): a new arc
// (u, v, w) — or a cheaper parallel arc, modelling a weight decrease —
// is folded into the 2-hop labels incrementally and the inverted label
// index is refreshed. The overlay dyn must be created once per System
// with NewDynamic(sys.Graph) and shared across calls.
//
// Label-based queries issued after the call observe the new edge.
// Dijkstra-based queries (UseDijkstraNN) and GSP traverse the immutable
// base graph and do not; rebuild the graph with dyn.Rebuild() and a new
// System for those.
func (s *System) InsertEdge(dyn *graph.Dynamic, u, v Vertex, w Weight) error {
	if s.Labels == nil {
		return fmt.Errorf("kosr: dynamic updates require a label index")
	}
	if err := dyn.AddEdge(u, v, w); err != nil {
		return err
	}
	updates := s.Labels.InsertEdge(dyn, u, v, w)
	if !s.Graph.Directed() && u != v {
		updates = append(updates, s.Labels.InsertEdge(dyn, v, u, w)...)
	}
	s.Inverted.Refresh(s.Graph, updates)
	return nil
}

// NewDynamic returns the edge overlay used with InsertEdge.
func (s *System) NewDynamic() *graph.Dynamic { return graph.NewDynamic(s.Graph) }

// SaveIndex serializes the label index (rebuild the inverted index with
// LoadSystem after reading it back).
func (s *System) SaveIndex(w io.Writer) error {
	if s.Labels == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	_, err := s.Labels.WriteTo(w)
	return err
}

// LoadSystem reconstructs a System from a graph and a label index
// serialized with SaveIndex.
func LoadSystem(g *Graph, r io.Reader) (*System, error) {
	lab, err := label.Read(r)
	if err != nil {
		return nil, err
	}
	if lab.NumVertices() != g.NumVertices() {
		return nil, fmt.Errorf("kosr: index covers %d vertices, graph has %d",
			lab.NumVertices(), g.NumVertices())
	}
	return &System{Graph: g, Labels: lab, Inverted: invindex.Build(g, lab)}, nil
}

// SaveDiskStore materializes the index as the on-disk store of Section
// IV-C (per-category sections located through a B+ tree).
func (s *System) SaveDiskStore(dir string) error {
	if s.Labels == nil {
		return fmt.Errorf("kosr: no label index to save")
	}
	return disk.Write(dir, s.Graph, s.Labels)
}

// DiskSystem answers queries from a disk store, loading only the
// sections each query touches (the paper's SK-DB method).
type DiskSystem struct {
	Graph *Graph
	Store *disk.Store
}

// OpenDiskSystem opens a store written by SaveDiskStore.
func OpenDiskSystem(g *Graph, dir string) (*DiskSystem, error) {
	st, err := disk.Open(dir)
	if err != nil {
		return nil, err
	}
	if st.NumVertices() != g.NumVertices() {
		st.Close()
		return nil, fmt.Errorf("kosr: store covers %d vertices, graph has %d",
			st.NumVertices(), g.NumVertices())
	}
	return &DiskSystem{Graph: g, Store: st}, nil
}

// Close releases the store's files.
func (d *DiskSystem) Close() error { return d.Store.Close() }

// Solve answers a query, loading roughly |C|+4 records from disk.
func (d *DiskSystem) Solve(q Query, opt Options) ([]Route, *Stats, error) {
	lab, inv, err := d.Store.LoadQuery(q.Categories, q.Source, q.Target)
	if err != nil {
		return nil, nil, err
	}
	prov := &core.LabelProvider{Graph: d.Graph, Labels: lab, Inv: inv}
	return core.Solve(d.Graph, q, prov, core.Options{
		Method:        opt.Method,
		MaxExamined:   opt.MaxExamined,
		MaxDuration:   opt.MaxDuration,
		TimeBreakdown: opt.TimeBreakdown,
	})
}

// TopK answers the query with StarKOSR from disk.
func (d *DiskSystem) TopK(src, dst Vertex, cats []Category, k int) ([]Route, error) {
	routes, _, err := d.Solve(Query{Source: src, Target: dst, Categories: cats, K: k}, Options{})
	return routes, err
}
